// seda_server: the network front door as a standalone binary. Loads (or
// generates) a corpus, finalizes a snapshot, and serves the JSON envelope
// protocol of api::SedaService over SEDA frames (src/net/) until SIGINT or
// SIGTERM, then drains gracefully.
//
//   build/tools/seda_server --factbook 0.15 --port 7474
//   build/tools/seda_server --image snap.img --port 0 --port-file /tmp/seda.port
//
// Flags:
//   --image PATH        serve a persisted snapshot image
//   --factbook SCALE    serve a synthetic World Factbook (default, scale 0.15)
//   --host ADDR         bind address            (default 127.0.0.1)
//   --port N            TCP port; 0 = ephemeral (default 7474)
//   --port-file PATH    write the bound port, for scripts using --port 0
//   --shards N          shard-by-DocId scatter-gather top-k    (default 1)
//   --io-threads N      epoll reactor threads                  (default 2)
//   --workers N         request execution threads  (default: hw threads)
//   --queue N           bounded work queue capacity            (default 256)
//   --max-connections N admission cap, 0 = unlimited           (default 0)
//   --max-inflight N    per-connection in-flight cap           (default 64)
//   --conn-rps N        per-connection requests/sec, 0 = off   (default 0)
//   --session-rps N     per-session requests/sec, 0 = off      (default 0)
//   --idle-timeout-ms N close idle connections, 0 = never      (default 60000)
//   --request-timeout-ms N  transport deadline injected into deadline_ms
//   --max-frame-bytes N frame payload cap          (default 16 MiB)
//   --metrics-port N    HTTP GET /metrics listener; 0 = ephemeral,
//                       omit = no listener
//   --metrics-port-file PATH  write the bound metrics port
//   --slow-ms N         slow-query log threshold, 0 = off      (default 1000)
//   --trace-sample N    trace + slow-log every Nth request, 0 = off

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/service.h"
#include "core/seda.h"
#include "data/generators.h"
#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

uint64_t UintFlag(const char* value, const char* flag) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "bad value '%s' for %s\n", value, flag);
    std::exit(2);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string image_path;
  std::string port_file;
  std::string metrics_port_file;
  double factbook_scale = 0.15;
  uint64_t slow_ms = 1000;
  uint64_t trace_sample = 0;
  seda::net::ServerOptions options;
  options.port = 7474;
  options.io_threads = 2;
  options.idle_timeout_ms = 60 * 1000;
  options.admission.max_inflight_per_connection = 64;
  size_t shards = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--image") image_path = next();
    else if (flag == "--factbook") factbook_scale = std::atof(next());
    else if (flag == "--host") options.host = next();
    else if (flag == "--port") options.port = static_cast<uint16_t>(UintFlag(next(), "--port"));
    else if (flag == "--port-file") port_file = next();
    else if (flag == "--shards") shards = UintFlag(next(), "--shards");
    else if (flag == "--io-threads") options.io_threads = UintFlag(next(), "--io-threads");
    else if (flag == "--workers") options.worker_threads = UintFlag(next(), "--workers");
    else if (flag == "--queue") options.queue_capacity = UintFlag(next(), "--queue");
    else if (flag == "--max-connections") options.admission.max_connections = UintFlag(next(), "--max-connections");
    else if (flag == "--max-inflight") options.admission.max_inflight_per_connection = UintFlag(next(), "--max-inflight");
    else if (flag == "--conn-rps") options.admission.per_connection_rps = std::atof(next());
    else if (flag == "--session-rps") options.admission.per_session_rps = std::atof(next());
    else if (flag == "--idle-timeout-ms") options.idle_timeout_ms = UintFlag(next(), "--idle-timeout-ms");
    else if (flag == "--request-timeout-ms") options.request_timeout_ms = UintFlag(next(), "--request-timeout-ms");
    else if (flag == "--max-frame-bytes") options.max_frame_bytes = static_cast<uint32_t>(UintFlag(next(), "--max-frame-bytes"));
    else if (flag == "--metrics-port") options.metrics_port = static_cast<int>(UintFlag(next(), "--metrics-port"));
    else if (flag == "--metrics-port-file") metrics_port_file = next();
    else if (flag == "--slow-ms") slow_ms = UintFlag(next(), "--slow-ms");
    else if (flag == "--trace-sample") trace_sample = UintFlag(next(), "--trace-sample");
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }

  seda::core::Seda seda;
  if (!image_path.empty()) {
    if (seda::Status opened = seda.Open(image_path); !opened.ok()) {
      std::fprintf(stderr, "cannot open image %s: %s\n", image_path.c_str(),
                   opened.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "opened image %s (%zu docs)\n", image_path.c_str(),
                 seda.store().DocumentCount());
  } else {
    seda::data::WorldFactbookGenerator::Options gen;
    gen.scale = factbook_scale;
    seda::data::WorldFactbookGenerator(gen).Populate(seda.mutable_store());
    if (seda::Status finalized = seda.Finalize(); !finalized.ok()) {
      std::fprintf(stderr, "finalize failed: %s\n",
                   finalized.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "generated factbook scale %.2f (%zu docs)\n",
                 factbook_scale, seda.store().DocumentCount());
  }

  seda::api::ServiceOptions service_options;
  service_options.topk_shards = shards;
  service_options.slowlog.default_threshold_ms = slow_ms;
  service_options.trace_sample_every_n = trace_sample;
  seda::api::SedaService service(&seda, service_options);
  seda::net::Server server(&service, options);
  if (seda::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* out = std::fopen(port_file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(out, "%u\n", server.port());
    std::fclose(out);
  }
  if (!metrics_port_file.empty()) {
    std::FILE* out = std::fopen(metrics_port_file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_port_file.c_str());
      return 1;
    }
    std::fprintf(out, "%u\n", server.metrics_port());
    std::fclose(out);
  }
  if (server.metrics_port() != 0) {
    std::fprintf(stderr, "metrics on http://%s:%u/metrics\n",
                 options.host.c_str(), server.metrics_port());
  }
  // Scripts (CI smoke, bench) wait for this exact line.
  std::fprintf(stderr, "listening on %s:%u (shards=%zu)\n",
               options.host.c_str(), server.port(), shards);
  std::fflush(stderr);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    timespec sleep_for{0, 50 * 1000 * 1000};
    nanosleep(&sleep_for, nullptr);
  }
  std::fprintf(stderr, "draining...\n");
  server.Stop();
  // Dump the slow-query log on the way out: the last place those entries
  // exist once the process dies, and exactly when an operator wants them.
  const seda::obs::SlowLog& slowlog = service.slow_log();
  const auto entries = slowlog.Entries();
  if (!entries.empty()) {
    std::fprintf(stderr, "slow-query log (%llu logged, %zu retained):\n",
                 static_cast<unsigned long long>(slowlog.TotalLogged()),
                 entries.size());
    for (const seda::obs::SlowLogEntry& entry : entries) {
      std::fprintf(stderr,
                   "  #%llu %s %.3fms (threshold %llums)%s%s %s\n",
                   static_cast<unsigned long long>(entry.seq),
                   entry.method.c_str(), entry.elapsed_ms,
                   static_cast<unsigned long long>(entry.threshold_ms),
                   entry.sampled ? " [sampled]" : "",
                   entry.deadline_exceeded ? " [deadline]" : "",
                   entry.detail.c_str());
    }
  }
  const auto& stats = server.stats();
  std::fprintf(stderr,
               "served %llu frames (%llu shed, %llu protocol errors) over "
               "%llu connections\n",
               static_cast<unsigned long long>(stats.frames_received.load()),
               static_cast<unsigned long long>(stats.requests_shed.load()),
               static_cast<unsigned long long>(stats.protocol_errors.load()),
               static_cast<unsigned long long>(
                   stats.connections_accepted.load()));
  return 0;
}
