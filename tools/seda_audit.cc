// seda_audit: opens a persisted snapshot image, loads the epoch from it and
// runs the full cross-layer invariant audit (src/audit/) plus the
// image-agreement checks. Prints one line per violation.
//
//   seda_audit <image-file>
//
// Exit codes: 0 = audit clean, 1 = violations found, 2 = image unreadable.

#include <cstdio>
#include <string>

#include "core/snapshot.h"
#include "persist/reader.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <image-file>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];

  auto image = seda::persist::MappedImage::Open(path);
  if (!image.ok()) {
    std::fprintf(stderr, "seda_audit: %s\n", image.status().ToString().c_str());
    return 2;
  }

  auto snapshot = seda::core::Snapshot::Load(*image, nullptr, nullptr);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "seda_audit: %s\n",
                 snapshot.status().ToString().c_str());
    return 2;
  }

  seda::audit::AuditReport report = (*snapshot)->Audit(**image);
  std::fprintf(stdout, "%s: epoch %llu, %zu documents\n%s", path.c_str(),
               static_cast<unsigned long long>((*snapshot)->epoch()),
               (*snapshot)->store().DocumentCount(),
               report.ToString().c_str());
  return report.ok() ? 0 : 1;
}
