#!/usr/bin/env python3
"""Prometheus text-exposition (version 0.0.4) linter for CI scrapes.

Reads an exposition payload from stdin (or a file argument) and exits
non-zero on any format violation, so the CI server-smoke step can gate a
live `GET /metrics` scrape without installing a real Prometheus:

    curl -s http://127.0.0.1:$PORT/metrics | tools/check_exposition.py

Checked invariants (the subset a scraper actually depends on):
  - every non-empty line is a `# HELP`, `# TYPE`, or sample line;
  - each family has at most one HELP and one TYPE, HELP before TYPE,
    both before the family's first sample, TYPE value is a known kind;
  - sample names are valid metric identifiers and belong to the family
    announced by the preceding TYPE (histograms may append `_bucket`,
    `_sum`, `_count`);
  - label blocks parse (quoted values, `\\` `\"` `\n` escapes only)
    and no series (name + label set) appears twice;
  - sample values parse as floats (including +Inf/-Inf/NaN);
  - histograms have cumulative, monotonically non-decreasing buckets
    ending in `le="+Inf"`, and carry `_sum` and `_count` samples with
    `_count` equal to the +Inf bucket.

Stdlib only; no third-party deps.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Lint:
    def __init__(self):
        self.errors = []

    def error(self, lineno, message):
        self.errors.append(f"line {lineno}: {message}")


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def parse_labels(block, lineno, lint):
    """Parse `name="value",...` (no surrounding braces). Returns a dict or
    None on malformed input. Only \\\\, \\" and \\n escapes are legal."""
    labels = {}
    i = 0
    while i < len(block):
        eq = block.find("=", i)
        if eq < 0:
            lint.error(lineno, f"label block missing '=': {block[i:]!r}")
            return None
        name = block[i:eq]
        if not LABEL_NAME.match(name):
            lint.error(lineno, f"bad label name {name!r}")
            return None
        if eq + 1 >= len(block) or block[eq + 1] != '"':
            lint.error(lineno, f"label {name!r} value is not quoted")
            return None
        value = []
        j = eq + 2
        while j < len(block):
            ch = block[j]
            if ch == "\\":
                if j + 1 >= len(block) or block[j + 1] not in ('\\', '"', 'n'):
                    lint.error(lineno, f"bad escape in label {name!r}")
                    return None
                value.append({"\\": "\\", '"': '"', "n": "\n"}[block[j + 1]])
                j += 2
            elif ch == '"':
                break
            else:
                value.append(ch)
                j += 1
        else:
            lint.error(lineno, f"unterminated label value for {name!r}")
            return None
        if name in labels:
            lint.error(lineno, f"duplicate label name {name!r}")
            return None
        labels[name] = "".join(value)
        i = j + 1
        if i < len(block):
            if block[i] != ",":
                lint.error(lineno, f"expected ',' after label {name!r}")
                return None
            i += 1
    return labels


def family_of(sample_name, families):
    """Map a sample name to its announced family, honoring histogram
    suffixes. Longest match wins so `a_bucket` prefers family `a_bucket`
    over histogram family `a`."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base]["type"] == "histogram":
                return base
    return None


def main():
    if len(sys.argv) > 2:
        print("usage: check_exposition.py [exposition-file]", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()

    lint = Lint()
    # family name -> {"help": bool, "type": str|None, "samples": int}
    families = {}
    seen_series = set()
    # histogram family -> list of (labels-without-le, le, value, lineno)
    buckets = {}
    hist_sum = set()
    hist_count = {}
    samples_total = 0

    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Arbitrary comments are legal exposition; only malformed
                # HELP/TYPE-looking lines are errors.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    lint.error(lineno, f"truncated # {parts[1]} line")
                continue
            kind, name = parts[1], parts[2]
            if not METRIC_NAME.match(name):
                lint.error(lineno, f"bad metric name in # {kind}: {name!r}")
                continue
            family = families.setdefault(
                name, {"help": False, "type": None, "samples": 0})
            if kind == "HELP":
                if family["help"]:
                    lint.error(lineno, f"duplicate # HELP for {name}")
                if family["type"] is not None or family["samples"]:
                    lint.error(lineno, f"# HELP for {name} after TYPE/samples")
                family["help"] = True
            else:
                value = parts[3] if len(parts) > 3 else ""
                if value not in TYPES:
                    lint.error(lineno, f"unknown TYPE {value!r} for {name}")
                if family["type"] is not None:
                    lint.error(lineno, f"duplicate # TYPE for {name}")
                if family["samples"]:
                    lint.error(lineno, f"# TYPE for {name} after samples")
                family["type"] = value
            continue

        # Sample line: name[{labels}] value
        match = re.match(r"^([^\s{]+)(\{([^}]*)\})? (\S+)$", line)
        if not match:
            lint.error(lineno, f"unparseable sample line: {line!r}")
            continue
        sample_name, _, label_block, value_text = match.groups()
        if not METRIC_NAME.match(sample_name):
            lint.error(lineno, f"bad sample name {sample_name!r}")
            continue
        labels = parse_labels(label_block, lineno, lint) if label_block else {}
        if labels is None:
            continue
        try:
            value = parse_value(value_text)
        except ValueError:
            lint.error(lineno, f"bad sample value {value_text!r}")
            continue

        series = (sample_name, tuple(sorted(labels.items())))
        if series in seen_series:
            lint.error(lineno, f"duplicate series {sample_name}{labels}")
        seen_series.add(series)
        samples_total += 1

        base = family_of(sample_name, families)
        if base is None:
            lint.error(lineno, f"sample {sample_name!r} has no # TYPE family")
            continue
        families[base]["samples"] += 1

        if families[base]["type"] == "histogram":
            rest = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    lint.error(lineno, f"{sample_name} bucket without le")
                    continue
                try:
                    bound = parse_value(labels["le"])
                except ValueError:
                    lint.error(lineno, f"bad le bound {labels['le']!r}")
                    continue
                buckets.setdefault((base, rest), []).append(
                    (bound, value, lineno))
            elif sample_name.endswith("_sum"):
                hist_sum.add((base, rest))
            elif sample_name.endswith("_count"):
                hist_count[(base, rest)] = (value, lineno)

    for name, family in families.items():
        if family["type"] is None:
            lint.error(0, f"family {name} has samples but no # TYPE")
        if not family["help"]:
            lint.error(0, f"family {name} has no # HELP")
        if family["samples"] == 0:
            lint.error(0, f"family {name} announced but has no samples")

    for (base, rest), entries in buckets.items():
        bounds = [bound for bound, _, _ in entries]
        if bounds != sorted(bounds):
            lint.error(entries[0][2],
                       f"{base} buckets not in ascending le order")
        if bounds[-1] != float("inf"):
            lint.error(entries[-1][2], f"{base} missing le=\"+Inf\" bucket")
        counts = [count for _, count, _ in entries]
        if any(b > a for a, b in zip(counts[1:], counts)):
            lint.error(entries[0][2],
                       f"{base} bucket counts are not cumulative")
        if (base, rest) not in hist_sum:
            lint.error(0, f"histogram {base} missing _sum sample")
        if (base, rest) not in hist_count:
            lint.error(0, f"histogram {base} missing _count sample")
        elif bounds[-1] == float("inf") and \
                hist_count[(base, rest)][0] != counts[-1]:
            lint.error(hist_count[(base, rest)][1],
                       f"{base}_count != +Inf bucket count")

    if samples_total == 0:
        lint.error(0, "exposition contains no samples")

    if lint.errors:
        for err in lint.errors:
            print(f"check_exposition: {err}", file=sys.stderr)
        print(f"check_exposition: FAIL ({len(lint.errors)} error(s), "
              f"{samples_total} sample(s))", file=sys.stderr)
        return 1
    print(f"check_exposition: OK ({len(families)} families, "
          f"{samples_total} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
