#!/usr/bin/env python3
"""Validate a traced search response's span tree for CI.

Reads the JSON response envelope (one object, possibly surrounded by other
stdout lines) from stdin and checks the structural invariants the tracing
layer promises:

  - the envelope carries a "trace" object whose root span is named after
    the request method (default: search);
  - every span has a string name and non-negative integer elapsed_us;
  - only the root span carries a wall-clock anchor (unix_ms > 0);
  - at every node, the children's elapsed_us sum to at most the parent's
    elapsed_us (children time nests within the parent; monotonic clock);
  - each child's [start_us, start_us + elapsed_us] window lies within its
    parent's window;
  - counters, when present, are {name, value} with integer values >= 0.

Usage (CI server smoke):
    echo '{"method":"search","query":"...","k":3,"trace":true}' \\
      | ./explore_cli --connect 127.0.0.1:$PORT \\
      | tools/check_trace.py

Exits non-zero with a diagnostic on any violation. Stdlib only.
"""

import json
import sys


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_span(span, path, is_root):
    if not isinstance(span, dict):
        fail(f"{path}: span is not an object")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{path}: missing or empty span name")
    path = f"{path}/{name}"
    elapsed = span.get("elapsed_us")
    if not isinstance(elapsed, int) or elapsed < 0:
        fail(f"{path}: elapsed_us {elapsed!r} is not a non-negative int")
    start = span.get("start_us", 0)
    if not isinstance(start, int) or start < 0:
        fail(f"{path}: start_us {start!r} is not a non-negative int")
    unix_ms = span.get("unix_ms", 0)
    if is_root:
        if not isinstance(unix_ms, int) or unix_ms <= 0:
            fail(f"{path}: root span missing wall-clock anchor unix_ms")
    elif unix_ms != 0:
        fail(f"{path}: non-root span carries unix_ms {unix_ms!r}")

    for counter in span.get("counters", []):
        cname = counter.get("name") if isinstance(counter, dict) else None
        cvalue = counter.get("value") if isinstance(counter, dict) else None
        if not isinstance(cname, str) or not cname:
            fail(f"{path}: counter without a name")
        if not isinstance(cvalue, int) or cvalue < 0:
            fail(f"{path}: counter {cname} value {cvalue!r} is not a "
                 f"non-negative int")

    spans = 1
    child_total = 0
    for child in span.get("children", []):
        spans += check_span(child, path, is_root=False)
        child_total += child.get("elapsed_us", 0)
        child_start = child.get("start_us", 0)
        child_end = child_start + child.get("elapsed_us", 0)
        if child_start < start or child_end > start + elapsed:
            fail(f"{path}: child {child.get('name')!r} window "
                 f"[{child_start},{child_end}]us escapes parent "
                 f"[{start},{start + elapsed}]us")
    if child_total > elapsed:
        fail(f"{path}: children sum {child_total}us exceeds span "
             f"elapsed {elapsed}us")
    return spans


def main():
    root_name = sys.argv[1] if len(sys.argv) > 1 else "search"
    envelope = None
    for line in sys.stdin:
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            candidate = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(candidate, dict) and "trace" in candidate:
            envelope = candidate
            break
    if envelope is None:
        fail("no JSON line with a \"trace\" field on stdin")

    status = envelope.get("status", {})
    if isinstance(status, dict) and status.get("code") not in (None, "OK"):
        fail(f"response status is {status.get('code')!r}, not OK")

    trace = envelope["trace"]
    if trace.get("name") != root_name:
        fail(f"root span is {trace.get('name')!r}, expected {root_name!r}")
    spans = check_span(trace, "", is_root=True)
    print(f"check_trace: OK ({spans} spans, root {trace['elapsed_us']}us)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
