// Exploration CLI as a thin wire client of api::SedaService — the textual
// equivalent of the paper's GUI (Figures 4/5/7), speaking the service's JSON
// request/response schema end to end, which doubles as a manual smoke tool
// for the wire format.
//
// Modes:
//   build/examples/explore_cli
//       default demo session: scripted queries sent as JSON envelopes
//   build/examples/explore_cli '(*, "Canada") (GDP, *)'
//       each argument is a query; the CLI prints the JSON request it sends
//       and a rendered summary of the JSON response it gets back
//   echo '{"method":"search","query":"(name, *)"}' | build/examples/explore_cli -
//       with "-", reads one JSON request envelope per stdin line and writes
//       one JSON response per line to stdout (the service wire, verbatim)
//   echo '{"method":"statz"}' | build/examples/explore_cli --connect 127.0.0.1:7474
//       same stdin/stdout wire, but each envelope is framed and sent to a
//       running seda_server over TCP (src/net/) instead of an in-process
//       service — the CLI becomes a true network client
//
// Observability flags (local modes):
//   --trace     request "trace": true and pretty-print the span tree of each
//               search (total vs self time per span, engine counters)
//   --statz     after the queries, pretty-print the statz envelope
//   --slowlog   sample every request into the slow-query log (in-process
//               only) and pretty-print it after the queries
//   --columns   print the schema-inferred columnar projections of the
//               loaded snapshot (path, type, support, null fraction)
//
// Every query below flows through SedaService::Handle() — parse, execute,
// encode — exactly the path a network frontend would use.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"
#include "data/generators.h"
#include "net/client.h"

namespace {

/// Pretty-prints the snapshot's schema-inferred columnar projections
/// (src/column/): one line per column with its inferred type, document
/// support and null fraction (documents without a value for the path).
void PrintColumns(const seda::core::Snapshot& snap) {
  const seda::column::ColumnStore& columns = snap.columns();
  std::printf("--- columnar projections: %zu columns over %zu docs ---\n",
              columns.size(), columns.doc_count());
  std::printf("  %-60s %-7s %5s %7s %6s %s\n", "path", "type", "rows",
              "support", "nulls", "dict");
  for (const auto& col : columns.columns()) {
    const double support = columns.doc_count() == 0
                               ? 0.0
                               : static_cast<double>(col.docs_present()) /
                                     static_cast<double>(columns.doc_count());
    std::printf("  %-60s %-7s %5zu %6.1f%% %5.1f%% %zu\n", col.path().c_str(),
                seda::column::ValueTypeName(col.type()), col.rows(),
                100.0 * support, 100.0 * (1.0 - support), col.dict_size());
  }
  std::printf("\n");
}

/// Renders the service's JSON search response like the paper's three panels.
void PrintPanels(const seda::api::SearchResponseDto& response) {
  if (!response.status.ok()) {
    std::printf("error: %s: %s\n\n", response.status.code.c_str(),
                response.status.message.c_str());
    return;
  }
  std::printf("--- top-k (epoch %llu, %.1f ms%s) ---\n",
              static_cast<unsigned long long>(response.stats.epoch),
              response.stats.elapsed_ms,
              response.stats.deadline_exceeded ? ", DEADLINE EXCEEDED" : "");
  size_t shown = 0;
  for (const auto& tuple : response.topk) {
    if (shown++ >= 5) break;
    std::printf("  score=%.6f [", tuple.score);
    for (size_t i = 0; i < tuple.nodes.size(); ++i) {
      const auto& node = tuple.nodes[i];
      std::printf("%sn%u@%s='%s'", i > 0 ? ", " : "", node.doc,
                  node.dewey.c_str(), node.content.c_str());
    }
    std::printf("]\n");
  }
  std::printf("--- contexts (top 5 per term, by collection frequency) ---\n");
  for (const auto& bucket : response.contexts) {
    std::printf("  %s\n", bucket.term.c_str());
    size_t count = 0;
    for (const auto& entry : bucket.entries) {
      if (count++ >= 5) {
        std::printf("    ... (%zu total)\n", bucket.entries.size());
        break;
      }
      std::printf("    %-60s docs=%llu\n", entry.path.c_str(),
                  static_cast<unsigned long long>(entry.doc_count));
    }
  }
  std::printf("--- connections (top 5, by index) ---\n");
  size_t conn_shown = 0;
  for (size_t i = 0; i < response.connections.size(); ++i) {
    if (conn_shown++ >= 5) break;
    const auto& conn = response.connections[i];
    std::printf("  [#%zu %llu<->%llu] %s ", i,
                static_cast<unsigned long long>(conn.term_a),
                static_cast<unsigned long long>(conn.term_b),
                conn.from_path.c_str());
    for (const auto& step : conn.steps) {
      std::printf("%s%s%s ", step.move == "up" ? "^" : step.move == "down" ? "v" : "~",
                  step.label.empty() ? "" : (step.label + ">").c_str(),
                  step.path.c_str());
    }
    std::printf("%s\n", conn.false_positive ? "  (false positive)" : "");
  }
  std::printf("\n");
}

/// Pretty-prints a span tree: per span, total time, self time (total minus
/// direct children) and any engine counters attached to it.
void PrintSpanTree(const seda::obs::SpanNode& node, int depth) {
  std::printf("  %*s%-*s total=%6lluus self=%6lluus", depth * 2, "",
              24 - depth * 2, node.name.c_str(),
              static_cast<unsigned long long>(node.elapsed_us),
              static_cast<unsigned long long>(node.SelfUs()));
  for (const auto& counter : node.counters) {
    std::printf("  %s=%llu", counter.first.c_str(),
                static_cast<unsigned long long>(counter.second));
  }
  std::printf("\n");
  for (const auto& child : node.children) PrintSpanTree(child, depth + 1);
}

void PrintTrace(const seda::obs::SpanNode& trace) {
  if (trace.name.empty()) return;
  std::printf("--- trace ---\n");
  PrintSpanTree(trace, 0);
  std::printf("\n");
}

/// Human-readable statz: the same numbers `/metrics` exposes, as a table.
void PrintStatz(const seda::api::StatzResponse& statz) {
  std::printf("=== statz ===\n");
  std::printf("epoch=%llu sessions=%llu (created=%llu evicted=%llu) "
              "uptime=%.0fms\n",
              static_cast<unsigned long long>(statz.epoch),
              static_cast<unsigned long long>(statz.sessions),
              static_cast<unsigned long long>(statz.sessions_created),
              static_cast<unsigned long long>(statz.sessions_evicted),
              statz.uptime_ms);
  std::printf("%-16s %8s %7s %9s %12s %10s\n", "method", "count", "errors",
              "deadline", "total_ms", "avg_ms");
  for (const auto& method : statz.methods) {
    if (method.count == 0) continue;
    std::printf("%-16s %8llu %7llu %9llu %12.3f %10.3f\n",
                method.method.c_str(),
                static_cast<unsigned long long>(method.count),
                static_cast<unsigned long long>(method.errors),
                static_cast<unsigned long long>(method.deadline_exceeded),
                method.total_ms, method.total_ms / method.count);
  }
  const auto& c = statz.cumulative;
  std::printf("engine: candidates=%llu docs_considered=%llu docs_scored=%llu "
              "tuples_scored=%llu postings_advanced=%llu docs_skipped=%llu\n\n",
              static_cast<unsigned long long>(c.candidates_total),
              static_cast<unsigned long long>(c.docs_considered),
              static_cast<unsigned long long>(c.docs_scored),
              static_cast<unsigned long long>(c.tuples_scored),
              static_cast<unsigned long long>(c.postings_advanced),
              static_cast<unsigned long long>(c.docs_skipped));
}

/// Human-readable slow-query log, newest first, traces inline.
void PrintSlowlog(const seda::api::SlowlogResponse& slowlog) {
  std::printf("=== slow-query log (%llu logged, %zu retained) ===\n",
              static_cast<unsigned long long>(slowlog.total_logged),
              slowlog.entries.size());
  for (const auto& entry : slowlog.entries) {
    std::printf("#%llu %s %.3fms (threshold %llums, status %s)%s%s %s\n",
                static_cast<unsigned long long>(entry.seq),
                entry.method.c_str(), entry.elapsed_ms,
                static_cast<unsigned long long>(entry.threshold_ms),
                entry.status_code.c_str(), entry.sampled ? " [sampled]" : "",
                entry.deadline_exceeded ? " [deadline]" : "",
                entry.detail.c_str());
    if (!entry.trace.name.empty()) PrintSpanTree(entry.trace, 1);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--connect") == 0) {
    // Network mode: stdin JSON envelopes -> SEDA frames over TCP -> stdout
    // JSON responses, one per line. Exactly the "-" wire, remoted.
    const std::string target = argv[2];
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect expects host:port, got '%s'\n",
                   target.c_str());
      return 2;
    }
    seda::net::BlockingClient client;
    const seda::Status connected =
        client.Connect(target.substr(0, colon),
                       static_cast<uint16_t>(
                           std::atoi(target.c_str() + colon + 1)));
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      auto response = client.Call(line);
      if (!response.ok()) {
        std::fprintf(stderr, "call failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", response.value().c_str());
      std::fflush(stdout);
    }
    return 0;
  }

  bool trace = false;
  bool show_statz = false;
  bool show_slowlog = false;
  bool show_columns = false;
  std::vector<std::string> queries;
  bool pipe_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-") pipe_mode = true;
    else if (arg == "--trace") trace = true;
    else if (arg == "--statz") show_statz = true;
    else if (arg == "--slowlog") show_slowlog = true;
    else if (arg == "--columns") show_columns = true;
    else queries.push_back(arg);
  }
  if (!pipe_mode) std::printf("loading synthetic World Factbook...\n");

  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options options;
  options.scale = 0.15;
  seda::data::WorldFactbookGenerator(options).Populate(seda.mutable_store());
  if (!seda.Finalize().ok()) return 1;
  seda::api::ServiceOptions service_options;
  if (show_slowlog) {
    // Sample every request so the demo queries land in the log with their
    // span trees even though none of them is actually slow.
    service_options.trace_sample_every_n = 1;
  }
  seda::api::SedaService service(&seda, service_options);

  if (pipe_mode) {
    // Wire mode: stdin JSON envelopes in, stdout JSON responses out.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::printf("%s\n", service.Handle(line).c_str());
      std::fflush(stdout);
    }
    return 0;
  }

  auto created =
      service.CreateSession(seda::api::CreateSessionRequest{});
  if (!created.status.ok()) {
    std::printf("create_session failed: %s\n", created.status.message.c_str());
    return 1;
  }
  std::printf("loaded %zu docs; session '%s' pinned to epoch %llu\n\n",
              seda.store().DocumentCount(), created.session_id.c_str(),
              static_cast<unsigned long long>(created.epoch));
  if (show_columns) PrintColumns(*seda.snapshot());

  if (queries.empty()) {
    queries = {
        R"((*, "United States"))",
        R"((*, "United States") AND (trade_country, *))",
        R"((trade_country, "China") AND (percentage, *))",
        R"((name, *) AND (GDP_ppp, *))",
    };
  }

  for (const std::string& text : queries) {
    seda::api::SearchRequest request;
    request.session_id = created.session_id;
    request.query = text;
    request.trace = trace;
    // The CLI is a wire client: show the exact JSON it sends, then Handle()
    // it like any other transport would.
    seda::api::Json envelope =
        seda::api::Json::Parse(seda::api::Encode(request)).value();
    envelope.Set("method", seda::api::Json::Str("search"));
    const std::string request_json = envelope.Write();
    std::printf("==========================================================\n");
    std::printf("request> %s\n", request_json.c_str());
    auto decoded =
        seda::api::DecodeSearchResponseDto(service.Handle(request_json));
    if (!decoded.ok()) {
      std::printf("bad wire response: %s\n", decoded.status().ToString().c_str());
      return 1;
    }
    PrintPanels(decoded.value());
    if (trace) PrintTrace(decoded.value().trace);
  }

  if (show_statz) {
    auto statz = seda::api::DecodeStatzResponse(
        service.Handle(R"({"method":"statz"})"));
    if (statz.ok()) PrintStatz(statz.value());
  }
  if (show_slowlog) {
    auto slowlog = seda::api::DecodeSlowlogResponse(
        service.Handle(R"({"method":"slowlog"})"));
    if (slowlog.ok()) PrintSlowlog(slowlog.value());
  }
  return 0;
}
