// Scripted exploration CLI: the textual equivalent of the paper's GUI
// (Figures 4/5/7). Loads the synthetic World Factbook, opens one Session
// (the whole exploration is a single stateful handle pinned to one snapshot
// epoch), executes the queries given on the command line (or a default
// exploration session), and prints the result, context-summary and
// connection-summary panels for each.
//
//   build/examples/explore_cli                         # default session
//   build/examples/explore_cli '(*, "Canada") (GDP, *)'  # your own queries

#include <cstdio>

#include "core/seda.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  std::printf("loading synthetic World Factbook...\n");
  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options options;
  options.scale = 0.15;
  seda::data::WorldFactbookGenerator(options).Populate(seda.mutable_store());
  if (!seda.Finalize().ok()) return 1;

  auto session = seda.NewSession();
  if (!session.ok()) return 1;
  const seda::core::Snapshot& snap = session->snapshot();
  std::printf("loaded %zu docs, %zu distinct paths, %zu dataguides (epoch %llu)\n\n",
              snap.store().DocumentCount(), snap.store().paths().size(),
              snap.dataguides().size(),
              static_cast<unsigned long long>(session->epoch()));

  std::vector<std::string> queries;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  } else {
    queries = {
        R"((*, "United States"))",
        R"((*, "United States") AND (trade_country, *))",
        R"((trade_country, "China") AND (percentage, *))",
        R"((name, *) AND (GDP_ppp, *))",
    };
  }

  for (const std::string& text : queries) {
    std::printf("==========================================================\n");
    std::printf("query> %s\n", text.c_str());
    auto response = session->Search(text);
    if (!response.ok()) {
      std::printf("error: %s\n\n", response.status().ToString().c_str());
      continue;
    }
    std::printf("--- top-k (round %zu, epoch %llu) ---\n", session->rounds(),
                static_cast<unsigned long long>(response->stats.epoch));
    size_t shown = 0;
    for (const auto& tuple : response.value().topk) {
      if (shown++ >= 5) break;
      std::printf("  %s\n", tuple.ToString(snap.store()).c_str());
    }
    std::printf("--- contexts (top 5 per term, by collection frequency) ---\n");
    for (const auto& bucket : response.value().contexts.buckets) {
      std::printf("  %s\n", bucket.term_text.c_str());
      size_t count = 0;
      for (const auto& entry : bucket.entries) {
        if (count++ >= 5) {
          std::printf("    ... (%zu total)\n", bucket.entries.size());
          break;
        }
        std::printf("    %-60s docs=%llu\n", entry.path_text.c_str(),
                    static_cast<unsigned long long>(entry.doc_count));
      }
    }
    std::printf("--- connections (top 5) ---\n");
    size_t conn_shown = 0;
    for (const auto& entry : response.value().connections.entries) {
      if (conn_shown++ >= 5) break;
      std::printf("  [%zu<->%zu] %s%s\n", entry.term_a, entry.term_b,
                  entry.connection.ToString().c_str(),
                  entry.false_positive ? "   (false positive)" : "");
    }
    std::printf("\n");
  }
  return 0;
}
