// Exploration CLI as a thin wire client of api::SedaService — the textual
// equivalent of the paper's GUI (Figures 4/5/7), speaking the service's JSON
// request/response schema end to end, which doubles as a manual smoke tool
// for the wire format.
//
// Modes:
//   build/examples/explore_cli
//       default demo session: scripted queries sent as JSON envelopes
//   build/examples/explore_cli '(*, "Canada") (GDP, *)'
//       each argument is a query; the CLI prints the JSON request it sends
//       and a rendered summary of the JSON response it gets back
//   echo '{"method":"search","query":"(name, *)"}' | build/examples/explore_cli -
//       with "-", reads one JSON request envelope per stdin line and writes
//       one JSON response per line to stdout (the service wire, verbatim)
//   echo '{"method":"statz"}' | build/examples/explore_cli --connect 127.0.0.1:7474
//       same stdin/stdout wire, but each envelope is framed and sent to a
//       running seda_server over TCP (src/net/) instead of an in-process
//       service — the CLI becomes a true network client
//
// Every query below flows through SedaService::Handle() — parse, execute,
// encode — exactly the path a network frontend would use.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"
#include "data/generators.h"
#include "net/client.h"

namespace {

/// Renders the service's JSON search response like the paper's three panels.
void PrintPanels(const seda::api::SearchResponseDto& response) {
  if (!response.status.ok()) {
    std::printf("error: %s: %s\n\n", response.status.code.c_str(),
                response.status.message.c_str());
    return;
  }
  std::printf("--- top-k (epoch %llu, %.1f ms%s) ---\n",
              static_cast<unsigned long long>(response.stats.epoch),
              response.stats.elapsed_ms,
              response.stats.deadline_exceeded ? ", DEADLINE EXCEEDED" : "");
  size_t shown = 0;
  for (const auto& tuple : response.topk) {
    if (shown++ >= 5) break;
    std::printf("  score=%.6f [", tuple.score);
    for (size_t i = 0; i < tuple.nodes.size(); ++i) {
      const auto& node = tuple.nodes[i];
      std::printf("%sn%u@%s='%s'", i > 0 ? ", " : "", node.doc,
                  node.dewey.c_str(), node.content.c_str());
    }
    std::printf("]\n");
  }
  std::printf("--- contexts (top 5 per term, by collection frequency) ---\n");
  for (const auto& bucket : response.contexts) {
    std::printf("  %s\n", bucket.term.c_str());
    size_t count = 0;
    for (const auto& entry : bucket.entries) {
      if (count++ >= 5) {
        std::printf("    ... (%zu total)\n", bucket.entries.size());
        break;
      }
      std::printf("    %-60s docs=%llu\n", entry.path.c_str(),
                  static_cast<unsigned long long>(entry.doc_count));
    }
  }
  std::printf("--- connections (top 5, by index) ---\n");
  size_t conn_shown = 0;
  for (size_t i = 0; i < response.connections.size(); ++i) {
    if (conn_shown++ >= 5) break;
    const auto& conn = response.connections[i];
    std::printf("  [#%zu %llu<->%llu] %s ", i,
                static_cast<unsigned long long>(conn.term_a),
                static_cast<unsigned long long>(conn.term_b),
                conn.from_path.c_str());
    for (const auto& step : conn.steps) {
      std::printf("%s%s%s ", step.move == "up" ? "^" : step.move == "down" ? "v" : "~",
                  step.label.empty() ? "" : (step.label + ">").c_str(),
                  step.path.c_str());
    }
    std::printf("%s\n", conn.false_positive ? "  (false positive)" : "");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--connect") == 0) {
    // Network mode: stdin JSON envelopes -> SEDA frames over TCP -> stdout
    // JSON responses, one per line. Exactly the "-" wire, remoted.
    const std::string target = argv[2];
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect expects host:port, got '%s'\n",
                   target.c_str());
      return 2;
    }
    seda::net::BlockingClient client;
    const seda::Status connected =
        client.Connect(target.substr(0, colon),
                       static_cast<uint16_t>(
                           std::atoi(target.c_str() + colon + 1)));
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      auto response = client.Call(line);
      if (!response.ok()) {
        std::fprintf(stderr, "call failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", response.value().c_str());
      std::fflush(stdout);
    }
    return 0;
  }

  const bool pipe_mode = argc == 2 && std::strcmp(argv[1], "-") == 0;
  if (!pipe_mode) std::printf("loading synthetic World Factbook...\n");

  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options options;
  options.scale = 0.15;
  seda::data::WorldFactbookGenerator(options).Populate(seda.mutable_store());
  if (!seda.Finalize().ok()) return 1;
  seda::api::SedaService service(&seda);

  if (pipe_mode) {
    // Wire mode: stdin JSON envelopes in, stdout JSON responses out.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::printf("%s\n", service.Handle(line).c_str());
      std::fflush(stdout);
    }
    return 0;
  }

  auto created =
      service.CreateSession(seda::api::CreateSessionRequest{});
  if (!created.status.ok()) {
    std::printf("create_session failed: %s\n", created.status.message.c_str());
    return 1;
  }
  std::printf("loaded %zu docs; session '%s' pinned to epoch %llu\n\n",
              seda.store().DocumentCount(), created.session_id.c_str(),
              static_cast<unsigned long long>(created.epoch));

  std::vector<std::string> queries;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  } else {
    queries = {
        R"((*, "United States"))",
        R"((*, "United States") AND (trade_country, *))",
        R"((trade_country, "China") AND (percentage, *))",
        R"((name, *) AND (GDP_ppp, *))",
    };
  }

  for (const std::string& text : queries) {
    seda::api::SearchRequest request;
    request.session_id = created.session_id;
    request.query = text;
    // The CLI is a wire client: show the exact JSON it sends, then Handle()
    // it like any other transport would.
    seda::api::Json envelope =
        seda::api::Json::Parse(seda::api::Encode(request)).value();
    envelope.Set("method", seda::api::Json::Str("search"));
    const std::string request_json = envelope.Write();
    std::printf("==========================================================\n");
    std::printf("request> %s\n", request_json.c_str());
    auto decoded =
        seda::api::DecodeSearchResponseDto(service.Handle(request_json));
    if (!decoded.ok()) {
      std::printf("bad wire response: %s\n", decoded.status().ToString().c_str());
      return 1;
    }
    PrintPanels(decoded.value());
  }
  return 0;
}
