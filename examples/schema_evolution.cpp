// Schema evolution (paper §7) as LIVE evolution, served through the
// api::SedaService facade: the World Factbook renamed GDP to GDP_ppp in
// 2005, so the GDP *fact* is defined by a ContextList with two contexts.
// This showcase ingests the two schema eras as two snapshot epochs: epoch 1
// holds the pre-2005 documents (/country/economy/GDP), then a writer thread
// commits the post-2005 documents (GDP_ppp) WHILE a service session pinned
// to epoch 1 keeps answering requests — requests never block on, and never
// see a torn view of, the running commit. A fresh service session on epoch 2
// then drives one cube spanning both schema variants, entirely over the
// request/response surface.
//
//   build/examples/schema_evolution

#include <cstdio>
#include <string>
#include <thread>

#include "api/service.h"
#include "core/seda.h"

using seda::cube::RelativeKey;

namespace {

constexpr const char* kCountries[] = {"China", "India", "Brazil", "Norway"};

std::string CountryDoc(const std::string& name, int year, const char* gdp_tag,
                       int gdp) {
  return "<country><name>" + name + "</name><year>" + std::to_string(year) +
         "</year><economy><" + gdp_tag + ">" + std::to_string(gdp) + "</" +
         gdp_tag + "></economy></country>";
}

}  // namespace

int main() {
  seda::core::Seda seda;

  // Era 1: 2002-2004, the old schema (/country/economy/GDP).
  for (const char* name : kCountries) {
    for (int year = 2002; year <= 2004; ++year) {
      (void)seda.AddXml(CountryDoc(name, year, "GDP", 1000 + year % 100),
                        name + std::to_string(year));
    }
  }
  if (!seda.Finalize().ok()) return 1;

  const char* name = "/country/name";
  const char* year = "/country/year";
  auto* catalog = seda.mutable_catalog();
  (void)catalog->DefineDimension("country",
                                 {{name, RelativeKey::Parse({name, year})}});
  (void)catalog->DefineDimension("year",
                                 {{year, RelativeKey::Parse({name, year})}});
  // One fact, two contexts: the ContextList is a relation precisely because
  // of schema evolution (paper §7).
  (void)catalog->DefineFact("GDP",
                            {{"/country/economy/GDP",
                              RelativeKey::Parse({name, year})},
                             {"/country/economy/GDP_ppp",
                              RelativeKey::Parse({name, year})}});

  seda::api::SedaService service(&seda);
  seda::api::SearchRequest query;
  query.query = R"((name, "China") AND (GDP | GDP_ppp, *))";

  // Pin a service session to the pre-2005 epoch and remember what it serves.
  auto era1 = service.CreateSession(seda::api::CreateSessionRequest{});
  if (!era1.status.ok()) return 1;
  query.session_id = era1.session_id;
  seda::api::SearchResponseDto baseline = service.Search(query);
  if (!baseline.status.ok()) return 1;
  size_t era1_results = baseline.topk.size();

  // Era 2 lands on another thread: AddXml() + Commit() build epoch 2 off to
  // the side and swap it in atomically.
  std::thread writer([&seda] {
    for (const char* country : kCountries) {
      for (int y = 2005; y <= 2007; ++y) {
        (void)seda.AddXml(CountryDoc(country, y, "GDP_ppp", 2000 + y % 100),
                          country + std::to_string(y));
      }
    }
    (void)seda.Commit();
  });

  // ...while this thread keeps sending requests on the pinned session.
  size_t stable_rounds = 0;
  for (int round = 0; round < 50; ++round) {
    seda::api::SearchResponseDto during = service.Search(query);
    if (!during.status.ok()) return 1;
    if (during.topk.size() == era1_results && during.stats.epoch == 1) {
      ++stable_rounds;
    }
  }
  writer.join();
  std::printf("=== Live evolution (served through SedaService) ===\n");
  std::printf("epoch 1 session: %zu/%d requests during the commit saw the "
              "pinned epoch unchanged (%zu results each)\n",
              stable_rounds, 50, era1_results);

  auto era2 = service.CreateSession(seda::api::CreateSessionRequest{});
  if (!era2.status.ok()) return 1;
  query.session_id = era2.session_id;
  seda::api::SearchResponseDto merged = service.Search(query);
  if (!merged.status.ok()) return 1;
  std::printf("epoch %llu session: %zu results — both schema eras\n\n",
              static_cast<unsigned long long>(merged.stats.epoch),
              merged.topk.size());

  std::printf("=== Context summary for the GDP term (both schema eras) ===\n");
  for (const auto& entry : merged.contexts[1].entries) {
    std::printf("  %-28s docs=%llu\n", entry.path.c_str(),
                static_cast<unsigned long long>(entry.doc_count));
  }
  std::printf("\n");

  // Union the rows by running the heterogeneous contexts one at a time; the
  // service session carries the refined query between stages.
  for (const char* context : {"/country/economy/GDP", "/country/economy/GDP_ppp"}) {
    seda::api::RefineRequest refine;
    refine.session_id = era2.session_id;
    refine.chosen_paths = {{"/country/name"}, {context}};
    if (!service.Refine(refine).status.ok()) return 1;

    seda::api::CompleteRequest complete;
    complete.session_id = era2.session_id;
    complete.term_paths = {"/country/name", context};
    seda::api::CompleteResponseDto result = service.Complete(complete);
    if (!result.status.ok()) {
      std::printf("%s: %s\n", context, result.status.message.c_str());
      continue;
    }
    if (result.tuples.empty()) {
      std::printf("%s: no tuples\n\n", context);
      continue;
    }

    seda::api::CubeRequest cube;
    cube.session_id = era2.session_id;
    cube.group_dims = {"year"};
    cube.agg_fn = "avg";
    cube.measure = "GDP";
    seda::api::CubeResponseDto star = service.Cube(cube);
    if (!star.status.ok()) {
      std::printf("%s: %s\n", context, star.status.message.c_str());
      continue;
    }
    std::printf("--- context %s (%zu result rows) ---\n", context,
                result.tuples.size());
    for (const auto& cell : star.cells) {
      std::printf("  year %-6s avg GDP = %.1f (%llu countries)\n",
                  cell.group.empty() ? "?" : cell.group[0].c_str(), cell.value,
                  static_cast<unsigned long long>(cell.count));
    }
    std::printf("\n");
  }
  std::printf("The same fact name covers both eras; pre-2005 rows come from\n"
              "/country/economy/GDP and later rows from GDP_ppp — ingested\n"
              "as a second epoch while the first kept serving requests.\n");
  return 0;
}
