// Schema evolution (paper §7) as LIVE evolution: the World Factbook renamed
// GDP to GDP_ppp in 2005, so the GDP *fact* is defined by a ContextList with
// two contexts. This showcase ingests the two schema eras as two snapshot
// epochs: epoch 1 holds the pre-2005 documents (/country/economy/GDP), then
// a writer thread commits the post-2005 documents (GDP_ppp) WHILE a session
// pinned to epoch 1 keeps querying — queries never block on, and never see a
// torn view of, the running commit. A fresh session on epoch 2 then builds
// one cube spanning both schema variants.
//
//   build/examples/schema_evolution

#include <cstdio>
#include <string>
#include <thread>

#include "core/seda.h"

using seda::cube::RelativeKey;

namespace {

constexpr const char* kCountries[] = {"China", "India", "Brazil", "Norway"};

std::string CountryDoc(const std::string& name, int year, const char* gdp_tag,
                       int gdp) {
  return "<country><name>" + name + "</name><year>" + std::to_string(year) +
         "</year><economy><" + gdp_tag + ">" + std::to_string(gdp) + "</" +
         gdp_tag + "></economy></country>";
}

}  // namespace

int main() {
  seda::core::Seda seda;

  // Era 1: 2002-2004, the old schema (/country/economy/GDP).
  for (const char* name : kCountries) {
    for (int year = 2002; year <= 2004; ++year) {
      (void)seda.AddXml(CountryDoc(name, year, "GDP", 1000 + year % 100),
                        name + std::to_string(year));
    }
  }
  if (!seda.Finalize().ok()) return 1;

  const char* name = "/country/name";
  const char* year = "/country/year";
  auto* catalog = seda.mutable_catalog();
  (void)catalog->DefineDimension("country",
                                 {{name, RelativeKey::Parse({name, year})}});
  (void)catalog->DefineDimension("year",
                                 {{year, RelativeKey::Parse({name, year})}});
  // One fact, two contexts: the ContextList is a relation precisely because
  // of schema evolution (paper §7).
  (void)catalog->DefineFact("GDP",
                            {{"/country/economy/GDP",
                              RelativeKey::Parse({name, year})},
                             {"/country/economy/GDP_ppp",
                              RelativeKey::Parse({name, year})}});

  const char* query = R"((name, "China") AND (GDP | GDP_ppp, *))";

  // Pin a session to the pre-2005 epoch and remember what it serves.
  auto era1 = seda.NewSession();
  if (!era1.ok()) return 1;
  auto baseline = era1->Search(query);
  if (!baseline.ok()) return 1;
  size_t era1_results = baseline->topk.size();

  // Era 2 lands on another thread: AddXml() + Commit() build epoch 2 off to
  // the side and swap it in atomically.
  std::thread writer([&seda] {
    for (const char* country : kCountries) {
      for (int y = 2005; y <= 2007; ++y) {
        (void)seda.AddXml(CountryDoc(country, y, "GDP_ppp", 2000 + y % 100),
                          country + std::to_string(y));
      }
    }
    (void)seda.Commit();
  });

  // ...while this thread keeps exploring epoch 1, undisturbed.
  size_t stable_rounds = 0;
  for (int round = 0; round < 50; ++round) {
    auto during = era1->Search(query);
    if (!during.ok()) return 1;
    if (during->topk.size() == era1_results && during->stats.epoch == 1) {
      ++stable_rounds;
    }
  }
  writer.join();
  std::printf("=== Live evolution ===\n");
  std::printf("epoch 1 session: %zu/%d searches during the commit saw the "
              "pinned epoch unchanged (%zu results each)\n",
              stable_rounds, 50, era1_results);

  auto era2 = seda.NewSession();
  if (!era2.ok()) return 1;
  auto merged = era2->Search(query);
  if (!merged.ok()) return 1;
  std::printf("epoch %llu session: %zu results — both schema eras\n\n",
              static_cast<unsigned long long>(merged->stats.epoch),
              merged->topk.size());

  std::printf("=== Context summary for the GDP term (both schema eras) ===\n%s\n",
              merged->contexts.ToString().c_str());

  // Union the rows by running the heterogeneous contexts one at a time and
  // merging in OLAP; the session carries the refined query between stages.
  for (const char* context : {"/country/economy/GDP", "/country/economy/GDP_ppp"}) {
    auto refined = era2->RefineContexts({{"/country/name"}, {context}});
    if (!refined.ok()) return 1;
    auto result = era2->CompleteResults({"/country/name", context}, {});
    if (!result.ok()) {
      std::printf("%s: %s\n", context, result.status().ToString().c_str());
      continue;
    }
    if (result.value().tuples.empty()) {
      std::printf("%s: no tuples\n\n", context);
      continue;
    }
    auto schema = era2->BuildCube(result.value());
    if (!schema.ok()) {
      std::printf("%s: %s\n", context, schema.status().ToString().c_str());
      continue;
    }
    std::printf("--- context %s ---\n%s\n", context,
                schema.value().fact_tables[0].ToString().c_str());
    auto cube = era2->ToOlapCube(schema.value());
    if (!cube.ok()) continue;
    auto by_year = cube.value().Aggregate({"year"}, seda::olap::AggFn::kAvg, "GDP");
    if (by_year.ok()) {
      std::printf("%s\n", by_year.value().ToString().c_str());
    }
  }
  std::printf("The same fact name covers both eras; pre-2005 rows come from\n"
              "/country/economy/GDP and later rows from GDP_ppp — ingested\n"
              "as a second epoch while the first kept serving queries.\n");
  return 0;
}
