// Schema evolution (paper §7): the World Factbook renamed GDP to GDP_ppp in
// 2005, so the GDP *fact* is defined by a ContextList with two contexts. This
// example builds a cube over the heterogeneous fact and rolls it up by year,
// demonstrating that one fact spans both schema variants.
//
//   build/examples/schema_evolution

#include <cstdio>

#include "core/seda.h"
#include "data/generators.h"

using seda::cube::RelativeKey;

int main() {
  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options data_options;
  data_options.scale = 0.08;  // ~20 countries x 6 years
  seda::data::WorldFactbookGenerator(data_options).Populate(seda.mutable_store());
  if (!seda.Finalize().ok()) return 1;

  const char* name = "/country/name";
  const char* year = "/country/year";
  auto* catalog = seda.mutable_catalog();
  (void)catalog->DefineDimension("country",
                                 {{name, RelativeKey::Parse({name, year})}});
  (void)catalog->DefineDimension("year",
                                 {{year, RelativeKey::Parse({name, year})}});
  // One fact, two contexts: the ContextList is a relation precisely because
  // of schema evolution (paper §7).
  (void)catalog->DefineFact("GDP",
                            {{"/country/economy/GDP",
                              RelativeKey::Parse({name, year})},
                             {"/country/economy/GDP_ppp",
                              RelativeKey::Parse({name, year})}});

  // Two queries, one per era, bound to the era's context; union the rows by
  // running the heterogeneous contexts one at a time and merging in OLAP.
  auto query = seda.Parse(R"((name, "China") AND (GDP | GDP_ppp, *))");
  if (!query.ok()) return 1;

  std::printf("=== Context summary for the GDP term (both schema eras) ===\n");
  auto response = seda.Search(query.value());
  if (!response.ok()) return 1;
  std::printf("%s\n", response.value().contexts.ToString().c_str());

  for (const char* context : {"/country/economy/GDP", "/country/economy/GDP_ppp"}) {
    auto refined =
        seda.RefineContexts(query.value(), {{"/country/name"}, {context}});
    if (!refined.ok()) return 1;
    auto result = seda.CompleteResults(refined.value(),
                                       {"/country/name", context}, {});
    if (!result.ok()) {
      std::printf("%s: %s\n", context, result.status().ToString().c_str());
      continue;
    }
    if (result.value().tuples.empty()) {
      std::printf("%s: no tuples\n\n", context);
      continue;
    }
    auto schema = seda.BuildCube(result.value());
    if (!schema.ok()) {
      std::printf("%s: %s\n", context, schema.status().ToString().c_str());
      continue;
    }
    std::printf("--- context %s ---\n%s\n", context,
                schema.value().fact_tables[0].ToString().c_str());
    auto cube = seda.ToOlapCube(schema.value());
    if (!cube.ok()) continue;
    auto by_year = cube.value().Aggregate({"year"}, seda::olap::AggFn::kAvg, "GDP");
    if (by_year.ok()) {
      std::printf("%s\n", by_year.value().ToString().c_str());
    }
  }
  std::printf("The same fact name covers both eras; pre-2005 rows come from\n"
              "/country/economy/GDP and later rows from GDP_ppp.\n");
  return 0;
}
