// The paper's worked example (Example 1 + Figure 3), end to end through the
// api::SedaService facade as ONE service session: find the import partners
// of "United States" and their trade percentages, refine by context, inspect
// the candidate connections (by wire index), compute the complete result and
// derive the star schema + OLAP aggregate — every stage a plain-data
// request/response that could just as well have arrived over a network.
//
//   build/examples/trade_partners

#include <cstdio>

#include "api/service.h"
#include "core/seda.h"
#include "data/generators.h"

using seda::cube::RelativeKey;

namespace {
constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";
}  // namespace

int main() {
  seda::core::Seda seda;
  seda::data::PopulateScenario(seda.mutable_store());
  seda::core::SedaOptions options;
  options.value_edges.push_back({kName, kTrade, "trade_partner"});
  if (!seda.Finalize(options).ok()) return 1;

  auto* catalog = seda.mutable_catalog();
  (void)catalog->DefineDimension("country",
                                 {{kName, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension("year",
                                 {{kYear, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension(
      "import-country", {{kTrade, RelativeKey::Parse({kName, kYear, "."})}});
  (void)catalog->DefineFact(
      "import-trade-percentage",
      {{kPct, RelativeKey::Parse({kName, kYear, "../trade_country"})}});

  seda::api::SedaService service(&seda);
  auto session = service.CreateSession(seda::api::CreateSessionRequest{});
  if (!session.status.ok()) return 1;

  // --- Query panel ---------------------------------------------------
  seda::api::SearchRequest search;
  search.session_id = session.session_id;
  search.query =
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))";
  std::printf("Query 1: %s\n\n", search.query.c_str());

  seda::api::SearchResponseDto response = service.Search(search);
  if (!response.status.ok()) return 1;
  std::printf("=== Result panel (top-k, epoch %llu) ===\n",
              static_cast<unsigned long long>(response.stats.epoch));
  for (const auto& tuple : response.topk) {
    std::printf("  score=%.6f [", tuple.score);
    for (size_t i = 0; i < tuple.nodes.size(); ++i) {
      std::printf("%s'%s'", i > 0 ? ", " : "", tuple.nodes[i].content.c_str());
    }
    std::printf("]\n");
  }
  std::printf("\n=== Context summary panel ===\n");
  for (const auto& bucket : response.contexts) {
    std::printf("%s\n", bucket.term.c_str());
    for (const auto& entry : bucket.entries) {
      std::printf("  %-60s docs=%llu\n", entry.path.c_str(),
                  static_cast<unsigned long long>(entry.doc_count));
    }
  }

  // --- User picks the import contexts (the paper's refinement step) --
  seda::api::RefineRequest refine;
  refine.session_id = session.session_id;
  refine.chosen_paths = {{kName}, {kTrade}, {kPct}};
  seda::api::SearchResponseDto refined = service.Refine(refine);
  if (!refined.status.ok()) return 1;
  std::printf("\n=== Connection summary panel (after refinement) ===\n");
  for (size_t i = 0; i < refined.connections.size(); ++i) {
    const auto& conn = refined.connections[i];
    std::printf("  [#%zu] terms %llu<->%llu, %zu steps, %llu instances%s\n", i,
                static_cast<unsigned long long>(conn.term_a),
                static_cast<unsigned long long>(conn.term_b), conn.steps.size(),
                static_cast<unsigned long long>(conn.instance_count),
                conn.false_positive ? "  (false positive)" : "");
  }

  // --- Complete result + data cube panel ------------------------------
  seda::api::CompleteRequest complete;
  complete.session_id = session.session_id;
  complete.term_paths = {kName, kTrade, kPct};
  seda::api::CompleteResponseDto result = service.Complete(complete);
  if (!result.status.ok()) {
    std::printf("complete failed: %s\n", result.status.message.c_str());
    return 1;
  }
  std::printf("\ncomplete result: %zu tuples over %llu twig(s)\n\n",
              result.tuples.size(),
              static_cast<unsigned long long>(result.twig_count));

  seda::api::CubeRequest cube;
  cube.session_id = session.session_id;
  cube.group_dims = {"year", "import-country"};
  cube.agg_fn = "sum";
  cube.measure = "import-trade-percentage";
  seda::api::CubeResponseDto star = service.Cube(cube);
  if (!star.status.ok()) {
    std::printf("cube failed: %s\n", star.status.message.c_str());
    return 1;
  }
  std::printf("=== Data cube panel (star schema, Fig. 3c) ===\n");
  for (const auto& table : star.fact_tables) {
    std::printf("fact table %s (%zu rows): ", table.name.c_str(),
                table.rows.size());
    for (size_t i = 0; i < table.columns.size(); ++i) {
      std::printf("%s%s", i > 0 ? " | " : "", table.columns[i].c_str());
    }
    std::printf("\n");
  }
  for (const auto& table : star.dimension_tables) {
    std::printf("dimension table %s (%zu rows)\n", table.name.c_str(),
                table.rows.size());
  }

  std::printf("\n=== OLAP: import share by year x partner (sum) ===\n");
  for (const auto& cell : star.cells) {
    std::printf("  ");
    for (size_t i = 0; i < cell.group.size(); ++i) {
      std::printf("%s%-14s", i > 0 ? " x " : "", cell.group[i].c_str());
    }
    std::printf(" = %.2f (%llu rows)\n", cell.value,
                static_cast<unsigned long long>(cell.count));
  }
  std::printf("  total = %.2f\n", star.cell_total);
  return 0;
}
