// The paper's worked example (Example 1 + Figure 3), end to end as ONE
// Session: find the import partners of "United States" and their trade
// percentages, refine by context, inspect the two candidate connections,
// compute the complete result and derive the star schema + OLAP cube. The
// session carries the refined query between stages — note how
// CompleteResults() needs no query argument.
//
//   build/examples/trade_partners

#include <cstdio>

#include "core/seda.h"
#include "data/generators.h"

using seda::cube::RelativeKey;

namespace {
constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";
}  // namespace

int main() {
  seda::core::Seda seda;
  seda::data::PopulateScenario(seda.mutable_store());
  seda::core::SedaOptions options;
  options.value_edges.push_back({kName, kTrade, "trade_partner"});
  if (!seda.Finalize(options).ok()) return 1;

  auto* catalog = seda.mutable_catalog();
  (void)catalog->DefineDimension("country",
                                 {{kName, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension("year",
                                 {{kYear, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension(
      "import-country", {{kTrade, RelativeKey::Parse({kName, kYear, "."})}});
  (void)catalog->DefineFact(
      "import-trade-percentage",
      {{kPct, RelativeKey::Parse({kName, kYear, "../trade_country"})}});

  auto session = seda.NewSession();
  if (!session.ok()) return 1;

  // --- Query panel ---------------------------------------------------
  const char* query_text =
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))";
  std::printf("Query 1: %s\n\n", query_text);

  auto response = session->Search(query_text);
  if (!response.ok()) return 1;
  std::printf("=== Result panel (top-k, epoch %llu) ===\n",
              static_cast<unsigned long long>(response->stats.epoch));
  for (const auto& tuple : response.value().topk) {
    std::printf("  %s\n", tuple.ToString(session->snapshot().store()).c_str());
  }
  std::printf("\n=== Context summary panel ===\n%s",
              response.value().contexts.ToString().c_str());

  // --- User picks the import contexts (the paper's refinement step) --
  // RefineContexts applies the picks to the session's current query and
  // re-runs the search in one step.
  auto refined_response = session->RefineContexts({{kName}, {kTrade}, {kPct}});
  if (!refined_response.ok()) return 1;
  std::printf("=== Connection summary panel (after refinement round %zu) ===\n%s",
              session->rounds(),
              refined_response.value().connections.ToString().c_str());

  // --- Complete result + data cube panel ------------------------------
  auto result = session->CompleteResults({kName, kTrade, kPct}, {});
  if (!result.ok()) return 1;
  std::printf("\ncomplete result: %zu tuples\n\n", result.value().tuples.size());

  auto schema = session->BuildCube(result.value());
  if (!schema.ok()) {
    std::printf("cube failed: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Data cube panel (star schema, Fig. 3c) ===\n%s",
              schema.value().ToString().c_str());

  auto cube = session->ToOlapCube(schema.value());
  if (!cube.ok()) return 1;
  auto pivot = cube.value().Pivot("year", "import-country", seda::olap::AggFn::kSum,
                                  "import-trade-percentage");
  if (!pivot.ok()) return 1;
  std::printf("=== OLAP pivot: import share by year x partner ===\n%s",
              pivot.value().c_str());
  return 0;
}
