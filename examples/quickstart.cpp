// Quickstart: load a few XML documents, run a keyword-style SEDA query, and
// inspect the top-k results plus the context summary.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/seda.h"

int main() {
  seda::core::Seda seda;

  // Any XML text can be ingested; documents may have different schemas.
  const char* docs[] = {
      "<book><title>Data on the Web</title><author>Abiteboul</author>"
      "<year>1999</year></book>",
      "<book><title>Foundations of Databases</title><author>Abiteboul</author>"
      "<author>Hull</author><author>Vianu</author><year>1995</year></book>",
      "<article><title>Dataguides</title><venue>VLDB</venue>"
      "<year>1997</year></article>",
  };
  for (int i = 0; i < 3; ++i) {
    auto added = seda.mutable_store()->AddXml(docs[i], "doc" + std::to_string(i));
    if (!added.ok()) {
      std::printf("ingest failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
  }
  if (auto status = seda.Finalize(); !status.ok()) {
    std::printf("finalize failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // A SEDA query is a set of (context, search) terms — Definition 3.
  auto response = seda.Search(R"((*, "Abiteboul") AND (year, *))");
  if (!response.ok()) {
    std::printf("search failed: %s\n", response.status().ToString().c_str());
    return 1;
  }

  std::printf("top-k results:\n");
  for (const auto& tuple : response.value().topk) {
    std::printf("  %s\n", tuple.ToString(seda.store()).c_str());
  }
  std::printf("\ncontext summary (distinct paths per term, §5):\n%s",
              response.value().contexts.ToString().c_str());
  std::printf("\nconnection summary (§6):\n%s",
              response.value().connections.ToString().c_str());
  return 0;
}
