// Quickstart: load a few XML documents, stand up the api::SedaService facade
// (the supported public surface), run a keyword-style SEDA query through a
// service session, and inspect the plain-data response. Then demonstrates the
// incremental path — AddXml() + Commit() after finalization, with the old
// service session still pinned to its epoch — and the persistence path:
// Save() the served epoch to a binary image and Open() it in a second
// instance, serving the same wire schema.
//
//   build/examples/quickstart

#include <cstdio>
#include <string>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"

namespace {

void PrintTopK(const seda::api::SearchResponseDto& response) {
  for (const auto& tuple : response.topk) {
    std::printf("  score=%.6f [", tuple.score);
    for (size_t i = 0; i < tuple.nodes.size(); ++i) {
      const auto& node = tuple.nodes[i];
      std::printf("%sn%u@%s='%s'", i > 0 ? ", " : "", node.doc,
                  node.dewey.c_str(), node.content.c_str());
    }
    std::printf("]\n");
  }
}

}  // namespace

int main() {
  seda::core::Seda seda;

  // Any XML text can be ingested; documents may have different schemas.
  const char* docs[] = {
      "<book><title>Data on the Web</title><author>Abiteboul</author>"
      "<year>1999</year></book>",
      "<book><title>Foundations of Databases</title><author>Abiteboul</author>"
      "<author>Hull</author><author>Vianu</author><year>1995</year></book>",
      "<article><title>Dataguides</title><venue>VLDB</venue>"
      "<year>1997</year></article>",
  };
  for (int i = 0; i < 3; ++i) {
    auto added = seda.AddXml(docs[i], "doc" + std::to_string(i));
    if (!added.ok()) {
      std::printf("ingest failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
  }
  // Finalize() is the first Commit(): it parses the queue and publishes
  // snapshot epoch 1.
  if (auto status = seda.Finalize(); !status.ok()) {
    std::printf("finalize failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // The service facade is the public API: plain-data requests/responses with
  // string session ids, multiplexing any number of concurrent explorations
  // over the shared snapshots.
  seda::api::SedaService service(&seda);
  auto session = service.CreateSession(seda::api::CreateSessionRequest{});
  if (!session.status.ok()) {
    std::printf("create_session failed: %s\n", session.status.message.c_str());
    return 1;
  }
  std::printf("session '%s' pinned to epoch %llu\n\n",
              session.session_id.c_str(),
              static_cast<unsigned long long>(session.epoch));

  // A SEDA query is a set of (context, search) terms — Definition 3. Every
  // request can carry a deadline; overruns come back flagged in stats, not
  // as unbounded latency.
  seda::api::SearchRequest request;
  request.session_id = session.session_id;
  request.query = R"((*, "Abiteboul") AND (year, *))";
  request.deadline_ms = 1000;
  seda::api::SearchResponseDto response = service.Search(request);
  if (!response.status.ok()) {
    std::printf("search failed: %s\n", response.status.message.c_str());
    return 1;
  }

  std::printf("top-k results (%.2f ms):\n", response.stats.elapsed_ms);
  PrintTopK(response);
  std::printf("\ncontext summary (distinct paths per term, §5):\n");
  for (const auto& bucket : response.contexts) {
    std::printf("  %s\n", bucket.term.c_str());
    for (const auto& entry : bucket.entries) {
      std::printf("    %-24s docs=%llu nodes=%llu\n", entry.path.c_str(),
                  static_cast<unsigned long long>(entry.doc_count),
                  static_cast<unsigned long long>(entry.node_count));
    }
  }

  // The same response is one canonical JSON document on the wire — what a
  // network client (or explore_cli's '-' mode) receives byte for byte.
  std::string wire = seda::api::Encode(response);
  std::printf("\nwire form: %zu bytes of canonical JSON, starting with\n  %.72s...\n",
              wire.size(), wire.c_str());

  // Incremental ingestion: the store stays open after finalization. The
  // pinned service session keeps serving epoch 1; a fresh session sees 2.
  seda.AddXml(
      "<book><title>Web Data Management</title><author>Abiteboul</author>"
      "<year>2011</year></book>",
      "doc3");
  auto info = seda.Commit();
  if (!info.ok()) {
    std::printf("commit failed: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncommitted epoch %llu (%zu new docs, incremental=%s)\n",
              static_cast<unsigned long long>(info->epoch), info->docs_added,
              info->incremental ? "yes" : "no");

  auto fresh = service.CreateSession(seda::api::CreateSessionRequest{});
  seda::api::SearchRequest replay = request;
  replay.session_id = fresh.session_id;
  seda::api::SearchResponseDto updated = service.Search(replay);
  seda::api::SearchResponseDto pinned = service.Search(request);
  if (!updated.status.ok() || !pinned.status.ok()) return 1;
  std::printf("epoch %llu serves %zu results (pinned epoch %llu still serves %zu)\n",
              static_cast<unsigned long long>(updated.stats.epoch),
              updated.topk.size(),
              static_cast<unsigned long long>(pinned.stats.epoch),
              pinned.topk.size());

  // Persistence: Save() writes the served epoch as a checksummed binary
  // image; Open() on a fresh instance maps it back — no XML parsing, no
  // re-indexing — and a service over it speaks the identical wire schema.
  const std::string image = "quickstart_snapshot.img";
  if (auto saved = seda.Save(image); !saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  seda::core::Seda reopened;
  if (auto opened = reopened.Open(image); !opened.ok()) {
    std::printf("open failed: %s\n", opened.ToString().c_str());
    return 1;
  }
  seda::api::SedaService reopened_service(&reopened);
  auto reopened_session =
      reopened_service.CreateSession(seda::api::CreateSessionRequest{});
  seda::api::SearchRequest reopened_request = request;
  reopened_request.session_id = reopened_session.session_id;
  seda::api::SearchResponseDto replayed =
      reopened_service.Search(reopened_request);
  if (!replayed.status.ok()) return 1;
  std::printf("\nreopened %s: epoch %llu serves %zu results without re-ingestion\n",
              image.c_str(),
              static_cast<unsigned long long>(replayed.stats.epoch),
              replayed.topk.size());
  std::remove(image.c_str());
  return 0;
}
