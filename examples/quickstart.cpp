// Quickstart: load a few XML documents, open an exploration Session, run a
// keyword-style SEDA query, and inspect the top-k results plus the context
// summary. Then demonstrates the incremental path — AddXml() + Commit() after
// finalization, with the old session still pinned to its epoch — and the
// persistence path: Save() the served epoch to a binary image and Open() it
// in a second instance without re-running any ingestion.
//
//   build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/seda.h"

int main() {
  seda::core::Seda seda;

  // Any XML text can be ingested; documents may have different schemas.
  const char* docs[] = {
      "<book><title>Data on the Web</title><author>Abiteboul</author>"
      "<year>1999</year></book>",
      "<book><title>Foundations of Databases</title><author>Abiteboul</author>"
      "<author>Hull</author><author>Vianu</author><year>1995</year></book>",
      "<article><title>Dataguides</title><venue>VLDB</venue>"
      "<year>1997</year></article>",
  };
  for (int i = 0; i < 3; ++i) {
    auto added = seda.AddXml(docs[i], "doc" + std::to_string(i));
    if (!added.ok()) {
      std::printf("ingest failed: %s\n", added.status().ToString().c_str());
      return 1;
    }
  }
  // Finalize() is the first Commit(): it parses the queue and publishes
  // snapshot epoch 1.
  if (auto status = seda.Finalize(); !status.ok()) {
    std::printf("finalize failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // A Session pins one snapshot epoch and carries the Fig. 6 loop as state.
  auto session = seda.NewSession();
  if (!session.ok()) return 1;
  std::printf("session pinned to epoch %llu\n\n",
              static_cast<unsigned long long>(session->epoch()));

  // A SEDA query is a set of (context, search) terms — Definition 3.
  auto response = session->Search(R"((*, "Abiteboul") AND (year, *))");
  if (!response.ok()) {
    std::printf("search failed: %s\n", response.status().ToString().c_str());
    return 1;
  }

  std::printf("top-k results:\n");
  for (const auto& tuple : response.value().topk) {
    std::printf("  %s\n", tuple.ToString(session->snapshot().store()).c_str());
  }
  std::printf("\ncontext summary (distinct paths per term, §5):\n%s",
              response.value().contexts.ToString().c_str());
  std::printf("\nconnection summary (§6):\n%s",
              response.value().connections.ToString().c_str());

  // Incremental ingestion: the store stays open after finalization. The
  // pinned session keeps serving epoch 1; a fresh session sees epoch 2.
  seda.AddXml(
      "<book><title>Web Data Management</title><author>Abiteboul</author>"
      "<year>2011</year></book>",
      "doc3");
  auto info = seda.Commit();
  if (!info.ok()) {
    std::printf("commit failed: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncommitted epoch %llu (%zu new docs, incremental=%s)\n",
              static_cast<unsigned long long>(info->epoch), info->docs_added,
              info->incremental ? "yes" : "no");

  auto fresh = seda.NewSession();
  if (!fresh.ok()) return 1;
  auto updated = fresh->Search(R"((*, "Abiteboul") AND (year, *))");
  if (!updated.ok()) return 1;
  std::printf("epoch %llu serves %zu results (pinned epoch %llu still serves %zu)\n",
              static_cast<unsigned long long>(updated->stats.epoch),
              updated->topk.size(),
              static_cast<unsigned long long>(session->epoch()),
              session->last_response()->topk.size());

  // Persistence: Save() writes the served epoch as a checksummed binary
  // image; Open() on a fresh instance maps it back — no XML parsing, no
  // re-indexing — and serves byte-identical answers. A reopened instance is
  // a full writer too: AddXml() + Commit() continues from the loaded epoch.
  const std::string image = "quickstart_snapshot.img";
  if (auto saved = seda.Save(image); !saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  seda::core::Seda reopened;
  if (auto opened = reopened.Open(image); !opened.ok()) {
    std::printf("open failed: %s\n", opened.ToString().c_str());
    return 1;
  }
  auto replay = reopened.Search(R"((*, "Abiteboul") AND (year, *))");
  if (!replay.ok()) return 1;
  std::printf("\nreopened %s: epoch %llu serves %zu results without re-ingestion\n",
              image.c_str(),
              static_cast<unsigned long long>(replay->stats.epoch),
              replay->topk.size());
  std::remove(image.c_str());
  return 0;
}
