#include <gtest/gtest.h>

#include <cmath>

#include "olap/olap.h"

namespace seda::olap {
namespace {

cube::Table SampleFactTable() {
  cube::Table t;
  t.name = "fact_pct";
  t.columns = {"country", "year", "partner", "pct"};
  t.key_columns = {0, 1, 2};
  t.rows = {
      {"United States", "2004", "China", "12.5%"},
      {"United States", "2004", "Mexico", "10.7%"},
      {"United States", "2005", "China", "13.8%"},
      {"United States", "2005", "Mexico", "10.3%"},
      {"United States", "2006", "China", "15%"},
      {"United States", "2006", "Canada", "16.9%"},
  };
  return t;
}

TEST(ParseMeasureTest, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(*ParseMeasure("15"), 15.0);
  EXPECT_DOUBLE_EQ(*ParseMeasure("16.9%"), 16.9);
  EXPECT_DOUBLE_EQ(*ParseMeasure("12.31T"), 12.31e12);
  EXPECT_DOUBLE_EQ(*ParseMeasure("924.4B"), 924.4e9);
  EXPECT_DOUBLE_EQ(*ParseMeasure("3M"), 3e6);
  EXPECT_DOUBLE_EQ(*ParseMeasure(" 7 "), 7.0);
  EXPECT_FALSE(ParseMeasure("").has_value());
  EXPECT_FALSE(ParseMeasure("abc").has_value());
  EXPECT_FALSE(ParseMeasure("12x").has_value());
}

TEST(CubeTest, FromFactTableSplitsKeysAndMeasures) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube.value().dimensions(),
            (std::vector<std::string>{"country", "year", "partner"}));
  EXPECT_EQ(cube.value().measures(), (std::vector<std::string>{"pct"}));
  EXPECT_EQ(cube.value().RowCount(), 6u);
}

TEST(CubeTest, RejectsDegenerateTables) {
  cube::Table empty;
  EXPECT_FALSE(Cube::FromFactTable(empty).ok());
  cube::Table no_measure;
  no_measure.columns = {"a"};
  no_measure.key_columns = {0};
  EXPECT_FALSE(Cube::FromFactTable(no_measure).ok());
}

TEST(CubeTest, AggregateSumByYear) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  auto cuboid = cube.value().Aggregate({"year"}, AggFn::kSum, "pct");
  ASSERT_TRUE(cuboid.ok());
  ASSERT_EQ(cuboid.value().cells.size(), 3u);
  EXPECT_NEAR(cuboid.value().cells[0].value, 23.2, 1e-9);  // 2004
  EXPECT_NEAR(cuboid.value().cells[1].value, 24.1, 1e-9);  // 2005
  EXPECT_NEAR(cuboid.value().cells[2].value, 31.9, 1e-9);  // 2006
}

TEST(CubeTest, AggregateFunctions) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  auto count = cube.value().Aggregate({"partner"}, AggFn::kCount, "pct");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count.value().cells.size(), 3u);  // Canada, China, Mexico
  auto max = cube.value().Aggregate({}, AggFn::kMax, "pct");
  ASSERT_TRUE(max.ok());
  EXPECT_DOUBLE_EQ(max.value().cells[0].value, 16.9);
  auto min = cube.value().Aggregate({}, AggFn::kMin, "pct");
  EXPECT_DOUBLE_EQ(min.value().cells[0].value, 10.3);
  auto avg = cube.value().Aggregate({"partner"}, AggFn::kAvg, "pct");
  ASSERT_TRUE(avg.ok());
  for (const Cell& cell : avg.value().cells) {
    if (cell.group[0] == "China") {
      EXPECT_NEAR(cell.value, 13.766666, 1e-5);
    }
  }
}

TEST(CubeTest, UnknownNamesRejected) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  EXPECT_FALSE(cube.value().Aggregate({"bogus"}, AggFn::kSum, "pct").ok());
  EXPECT_FALSE(cube.value().Aggregate({}, AggFn::kSum, "bogus").ok());
}

// Rollup invariant: each level's total equals the grand total (SUM is
// distributive over the hierarchy).
TEST(CubeTest, RollupTotalsInvariant) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  auto rollup = cube.value().Rollup({"year", "partner"}, AggFn::kSum, "pct");
  ASSERT_TRUE(rollup.ok());
  ASSERT_EQ(rollup.value().size(), 3u);  // (year,partner), (year), ()
  double grand = rollup.value().back().Total();
  for (const Cuboid& cuboid : rollup.value()) {
    EXPECT_NEAR(cuboid.Total(), grand, 1e-9);
  }
  EXPECT_NEAR(grand, 79.2, 1e-9);
}

TEST(CubeTest, SliceAndDice) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  auto sliced = cube.value().Slice("year", "2006");
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced.value().RowCount(), 2u);
  auto diced = cube.value().Dice("partner", {"China", "Mexico"});
  ASSERT_TRUE(diced.ok());
  EXPECT_EQ(diced.value().RowCount(), 5u);  // China x3 + Mexico x2
  EXPECT_FALSE(cube.value().Slice("bogus", "x").ok());
}

TEST(CubeTest, SliceThenAggregateConsistent) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  auto sliced = cube.value().Slice("partner", "China");
  ASSERT_TRUE(sliced.ok());
  auto total = sliced.value().Aggregate({}, AggFn::kSum, "pct");
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(total.value().cells[0].value, 12.5 + 13.8 + 15.0, 1e-9);
}

TEST(CubeTest, MissingMeasuresSkipped) {
  cube::Table t = SampleFactTable();
  t.rows.push_back({"United States", "2007", "China", ""});  // no value
  auto cube = Cube::FromFactTable(t);
  ASSERT_TRUE(cube.ok());
  auto count = cube.value().Aggregate({}, AggFn::kCount, "pct");
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count.value().cells[0].value, 6.0);
}

TEST(CubeTest, PivotRendersGrid) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  ASSERT_TRUE(cube.ok());
  auto pivot = cube.value().Pivot("year", "partner", AggFn::kSum, "pct");
  ASSERT_TRUE(pivot.ok());
  EXPECT_NE(pivot.value().find("2006"), std::string::npos);
  EXPECT_NE(pivot.value().find("China"), std::string::npos);
  EXPECT_NE(pivot.value().find("15.00"), std::string::npos);
}

TEST(CuboidTest, ToStringMentionsEverything) {
  auto cube = Cube::FromFactTable(SampleFactTable());
  auto cuboid = cube.value().Aggregate({"year"}, AggFn::kSum, "pct");
  std::string text = cuboid.value().ToString();
  EXPECT_NE(text.find("SUM(pct)"), std::string::npos);
  EXPECT_NE(text.find("2004"), std::string::npos);
}

}  // namespace
}  // namespace seda::olap
