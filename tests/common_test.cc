#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace seda {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x"), Status::InvalidArgument("x"));
  EXPECT_FALSE(Status::InvalidArgument("x") == Status::InvalidArgument("y"));
  EXPECT_FALSE(Status::InvalidArgument("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitSkipEmptyDropsEmptyPieces) {
  EXPECT_EQ(SplitSkipEmpty("/a/b//c/", '/'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitSkipEmpty("", '/').empty());
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "/"), "x/y/z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringsTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("United States"), "united states");
  EXPECT_EQ(ToLower("ABC123xyz"), "abc123xyz");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\n x \r"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/country/economy", "/country"));
  EXPECT_FALSE(StartsWith("/cou", "/country"));
  EXPECT_TRUE(EndsWith("trade_country", "country"));
  EXPECT_FALSE(EndsWith("ab", "abc"));
}

TEST(WildcardTest, BasicPatterns) {
  EXPECT_TRUE(WildcardMatch("*", "anything"));
  EXPECT_TRUE(WildcardMatch("trade_*", "trade_country"));
  EXPECT_TRUE(WildcardMatch("*country", "trade_country"));
  EXPECT_TRUE(WildcardMatch("t?ade_country", "trade_country"));
  EXPECT_FALSE(WildcardMatch("trade_*", "percentage"));
  EXPECT_TRUE(WildcardMatch("", ""));
  EXPECT_FALSE(WildcardMatch("", "x"));
}

TEST(WildcardTest, BacktrackingStars) {
  EXPECT_TRUE(WildcardMatch("*a*b*", "xaxxbx"));
  EXPECT_FALSE(WildcardMatch("*a*b*", "xbxa"));
  EXPECT_TRUE(WildcardMatch("a*a*a", "aaaa"));
}

TEST(HashTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, RangeStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformZeroBoundReturnsZero) {
  // Uniform(0) used to be a modulo-by-zero (UB); it now returns the only
  // sensible value for an empty range.
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(RngTest, RangeHandlesExtremeBounds) {
  // hi - lo + 1 used to overflow int64 for spans wider than 2^63. The span is
  // now computed in uint64_t, and the full-width range draws raw 64-bit
  // values (so both halves must be reachable).
  Rng rng(13);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 256; ++i) {
    int64_t v = rng.Range(INT64_MIN, INT64_MAX);
    saw_negative = saw_negative || v < 0;
    saw_positive = saw_positive || v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);

  for (int i = 0; i < 256; ++i) {
    int64_t v = rng.Range(INT64_MIN, INT64_MIN + 1);
    EXPECT_TRUE(v == INT64_MIN || v == INT64_MIN + 1);
    EXPECT_EQ(rng.Range(INT64_MAX, INT64_MAX), INT64_MAX);
    EXPECT_EQ(rng.Range(INT64_MIN, INT64_MIN), INT64_MIN);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, WeightedRespectsZeroWeight) {
  Rng rng(5);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Weighted(weights), 1u);
  }
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

// Property sweep: WildcardMatch("*", s) is always true; pattern==text always
// matches when no metacharacters are present.
class WildcardPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WildcardPropertyTest, StarMatchesEverything) {
  EXPECT_TRUE(WildcardMatch("*", GetParam()));
}

TEST_P(WildcardPropertyTest, ExactSelfMatch) {
  EXPECT_TRUE(WildcardMatch(GetParam(), GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Samples, WildcardPropertyTest,
                         ::testing::Values("", "a", "trade_country", "a_b_c",
                                           "percentage", "x1y2z3"));

}  // namespace
}  // namespace seda
