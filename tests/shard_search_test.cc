// Shard-by-DocId scatter-gather exactness: the serving mode behind
// `seda_server --shards N` must produce BYTE-identical rankings to the
// unsharded scan. The exactness argument (see topk::TopKOptions::
// shard_count): sharding filters only the TA enumeration order, while
// candidate grouping and cross-document borrowing run over the full
// candidate set in every shard — so the per-shard enumerations partition
// the unsharded one and merging local top-k lists under the total tuple
// order reproduces it exactly, as long as no per-shard budget
// (max_tuples_per_query, deadline_ms) fires.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"
#include "data/generators.h"
#include "graph/data_graph.h"
#include "query/query.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

namespace seda {
namespace {

struct Corpus {
  std::string name;
  std::unique_ptr<core::Seda> seda;
};

std::vector<Corpus> MakeCorpora() {
  std::vector<Corpus> corpora;
  auto add = [&corpora](std::string name, auto populate) {
    Corpus c;
    c.name = std::move(name);
    c.seda = std::make_unique<core::Seda>();
    populate(c.seda->mutable_store());
    ASSERT_TRUE(c.seda->Finalize().ok()) << c.name;
    corpora.push_back(std::move(c));
  };
  add("factbook", [](store::DocumentStore* store) {
    data::WorldFactbookGenerator::Options options;
    options.scale = 0.05;
    data::WorldFactbookGenerator(options).Populate(store);
  });
  add("mondial", [](store::DocumentStore* store) {
    data::MondialGenerator::Options options;
    options.scale = 0.05;
    data::MondialGenerator(options).Populate(store);
  });
  add("googlebase", [](store::DocumentStore* store) {
    data::GoogleBaseGenerator::Options options;
    options.scale = 0.05;
    data::GoogleBaseGenerator(options).Populate(store);
  });
  add("recipeml", [](store::DocumentStore* store) {
    data::RecipeMLGenerator::Options options;
    options.scale = 0.05;
    data::RecipeMLGenerator(options).Populate(store);
  });
  add("scenario",
      [](store::DocumentStore* store) { data::PopulateScenario(store); });
  return corpora;
}

const char* kQueries[] = {
    R"((*, "United States") AND (trade_country, *))",
    R"((name, china OR canada) AND (percentage, *))",
    "(name, *) AND (*, china)",
    R"((*, pacific))",
    "(title, *) AND (price, *)",
    "(ingredient, *)",
};

constexpr size_t kShardCounts[] = {2, 3, 8};

/// The ranking sections of a ScoredTuple list, hex-exact. Stats are
/// deliberately excluded: per-shard TA scans terminate at different points,
/// so counters sum differently — the exactness claim is about the ranking.
std::string RankingFp(const std::vector<topk::ScoredTuple>& topk) {
  std::string out;
  char buf[128];
  for (const topk::ScoredTuple& tuple : topk) {
    for (const text::NodeMatch& match : tuple.nodes) {
      std::snprintf(buf, sizeof(buf), "n%u@%s ", match.node.doc,
                    match.node.dewey.ToString().c_str());
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "c=%a n=%llu s=%a\n", tuple.content_score,
                  static_cast<unsigned long long>(tuple.connection_size),
                  tuple.score);
    out += buf;
  }
  return out;
}

TEST(ShardSearchTest, SnapshotShardingIsByteExactAcrossCorpora) {
  for (Corpus& corpus : MakeCorpora()) {
    std::shared_ptr<const core::Snapshot> snapshot = corpus.seda->snapshot();
    ASSERT_NE(snapshot, nullptr);
    for (const char* text : kQueries) {
      auto query = query::ParseQuery(text);
      ASSERT_TRUE(query.ok()) << text;
      topk::TopKOptions unsharded = snapshot->options().topk;
      unsharded.k = 10;
      auto baseline = snapshot->Search(query.value(), unsharded);
      ASSERT_TRUE(baseline.ok()) << corpus.name << ": " << text;
      const std::string baseline_fp = RankingFp(baseline.value().topk);
      for (size_t shards : kShardCounts) {
        SCOPED_TRACE(corpus.name + " x" + std::to_string(shards) + ": " + text);
        topk::TopKOptions sharded = unsharded;
        sharded.shard_count = shards;
        auto result = snapshot->Search(query.value(), sharded);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(RankingFp(result.value().topk), baseline_fp);
        // Summaries are computed from the (unsharded) candidate set and
        // must be oblivious to the serving mode.
        EXPECT_EQ(result.value().contexts.buckets.size(),
                  baseline.value().contexts.buckets.size());
        EXPECT_EQ(result.value().connections.entries.size(),
                  baseline.value().connections.entries.size());
      }
    }
  }
}

/// End-to-end through the service facade: the exact bytes a network client
/// receives (minus volatile timing fields) are independent of topk_shards.
TEST(ShardSearchTest, ServiceShardingKeepsWireBytesIdentical) {
  core::Seda seda;
  data::WorldFactbookGenerator::Options options;
  options.scale = 0.08;
  data::WorldFactbookGenerator(options).Populate(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());

  auto canonical_bytes = [](api::SearchResponseDto response) {
    response.stats = api::StatsDto{};  // timing + shard-dependent counters
    return Encode(response);
  };

  api::SedaService unsharded(&seda);
  for (size_t shards : kShardCounts) {
    api::ServiceOptions service_options;
    service_options.topk_shards = shards;
    api::SedaService sharded(&seda, service_options);
    for (const char* text : kQueries) {
      SCOPED_TRACE("x" + std::to_string(shards) + ": " + text);
      api::SearchRequest request;
      request.query = text;
      request.k = 7;
      EXPECT_EQ(canonical_bytes(sharded.Search(request)),
                canonical_bytes(unsharded.Search(request)));
    }
  }
}

/// An invalid shard assignment must fail loudly, not serve a wrong subset.
/// (Snapshot::Search assigns shard_index itself, so this exercises the
/// engine-level validation directly.)
TEST(ShardSearchTest, ShardIndexOutOfRangeIsRejected) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  graph::DataGraph graph(&store);
  graph.ResolveIdRefs();
  text::InvertedIndex index(&store);
  topk::TopKSearcher searcher(&index, &graph);
  auto query = query::ParseQuery("(name, *)");
  ASSERT_TRUE(query.ok());
  topk::TopKOptions bad;
  bad.shard_count = 4;
  bad.shard_index = 4;
  topk::SearchStats stats;
  auto result = searcher.Search(query.value(), bad, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace seda
