#include <gtest/gtest.h>

#include "cube/catalog.h"
#include "cube/cube_builder.h"
#include "cube/relative_key.h"
#include "data/generators.h"
#include "twig/twig.h"

namespace seda::cube {
namespace {

constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";

class CubeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    index_ = std::make_unique<text::InvertedIndex>(&store_);
    generator_ = std::make_unique<twig::CompleteResultGenerator>(index_.get(),
                                                                 graph_.get());
    us_expr_ = text::ParseTextExpr("\"united states\"").value();
    // The paper's Figure 3(b) catalog, adapted to leaf-valued contexts.
    ASSERT_TRUE(catalog_
                    .DefineDimension("country",
                                     {{kName, RelativeKey::Parse({kName, kYear})}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .DefineDimension("year",
                                     {{kYear, RelativeKey::Parse({kName, kYear})}})
                    .ok());
    ASSERT_TRUE(
        catalog_
            .DefineDimension("import-country",
                             {{kTrade, RelativeKey::Parse({kName, kYear, "."})}})
            .ok());
    ASSERT_TRUE(catalog_
                    .DefineFact("import-trade-percentage",
                                {{kPct, RelativeKey::Parse(
                                            {kName, kYear, "../trade_country"})}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .DefineFact("GDP", {{"/country/economy/GDP",
                                         RelativeKey::Parse({kName, kYear})},
                                        {"/country/economy/GDP_ppp",
                                         RelativeKey::Parse({kName, kYear})}})
                    .ok());
  }

  twig::CompleteResult Query1Result() {
    std::vector<twig::TermBinding> terms{
        {kName, us_expr_.get()}, {kTrade, nullptr}, {kPct, nullptr}};
    auto result = generator_->Execute(terms, {});
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }

  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<twig::CompleteResultGenerator> generator_;
  std::unique_ptr<text::TextExpr> us_expr_;
  Catalog catalog_;
};

TEST(KeyPathTest, ClassifiesAbsoluteVsRelative) {
  EXPECT_TRUE(KeyPath::Of("/country/year").absolute);
  EXPECT_FALSE(KeyPath::Of("../trade_country").absolute);
  EXPECT_FALSE(KeyPath::Of(".").absolute);
}

TEST(RelativeKeyTest, ResolveTargetPaths) {
  RelativeKey key = RelativeKey::Parse({kName, kYear, "../trade_country", "."});
  auto targets = key.ResolveTargetPaths(kPct);
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0], kName);
  EXPECT_EQ(targets[1], kYear);
  EXPECT_EQ(targets[2], kTrade);
  EXPECT_EQ(targets[3], kPct);
}

TEST(RelativeKeyTest, SameTargets) {
  RelativeKey a = RelativeKey::Parse({kName, "../trade_country"});
  RelativeKey b = RelativeKey::Parse({kName, "./trade_country"});
  EXPECT_TRUE(a.SameTargets(kPct, b, "/country/economy/import_partners/item"));
  EXPECT_FALSE(a.SameTargets(kPct, b, kPct));
}

TEST_F(CubeFixture, RelativeKeyEvaluation) {
  // percentage node in us-2002, first item.
  store::NodeId pct{0, xml::DeweyId::Parse("1.3.2.1.2")};
  RelativeKey key = RelativeKey::Parse({kName, kYear, "../trade_country"});
  auto values = key.Evaluate(store_, pct);
  ASSERT_TRUE(values.ok()) << values.status().ToString();
  EXPECT_EQ(values.value(),
            (std::vector<std::string>{"United States", "2002", "Canada"}));
}

TEST_F(CubeFixture, RelativeKeyErrors) {
  store::NodeId pct{0, xml::DeweyId::Parse("1.3.2.1.2")};
  EXPECT_FALSE(RelativeKey::Parse({"/country/missing"}).Evaluate(store_, pct).ok());
  EXPECT_FALSE(RelativeKey::Parse({"../missing_sibling"}).Evaluate(store_, pct).ok());
  // "../.." walks to economy (fine), one more ".." to country, three more
  // past the root must fail.
  EXPECT_FALSE(
      RelativeKey::Parse({"../../../../../.."}).Evaluate(store_, pct).ok());
}

TEST_F(CubeFixture, VerifyKeyUniqueness) {
  // (name, year, trade_country) uniquely identifies each percentage.
  EXPECT_TRUE(VerifyKeyUniqueness(
                  store_, kPct,
                  RelativeKey::Parse({kName, kYear, "../trade_country"}))
                  .ok());
  // (name, year) alone does NOT (two percentages per document).
  EXPECT_FALSE(
      VerifyKeyUniqueness(store_, kPct, RelativeKey::Parse({kName, kYear})).ok());
}

TEST_F(CubeFixture, CatalogMatching) {
  auto facts = catalog_.MatchFacts({kPct});
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0]->name, "import-trade-percentage");
  // GDP matches both heterogeneous contexts together (schema evolution).
  auto gdp = catalog_.MatchFacts(
      {"/country/economy/GDP", "/country/economy/GDP_ppp"});
  ASSERT_EQ(gdp.size(), 1u);
  EXPECT_EQ(gdp[0]->name, "GDP");
  // Partial: a path set straddling a known context and an unknown one.
  auto partial = catalog_.PartialFacts({kPct, "/something/else"});
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_TRUE(catalog_.MatchFacts({kPct, "/something/else"}).empty());
}

TEST_F(CubeFixture, CatalogRejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(catalog_.DefineFact("GDP", {{kPct, RelativeKey()}}).ok());
  EXPECT_FALSE(catalog_.DefineDimension("country", {{kName, RelativeKey()}}).ok());
  EXPECT_FALSE(catalog_.DefineFact("empty", {}).ok());
  EXPECT_FALSE(catalog_.DefineFact("", {{kPct, RelativeKey()}}).ok());
}

TEST_F(CubeFixture, DefineCheckedVerifiesKeys) {
  Catalog fresh;
  EXPECT_TRUE(fresh
                  .DefineFactChecked(
                      "pct", {{kPct, RelativeKey::Parse({kName, kYear,
                                                         "../trade_country"})}},
                      store_)
                  .ok());
  EXPECT_FALSE(
      fresh.DefineFactChecked("bad", {{kPct, RelativeKey::Parse({kName, kYear})}},
                              store_)
          .ok());
}

TEST_F(CubeFixture, BuildReproducesFigure3FactTable) {
  CubeBuilder builder(&store_, &catalog_);
  auto schema = builder.Build(Query1Result());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema.value().fact_tables.size(), 1u);
  const Table& fact = schema.value().fact_tables[0];
  // Columns: country, year (auto-added via the key), import-country, measure.
  ASSERT_EQ(fact.columns.size(), 4u);
  EXPECT_EQ(fact.columns[0], "country");
  EXPECT_EQ(fact.columns[1], "year");
  EXPECT_EQ(fact.columns[2], "import-country");
  EXPECT_EQ(fact.columns[3], "import-trade-percentage");
  EXPECT_EQ(fact.rows.size(), 8u);
  // Figure 3's 2006 rows.
  bool china_2006 = false, canada_2006 = false;
  for (const auto& row : fact.rows) {
    if (row[1] == "2006" && row[2] == "China") {
      china_2006 = true;
      EXPECT_EQ(row[3], "15%");
    }
    if (row[1] == "2006" && row[2] == "Canada") {
      canada_2006 = true;
      EXPECT_EQ(row[3], "16.9%");
    }
    EXPECT_EQ(row[0], "United States");
  }
  EXPECT_TRUE(china_2006);
  EXPECT_TRUE(canada_2006);
  // Year dimension joined the output automatically.
  bool has_year_dim = false;
  for (const Table& dim : schema.value().dimension_tables) {
    if (dim.name == "dim_year") has_year_dim = true;
  }
  EXPECT_TRUE(has_year_dim);
}

TEST_F(CubeFixture, DimensionTablesHoldDistinctValues) {
  CubeBuilder builder(&store_, &catalog_);
  auto schema = builder.Build(Query1Result());
  ASSERT_TRUE(schema.ok());
  for (const Table& dim : schema.value().dimension_tables) {
    std::set<std::string> values;
    for (const auto& row : dim.rows) {
      EXPECT_TRUE(values.insert(row[0]).second) << dim.name << " has duplicates";
    }
    if (dim.name == "dim_import-country") {
      EXPECT_EQ(values, (std::set<std::string>{"Canada", "China", "Mexico"}));
    }
  }
}

TEST_F(CubeFixture, UnmatchedColumnIsIgnoredWithWarning) {
  Catalog minimal;
  ASSERT_TRUE(minimal
                  .DefineFact("import-trade-percentage",
                              {{kPct, RelativeKey::Parse(
                                          {kName, kYear, "../trade_country"})}})
                  .ok());
  CubeBuilder builder(&store_, &minimal);
  auto schema = builder.Build(Query1Result());
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(schema.value().warnings.empty());
  bool ignored = false;
  for (const ColumnMatch& match : schema.value().matches) {
    if (match.ignored) ignored = true;
  }
  EXPECT_TRUE(ignored);
}

TEST_F(CubeFixture, NoFactIsAnError) {
  Catalog dims_only;
  ASSERT_TRUE(dims_only
                  .DefineDimension("country",
                                   {{kName, RelativeKey::Parse({kName, kYear})}})
                  .ok());
  CubeBuilder builder(&store_, &dims_only);
  EXPECT_FALSE(builder.Build(Query1Result()).ok());
}

TEST_F(CubeFixture, EmptyResultRejected) {
  CubeBuilder builder(&store_, &catalog_);
  EXPECT_FALSE(builder.Build(twig::CompleteResult{}).ok());
}

TEST_F(CubeFixture, MergesFactTablesWithSameKeys) {
  // GDP result: one column matching the heterogeneous GDP fact.
  auto gdp_expr = text::TextExpr::All();
  std::vector<twig::TermBinding> terms{{kName, us_expr_.get()},
                                       {"/country/economy/GDP", nullptr}};
  auto result = generator_->Execute(terms, {});
  ASSERT_TRUE(result.ok());
  CubeBuilder builder(&store_, &catalog_);
  auto schema = builder.Build(result.value());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema.value().fact_tables.size(), 1u);
  EXPECT_EQ(schema.value().fact_tables[0].columns.back(), "GDP");
}

TEST_F(CubeFixture, RemoveFactOption) {
  CubeBuilder builder(&store_, &catalog_);
  CubeBuilder::Options options;
  options.remove_facts = {"import-trade-percentage"};
  EXPECT_FALSE(builder.Build(Query1Result(), options).ok());
}

}  // namespace
}  // namespace seda::cube
