#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "dataguide/dataguide.h"
#include "graph/data_graph.h"

namespace seda::dataguide {
namespace {

store::DocumentStore MakeHeterogeneousStore() {
  store::DocumentStore store;
  // Three schema clusters: {a,b,c}, {a,b,d}, {x,y}.
  EXPECT_TRUE(store.AddXml("<r><a>1</a><b>2</b><c>3</c></r>", "d0").ok());
  EXPECT_TRUE(store.AddXml("<r><a>1</a><b>2</b><d>4</d></r>", "d1").ok());
  EXPECT_TRUE(store.AddXml("<q><x>1</x><y>2</y></q>", "d2").ok());
  EXPECT_TRUE(store.AddXml("<r><a>5</a><b>6</b><c>7</c></r>", "d3").ok());
  return store;
}

TEST(DataguideTest, OverlapFormula) {
  Dataguide g({0, 1, 2, 3}, 0);
  // common = 2, |g| = 4, |other| = 3 -> min(2/4, 2/3) = 0.5.
  EXPECT_DOUBLE_EQ(g.Overlap({2, 3, 9}), 0.5);
  EXPECT_DOUBLE_EQ(g.Overlap({7, 8}), 0.0);
  EXPECT_DOUBLE_EQ(g.Overlap({0, 1, 2, 3}), 1.0);
}

TEST(DataguideTest, ContainsAndMerge) {
  Dataguide g({1, 3, 5}, 0);
  EXPECT_TRUE(g.Contains({1, 5}));
  EXPECT_FALSE(g.Contains({1, 2}));
  g.Merge({2, 3}, 1);
  EXPECT_EQ(g.PathCount(), 4u);
  EXPECT_TRUE(g.Contains({1, 2, 3, 5}));
  EXPECT_EQ(g.members().size(), 2u);
}

TEST(DataguideCollectionTest, SubsetDocsAreAbsorbed) {
  auto store = MakeHeterogeneousStore();
  DataguideCollection::Options options;
  options.overlap_threshold = 2.0;  // merging disabled; only subset absorption
  auto collection = DataguideCollection::Build(store, options);
  // d0 and d3 share an identical schema -> absorbed; d1 and d2 differ.
  EXPECT_EQ(collection.size(), 3u);
  EXPECT_EQ(collection.build_stats().absorbed, 1u);
  EXPECT_EQ(collection.GuideOfDoc(0), collection.GuideOfDoc(3));
}

TEST(DataguideCollectionTest, ThresholdMergesSimilarSchemas) {
  auto store = MakeHeterogeneousStore();
  DataguideCollection::Options options;
  options.overlap_threshold = 0.4;
  auto collection = DataguideCollection::Build(store, options);
  // {a,b,c} vs {a,b,d}: common 3 of 4 (incl. root /r) -> overlap .75 -> merge.
  EXPECT_EQ(collection.size(), 2u);
  EXPECT_EQ(collection.GuideOfDoc(0), collection.GuideOfDoc(1));
  EXPECT_NE(collection.GuideOfDoc(0), collection.GuideOfDoc(2));
  EXPECT_EQ(collection.build_stats().merges, 1u);
}

// Property: every document's path set is fully contained in its dataguide,
// for any threshold.
class CoverageInvariantTest : public ::testing::TestWithParam<double> {};

TEST_P(CoverageInvariantTest, EveryDocPathCovered) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  DataguideCollection::Options options;
  options.overlap_threshold = GetParam();
  auto collection = DataguideCollection::Build(store, options);
  for (store::DocId d = 0; d < store.DocumentCount(); ++d) {
    const Dataguide& guide = collection.guides()[collection.GuideOfDoc(d)];
    EXPECT_TRUE(guide.Contains(store.DocumentPathSet(d)))
        << "doc " << d << " threshold " << GetParam();
  }
  // Members partition the documents.
  size_t member_total = 0;
  for (const Dataguide& g : collection.guides()) member_total += g.members().size();
  EXPECT_EQ(member_total, store.DocumentCount());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CoverageInvariantTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 2.0));

// Property: the number of dataguides decreases (weakly) as the threshold
// drops — lower thresholds merge more.
TEST(DataguideCollectionTest, MonotoneInThreshold) {
  store::DocumentStore store;
  data::WorldFactbookGenerator::Options options;
  options.scale = 0.05;
  data::WorldFactbookGenerator(options).Populate(&store);
  size_t previous = 0;
  bool first = true;
  for (double threshold : {0.1, 0.3, 0.5, 0.7, 0.9, 1.5}) {
    DataguideCollection::Options dg;
    dg.overlap_threshold = threshold;
    size_t count = DataguideCollection::Build(store, dg).size();
    if (!first) {
      EXPECT_GE(count, previous) << "threshold " << threshold;
    }
    previous = count;
    first = false;
  }
}

class ScenarioConnectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    graph_->ResolveIdRefs();
    DataguideCollection::Options options;
    options.overlap_threshold = 0.4;
    guides_ = std::make_unique<DataguideCollection>(
        DataguideCollection::Build(store_, options));
    guides_->AddLinksFromGraph(*graph_);
  }
  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<DataguideCollection> guides_;
};

TEST_F(ScenarioConnectionTest, TwoWaysToConnectTradeCountryAndPercentage) {
  // The paper (§6): even within import_partners there are two different ways
  // to connect trade_country and percentage (same item vs sibling item).
  auto connections = guides_->FindConnections(
      "/country/economy/import_partners/item/trade_country",
      "/country/economy/import_partners/item/percentage", 4, 16);
  ASSERT_GE(connections.size(), 2u);
  EXPECT_EQ(connections[0].Length(), 2u);  // via the shared item
  EXPECT_EQ(connections[1].Length(), 4u);  // via import_partners (cross-item)
  EXPECT_FALSE(connections[0].HasLink());
}

TEST_F(ScenarioConnectionTest, ShortestFirstOrdering) {
  auto connections = guides_->FindConnections("/country/name",
                                              "/country/economy/GDP", 6, 16);
  ASSERT_FALSE(connections.empty());
  for (size_t i = 1; i < connections.size(); ++i) {
    EXPECT_LE(connections[i - 1].Length(), connections[i].Length());
  }
}

TEST_F(ScenarioConnectionTest, LinkConnectionsThroughIdRef) {
  // sea --bordering--> mondial_country (Figure 1's dashed edges).
  auto connections =
      guides_->FindConnections("/sea/name", "/mondial_country/name", 5, 16);
  ASSERT_FALSE(connections.empty());
  bool has_link = false;
  for (const Connection& c : connections) {
    if (c.HasLink()) has_link = true;
  }
  EXPECT_TRUE(has_link);
}

TEST_F(ScenarioConnectionTest, CacheHitsOnRepeatedQueries) {
  guides_->FindConnections("/country/name", "/country/year", 4, 8);
  uint64_t misses_before = guides_->cache_misses();
  guides_->FindConnections("/country/name", "/country/year", 4, 8);
  EXPECT_EQ(guides_->cache_misses(), misses_before);
  EXPECT_GE(guides_->cache_hits(), 1u);
}

TEST_F(ScenarioConnectionTest, CacheCanBeDisabled) {
  guides_->set_cache_enabled(false);
  guides_->FindConnections("/country/name", "/country/year", 4, 8);
  uint64_t misses = guides_->cache_misses();
  guides_->FindConnections("/country/name", "/country/year", 4, 8);
  EXPECT_GT(guides_->cache_misses(), misses);
}

TEST_F(ScenarioConnectionTest, UnknownPathsYieldNoConnections) {
  EXPECT_TRUE(guides_->FindConnections("/nope", "/country/name", 4, 8).empty());
}

TEST(ConnectionTest, SignatureAndToString) {
  Connection c;
  c.from_path = "/a/b";
  c.steps = {{Connection::Move::kUp, "/a", ""},
             {Connection::Move::kDown, "/a/c", ""},
             {Connection::Move::kLink, "/x", "rel"}};
  c.to_path = "/x";
  EXPECT_EQ(c.Signature(), "/a/b ^/a v/a/c ~rel>/x");
  EXPECT_TRUE(c.HasLink());
  EXPECT_NE(c.ToString().find("[rel]"), std::string::npos);
}

}  // namespace
}  // namespace seda::dataguide
