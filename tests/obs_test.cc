// Unit tests for src/obs/: the metrics registry (including a byte-golden
// Prometheus exposition), trace spans, and the slow-query log ring.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace seda::obs {
namespace {

// --- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistry, CounterIncrementsAndRenders) {
  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("seda_test_total", "A test counter.");
  counter->Inc();
  counter->Inc(41);
  EXPECT_EQ(counter->Value(), 42u);
  EXPECT_NE(registry.RenderText().find("seda_test_total 42\n"),
            std::string::npos);
}

TEST(MetricsRegistry, ReregistrationReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* first = registry.AddCounter("seda_idem_total", "Idempotent.");
  first->Inc(7);
  Counter* second = registry.AddCounter("seda_idem_total", "Idempotent.");
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->Value(), 7u);
}

TEST(MetricsRegistry, LabeledSeriesAreDistinct) {
  MetricsRegistry registry;
  Counter* a =
      registry.AddCounter("seda_labeled_total", "Labeled.", {{"method", "a"}});
  Counter* b =
      registry.AddCounter("seda_labeled_total", "Labeled.", {{"method", "b"}});
  EXPECT_NE(a, b);
  a->Inc(1);
  b->Inc(2);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("seda_labeled_total{method=\"a\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("seda_labeled_total{method=\"b\"} 2\n"),
            std::string::npos);
}

TEST(MetricsRegistry, UnregisterDropsFamily) {
  MetricsRegistry registry;
  registry.AddCallbackCounter("seda_gone_total", "Doomed.", {},
                              [] { return 9u; });
  ASSERT_NE(registry.RenderText().find("seda_gone_total"), std::string::npos);
  registry.Unregister("seda_gone_total");
  EXPECT_EQ(registry.RenderText().find("seda_gone_total"), std::string::npos);
  registry.Unregister("seda_gone_total");  // idempotent on absent families
}

TEST(MetricsRegistry, HistogramBinsAndSum) {
  Histogram histogram({1.0, 10.0});
  histogram.Observe(0.5);   // bin 0
  histogram.Observe(1.0);   // bin 0 (le is inclusive)
  histogram.Observe(5.0);   // bin 1
  histogram.Observe(99.0);  // overflow bin
  EXPECT_EQ(histogram.BucketCount(), 3u);
  EXPECT_EQ(histogram.BinCount(0), 2u);
  EXPECT_EQ(histogram.BinCount(1), 1u);
  EXPECT_EQ(histogram.BinCount(2), 1u);
  EXPECT_EQ(histogram.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 105.5);
}

TEST(MetricsRegistry, EscapeLabelValue) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(MetricsRegistry, FormatMetricValue) {
  EXPECT_EQ(FormatMetricValue(0), "0");
  EXPECT_EQ(FormatMetricValue(42), "42");
  EXPECT_EQ(FormatMetricValue(1.5), "1.500");
}

// The byte-golden exposition: families in name order, series in label order,
// histograms in cumulative form with +Inf/_sum/_count, label values escaped.
// If this test breaks, a scraper's view of the server changed — update the
// golden deliberately, not incidentally.
TEST(MetricsRegistry, GoldenExposition) {
  MetricsRegistry registry;
  // Registered intentionally out of name order to prove rendering sorts.
  registry.AddGauge("seda_test_gauge", "An instantaneous value.", {},
                    [] { return 2.5; });
  Counter* plain = registry.AddCounter("seda_test_alpha_total", "Alpha.");
  plain->Inc(3);
  Counter* weird = registry.AddCounter(
      "seda_test_labels_total", "Label escaping.",
      {{"query", "(name, \"a\\b\")"}, {"note", "line1\nline2"}});
  weird->Inc();
  Histogram* latency = registry.AddHistogram(
      "seda_test_latency_ms", "Latency.", {0.25, 1.0, 10.0}, {{"method", "x"}});
  latency->Observe(0.1);
  latency->Observe(0.5);
  latency->Observe(100.0);

  const std::string expected =
      "# HELP seda_test_alpha_total Alpha.\n"
      "# TYPE seda_test_alpha_total counter\n"
      "seda_test_alpha_total 3\n"
      "# HELP seda_test_gauge An instantaneous value.\n"
      "# TYPE seda_test_gauge gauge\n"
      "seda_test_gauge 2.500\n"
      "# HELP seda_test_labels_total Label escaping.\n"
      "# TYPE seda_test_labels_total counter\n"
      "seda_test_labels_total{query=\"(name, \\\"a\\\\b\\\")\","
      "note=\"line1\\nline2\"} 1\n"
      "# HELP seda_test_latency_ms Latency.\n"
      "# TYPE seda_test_latency_ms histogram\n"
      "seda_test_latency_ms_bucket{method=\"x\",le=\"0.25\"} 1\n"
      "seda_test_latency_ms_bucket{method=\"x\",le=\"1\"} 2\n"
      "seda_test_latency_ms_bucket{method=\"x\",le=\"10\"} 2\n"
      "seda_test_latency_ms_bucket{method=\"x\",le=\"+Inf\"} 3\n"
      "seda_test_latency_ms_sum{method=\"x\"} 100.600\n"
      "seda_test_latency_ms_count{method=\"x\"} 3\n";
  EXPECT_EQ(registry.RenderText(), expected);
  // Byte-stable: rendering twice with unchanged values is identical.
  EXPECT_EQ(registry.RenderText(), expected);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("seda_race_total", "Raced.");
  Histogram* histogram =
      registry.AddHistogram("seda_race_ms", "Raced.", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        histogram->Observe(0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram->TotalCount(), uint64_t{kThreads} * kPerThread);
}

// --- Trace --------------------------------------------------------------

TEST(Trace, DisabledTraceIsInert) {
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.root(), nullptr);
  const SpanNode node = trace.Detach();
  EXPECT_TRUE(node.name.empty());
  // ScopedSpan over a null parent is the always-on engine path.
  ScopedSpan span(nullptr, "never");
  EXPECT_EQ(span.get(), nullptr);
  span.AddCounter("ignored", 1);
}

TEST(Trace, SpanTreeStructure) {
  Trace trace("request");
  TraceSpan* root = trace.root();
  ASSERT_NE(root, nullptr);
  {
    ScopedSpan parse(root, "parse");
    parse.AddCounter("terms", 2);
  }
  {
    ScopedSpan scan(root, "scan");
    ScopedSpan inner(scan.get(), "score");
  }
  const SpanNode node = trace.Detach();
  EXPECT_EQ(node.name, "request");
  EXPECT_GT(node.unix_ms, 0u);  // root carries the wall-clock anchor
  ASSERT_EQ(node.children.size(), 2u);
  EXPECT_EQ(node.children[0].name, "parse");
  ASSERT_EQ(node.children[0].counters.size(), 1u);
  EXPECT_EQ(node.children[0].counters[0].first, "terms");
  EXPECT_EQ(node.children[0].counters[0].second, 2u);
  EXPECT_EQ(node.children[0].unix_ms, 0u);  // children are offset-positioned
  EXPECT_EQ(node.children[1].name, "scan");
  ASSERT_EQ(node.children[1].children.size(), 1u);
  EXPECT_EQ(node.children[1].children[0].name, "score");
}

TEST(Trace, ChildTimesNestWithinParent) {
  Trace trace("request");
  {
    ScopedSpan child(trace.root(), "child");
    ScopedSpan grandchild(child.get(), "grandchild");
  }
  const SpanNode node = trace.Detach();
  ASSERT_EQ(node.children.size(), 1u);
  const SpanNode& child = node.children[0];
  // Single-threaded trace invariant: each child starts within the parent
  // and the sum of direct children never exceeds the parent's elapsed time.
  EXPECT_GE(child.start_us, node.start_us);
  uint64_t children_us = 0;
  for (const SpanNode& c : node.children) children_us += c.elapsed_us;
  EXPECT_LE(children_us, node.elapsed_us);
  EXPECT_EQ(node.SelfUs(), node.elapsed_us - children_us);
}

TEST(Trace, DetachClosesOpenSpans) {
  Trace trace("request");
  TraceSpan* open = trace.root()->StartChild("left_open");
  (void)open;
  const SpanNode node = trace.Detach();
  ASSERT_EQ(node.children.size(), 1u);
  EXPECT_EQ(node.children[0].name, "left_open");
}

TEST(Trace, EndIsIdempotent) {
  Trace trace("request");
  ScopedSpan span(trace.root(), "once");
  span.End();
  span.End();
  const SpanNode node = trace.Detach();
  ASSERT_EQ(node.children.size(), 1u);
}

// --- SlowLog ------------------------------------------------------------

SlowLogEntry MakeEntry(const std::string& method, double elapsed_ms) {
  SlowLogEntry entry;
  entry.method = method;
  entry.elapsed_ms = elapsed_ms;
  return entry;
}

TEST(SlowLog, ThresholdResolution) {
  SlowLogOptions options;
  options.default_threshold_ms = 500;
  options.method_threshold_ms = {{"search", 50}, {"cube", 0}};
  EXPECT_EQ(options.ThresholdFor("search"), 50u);
  EXPECT_EQ(options.ThresholdFor("cube"), 0u);  // explicit off
  EXPECT_EQ(options.ThresholdFor("statz"), 500u);
}

TEST(SlowLog, RingEvictsOldestAndCountsTotal) {
  SlowLogOptions options;
  options.capacity = 2;
  SlowLog log(options);
  log.Add(MakeEntry("a", 1));
  log.Add(MakeEntry("b", 2));
  log.Add(MakeEntry("c", 3));
  EXPECT_EQ(log.TotalLogged(), 3u);
  const std::vector<SlowLogEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  // Newest first; seq keeps counting across evictions.
  EXPECT_EQ(entries[0].method, "c");
  EXPECT_EQ(entries[0].seq, 3u);
  EXPECT_EQ(entries[1].method, "b");
}

TEST(SlowLog, EntriesLimit) {
  SlowLog log(SlowLogOptions{});
  for (int i = 0; i < 5; ++i) log.Add(MakeEntry("m", i));
  EXPECT_EQ(log.Entries(2).size(), 2u);
  EXPECT_EQ(log.Entries(0).size(), 5u);
  EXPECT_EQ(log.Entries(99).size(), 5u);
}

}  // namespace
}  // namespace seda::obs
