#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"
#include "data/generators.h"

namespace seda::api {
namespace {

constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";
constexpr const char* kQuery1 =
    R"((*, "United States") AND (trade_country, *) AND (percentage, *))";

void DefineScenarioCatalog(core::Seda* seda) {
  auto* catalog = seda->mutable_catalog();
  using cube::RelativeKey;
  ASSERT_TRUE(catalog
                  ->DefineDimension("country",
                                    {{kName, RelativeKey::Parse({kName, kYear})}})
                  .ok());
  ASSERT_TRUE(catalog
                  ->DefineDimension("year",
                                    {{kYear, RelativeKey::Parse({kName, kYear})}})
                  .ok());
  ASSERT_TRUE(catalog
                  ->DefineDimension(
                      "import-country",
                      {{kTrade, RelativeKey::Parse({kName, kYear, "."})}})
                  .ok());
  ASSERT_TRUE(catalog
                  ->DefineFact("import-trade-percentage",
                               {{kPct, RelativeKey::Parse(
                                           {kName, kYear, "../trade_country"})}})
                  .ok());
}

// --- Fingerprints: the common projection of service DTOs and direct
// core::Session results, compared byte for byte (hex floats). ---------------

std::string NodeFp(uint32_t doc, const std::string& dewey,
                   const std::string& path) {
  return "n" + std::to_string(doc) + "@" + dewey + "[" + path + "]";
}

std::string TupleListFp(const std::vector<TupleDto>& topk) {
  std::string out;
  char buf[96];
  for (const TupleDto& tuple : topk) {
    for (const NodeRefDto& node : tuple.nodes) {
      out += NodeFp(node.doc, node.dewey, node.path);
    }
    std::snprintf(buf, sizeof(buf), " c=%a n=%llu s=%a\n", tuple.content_score,
                  static_cast<unsigned long long>(tuple.connection_size),
                  tuple.score);
    out += buf;
  }
  return out;
}

std::string TupleListFp(const std::vector<topk::ScoredTuple>& topk,
                        const store::DocumentStore& store) {
  std::string out;
  char buf[96];
  for (const topk::ScoredTuple& tuple : topk) {
    for (const text::NodeMatch& match : tuple.nodes) {
      std::string path = match.path != store::kInvalidPathId
                             ? store.paths().PathString(match.path)
                             : std::string();
      out += NodeFp(match.node.doc, match.node.dewey.ToString(), path);
    }
    std::snprintf(buf, sizeof(buf), " c=%a n=%llu s=%a\n", tuple.content_score,
                  static_cast<unsigned long long>(tuple.connection_size),
                  tuple.score);
    out += buf;
  }
  return out;
}

std::string CompleteFp(const std::vector<std::vector<NodeRefDto>>& tuples) {
  std::string out;
  for (const auto& row : tuples) {
    for (const NodeRefDto& node : row) {
      out += NodeFp(node.doc, node.dewey, node.path);
    }
    out += "\n";
  }
  return out;
}

std::string CompleteFp(const twig::CompleteResult& result,
                       const store::DocumentStore& store) {
  std::string out;
  for (const twig::ResultTuple& tuple : result.tuples) {
    for (size_t i = 0; i < tuple.nodes.size(); ++i) {
      out += NodeFp(tuple.nodes[i].doc, tuple.nodes[i].dewey.ToString(),
                    store.paths().PathString(tuple.paths[i]));
    }
    out += "\n";
  }
  return out;
}

/// Drives the Fig. 6 loop (search -> data-driven refine -> complete) through
/// the service AND directly through a core::Session over the same Seda, and
/// requires identical outcomes at every stage. `query` is corpus-specific;
/// refinement picks each term's most frequent context from the summary, so
/// the walk adapts to whatever the corpus contains.
void ExpectFig6Equivalence(core::Seda* seda, const std::string& query,
                           const char* corpus) {
  SCOPED_TRACE(corpus);
  SedaService service(seda);
  auto created = service.CreateSession(CreateSessionRequest{});
  ASSERT_TRUE(created.status.ok()) << created.status.message;

  auto direct = seda->NewSession();
  ASSERT_TRUE(direct.ok());
  const store::DocumentStore& store = direct->snapshot().store();

  // Stage 1: search.
  SearchRequest search_request;
  search_request.session_id = created.session_id;
  search_request.query = query;
  SearchResponseDto via_service = service.Search(search_request);
  auto via_session = direct->Search(query);
  ASSERT_EQ(via_service.status.ok(), via_session.ok())
      << via_service.status.message << " vs " << via_session.status().ToString();
  if (!via_session.ok()) return;
  EXPECT_EQ(TupleListFp(via_service.topk),
            TupleListFp(via_session->topk, store));
  EXPECT_EQ(via_service.stats.epoch, via_session->stats.epoch);
  ASSERT_EQ(via_service.contexts.size(), via_session->contexts.buckets.size());
  ASSERT_EQ(via_service.connections.size(),
            via_session->connections.entries.size());

  // Stage 2: refine every term to its most frequent context (data-driven,
  // identical on both sides by the stage-1 equivalence).
  std::vector<std::vector<std::string>> picks;
  std::vector<std::string> term_paths;
  for (size_t i = 0; i < via_service.contexts.size(); ++i) {
    const ContextBucketDto& bucket = via_service.contexts[i];
    ASSERT_EQ(bucket.entries.size(),
              via_session->contexts.buckets[i].entries.size());
    if (bucket.entries.empty()) return;  // corpus cannot complete this query
    picks.push_back({bucket.entries[0].path});
    term_paths.push_back(bucket.entries[0].path);
    EXPECT_EQ(bucket.entries[0].path,
              via_session->contexts.buckets[i].entries[0].path_text);
  }
  RefineRequest refine_request;
  refine_request.session_id = created.session_id;
  refine_request.chosen_paths = picks;
  SearchResponseDto refined_service = service.Refine(refine_request);
  auto refined_session = direct->RefineContexts(picks);
  ASSERT_EQ(refined_service.status.ok(), refined_session.ok())
      << refined_service.status.message;
  if (!refined_session.ok()) return;
  EXPECT_EQ(TupleListFp(refined_service.topk),
            TupleListFp(refined_session->topk, store));

  // Stage 3: complete results for the pinned contexts.
  CompleteRequest complete_request;
  complete_request.session_id = created.session_id;
  complete_request.term_paths = term_paths;
  CompleteResponseDto complete_service = service.Complete(complete_request);
  auto complete_session = direct->CompleteResults(term_paths, {});
  ASSERT_EQ(complete_service.status.ok(), complete_session.ok())
      << complete_service.status.message << " vs "
      << complete_session.status().ToString();
  if (!complete_session.ok()) {
    // Both sides must fail identically (e.g. twigs not bridged by links).
    EXPECT_EQ(complete_service.status.ToStatus().code(),
              complete_session.status().code());
    return;
  }
  EXPECT_EQ(CompleteFp(complete_service.tuples),
            CompleteFp(complete_session.value(), store));
  EXPECT_EQ(complete_service.twig_count, complete_session->twig_count);

  // Stage 4: cube — with no catalog defined both sides produce the same
  // (possibly empty) star schema; with one, MakeScenario's tests compare
  // cell totals in depth.
  CubeRequest cube_request;
  cube_request.session_id = created.session_id;
  CubeResponseDto cube_service = service.Cube(cube_request);
  auto cube_session = direct->BuildCube(complete_session.value());
  ASSERT_EQ(cube_service.status.ok(), cube_session.ok())
      << cube_service.status.message;
  if (cube_session.ok()) {
    ASSERT_EQ(cube_service.fact_tables.size(),
              cube_session->fact_tables.size());
    for (size_t i = 0; i < cube_service.fact_tables.size(); ++i) {
      EXPECT_EQ(cube_service.fact_tables[i].rows,
                cube_session->fact_tables[i].rows);
    }
  }
}

TEST(ServiceEquivalenceTest, ScenarioCorpus) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  core::SedaOptions options;
  options.value_edges.push_back({kName, kTrade, "trade_partner"});
  ASSERT_TRUE(seda.Finalize(options).ok());
  DefineScenarioCatalog(&seda);
  ExpectFig6Equivalence(&seda, kQuery1, "scenario");
}

TEST(ServiceEquivalenceTest, WorldFactbookCorpus) {
  core::Seda seda;
  data::WorldFactbookGenerator::Options options;
  options.scale = 0.05;
  data::WorldFactbookGenerator(options).Populate(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  DefineScenarioCatalog(&seda);
  ExpectFig6Equivalence(&seda, kQuery1, "world-factbook");
}

TEST(ServiceEquivalenceTest, MondialCorpus) {
  core::Seda seda;
  data::MondialGenerator::Options options;
  options.scale = 0.05;
  data::MondialGenerator(options).Populate(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  ExpectFig6Equivalence(&seda, R"((name, *) AND (*, "United States"))",
                        "mondial");
}

TEST(ServiceEquivalenceTest, GoogleBaseCorpus) {
  core::Seda seda;
  data::GoogleBaseGenerator::Options options;
  options.scale = 0.02;
  data::GoogleBaseGenerator(options).Populate(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  ExpectFig6Equivalence(&seda, R"((title, *) AND (item_type, "type1"))",
                        "google-base");
}

TEST(ServiceEquivalenceTest, RecipeMLCorpus) {
  core::Seda seda;
  data::RecipeMLGenerator::Options options;
  options.scale = 0.02;
  data::RecipeMLGenerator(options).Populate(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  ExpectFig6Equivalence(&seda, R"((item, "flour") AND (title, *))",
                        "recipe-ml");
}

/// Full worked-example loop incl. the OLAP aggregate: service cube cells and
/// total must equal what the engine computes directly.
TEST(ServiceEquivalenceTest, ScenarioCubeCellTotals) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  core::SedaOptions options;
  options.value_edges.push_back({kName, kTrade, "trade_partner"});
  ASSERT_TRUE(seda.Finalize(options).ok());
  DefineScenarioCatalog(&seda);
  SedaService service(&seda);

  auto created = service.CreateSession(CreateSessionRequest{});
  ASSERT_TRUE(created.status.ok());
  SearchRequest search;
  search.session_id = created.session_id;
  search.query = kQuery1;
  ASSERT_TRUE(service.Search(search).status.ok());
  CompleteRequest complete;
  complete.session_id = created.session_id;
  complete.term_paths = {kName, kTrade, kPct};
  ASSERT_TRUE(service.Complete(complete).status.ok());

  CubeRequest cube_request;
  cube_request.session_id = created.session_id;
  cube_request.group_dims = {"year"};
  cube_request.agg_fn = "sum";
  cube_request.measure = "import-trade-percentage";
  CubeResponseDto via_service = service.Cube(cube_request);
  ASSERT_TRUE(via_service.status.ok()) << via_service.status.message;
  ASSERT_FALSE(via_service.fact_tables.empty());
  ASSERT_FALSE(via_service.cells.empty());

  // Direct engine reference.
  auto session = seda.NewSession();
  ASSERT_TRUE(session.ok());
  auto query = session->Parse(kQuery1);
  ASSERT_TRUE(query.ok());
  session->SetQuery(query.value());
  auto result = session->CompleteResults({kName, kTrade, kPct}, {});
  ASSERT_TRUE(result.ok());
  auto schema = session->BuildCube(result.value());
  ASSERT_TRUE(schema.ok());
  auto cube = session->ToOlapCube(schema.value());
  ASSERT_TRUE(cube.ok());
  auto cuboid =
      cube->Aggregate({"year"}, olap::AggFn::kSum, "import-trade-percentage");
  ASSERT_TRUE(cuboid.ok());

  ASSERT_EQ(via_service.cells.size(), cuboid->cells.size());
  for (size_t i = 0; i < cuboid->cells.size(); ++i) {
    EXPECT_EQ(via_service.cells[i].group, cuboid->cells[i].group);
    EXPECT_DOUBLE_EQ(via_service.cells[i].value, cuboid->cells[i].value);
    EXPECT_EQ(via_service.cells[i].count, cuboid->cells[i].count);
  }
  EXPECT_DOUBLE_EQ(via_service.cell_total, cuboid->Total());
}

/// Choosing a connection by index must execute the same ChosenConnection the
/// engine-level API would.
TEST(ServiceTest, CompleteWithConnectionIndex) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  core::SedaOptions options;
  options.value_edges.push_back({kName, kTrade, "trade_partner"});
  ASSERT_TRUE(seda.Finalize(options).ok());
  SedaService service(&seda);

  auto created = service.CreateSession(CreateSessionRequest{});
  SearchRequest search;
  search.session_id = created.session_id;
  search.query = R"((trade_country, *) AND (percentage, *))";
  SearchResponseDto response = service.Search(search);
  ASSERT_TRUE(response.status.ok());
  ASSERT_FALSE(response.connections.empty());

  // Pick the first tree connection (FromDataguideConnection supports tree
  // and single-link shapes).
  size_t index = response.connections.size();
  for (size_t i = 0; i < response.connections.size(); ++i) {
    bool has_link = false;
    for (const auto& step : response.connections[i].steps) {
      if (step.move == "link") has_link = true;
    }
    if (!has_link) {
      index = i;
      break;
    }
  }
  ASSERT_LT(index, response.connections.size());

  CompleteRequest complete;
  complete.session_id = created.session_id;
  complete.term_paths = {response.connections[index].from_path,
                         response.connections[index].to_path};
  complete.connections = {index};
  CompleteResponseDto via_service = service.Complete(complete);
  ASSERT_TRUE(via_service.status.ok()) << via_service.status.message;

  // Engine-level reference through the same session machinery.
  auto session = seda.NewSession();
  ASSERT_TRUE(session.ok());
  auto direct_search = session->Search(search.query);
  ASSERT_TRUE(direct_search.ok());
  const auto& entry = direct_search->connections.entries[index];
  auto chosen = twig::ChosenConnection::FromDataguideConnection(
      entry.term_a, entry.term_b, entry.connection);
  ASSERT_TRUE(chosen.ok());
  auto direct = session->CompleteResults(complete.term_paths, {chosen.value()});
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(CompleteFp(via_service.tuples),
            CompleteFp(direct.value(), session->snapshot().store()));

  // Out-of-range indices are rejected with the valid range in the message.
  complete.connections = {9999};
  CompleteResponseDto bad = service.Complete(complete);
  EXPECT_EQ(bad.status.code, "OutOfRange");
  EXPECT_NE(bad.status.message.find("9999"), std::string::npos);
}

/// Acceptance: a tight deadline yields a well-formed partial response with
/// the overrun flagged in stats — not an error, not unbounded latency.
TEST(ServiceTest, TightDeadlineReturnsFlaggedPartialResponse) {
  core::Seda seda;
  data::WorldFactbookGenerator::Options corpus;
  corpus.scale = 0.2;
  data::WorldFactbookGenerator(corpus).Populate(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  SedaService service(&seda);
  auto created = service.CreateSession(CreateSessionRequest{});

  SearchRequest request;
  request.session_id = created.session_id;
  request.query = kQuery1;
  request.k = 200;  // keep the heap hungry so the scan would visit every doc
  request.deadline_ms = 1;
  SearchResponseDto partial = service.Search(request);
  ASSERT_TRUE(partial.status.ok()) << partial.status.message;
  EXPECT_TRUE(partial.stats.deadline_exceeded);
  EXPECT_EQ(partial.stats.deadline_ms, 1u);
  // Well-formed: every response block is present and consistent.
  EXPECT_EQ(partial.contexts.size(), 3u);
  EXPECT_GT(partial.stats.docs_considered, partial.stats.docs_scored);

  // The same request without a deadline runs to the TA fixpoint.
  request.deadline_ms = 0;
  SearchResponseDto full = service.Search(request);
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.stats.deadline_exceeded);
  EXPECT_GE(full.topk.size(), partial.topk.size());
}

TEST(ServiceTest, SessionLifecycle) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  SedaService service(&seda);

  CreateSessionRequest named;
  named.session_id = "analyst-1";
  auto created = service.CreateSession(named);
  ASSERT_TRUE(created.status.ok());
  EXPECT_EQ(created.session_id, "analyst-1");
  EXPECT_EQ(created.epoch, 1u);
  EXPECT_EQ(service.SessionCount(), 1u);

  EXPECT_EQ(service.CreateSession(named).status.code, "AlreadyExists");

  SearchRequest search;
  search.session_id = "no-such-session";
  search.query = "(a, b)";
  EXPECT_EQ(service.Search(search).status.code, "NotFound");

  EXPECT_TRUE(
      service.CloseSession(CloseSessionRequest{"analyst-1"}).status.ok());
  EXPECT_EQ(service.CloseSession(CloseSessionRequest{"analyst-1"}).status.code,
            "NotFound");
  EXPECT_EQ(service.SessionCount(), 0u);

  // Unfinalized backends fail cleanly at session creation.
  core::Seda fresh;
  SedaService unready(&fresh);
  EXPECT_EQ(unready.CreateSession(CreateSessionRequest{}).status.code,
            "FailedPrecondition");
}

TEST(ServiceTest, SessionsPinTheirEpochAcrossCommits) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  SedaService service(&seda);
  auto pinned = service.CreateSession(CreateSessionRequest{});
  ASSERT_EQ(pinned.epoch, 1u);

  ASSERT_TRUE(seda.AddXml("<country><name>Epochia</name></country>", "late")
                  .ok());
  ASSERT_TRUE(seda.Commit().ok());

  SearchRequest request;
  request.session_id = pinned.session_id;
  request.query = R"((name, "Epochia"))";
  SearchResponseDto old_epoch = service.Search(request);
  ASSERT_TRUE(old_epoch.status.ok());
  EXPECT_EQ(old_epoch.stats.epoch, 1u);
  EXPECT_TRUE(old_epoch.topk.empty());  // the pinned epoch predates the doc

  auto fresh = service.CreateSession(CreateSessionRequest{});
  EXPECT_EQ(fresh.epoch, 2u);
  request.session_id = fresh.session_id;
  SearchResponseDto new_epoch = service.Search(request);
  ASSERT_TRUE(new_epoch.status.ok());
  EXPECT_EQ(new_epoch.stats.epoch, 2u);
  EXPECT_FALSE(new_epoch.topk.empty());
}

TEST(ServiceTest, TtlEvictionAndLruCapacity) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());

  ServiceOptions options;
  options.session_ttl_ms = 20;
  options.max_sessions = 2;
  SedaService service(&seda, options);

  auto expiring = service.CreateSession(CreateSessionRequest{});
  ASSERT_TRUE(expiring.status.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  SearchRequest search;
  search.session_id = expiring.session_id;
  search.query = "(name, *)";
  EXPECT_EQ(service.Search(search).status.code, "NotFound");

  // LRU: with capacity 2, touching 'a' makes 'b' the eviction victim.
  CreateSessionRequest keepalive;
  keepalive.ttl_ms = 60000;
  keepalive.session_id = "a";
  ASSERT_TRUE(service.CreateSession(keepalive).status.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  keepalive.session_id = "b";
  ASSERT_TRUE(service.CreateSession(keepalive).status.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  search.session_id = "a";
  ASSERT_TRUE(service.Search(search).status.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  keepalive.session_id = "c";
  ASSERT_TRUE(service.CreateSession(keepalive).status.ok());
  EXPECT_LE(service.SessionCount(), 2u);
  search.session_id = "b";
  EXPECT_EQ(service.Search(search).status.code, "NotFound");
  search.session_id = "a";
  EXPECT_TRUE(service.Search(search).status.ok());
}

TEST(ServiceTest, FailedDuplicateCreateCostsNoLiveSession) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  ServiceOptions options;
  options.max_sessions = 2;
  SedaService service(&seda, options);

  CreateSessionRequest create;
  create.ttl_ms = 60000;
  create.session_id = "a";
  ASSERT_TRUE(service.CreateSession(create).status.ok());
  create.session_id = "b";
  ASSERT_TRUE(service.CreateSession(create).status.ok());

  SearchRequest search;
  search.session_id = "a";
  search.query = R"((trade_country, *) AND (percentage, *))";
  ASSERT_TRUE(service.Search(search).status.ok());

  // At capacity, a duplicate create must fail WITHOUT evicting anything —
  // neither the LRU victim nor the session it collided with.
  create.session_id = "a";
  EXPECT_EQ(service.CreateSession(create).status.code, "AlreadyExists");
  EXPECT_EQ(service.SessionCount(), 2u);
  search.session_id = "b";
  EXPECT_TRUE(service.Search(search).status.ok());
  // "a" keeps its loop state: refine still has the current query.
  RefineRequest refine;
  refine.session_id = "a";
  refine.chosen_paths = {{}, {}};
  EXPECT_TRUE(service.Refine(refine).status.ok());
}

TEST(ServiceTest, RefinePreservesRequestedTopK) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  SedaService service(&seda);
  auto created = service.CreateSession(CreateSessionRequest{});

  SearchRequest search;
  search.session_id = created.session_id;
  search.query = R"((trade_country, *) AND (percentage, *))";
  search.k = 1;
  SearchResponseDto first = service.Search(search);
  ASSERT_TRUE(first.status.ok());
  ASSERT_EQ(first.topk.size(), 1u);

  RefineRequest refine;
  refine.session_id = created.session_id;
  refine.chosen_paths = {{}, {}};
  refine.k = 1;
  SearchResponseDto narrow = service.Refine(refine);
  ASSERT_TRUE(narrow.status.ok());
  EXPECT_EQ(narrow.topk.size(), 1u);

  refine.k = 0;  // back to the snapshot default (k = 10)
  SearchResponseDto wide = service.Refine(refine);
  ASSERT_TRUE(wide.status.ok());
  EXPECT_GT(wide.topk.size(), 1u);
}

TEST(ServiceTest, ExpiredSessionsAreSweptWithoutNewCreates) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  ServiceOptions options;
  options.session_ttl_ms = 10;
  SedaService service(&seda, options);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.CreateSession(CreateSessionRequest{}).status.ok());
  }
  EXPECT_EQ(service.SessionCount(), 3u);
  // Expired sessions pin whole snapshot epochs, so lookups must reclaim
  // them too (rate-limited to one full sweep per second) — not only the
  // next CreateSession.
  std::this_thread::sleep_for(std::chrono::milliseconds(1050));
  SearchRequest search;
  search.session_id = "untracked";
  search.query = "(name, *)";
  EXPECT_EQ(service.Search(search).status.code, "NotFound");
  EXPECT_EQ(service.SessionCount(), 0u);
}

// --- Satellite: Session-level validation -------------------------------

TEST(SessionValidationTest, RefineContextsRequiresOneListPerTerm) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  auto session = seda.NewSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Search(R"((trade_country, *) AND (percentage, *))").ok());

  auto mismatch = session->RefineContexts({{kTrade}});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.status().message().find("2 term(s)"), std::string::npos)
      << mismatch.status().message();
  EXPECT_NE(mismatch.status().message().find("1 list(s)"), std::string::npos);

  // A non-absolute pick names its term index.
  auto relative = session->RefineContexts({{kTrade}, {"not-absolute"}});
  ASSERT_FALSE(relative.ok());
  EXPECT_NE(relative.status().message().find("term 1"), std::string::npos)
      << relative.status().message();
}

TEST(SessionValidationTest, CompleteResultsBeforeSearchFails) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  auto session = seda.NewSession();
  ASSERT_TRUE(session.ok());
  auto result = session->CompleteResults({kTrade}, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  // Same contract over the service: refine and cube are stateful too.
  SedaService service(&seda);
  auto created = service.CreateSession(CreateSessionRequest{});
  RefineRequest refine;
  refine.session_id = created.session_id;
  refine.chosen_paths = {{kTrade}};
  EXPECT_EQ(service.Refine(refine).status.code, "FailedPrecondition");
  CompleteRequest complete;
  complete.session_id = created.session_id;
  complete.term_paths = {kTrade};
  EXPECT_EQ(service.Complete(complete).status.code, "FailedPrecondition");
  CubeRequest cube;
  cube.session_id = created.session_id;
  EXPECT_EQ(service.Cube(cube).status.code, "FailedPrecondition");
}

// --- Wire envelope ------------------------------------------------------

TEST(ServiceTest, HandleDispatchesJsonEnvelopes) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  SedaService service(&seda);

  std::string created_json =
      service.Handle(R"({"method":"create_session","session_id":"wire"})");
  auto created = DecodeCreateSessionResponse(created_json);
  ASSERT_TRUE(created.ok()) << created_json;
  ASSERT_TRUE(created.value().status.ok());
  EXPECT_EQ(created.value().session_id, "wire");

  SearchRequest request;
  request.session_id = "wire";
  request.query = R"((name, "United States"))";
  Json envelope = Json::Parse(Encode(request)).value();
  envelope.Set("method", Json::Str("search"));
  auto response = DecodeSearchResponseDto(service.Handle(envelope.Write()));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().status.ok()) << response.value().status.message;
  EXPECT_FALSE(response.value().topk.empty());

  // Envelope-level failures come back as {"status": ...} objects.
  auto unknown = DecodeWireStatus(
      Json::Parse(service.Handle(R"({"method":"frobnicate"})"))
          .value()
          .Find("status")
          ->Write());
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().code, "InvalidArgument");
  auto malformed = service.Handle("this is not json");
  EXPECT_NE(malformed.find("ParseError"), std::string::npos);
}

TEST(ServiceTest, StatzAccountsForEveryRequestPath) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  SedaService service(&seda);

  // Two OK searches, one method-level error, one session round trip.
  SearchRequest search;
  search.query = R"((name, "United States"))";
  ASSERT_TRUE(service.Search(search).status.ok());
  ASSERT_TRUE(service.Search(search).status.ok());
  SearchRequest bad;
  bad.query = "((((";
  ASSERT_FALSE(service.Search(bad).status.ok());
  auto created = service.CreateSession(CreateSessionRequest{});
  ASSERT_TRUE(created.status.ok());

  StatzResponse statz = service.Statz(StatzRequest{});
  EXPECT_TRUE(statz.status.ok());
  EXPECT_GT(statz.epoch, 0u);
  EXPECT_EQ(statz.sessions, 1u);
  EXPECT_EQ(statz.sessions_created, 1u);
  EXPECT_EQ(statz.sessions_evicted, 0u);
  EXPECT_GT(statz.uptime_ms, 0.0);
  ASSERT_FALSE(statz.bucket_bounds_ms.empty());

  ASSERT_EQ(statz.methods.size(), 9u);
  uint64_t histogram_total = 0;
  for (const MethodStatsDto& method : statz.methods) {
    ASSERT_EQ(method.latency_buckets.size(),
              statz.bucket_bounds_ms.size() + 1)
        << method.method << " histogram must carry an overflow bucket";
    for (uint64_t bucket : method.latency_buckets) histogram_total += bucket;
    if (method.method == "search") {
      EXPECT_EQ(method.count, 3u);
      EXPECT_EQ(method.errors, 1u);
      EXPECT_GT(method.total_ms, 0.0);
    }
    if (method.method == "create_session") {
      EXPECT_EQ(method.count, 1u);
    }
  }
  // Every recorded request landed in exactly one histogram slot.
  EXPECT_EQ(histogram_total, 4u);

  // Cumulative engine counters summed over the search-shaped requests.
  EXPECT_GT(statz.cumulative.docs_scored, 0u);
  EXPECT_GT(statz.cumulative.candidates_total, 0u);
  // No transport hosting this service: the section stays empty.
  EXPECT_TRUE(statz.transport.empty());

  // Statz records itself, so a second call sees the first.
  StatzResponse again = service.Statz(StatzRequest{});
  for (const MethodStatsDto& method : again.methods) {
    if (method.method == "statz") {
      EXPECT_EQ(method.count, 1u);
    }
  }

  // TTL/LRU evictions (not explicit closes) feed sessions_evicted.
  ServiceOptions tight;
  tight.max_sessions = 1;
  SedaService evicting(&seda, tight);
  ASSERT_TRUE(evicting.CreateSession(CreateSessionRequest{}).status.ok());
  ASSERT_TRUE(evicting.CreateSession(CreateSessionRequest{}).status.ok());
  StatzResponse evicted = evicting.Statz(StatzRequest{});
  EXPECT_EQ(evicted.sessions_created, 2u);
  EXPECT_EQ(evicted.sessions_evicted, 1u);

  // The transport callback surfaces in order.
  evicting.set_transport_statz([] {
    return std::vector<std::pair<std::string, uint64_t>>{{"conns", 5}};
  });
  StatzResponse with_transport = evicting.Statz(StatzRequest{});
  ASSERT_EQ(with_transport.transport.size(), 1u);
  EXPECT_EQ(with_transport.transport[0].first, "conns");
  EXPECT_EQ(with_transport.transport[0].second, 5u);

  // And over the Handle() wire.
  auto wire = DecodeStatzResponse(service.Handle(R"({"method":"statz"})"));
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire.value().sessions_created, 1u);
}

// --- Satellite: concurrent registry stress (run under TSan in CI) -------

TEST(ServiceStressTest, ConcurrentSessionsWithTtlEvictionRacingRequests) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());

  ServiceOptions options;
  options.max_sessions = 48;     // below total creations: LRU eviction races
  options.session_ttl_ms = 5;    // TTL eviction races active requests
  SedaService service(&seda, options);

  constexpr size_t kThreads = 8;
  constexpr size_t kSessionsPerThread = 64;
  std::atomic<size_t> ok_requests{0};
  std::atomic<size_t> evicted_requests{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &ok_requests, &evicted_requests, t] {
      for (size_t i = 0; i < kSessionsPerThread; ++i) {
        CreateSessionRequest create;
        create.session_id =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        auto created = service.CreateSession(create);
        if (!created.status.ok()) continue;
        SearchRequest search;
        search.session_id = created.session_id;
        search.query = (i % 2 == 0) ? R"((trade_country, *))"
                                    : R"((name, "United States"))";
        SearchResponseDto response = service.Search(search);
        if (response.status.ok()) {
          ok_requests.fetch_add(1);
          RefineRequest refine;
          refine.session_id = created.session_id;
          refine.chosen_paths = {{}};
          (void)service.Refine(refine);
        } else {
          // The only acceptable failure is losing the session to eviction.
          EXPECT_EQ(response.status.code, "NotFound")
              << response.status.message;
          evicted_requests.fetch_add(1);
        }
        if (i % 8 == 0) {
          (void)service.CloseSession(CloseSessionRequest{created.session_id});
        }
        if (i % 16 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(6));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_GT(ok_requests.load(), 0u);
  EXPECT_LE(service.SessionCount(), options.max_sessions);
}

}  // namespace
}  // namespace seda::api
