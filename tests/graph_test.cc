#include <gtest/gtest.h>

#include "data/generators.h"
#include "graph/data_graph.h"
#include "graph/key_discovery.h"

namespace seda::graph {
namespace {

class ScenarioGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    graph_ = std::make_unique<DataGraph>(&store_);
  }
  store::DocumentStore store_;
  std::unique_ptr<DataGraph> graph_;
};

TEST_F(ScenarioGraphTest, ResolvesIdRefEdges) {
  size_t added = graph_->ResolveIdRefs();
  // Two seas x two bordering countries each (Figure 1).
  EXPECT_EQ(added, 4u);
  EXPECT_EQ(graph_->EdgeCount(), 4u);
}

TEST_F(ScenarioGraphTest, IdRefEdgesCarryRelationshipLabel) {
  graph_->ResolveIdRefs();
  bool found_bordering = false;
  store_.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    for (const Edge& edge : graph_->NonTreeEdges(id)) {
      if (edge.type == EdgeType::kIdRef && edge.label == "bordering") {
        found_bordering = true;
      }
    }
  });
  EXPECT_TRUE(found_bordering);
}

TEST_F(ScenarioGraphTest, ValueBasedEdges) {
  size_t added = graph_->AddValueBasedEdges(
      "/country/name", "/country/economy/import_partners/item/trade_country",
      "trade_partner");
  // "United States" (x4 name nodes... PK side is /country/name; each
  // matching trade_country FK node links to every equal-valued PK node).
  EXPECT_GT(added, 0u);
  bool found = false;
  store_.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    for (const Edge& edge : graph_->NonTreeEdges(id)) {
      if (edge.type == EdgeType::kValueBased) found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST_F(ScenarioGraphTest, DanglingIdRefIgnored) {
  store::DocumentStore store;
  ASSERT_TRUE(store.AddXml("<a><b idref=\"nope\"/></a>", "d").ok());
  DataGraph graph(&store);
  EXPECT_EQ(graph.ResolveIdRefs(), 0u);
}

TEST_F(ScenarioGraphTest, XLinkResolution) {
  store::DocumentStore store;
  ASSERT_TRUE(store.AddXml("<a id=\"target\"><x>1</x></a>", "d1").ok());
  ASSERT_TRUE(store.AddXml("<b><link href=\"d1#target\"/></b>", "d2").ok());
  DataGraph graph(&store);
  EXPECT_EQ(graph.ResolveXLinks(), 1u);
}

TEST_F(ScenarioGraphTest, ShortestPathWithinDocument) {
  // trade_country and percentage inside the same item are 2 apart.
  store::DocId us2006 = 3;  // us-2006 is the 4th scenario doc
  store::NodeId trade{us2006, xml::DeweyId::Parse("1.4.2.1.1")};
  store::NodeId pct{us2006, xml::DeweyId::Parse("1.4.2.1.2")};
  xml::Node* t = store_.GetNode(trade);
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->name(), "trade_country");
  auto len = graph_->ShortestPathLength(trade, pct, 6);
  ASSERT_TRUE(len.has_value());
  EXPECT_EQ(*len, 2u);
}

TEST_F(ScenarioGraphTest, ShortestPathAcrossIdRef) {
  graph_->ResolveIdRefs();
  // Pacific Ocean sea -> bordering -> mondial US country.
  store::DocId pacific_doc = 9;  // mondial-pacific
  store::DocId us_doc = 6;       // mondial-us
  xml::Node* sea_root = store_.document(pacific_doc).root();
  ASSERT_EQ(sea_root->name(), "sea");
  store::NodeId sea{pacific_doc, sea_root->dewey()};
  store::NodeId us{us_doc, store_.document(us_doc).root()->dewey()};
  auto path = graph_->ShortestPath(sea, us, 4);
  ASSERT_FALSE(path.empty());
  EXPECT_LE(path.size(), 4u);
}

TEST_F(ScenarioGraphTest, UnreachableWithinBound) {
  // Two unrelated factbook docs are not connected without value edges.
  store::NodeId a{0, xml::DeweyId::Parse("1.1")};
  store::NodeId b{4, xml::DeweyId::Parse("1.1")};
  EXPECT_FALSE(graph_->ShortestPathLength(a, b, 4).has_value());
}

TEST_F(ScenarioGraphTest, ConnectionSizeSameItemVsCrossItem) {
  store::DocId us2006 = 3;
  store::NodeId trade{us2006, xml::DeweyId::Parse("1.4.2.1.1")};
  store::NodeId pct_same{us2006, xml::DeweyId::Parse("1.4.2.1.2")};
  store::NodeId pct_other{us2006, xml::DeweyId::Parse("1.4.2.2.2")};
  auto same = graph_->ConnectionSize({trade, pct_same});
  auto cross = graph_->ConnectionSize({trade, pct_other});
  ASSERT_TRUE(same.has_value());
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(*same, 2u);
  EXPECT_EQ(*cross, 4u);
  EXPECT_LT(*same, *cross);  // compactness prefers the same-item pairing
}

TEST_F(ScenarioGraphTest, ConnectionSizeOfSingletonIsZero) {
  store::NodeId a{0, xml::DeweyId::Parse("1.1")};
  EXPECT_EQ(graph_->ConnectionSize({a}).value_or(99), 0u);
}

TEST_F(ScenarioGraphTest, ConnectionSizeTripleUsesSteinerTree) {
  // name (1.1), trade_country (1.3.2.1.1), percentage (1.3.2.1.2) in us-2002:
  // minimal subtree spans name..country..economy..import..item + 2 leaves.
  store::NodeId name{0, xml::DeweyId::Parse("1.1")};
  store::NodeId trade{0, xml::DeweyId::Parse("1.3.2.1.1")};
  store::NodeId pct{0, xml::DeweyId::Parse("1.3.2.1.2")};
  auto size = graph_->ConnectionSize({name, trade, pct});
  ASSERT_TRUE(size.has_value());
  // Edges: name-country, country-economy, economy-import_partners,
  // import_partners-item, item-trade_country, item-percentage = 6.
  EXPECT_EQ(*size, 6u);
}

TEST(KeyDiscoveryTest, FindsUniquePaths) {
  store::DocumentStore store;
  ASSERT_TRUE(store.AddXml("<r><id>1</id><v>x</v></r>", "a").ok());
  ASSERT_TRUE(store.AddXml("<r><id>2</id><v>x</v></r>", "b").ok());
  ASSERT_TRUE(store.AddXml("<r><id>3</id><v>y</v></r>", "c").ok());
  KeyDiscovery discovery(&store);
  auto keys = discovery.DiscoverKeys(2);
  bool found_id = false;
  for (const KeyCandidate& k : keys) {
    if (k.path == "/r/id") {
      found_id = true;
      EXPECT_TRUE(k.unique_in_collection);
      EXPECT_EQ(k.distinct_values, 3u);
    }
    if (k.path == "/r/v") {
      // "x" repeats across the collection, but each document holds a single
      // value, so /r/v only qualifies as a per-document key.
      EXPECT_FALSE(k.unique_in_collection);
      EXPECT_TRUE(k.unique_per_document);
    }
  }
  EXPECT_TRUE(found_id);
  EXPECT_TRUE(discovery.IsUniqueInCollection("/r/id"));
  EXPECT_FALSE(discovery.IsUniqueInCollection("/r/v"));
}

TEST(KeyDiscoveryTest, PerDocumentUniqueness) {
  store::DocumentStore store;
  // "x" repeats across docs but is unique within each.
  ASSERT_TRUE(store.AddXml("<r><tag>x</tag></r>", "a").ok());
  ASSERT_TRUE(store.AddXml("<r><tag>x</tag></r>", "b").ok());
  KeyDiscovery discovery(&store);
  auto keys = discovery.DiscoverKeys(2);
  bool found = false;
  for (const KeyCandidate& k : keys) {
    if (k.path == "/r/tag") {
      found = true;
      EXPECT_FALSE(k.unique_in_collection);
      EXPECT_TRUE(k.unique_per_document);
    }
  }
  EXPECT_TRUE(found);
}

TEST(EdgeTypeTest, Names) {
  EXPECT_STREQ(EdgeTypeName(EdgeType::kParentChild), "parent-child");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kIdRef), "idref");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kXLink), "xlink");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kValueBased), "value-based");
}

}  // namespace
}  // namespace seda::graph
