#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "audit/auditor.h"
#include "core/seda.h"
#include "data/generators.h"
#include "xml/dewey.h"

namespace seda::audit {
namespace {

using core::Seda;
using core::SedaOptions;

std::string TempImagePath(const std::string& name) {
  return ::testing::TempDir() + "seda_audit_" + name + "_" +
         std::to_string(::getpid()) + ".img";
}

SedaOptions ScenarioOptions() {
  SedaOptions options;
  options.value_edges.push_back(
      {"/country/name", "/country/economy/import_partners/item/trade_country",
       "trade_partner"});
  return options;
}

/// Builds a finalized instance over `populate`, audits the served snapshot
/// and expects a clean report.
template <typename PopulateFn>
void ExpectCleanAudit(const char* corpus, PopulateFn populate,
                      const SedaOptions& options = SedaOptions{}) {
  Seda writer;
  populate(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(options).ok()) << corpus;
  AuditReport report = writer.snapshot()->Audit();
  EXPECT_TRUE(report.ok()) << corpus << ":\n" << report.ToString();
  EXPECT_GT(report.checks_run, 0u) << corpus;
}

TEST(AuditTest, CleanOnScenarioCorpus) {
  ExpectCleanAudit("scenario", data::PopulateScenario, ScenarioOptions());
}

TEST(AuditTest, CleanOnWorldFactbookCorpus) {
  data::WorldFactbookGenerator::Options options;
  options.scale = 0.05;
  ExpectCleanAudit("factbook", [&](store::DocumentStore* store) {
    data::WorldFactbookGenerator(options).Populate(store);
  });
}

TEST(AuditTest, CleanOnMondialCorpus) {
  data::MondialGenerator::Options options;
  options.scale = 0.02;
  ExpectCleanAudit("mondial", [&](store::DocumentStore* store) {
    data::MondialGenerator(options).Populate(store);
  });
}

TEST(AuditTest, CleanOnGoogleBaseCorpus) {
  data::GoogleBaseGenerator::Options options;
  options.scale = 0.02;
  ExpectCleanAudit("googlebase", [&](store::DocumentStore* store) {
    data::GoogleBaseGenerator(options).Populate(store);
  });
}

TEST(AuditTest, CleanOnRecipeMLCorpus) {
  data::RecipeMLGenerator::Options options;
  options.scale = 0.01;
  ExpectCleanAudit("recipeml", [&](store::DocumentStore* store) {
    data::RecipeMLGenerator(options).Populate(store);
  });
}

TEST(AuditTest, CleanOnIncrementalCommitEpoch) {
  Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(ScenarioOptions()).ok());
  ASSERT_TRUE(writer
                  .AddXml("<country><name>Auditland</name><economy><GDP>1"
                          "</GDP></economy></country>",
                          "auditland")
                  .ok());
  ASSERT_TRUE(writer.Commit().ok());
  AuditReport report = writer.snapshot()->Audit();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditTest, CleanOnReopenedImageIncludingImageChecks) {
  std::string path = TempImagePath("reopen");
  {
    Seda writer;
    data::PopulateScenario(writer.mutable_store());
    ASSERT_TRUE(writer.Finalize(ScenarioOptions()).ok());
    ASSERT_TRUE(writer.Save(path).ok());
  }
  auto image = persist::MappedImage::Open(path);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto snapshot = core::Snapshot::Load(*image, nullptr, nullptr);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  AuditReport report = (*snapshot)->Audit(**image);
  EXPECT_TRUE(report.ok()) << report.ToString();
  std::remove(path.c_str());
}

// --- Deliberate corruption: each case breaks one structure and expects the
// --- audit to fail with the *named* invariant.

TEST(AuditCorruptionTest, DetectsDeweyRenumbering) {
  Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(ScenarioOptions()).ok());
  // The snapshot's store clone shares the (normally immutable) parsed
  // documents with the writer store, so renumbering a subtree through the
  // writer corrupts the served epoch in place.
  xml::Node* root =
      writer.mutable_store()->GetNode({0, xml::DeweyId({1})});
  ASSERT_NE(root, nullptr);
  ASSERT_FALSE(root->children().empty());
  root->children()[0]->AssignDewey(xml::DeweyId({9, 9}));
  AuditReport report = writer.snapshot()->Audit();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("store.child_numbering")) << report.ToString();
}

TEST(AuditCorruptionTest, DetectsDanglingGraphEdge) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  graph::DataGraph graph(&store);
  graph.ResolveLinks(true, true);
  // An edge whose target document does not exist: the kind of wreckage a
  // stale edge log replayed over the wrong store would produce.
  graph.AddEdge(store::NodeId{0, xml::DeweyId({1})},
                store::NodeId{9999, xml::DeweyId({1})},
                graph::EdgeType::kIdRef, "bogus");
  text::InvertedIndex index(&store);
  auto guides =
      dataguide::DataguideCollection::Build(store, {});
  SnapshotAuditor auditor(&store, &index, &graph, &guides);
  AuditReport report = auditor.AuditAll();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("graph.edge_endpoints")) << report.ToString();
}

TEST(AuditCorruptionTest, DetectsStaleIndexAndDataguides) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  graph::DataGraph graph(&store);
  text::InvertedIndex index(&store);
  auto guides = dataguide::DataguideCollection::Build(store, {});
  // A document added behind the backs of the derived structures: the index
  // no longer covers every node and the dataguide summary no longer covers
  // every document.
  ASSERT_TRUE(
      store.AddXml("<country><name>Lateland</name></country>", "late").ok());
  SnapshotAuditor auditor(&store, &index, &graph, &guides);
  AuditReport report = auditor.AuditAll();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("index.indexed_nodes")) << report.ToString();
  EXPECT_TRUE(report.Has("dataguide.member_coverage")) << report.ToString();
}

TEST(AuditCorruptionTest, DetectsImageFromDifferentEpoch) {
  std::string path = TempImagePath("stale_epoch");
  Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(ScenarioOptions()).ok());
  ASSERT_TRUE(writer.Save(path).ok());
  ASSERT_TRUE(
      writer.AddXml("<country><name>Newland</name></country>", "newland").ok());
  ASSERT_TRUE(writer.Commit().ok());
  // Epoch 2 audited against the epoch-1 image: the in-memory walk stays
  // clean but every image agreement check must fire.
  auto image = persist::MappedImage::Open(path);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  AuditReport report = writer.snapshot()->Audit(**image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("image.epoch")) << report.ToString();
  EXPECT_TRUE(report.Has("image.store_doc_count")) << report.ToString();
  std::remove(path.c_str());
}

TEST(AuditReportTest, CapsWitnessesPerInvariant) {
  AuditReport report;
  for (int i = 0; i < 20; ++i) {
    report.Add("test.invariant", "witness " + std::to_string(i));
  }
  EXPECT_EQ(report.violations.size(), 8u);
  EXPECT_EQ(report.suppressed, 12u);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("test.invariant"));
}

}  // namespace
}  // namespace seda::audit
