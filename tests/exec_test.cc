#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "exec/candidates.h"
#include "exec/cursor.h"
#include "query/query.h"
#include "text/inverted_index.h"
#include "text/text_expr.h"

namespace seda::exec {
namespace {

using text::NodeMatch;
using text::TextExpr;

void ExpectSameMatches(const std::vector<NodeMatch>& got,
                       const std::vector<NodeMatch>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << label << " @" << i;
    EXPECT_EQ(got[i].path, want[i].path) << label << " @" << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " @" << i;
  }
}

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    index_ = std::make_unique<text::InvertedIndex>(&store_);
  }

  std::unique_ptr<TextExpr> Expr(const std::string& text) {
    auto e = text::ParseTextExpr(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  store::DocumentStore store_;
  std::unique_ptr<text::InvertedIndex> index_;
};

TEST_F(CursorTest, MatchesEvaluateNodesOnExpressionPanel) {
  const char* panel[] = {
      "china",
      "\"united states\"",
      "china AND sea",
      "china OR canada OR mexico",
      "united states",               // juxtaposition = AND
      "(china OR canada) AND percentage",
      "NOT china",
      "sea AND NOT china",
      "NOT china AND NOT mexico",    // pure negation conjunction
      "*",
      "zzznonexistent",
      "\"states united\"",           // reversed phrase: no matches
      "china AND zzznonexistent",
  };
  for (const char* text : panel) {
    auto expr = Expr(text);
    ExpectSameMatches(EvaluateWithCursor(*index_, *expr),
                      index_->EvaluateNodes(*expr), text);
  }
}

// The NOT fix must preserve the original universe-minus-child semantics:
// compare against a reference computed the old way, from public pieces.
TEST_F(CursorTest, NotCursorMatchesOldUniverseSubtraction) {
  auto child = Expr("china");
  std::vector<NodeMatch> universe = index_->EvaluateNodes(*TextExpr::All());
  std::vector<NodeMatch> negative = index_->EvaluateNodes(*child);
  std::vector<NodeMatch> reference;
  size_t j = 0;
  for (const NodeMatch& m : universe) {
    while (j < negative.size() && negative[j].node < m.node) ++j;
    if (j < negative.size() && negative[j].node == m.node) continue;
    reference.push_back(m);
  }
  ASSERT_FALSE(reference.empty());
  ASSERT_LT(reference.size(), universe.size());

  auto not_expr = TextExpr::Not(child->Clone());
  ExpectSameMatches(EvaluateWithCursor(*index_, *not_expr), reference,
                    "NOT china vs old subtraction");
  ExpectSameMatches(index_->EvaluateNodes(*not_expr), reference,
                    "EvaluateNodes NOT china vs old subtraction");
}

TEST_F(CursorTest, ContextFilterPushdownMatchesPostFilter) {
  query::ContextSpec spec = query::ContextSpec::Parse("name | percentage").value();
  std::vector<store::PathId> paths = spec.ResolvePathIds(store_.paths());
  ASSERT_FALSE(paths.empty());
  std::unordered_set<store::PathId> allowed(paths.begin(), paths.end());

  const char* panel[] = {"china", "china OR canada", "NOT china",
                         "\"united states\" OR mexico"};
  for (const char* text : panel) {
    auto expr = Expr(text);
    std::vector<NodeMatch> reference = index_->EvaluateNodes(*expr);
    std::erase_if(reference,
                  [&](const NodeMatch& m) { return !allowed.count(m.path); });
    ExpectSameMatches(EvaluateWithCursor(*index_, *expr, &allowed), reference,
                      std::string(text) + " [filtered]");
  }
}

TEST_F(CursorTest, SeekSkipsToTargetDocument) {
  auto expr = Expr("china");
  CursorStats stats;
  auto cursor = BuildCursor(*index_, *expr, nullptr, &stats);
  ASSERT_FALSE(cursor->AtEnd());
  store::DocId first_doc = cursor->Current().node.doc;
  // Seek beyond the first document: every produced node must be >= target.
  cursor->SeekToDoc(first_doc + 1);
  while (!cursor->AtEnd()) {
    EXPECT_GE(cursor->Current().node.doc, first_doc + 1);
    cursor->Next();
  }
}

TEST_F(CursorTest, CursorsEmitStrictlyIncreasingNodeOrder) {
  const char* panel[] = {"china OR canada OR mexico", "NOT sea",
                         "united AND states", "*"};
  for (const char* text : panel) {
    auto expr = Expr(text);
    auto matches = EvaluateWithCursor(*index_, *expr);
    for (size_t i = 1; i < matches.size(); ++i) {
      EXPECT_TRUE(matches[i - 1].node < matches[i].node)
          << text << " @" << i;
    }
  }
}

// Intersection alignment must seek over documents that cannot match instead
// of scanning them, and the skip must be visible in the cursor counters.
TEST(CursorSeekTest, AndAlignmentSkipsDocuments) {
  store::DocumentStore store;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        store.AddXml("<r><a>apple</a></r>", "d" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.AddXml("<r><a>apple</a><b>berry</b></r>", "last").ok());
  text::InvertedIndex index(&store);

  auto expr = text::ParseTextExpr("apple AND berry");
  ASSERT_TRUE(expr.ok());
  CursorStats stats;
  auto matches = EvaluateWithCursor(index, *expr.value(), nullptr, &stats);
  ASSERT_FALSE(matches.empty());
  for (const NodeMatch& m : matches) {
    EXPECT_EQ(m.node.doc, 6u);  // only the last document holds both terms
  }
  EXPECT_GT(stats.docs_skipped, 0u);
  ExpectSameMatches(matches, index.EvaluateNodes(*expr.value()),
                    "apple AND berry");
}

// Property test: random boolean expressions over a generated corpus must
// evaluate identically through cursors and through EvaluateNodes.
TEST(CursorPropertyTest, RandomExpressionsMatchEvaluateNodes) {
  store::DocumentStore store;
  data::WorldFactbookGenerator::Options options;
  options.scale = 0.02;
  data::WorldFactbookGenerator(options).Populate(&store);
  text::InvertedIndex index(&store);

  const std::vector<std::string> words = {
      "united", "states",  "china",   "canada", "mexico",  "germany",
      "gdp",    "country", "imports", "export", "nosuchword"};
  Rng rng(20260727);

  // Recursive random expression builder, depth-bounded.
  auto build = [&](auto&& self, size_t depth) -> std::unique_ptr<TextExpr> {
    uint64_t kind = rng.Uniform(depth == 0 ? 2 : 6);
    switch (kind) {
      case 0:
        return TextExpr::Term(words[rng.Uniform(words.size())]);
      case 1: {
        std::vector<std::string> tokens;
        size_t len = 2 + rng.Uniform(2);
        for (size_t i = 0; i < len; ++i) {
          tokens.push_back(words[rng.Uniform(words.size())]);
        }
        return TextExpr::Phrase(std::move(tokens));
      }
      case 2:
      case 3: {
        std::vector<std::unique_ptr<TextExpr>> children;
        size_t n = 2 + rng.Uniform(2);
        for (size_t i = 0; i < n; ++i) children.push_back(self(self, depth - 1));
        return kind == 2 ? TextExpr::And(std::move(children))
                         : TextExpr::Or(std::move(children));
      }
      case 4:
        return TextExpr::Not(self(self, depth - 1));
      default:
        return TextExpr::All();
    }
  };

  for (int trial = 0; trial < 40; ++trial) {
    auto expr = build(build, 2);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " + expr->ToString());
    ExpectSameMatches(EvaluateWithCursor(index, *expr),
                      index.EvaluateNodes(*expr), expr->ToString());
  }
}

class CandidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    index_ = std::make_unique<text::InvertedIndex>(&store_);
  }

  query::Query Q(const std::string& text) {
    auto q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  store::DocumentStore store_;
  std::unique_ptr<text::InvertedIndex> index_;
};

// The bounded selection must reproduce stable_sort-by-score + truncate.
TEST_F(CandidateTest, BoundedSelectionMatchesStableSortTruncate) {
  const char* queries[] = {
      R"((*, "United States") AND (trade_country, *))",
      R"((name, china OR canada))",
      R"((*, NOT china))",
      R"((percentage, *))",
  };
  for (const char* text : queries) {
    query::Query query = Q(text);
    for (size_t cap : {0ul, 1ul, 3ul, 100ul}) {
      CandidateSet set = BuildCandidates(*index_, query, cap);
      ASSERT_EQ(set.terms.size(), query.terms.size());
      for (size_t t = 0; t < query.terms.size(); ++t) {
        const query::QueryTerm& term = query.terms[t];
        // Reference: the old CandidateStreams recipe.
        std::vector<NodeMatch> reference;
        bool all_content =
            !term.search || term.search->kind == TextExpr::Kind::kAll;
        if (all_content) {
          for (store::PathId path : term.context.ResolvePathIds(store_.paths())) {
            for (const store::NodeId& node : index_->NodesWithPath(path)) {
              reference.push_back({node, path, kStructureOnlyScore});
            }
          }
        } else {
          reference = index_->EvaluateNodes(*term.search);
          if (!term.context.unrestricted()) {
            auto paths = term.context.ResolvePathIds(store_.paths());
            std::unordered_set<store::PathId> allowed(paths.begin(), paths.end());
            std::erase_if(reference, [&](const NodeMatch& m) {
              return !allowed.count(m.path);
            });
          }
        }
        std::stable_sort(reference.begin(), reference.end(),
                         [](const NodeMatch& a, const NodeMatch& b) {
                           return a.score > b.score;
                         });
        if (cap > 0 && reference.size() > cap) reference.resize(cap);
        ExpectSameMatches(set.terms[t].matches, reference,
                          std::string(text) + " term " + std::to_string(t) +
                              " cap " + std::to_string(cap));
      }
    }
  }
}

// A NOT/kAll term with a candidate cap must not walk the node universe: the
// constant-score early stop bounds the drain near the cap.
TEST_F(CandidateTest, NotQueryStopsEarlyInsteadOfMaterializingUniverse) {
  query::Query query = Q(R"((*, NOT china))");
  size_t cap = 16;
  CandidateSet set = BuildCandidates(*index_, query, cap);
  ASSERT_EQ(set.terms[0].matches.size(), cap);
  EXPECT_LT(set.stats.postings_advanced, index_->IndexedNodeCount())
      << "NOT term drained the whole universe despite the cap";
}

TEST_F(CandidateTest, StructureOnlyTermStopsAtCap) {
  query::Query query = Q("(trade_country, *)");
  CandidateSet set = BuildCandidates(*index_, query, 2);
  EXPECT_EQ(set.terms[0].matches.size(), 2u);
  EXPECT_TRUE(set.terms[0].structure_only);
  EXPECT_LE(set.stats.postings_advanced, 2u);
  for (const NodeMatch& m : set.terms[0].matches) {
    EXPECT_EQ(m.score, kStructureOnlyScore);
  }
}

TEST_F(CandidateTest, SharedContextPathsMatchResolvePathIds) {
  query::Query query = Q(R"((name, "United States") AND (percentage, *))");
  CandidateSet set = BuildCandidates(*index_, query, 0);
  for (size_t t = 0; t < query.terms.size(); ++t) {
    EXPECT_TRUE(set.terms[t].context_restricted);
    EXPECT_EQ(set.terms[t].context_paths,
              query.terms[t].context.ResolvePathIds(store_.paths()));
  }
}

}  // namespace
}  // namespace seda::exec
