#include <gtest/gtest.h>

#include "data/generators.h"
#include "twig/twig.h"

namespace seda::twig {
namespace {

class TwigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    graph_->ResolveIdRefs();
    index_ = std::make_unique<text::InvertedIndex>(&store_);
    generator_ = std::make_unique<CompleteResultGenerator>(index_.get(),
                                                           graph_.get());
    us_expr_ = text::ParseTextExpr("\"united states\"").value();
  }

  static constexpr const char* kName = "/country/name";
  static constexpr const char* kTrade =
      "/country/economy/import_partners/item/trade_country";
  static constexpr const char* kPct =
      "/country/economy/import_partners/item/percentage";

  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<CompleteResultGenerator> generator_;
  std::unique_ptr<text::TextExpr> us_expr_;
};

TEST_F(TwigTest, Query1CompleteResult) {
  // Query 1 bound to the import contexts; default connections pair
  // trade_country and percentage within the same item.
  std::vector<TermBinding> terms{
      {kName, us_expr_.get()}, {kTrade, nullptr}, {kPct, nullptr}};
  auto result = generator_->Execute(terms, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // US docs: 2002 (2 items), 2004 (2), 2005 (2), 2006 (2) = 8 tuples.
  EXPECT_EQ(result.value().tuples.size(), 8u);
  EXPECT_EQ(result.value().twig_count, 1u);
  for (const ResultTuple& tuple : result.value().tuples) {
    // Same-item pairing: trade_country and percentage share 4 Dewey levels.
    EXPECT_EQ(xml::CommonPrefixLength(tuple.nodes[1].dewey, tuple.nodes[2].dewey),
              4u);
    EXPECT_EQ(tuple.nodes[0].doc, tuple.nodes[1].doc);
  }
}

TEST_F(TwigTest, CrossItemConnectionChangesPairing) {
  // Choosing the cross-item connection (join at import_partners) pairs
  // trade_country with the percentage of a DIFFERENT item.
  ChosenConnection cross;
  cross.term_a = 0;
  cross.term_b = 1;
  cross.is_link = false;
  cross.join_path = "/country/economy/import_partners";
  std::vector<TermBinding> terms{{kTrade, nullptr}, {kPct, nullptr}};
  auto result = generator_->Execute(terms, {cross});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().tuples.empty());
  for (const ResultTuple& tuple : result.value().tuples) {
    EXPECT_EQ(xml::CommonPrefixLength(tuple.nodes[0].dewey, tuple.nodes[1].dewey),
              3u);  // LCA exactly at import_partners
  }
}

TEST_F(TwigTest, ExecuteMatchesNaive) {
  std::vector<TermBinding> terms{
      {kName, us_expr_.get()}, {kTrade, nullptr}, {kPct, nullptr}};
  auto fast = generator_->Execute(terms, {});
  auto naive = generator_->ExecuteNaive(terms, {});
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(fast.value().tuples.size(), naive.value().tuples.size());
  for (size_t i = 0; i < fast.value().tuples.size(); ++i) {
    for (size_t t = 0; t < terms.size(); ++t) {
      EXPECT_EQ(fast.value().tuples[i].nodes[t], naive.value().tuples[i].nodes[t]);
    }
  }
}

TEST_F(TwigTest, ExecuteMatchesNaiveOnCrossItem) {
  ChosenConnection cross;
  cross.term_a = 0;
  cross.term_b = 1;
  cross.is_link = false;
  cross.join_path = "/country/economy/import_partners";
  std::vector<TermBinding> terms{{kTrade, nullptr}, {kPct, nullptr}};
  auto fast = generator_->Execute(terms, {cross});
  auto naive = generator_->ExecuteNaive(terms, {cross});
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(fast.value().tuples.size(), naive.value().tuples.size());
}

TEST_F(TwigTest, LinkJoinAcrossDocuments) {
  // sea --bordering--> mondial_country: cross-twig join via the IDREF edge.
  // The IDREF edge runs from the reifying /sea/bordering element (which is
  // not on the /sea/name root-to-leaf path) to the country root.
  ChosenConnection link;
  link.term_a = 0;
  link.term_b = 1;
  link.is_link = true;
  link.source_path = "/sea/bordering";
  link.target_path = "/mondial_country";
  link.link_label = "bordering";
  std::vector<TermBinding> terms{{"/sea/name", nullptr},
                                 {"/mondial_country/name", nullptr}};
  auto result = generator_->Execute(terms, {link});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Pacific->us, Pacific->ph, ChinaSea->china, ChinaSea->ph = 4 pairs.
  EXPECT_EQ(result.value().tuples.size(), 4u);
  EXPECT_EQ(result.value().cross_twig_joins, 1u);
  EXPECT_EQ(result.value().twig_count, 2u);

  auto naive = generator_->ExecuteNaive(terms, {link});
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive.value().tuples.size(), result.value().tuples.size());
}

TEST_F(TwigTest, DisconnectedTwigsRejected) {
  std::vector<TermBinding> terms{{"/sea/name", nullptr},
                                 {"/mondial_country/name", nullptr}};
  auto result = generator_->Execute(terms, {});
  EXPECT_FALSE(result.ok());
}

TEST_F(TwigTest, InvalidBindingsRejected) {
  // Relative path is invalid.
  EXPECT_FALSE(generator_->Execute({{"name", nullptr}}, {}).ok());
  // Identical contexts with no explicit connection would always bind the
  // same node.
  std::vector<TermBinding> dupes{{kPct, nullptr}, {kPct, nullptr}};
  EXPECT_FALSE(generator_->Execute(dupes, {}).ok());
  // Tree join path must be a common ancestor.
  ChosenConnection bad;
  bad.term_a = 0;
  bad.term_b = 1;
  bad.join_path = "/sea";
  std::vector<TermBinding> terms{{kTrade, nullptr}, {kPct, nullptr}};
  EXPECT_FALSE(generator_->Execute(terms, {bad}).ok());
}

TEST_F(TwigTest, UnknownPathYieldsEmptyResult) {
  std::vector<TermBinding> terms{{"/country/name", us_expr_.get()},
                                 {"/country/bogus", nullptr}};
  auto result = generator_->Execute(terms, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().tuples.empty());
}

TEST_F(TwigTest, FromDataguideTreeConnection) {
  dataguide::Connection conn;
  conn.from_path = kTrade;
  conn.to_path = kPct;
  conn.steps = {{dataguide::Connection::Move::kUp,
                 "/country/economy/import_partners/item", ""},
                {dataguide::Connection::Move::kDown, kPct, ""}};
  auto chosen = ChosenConnection::FromDataguideConnection(0, 1, conn);
  ASSERT_TRUE(chosen.ok());
  EXPECT_FALSE(chosen.value().is_link);
  EXPECT_EQ(chosen.value().join_path, "/country/economy/import_partners/item");
}

TEST_F(TwigTest, FromDataguideLinkConnection) {
  dataguide::Connection conn;
  conn.from_path = "/sea/name";
  conn.to_path = "/mondial_country/name";
  conn.steps = {{dataguide::Connection::Move::kUp, "/sea", ""},
                {dataguide::Connection::Move::kLink, "/mondial_country",
                 "bordering"},
                {dataguide::Connection::Move::kDown, "/mondial_country/name", ""}};
  auto chosen = ChosenConnection::FromDataguideConnection(0, 1, conn);
  ASSERT_TRUE(chosen.ok());
  EXPECT_TRUE(chosen.value().is_link);
  EXPECT_EQ(chosen.value().source_path, "/sea");
  EXPECT_EQ(chosen.value().target_path, "/mondial_country");
  EXPECT_EQ(chosen.value().link_label, "bordering");
}

TEST_F(TwigTest, MultiLinkConnectionUnimplemented) {
  dataguide::Connection conn;
  conn.from_path = "/a";
  conn.to_path = "/c";
  conn.steps = {{dataguide::Connection::Move::kLink, "/b", "l1"},
                {dataguide::Connection::Move::kLink, "/c", "l2"}};
  EXPECT_FALSE(ChosenConnection::FromDataguideConnection(0, 1, conn).ok());
}

TEST_F(TwigTest, ContentPredicateFiltersTuples) {
  auto china = text::ParseTextExpr("china").value();
  std::vector<TermBinding> terms{{kTrade, china.get()}, {kPct, nullptr}};
  auto result = generator_->Execute(terms, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().tuples.empty());
  for (const ResultTuple& tuple : result.value().tuples) {
    EXPECT_EQ(store_.GetContent(tuple.nodes[0]), "China");
  }
}

TEST_F(TwigTest, DeadlineUnsetLeavesResultComplete) {
  std::vector<TermBinding> terms{
      {kName, us_expr_.get()}, {kTrade, nullptr}, {kPct, nullptr}};
  auto result = generator_->Execute(terms, {}, ExecuteOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().deadline_exceeded);
  EXPECT_EQ(result.value().tuples.size(), 8u);
}

/// Deadline coverage uses a synthetic wide document: N items each with an
/// <a> and a <b> child, joined cross-item at the root, so the enumeration
/// must walk ~N^2 pairs — enough work that a 1 ms budget reliably expires.
class TwigDeadlineTest : public ::testing::Test {
 protected:
  static constexpr size_t kItems = 256;

  void SetUp() override {
    std::string xml = "<root>";
    for (size_t i = 0; i < kItems; ++i) {
      xml += "<item><a>x</a><b>y</b></item>";
    }
    xml += "</root>";
    ASSERT_TRUE(store_.AddXml(xml, "wide").ok());
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    index_ = std::make_unique<text::InvertedIndex>(&store_);
    generator_ = std::make_unique<CompleteResultGenerator>(index_.get(),
                                                           graph_.get());
    cross_.term_a = 0;
    cross_.term_b = 1;
    cross_.is_link = false;
    cross_.join_path = "/root";
  }

  std::vector<TermBinding> Terms() const {
    return {{"/root/item/a", nullptr}, {"/root/item/b", nullptr}};
  }

  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<CompleteResultGenerator> generator_;
  ChosenConnection cross_;
};

TEST_F(TwigDeadlineTest, UnboundedRunEnumeratesAllPairs) {
  auto result = generator_->Execute(Terms(), {cross_});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().deadline_exceeded);
  // Cross-item pairs only: LCA exactly at /root excludes same-item pairs.
  EXPECT_EQ(result.value().tuples.size(), kItems * kItems - kItems);
}

TEST_F(TwigDeadlineTest, TightDeadlineReturnsWellFormedPartialResult) {
  ExecuteOptions options;
  options.deadline_ms = 1;
  auto result = generator_->Execute(Terms(), {cross_}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CompleteResult& partial = result.value();
  if (!partial.deadline_exceeded) {
    // Machine outran the budget; the result must then be the full set.
    EXPECT_EQ(partial.tuples.size(), kItems * kItems - kItems);
    return;
  }
  EXPECT_LT(partial.tuples.size(), kItems * kItems - kItems);
  // Whatever was emitted before the cut must be fully correct tuples.
  for (const ResultTuple& tuple : partial.tuples) {
    ASSERT_EQ(tuple.nodes.size(), 2u);
    EXPECT_EQ(tuple.nodes[0].doc, tuple.nodes[1].doc);
    EXPECT_EQ(xml::CommonPrefixLength(tuple.nodes[0].dewey,
                                      tuple.nodes[1].dewey),
              1u);  // joined exactly at /root
    EXPECT_NE(tuple.paths[0], store::kInvalidPathId);
    EXPECT_NE(tuple.paths[1], store::kInvalidPathId);
  }
}

}  // namespace
}  // namespace seda::twig
