// src/net/ integration tests: frame codec unit coverage plus a real
// loopback server (ephemeral port) driven by BlockingClient — byte-for-byte
// equivalence against the in-process service, malformed/oversized frames,
// transport deadline injection, admission-control shedding, pipelined "id"
// correlation and graceful-shutdown draining.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"
#include "data/generators.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"

namespace seda::net {
namespace {

// --- Frame codec --------------------------------------------------------

TEST(FrameTest, RoundTripsSingleAndConcatenatedFrames) {
  FrameDecoder decoder;
  const std::string a = R"({"method":"statz"})";
  const std::string b = std::string(1000, 'x');
  const std::string bytes = EncodeFrame(a) + EncodeFrame(b) + EncodeFrame("");
  decoder.Feed(bytes.data(), bytes.size());
  auto first = decoder.Next();
  ASSERT_EQ(first.event, FrameDecoder::Event::kFrame);
  EXPECT_EQ(first.payload, a);
  auto second = decoder.Next();
  ASSERT_EQ(second.event, FrameDecoder::Event::kFrame);
  EXPECT_EQ(second.payload, b);
  auto third = decoder.Next();
  ASSERT_EQ(third.event, FrameDecoder::Event::kFrame);
  EXPECT_EQ(third.payload, "");
  EXPECT_EQ(decoder.Next().event, FrameDecoder::Event::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, ReassemblesByteAtATime) {
  FrameDecoder decoder;
  const std::string frame = EncodeFrame(R"({"k":7})");
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Feed(&frame[i], 1);
    EXPECT_EQ(decoder.Next().event, FrameDecoder::Event::kNeedMore) << i;
  }
  decoder.Feed(&frame[frame.size() - 1], 1);
  auto result = decoder.Next();
  ASSERT_EQ(result.event, FrameDecoder::Event::kFrame);
  EXPECT_EQ(result.payload, R"({"k":7})");
}

TEST(FrameTest, RejectsBadMagicImmediatelyAndStays) {
  FrameDecoder decoder;
  const std::string http = "GET / HTTP/1.1\r\n";
  decoder.Feed(http.data(), 1);  // 'G' alone already mismatches
  auto result = decoder.Next();
  ASSERT_EQ(result.event, FrameDecoder::Event::kError);
  EXPECT_NE(result.error.find("magic"), std::string::npos);
  // Sticky: even a valid frame afterwards cannot resurrect the stream.
  const std::string valid = EncodeFrame("{}");
  decoder.Feed(valid.data(), valid.size());
  EXPECT_EQ(decoder.Next().event, FrameDecoder::Event::kError);
}

TEST(FrameTest, RejectsOversizedLengthWithoutBuffering) {
  FrameDecoder decoder(/*max_payload_bytes=*/1024);
  std::string header = "SEDA";
  const uint32_t huge = 0xFFFFFFFF;
  header.append(reinterpret_cast<const char*>(&huge), 4);
  decoder.Feed(header.data(), header.size());
  auto result = decoder.Next();
  ASSERT_EQ(result.event, FrameDecoder::Event::kError);
  EXPECT_NE(result.error.find("exceeds"), std::string::npos);
}

// --- Loopback server ----------------------------------------------------

/// One scenario-corpus engine shared by every server test (read-only).
core::Seda* SharedSeda() {
  static core::Seda* seda = [] {
    auto* built = new core::Seda();
    data::PopulateScenario(built->mutable_store());
    if (!built->Finalize().ok()) return static_cast<core::Seda*>(nullptr);
    return built;
  }();
  return seda;
}

constexpr const char* kSearchEnvelope =
    R"json({"method":"search","query":"(name, *) AND (*, china)","k":5})json";

struct TestServer {
  explicit TestServer(ServerOptions options = ServerOptions{}) {
    options.io_threads = 2;
    options.worker_threads = options.worker_threads ? options.worker_threads : 2;
    service = std::make_unique<api::SedaService>(SharedSeda());
    server = std::make_unique<Server>(service.get(), options);
    start_status = server->Start();
  }

  BlockingClient Connect() {
    BlockingClient client;
    EXPECT_TRUE(
        client.Connect("127.0.0.1", server->port(), /*recv_timeout_ms=*/10000)
            .ok());
    return client;
  }

  std::unique_ptr<api::SedaService> service;
  std::unique_ptr<Server> server;
  Status start_status;
};

/// Search response bytes with the volatile timing field zeroed; everything
/// else — ranking, summaries, engine counters — must match exactly.
std::string CanonicalSearchBytes(const std::string& response_json) {
  auto decoded = api::DecodeSearchResponseDto(response_json);
  EXPECT_TRUE(decoded.ok()) << response_json;
  api::SearchResponseDto response = std::move(decoded).value();
  response.stats.elapsed_ms = 0;
  return Encode(response);
}

TEST(NetServerTest, ResponsesAreByteIdenticalToDirectHandle) {
  ASSERT_NE(SharedSeda(), nullptr);
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok()) << fixture.start_status.ToString();
  // A second service over the same snapshot plays "in-process caller".
  api::SedaService direct(SharedSeda());
  BlockingClient client = fixture.Connect();
  const char* envelopes[] = {
      kSearchEnvelope,
      R"json({"method":"search","query":"(*, pacific)","k":3})json",
      R"json({"method":"search","query":"(name, china OR canada)"})json",
  };
  for (const char* envelope : envelopes) {
    SCOPED_TRACE(envelope);
    auto over_wire = client.Call(envelope);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    EXPECT_EQ(CanonicalSearchBytes(over_wire.value()),
              CanonicalSearchBytes(direct.Handle(envelope)));
  }
}

TEST(NetServerTest, ConcurrentClientsAllGetExactResponses) {
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok());
  api::SedaService direct(SharedSeda());
  const std::string expected = CanonicalSearchBytes(direct.Handle(kSearchEnvelope));
  constexpr int kClients = 8;
  constexpr int kCallsEach = 5;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", fixture.server->port(), 10000).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        auto response = client.Call(kSearchEnvelope);
        if (!response.ok()) {
          ++failures;
          return;
        }
        if (CanonicalSearchBytes(response.value()) != expected) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(fixture.server->stats().frames_received.load(),
            static_cast<uint64_t>(kClients * kCallsEach));
}

TEST(NetServerTest, MalformedFrameGetsErrorFrameThenClose) {
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  ASSERT_TRUE(client.SendRaw("GET / HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  auto response = client.ReadFrame();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto decoded = api::Json::Parse(response.value());
  ASSERT_TRUE(decoded.ok());
  const api::Json* status = decoded.value().Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->Find("code")->AsString(), "InvalidArgument");
  // After the error frame the server closes; no reset, a clean EOF.
  auto eof = client.ReadFrame();
  ASSERT_FALSE(eof.ok());
  EXPECT_NE(eof.status().ToString().find("closed"), std::string::npos);
  EXPECT_EQ(fixture.server->stats().protocol_errors.load(), 1u);
}

TEST(NetServerTest, OversizedFrameIsRefusedCleanly) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  TestServer fixture(options);
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  ASSERT_TRUE(client.Send(std::string(1024, 'x')).ok());
  auto response = client.ReadFrame();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("exceeds"), std::string::npos);
  EXPECT_NE(response.value().find("InvalidArgument"), std::string::npos);
}

TEST(NetServerTest, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok());
  {
    BlockingClient client = fixture.Connect();
    // Header promises 64 bytes, sends 10, disconnects.
    std::string partial = EncodeFrame(std::string(64, 'y')).substr(0, 18);
    ASSERT_TRUE(client.SendRaw(partial).ok());
  }
  BlockingClient second = fixture.Connect();
  auto response = second.Call(kSearchEnvelope);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(api::DecodeSearchResponseDto(response.value()).ok());
}

TEST(NetServerTest, TransportDeadlineIsInjectedIntoEnvelope) {
  ServerOptions options;
  options.request_timeout_ms = 1234;
  TestServer fixture(options);
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  // No client deadline: the transport budget fills deadline_ms.
  auto injected = client.Call(kSearchEnvelope);
  ASSERT_TRUE(injected.ok());
  auto decoded = api::DecodeSearchResponseDto(injected.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().stats.deadline_ms, 1234u);
  // A looser client deadline gets capped down to the transport budget.
  auto capped = client.Call(
      R"json({"method":"search","query":"(*, pacific)","deadline_ms":99999})json");
  ASSERT_TRUE(capped.ok());
  auto capped_decoded = api::DecodeSearchResponseDto(capped.value());
  ASSERT_TRUE(capped_decoded.ok());
  EXPECT_EQ(capped_decoded.value().stats.deadline_ms, 1234u);
  // A tighter client deadline survives untouched.
  auto tight = client.Call(
      R"json({"method":"search","query":"(*, pacific)","deadline_ms":600})json");
  ASSERT_TRUE(tight.ok());
  auto tight_decoded = api::DecodeSearchResponseDto(tight.value());
  ASSERT_TRUE(tight_decoded.ok());
  EXPECT_EQ(tight_decoded.value().stats.deadline_ms, 600u);
}

TEST(NetServerTest, PipelinedResponsesEchoCorrelationIds) {
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  constexpr int kPipelined = 6;
  for (int i = 0; i < kPipelined; ++i) {
    api::Json envelope = api::Json::Parse(kSearchEnvelope).value();
    envelope.Set("id", api::Json::Uint(static_cast<uint64_t>(100 + i)));
    ASSERT_TRUE(client.Send(envelope.Write()).ok());
  }
  std::set<uint64_t> seen;
  for (int i = 0; i < kPipelined; ++i) {
    auto response = client.ReadFrame();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto parsed = api::Json::Parse(response.value());
    ASSERT_TRUE(parsed.ok());
    const api::Json* id = parsed.value().Find("id");
    ASSERT_NE(id, nullptr) << response.value();
    seen.insert(id->AsUint());
  }
  std::set<uint64_t> expected;
  for (int i = 0; i < kPipelined; ++i) expected.insert(100 + i);
  EXPECT_EQ(seen, expected);
}

/// Extracts the envelope-level status code ("" when the response has none).
std::string EnvelopeCode(const std::string& response_json) {
  auto parsed = api::Json::Parse(response_json);
  if (!parsed.ok()) return "<unparseable>";
  const api::Json* status = parsed.value().Find("status");
  if (status == nullptr || status->Find("code") == nullptr) return "";
  return status->Find("code")->AsString();
}

TEST(NetServerTest, TinyQueueShedsWithWellFormedOverloadedFrames) {
  ServerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  TestServer fixture(options);
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  // One burst write of far more requests than worker + queue can hold: the
  // IO thread decodes them back-to-back, so most must be shed inline.
  constexpr int kBurst = 32;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += EncodeFrame(kSearchEnvelope);
  ASSERT_TRUE(client.SendRaw(burst).ok());
  int ok_count = 0;
  int shed_count = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto response = client.ReadFrame();
    ASSERT_TRUE(response.ok()) << "request " << i << " lost: "
                               << response.status().ToString();
    const std::string code = EnvelopeCode(response.value());
    if (code == "Unavailable") {
      EXPECT_NE(response.value().find("overloaded"), std::string::npos);
      ++shed_count;
    } else {
      EXPECT_TRUE(api::DecodeSearchResponseDto(response.value()).ok());
      ++ok_count;
    }
  }
  // Load shedding contract: every request gets a well-formed answer (no
  // resets, no silent drops) and overload actually sheds.
  EXPECT_EQ(ok_count + shed_count, kBurst);
  EXPECT_GT(shed_count, 0);
  EXPECT_GT(ok_count, 0);
  EXPECT_EQ(fixture.server->stats().requests_shed.load(),
            static_cast<uint64_t>(shed_count));
}

TEST(NetServerTest, ConnectionRateLimitShedsDeterministically) {
  ServerOptions options;
  options.admission.per_connection_rps = 0.0001;  // bucket never holds 1 token
  TestServer fixture(options);
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  auto response = client.Call(kSearchEnvelope);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(EnvelopeCode(response.value()), "Unavailable");
  EXPECT_NE(response.value().find("rate"), std::string::npos);
}

TEST(NetServerTest, SessionRateLimitShedsAcrossConnections) {
  ServerOptions options;
  options.admission.per_session_rps = 0.0001;
  TestServer fixture(options);
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient a = fixture.Connect();
  BlockingClient b = fixture.Connect();
  const std::string request =
      R"json({"method":"search","session_id":"tenant1","query":"(name, *)"})json";
  auto from_a = a.Call(request);
  auto from_b = b.Call(request);
  ASSERT_TRUE(from_a.ok());
  ASSERT_TRUE(from_b.ok());
  EXPECT_EQ(EnvelopeCode(from_a.value()), "Unavailable");
  EXPECT_EQ(EnvelopeCode(from_b.value()), "Unavailable");
  // One-shot requests (no session_id) skip the per-session limiter.
  auto anonymous = a.Call(kSearchEnvelope);
  ASSERT_TRUE(anonymous.ok());
  EXPECT_NE(EnvelopeCode(anonymous.value()), "Unavailable");
}

TEST(NetServerTest, ConnectionCapRefusesAtTheDoor) {
  ServerOptions options;
  options.admission.max_connections = 1;
  TestServer fixture(options);
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient first = fixture.Connect();
  auto warmup = first.Call(kSearchEnvelope);  // connection fully registered
  ASSERT_TRUE(warmup.ok());
  BlockingClient second = fixture.Connect();
  auto refused = second.ReadFrame();
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(EnvelopeCode(refused.value()), "Unavailable");
  EXPECT_EQ(fixture.server->stats().connections_refused.load(), 1u);
}

TEST(NetServerTest, StatzOverTheWireCarriesTransportCounters) {
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  ASSERT_TRUE(client.Call(R"({"method":"create_session","session_id":"s1"})").ok());
  ASSERT_TRUE(client.Call(kSearchEnvelope).ok());
  auto response = client.Call(R"({"method":"statz"})");
  ASSERT_TRUE(response.ok());
  auto statz = api::DecodeStatzResponse(response.value());
  ASSERT_TRUE(statz.ok()) << response.value();
  EXPECT_EQ(statz.value().sessions, 1u);
  EXPECT_EQ(statz.value().sessions_created, 1u);
  bool found_search = false;
  for (const api::MethodStatsDto& method : statz.value().methods) {
    if (method.method == "search") {
      found_search = true;
      EXPECT_EQ(method.count, 1u);
    }
  }
  EXPECT_TRUE(found_search);
  EXPECT_GT(statz.value().cumulative.docs_scored, 0u);
  bool found_frames = false;
  for (const auto& [name, value] : statz.value().transport) {
    if (name == "frames_received") {
      found_frames = true;
      EXPECT_GE(value, 2u);
    }
  }
  EXPECT_TRUE(found_frames) << "transport section missing";
}

TEST(NetServerTest, GracefulShutdownDrainsInFlightRequests) {
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok());
  BlockingClient client = fixture.Connect();
  constexpr int kPipelined = 4;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) burst += EncodeFrame(kSearchEnvelope);
  ASSERT_TRUE(client.SendRaw(burst).ok());
  // The burst went out in one write; once the first response arrives the
  // server has decoded (and admitted or shed) all four frames. Stopping now
  // makes the remaining three genuinely in flight during the drain.
  auto first = client.ReadFrame();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  fixture.server->Stop();
  // Every admitted-or-shed request still gets a well-formed frame; after
  // the drain the server closes cleanly (EOF, not a reset).
  int well_formed = 1;
  for (int i = 1; i < kPipelined; ++i) {
    auto response = client.ReadFrame();
    ASSERT_TRUE(response.ok())
        << "request " << i << " dropped in drain: "
        << response.status().ToString();
    const std::string code = EnvelopeCode(response.value());
    if (code == "Unavailable" ||
        api::DecodeSearchResponseDto(response.value()).ok()) {
      ++well_formed;
    }
  }
  EXPECT_EQ(well_formed, kPipelined);
  // And then a clean EOF, never a reset.
  auto eof = client.ReadFrame();
  EXPECT_FALSE(eof.ok());
}

TEST(NetServerTest, StoppedServerRefusesNewConnectionsPolitely) {
  TestServer fixture;
  ASSERT_TRUE(fixture.start_status.ok());
  fixture.server->Stop();
  BlockingClient late;
  // The listen socket is gone; connect must fail fast (refused), never hang.
  EXPECT_FALSE(late.Connect("127.0.0.1", fixture.server->port(), 1000).ok());
}

}  // namespace
}  // namespace seda::net
