#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "dataguide/dataguide.h"
#include "store/document_store.h"

namespace seda::data {
namespace {

TEST(ScenarioTest, DocumentInventory) {
  store::DocumentStore store;
  PopulateScenario(&store);
  EXPECT_EQ(store.DocumentCount(), 11u);
  // Figure 2 fragment contents.
  EXPECT_EQ(store.GetContent({0, xml::DeweyId::Parse("1.1")}), "United States");
  EXPECT_EQ(store.GetContent({4, xml::DeweyId::Parse("1.1")}), "Mexico");
}

TEST(ScenarioTest, SchemaEvolutionGdpVsGdpPpp) {
  store::DocumentStore store;
  PopulateScenario(&store);
  const store::PathDictionary& dict = store.paths();
  store::PathId gdp = dict.Find("/country/economy/GDP");
  store::PathId gdp_ppp = dict.Find("/country/economy/GDP_ppp");
  ASSERT_NE(gdp, store::kInvalidPathId);
  ASSERT_NE(gdp_ppp, store::kInvalidPathId);
  EXPECT_EQ(dict.DocCount(gdp), 3u);      // 2002, 2003, 2004 docs
  EXPECT_EQ(dict.DocCount(gdp_ppp), 3u);  // 2005 x2, 2006
}

TEST(FactbookTest, SmallScaleDeterministic) {
  WorldFactbookGenerator::Options options;
  options.scale = 0.05;
  store::DocumentStore a, b;
  WorldFactbookGenerator(options).Populate(&a);
  WorldFactbookGenerator(options).Populate(&b);
  EXPECT_EQ(a.DocumentCount(), b.DocumentCount());
  EXPECT_EQ(a.TotalNodeCount(), b.TotalNodeCount());
  EXPECT_EQ(a.paths().size(), b.paths().size());
}

TEST(FactbookTest, SchemaEvolutionAcrossYears) {
  WorldFactbookGenerator::Options options;
  options.scale = 0.1;
  store::DocumentStore store;
  WorldFactbookGenerator(options).Populate(&store);
  const store::PathDictionary& dict = store.paths();
  EXPECT_NE(dict.Find("/country/economy/GDP"), store::kInvalidPathId);
  EXPECT_NE(dict.Find("/country/economy/GDP_ppp"), store::kInvalidPathId);
  // Both variants coexist in the combined collection but never in one doc.
  store::PathId gdp = dict.Find("/country/economy/GDP");
  store::PathId ppp = dict.Find("/country/economy/GDP_ppp");
  for (store::DocId d = 0; d < store.DocumentCount(); ++d) {
    const auto& paths = store.DocumentPathSet(d);
    bool has_gdp = std::binary_search(paths.begin(), paths.end(), gdp);
    bool has_ppp = std::binary_search(paths.begin(), paths.end(), ppp);
    EXPECT_FALSE(has_gdp && has_ppp) << "doc " << d;
  }
}

TEST(FactbookTest, TerritoriesUseDifferentRoot) {
  WorldFactbookGenerator::Options options;
  options.scale = 0.1;
  store::DocumentStore store;
  WorldFactbookGenerator(options).Populate(&store);
  store::PathId country = store.paths().Find("/country");
  store::PathId territory = store.paths().Find("/territory");
  ASSERT_NE(country, store::kInvalidPathId);
  ASSERT_NE(territory, store::kInvalidPathId);
  EXPECT_EQ(store.paths().DocCount(country) + store.paths().DocCount(territory),
            store.DocumentCount());
}

TEST(FactbookTest, FullScaleMatchesPaperStatistics) {
  store::DocumentStore store;
  WorldFactbookGenerator().Populate(&store);
  // 6 years x (263 countries + 4 territories) = 1602 ~ paper's 1600.
  EXPECT_EQ(store.DocumentCount(), 1602u);
  // /country in 1578 of them ~ paper's 1577/1600.
  store::PathId country = store.paths().Find("/country");
  EXPECT_EQ(store.paths().DocCount(country), 1578u);
  // Refugees path in exactly 186 documents (paper: 186).
  store::PathId refugees = store.paths().Find(
      "/country/transnational_issues/refugees/country_of_origin");
  ASSERT_NE(refugees, store::kInvalidPathId);
  EXPECT_EQ(store.paths().DocCount(refugees), 186u);
  // Distinct path count on the order of the paper's 1984.
  EXPECT_GT(store.paths().size(), 1200u);
  EXPECT_LT(store.paths().size(), 3000u);
}

TEST(FactbookTest, UnitedStatesContextsAllMaterialize) {
  store::DocumentStore store;
  WorldFactbookGenerator().Populate(&store);
  size_t found = 0;
  for (const std::string& path : WorldFactbookGenerator::UnitedStatesContexts()) {
    if (store.paths().Find(path) != store::kInvalidPathId) ++found;
  }
  // All 27 contexts exist as paths in the generated collection.
  EXPECT_EQ(found, WorldFactbookGenerator::UnitedStatesContexts().size());
  EXPECT_EQ(found, 27u);
}

TEST(MondialTest, EntityCountsAndLinks) {
  MondialGenerator::Options options;
  options.scale = 0.05;
  store::DocumentStore store;
  MondialGenerator(options).Populate(&store);
  EXPECT_GT(store.DocumentCount(), 100u);
  // IDREF attributes reference existing ids.
  std::set<std::string> ids;
  store.ForEachNode([&](const store::NodeId&, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kAttribute && node->name() == "id") {
      ids.insert(node->text());
    }
  });
  size_t dangling = 0;
  store.ForEachNode([&](const store::NodeId&, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kAttribute && node->name() == "idref") {
      if (!ids.count(node->text())) ++dangling;
    }
  });
  EXPECT_EQ(dangling, 0u);
}

TEST(MondialTest, FullScaleDocumentCount) {
  store::DocumentStore store;
  MondialGenerator().Populate(&store);
  EXPECT_EQ(store.DocumentCount(), 5563u);  // Table 1
}

TEST(GoogleBaseTest, TypesProduceExactGuideCount) {
  GoogleBaseGenerator::Options options;
  options.documents = 1000;  // scaled for test speed
  store::DocumentStore store;
  GoogleBaseGenerator(options).Populate(&store);
  EXPECT_EQ(store.DocumentCount(), 1000u);
  dataguide::DataguideCollection::Options dg;
  dg.overlap_threshold = 0.4;
  auto guides = dataguide::DataguideCollection::Build(store, dg);
  EXPECT_EQ(guides.size(), 88u);  // Table 1: 88 dataguides
}

TEST(RecipeMLTest, ThreeStructuralVariants) {
  RecipeMLGenerator::Options options;
  options.documents = 300;
  store::DocumentStore store;
  RecipeMLGenerator(options).Populate(&store);
  dataguide::DataguideCollection::Options dg;
  dg.overlap_threshold = 0.4;
  auto guides = dataguide::DataguideCollection::Build(store, dg);
  // Variants share most paths, so the 40% threshold merges them down to a
  // handful (paper: 3).
  EXPECT_LE(guides.size(), 3u);
}

TEST(GeneratorsTest, NamePoolStable) {
  const auto& pool = CountryNamePool();
  EXPECT_GT(pool.size(), 200u);
  EXPECT_EQ(pool[0], "United States");
  EXPECT_EQ(&CountryNamePool(), &CountryNamePool());
}

}  // namespace
}  // namespace seda::data
