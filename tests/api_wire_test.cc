#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "api/wire.h"

namespace seda::api {
namespace {

/// The wire contract: for every DTO the canonical encoding is byte-stable
/// across a decode/encode cycle — Encode(Decode(Encode(x))) == Encode(x).
template <typename T, typename DecodeFn>
void ExpectByteStable(const T& value, DecodeFn&& decode, const char* what) {
  const std::string first = Encode(value);
  auto decoded = decode(first);
  ASSERT_TRUE(decoded.ok()) << what << ": " << decoded.status().ToString()
                            << "\njson: " << first;
  EXPECT_EQ(Encode(decoded.value()), first) << what;
}

/// A string exercising every escape class: quote, backslash, named control
/// escapes, an arbitrary control byte, and multi-byte UTF-8 passthrough.
const char* kNastyString = "a\"b\\c\n\r\t\b\f\x01 z\xc3\xa9\xe2\x88\xa7";

StatsDto SampleStats() {
  StatsDto stats;
  stats.epoch = 7;
  stats.elapsed_ms = 12.75;
  stats.deadline_ms = 50;
  stats.deadline_exceeded = true;
  stats.candidates_total = 12345;
  stats.docs_considered = 99;
  stats.docs_scored = 42;
  stats.tuples_scored = 1000;
  stats.early_terminated = true;
  stats.postings_advanced = 77;
  stats.docs_skipped = 3;
  stats.heap_evictions = 8;
  stats.hub_links_skipped = 0;
  // Saturated budget counters must survive the wire exactly.
  stats.tuples_trimmed = std::numeric_limits<uint64_t>::max();
  stats.bfs_expansions = 4242;
  stats.intersection_probes = 171717;
  stats.sketch_hits = 13;
  return stats;
}

NodeRefDto SampleNode() {
  NodeRefDto node;
  node.doc = 4294967295u;  // uint32 max
  node.dewey = "1.2.2.1";
  node.path = "/country/economy/import_partners/item/trade_country";
  node.content = kNastyString;
  return node;
}

TEST(WireTest, WireStatusByteStable) {
  WireStatus ok;
  ExpectByteStable(ok, DecodeWireStatus, "OK status");
  WireStatus error;
  error.code = "InvalidArgument";
  error.message = kNastyString;
  ExpectByteStable(error, DecodeWireStatus, "error status");
}

TEST(WireTest, WireStatusRoundTripsThroughStatus) {
  Status status = Status::FailedPrecondition("call Search first");
  WireStatus wire = WireStatus::FromStatus(status);
  EXPECT_EQ(wire.code, "FailedPrecondition");
  Status back = wire.ToStatus();
  EXPECT_EQ(back.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(back.message(), "call Search first");
  EXPECT_TRUE(WireStatus().ToStatus().ok());
}

TEST(WireTest, StatsByteStable) {
  ExpectByteStable(SampleStats(), DecodeStatsDto, "stats");
  ExpectByteStable(StatsDto{}, DecodeStatsDto, "default stats");
}

TEST(WireTest, NodeRefByteStable) {
  ExpectByteStable(SampleNode(), DecodeNodeRefDto, "node ref");
  ExpectByteStable(NodeRefDto{}, DecodeNodeRefDto, "default node ref");
}

TEST(WireTest, TupleByteStable) {
  TupleDto tuple;
  tuple.nodes = {SampleNode(), NodeRefDto{}};
  tuple.content_score = 0.1;  // classic repeating-binary double
  tuple.connection_size = 6;
  tuple.score = 0.1 / 7.0;
  ExpectByteStable(tuple, DecodeTupleDto, "tuple");
}

TEST(WireTest, ContextDtosByteStable) {
  ContextEntryDto entry;
  entry.path = "/country/name";
  entry.doc_count = 1577;
  entry.node_count = 1600;
  ExpectByteStable(entry, DecodeContextEntryDto, "context entry");

  ContextBucketDto bucket;
  bucket.term = "(*, \"United States\")";
  bucket.entries = {entry, ContextEntryDto{}};
  ExpectByteStable(bucket, DecodeContextBucketDto, "context bucket");
}

TEST(WireTest, ConnectionDtosByteStable) {
  ConnectionStepDto step;
  step.move = "link";
  step.path = "/sea/bordering";
  step.label = "borders";
  ExpectByteStable(step, DecodeConnectionStepDto, "connection step");

  ConnectionDto conn;
  conn.term_a = 0;
  conn.term_b = 2;
  conn.from_path = "/country/name";
  conn.to_path = "/country/economy/import_partners/item/percentage";
  conn.steps = {step, ConnectionStepDto{}};
  conn.instance_count = 12;
  conn.false_positive = true;
  ExpectByteStable(conn, DecodeConnectionDto, "connection");
}

TEST(WireTest, SessionLifecycleDtosByteStable) {
  CreateSessionRequest create;
  create.session_id = "analyst-7";
  create.ttl_ms = 60000;
  ExpectByteStable(create, DecodeCreateSessionRequest, "create request");
  ExpectByteStable(CreateSessionRequest{}, DecodeCreateSessionRequest,
                   "default create request");

  CreateSessionResponse created;
  created.session_id = "s1";
  created.epoch = 3;
  ExpectByteStable(created, DecodeCreateSessionResponse, "create response");

  CloseSessionRequest close;
  close.session_id = "s1";
  ExpectByteStable(close, DecodeCloseSessionRequest, "close request");
  CloseSessionResponse closed;
  closed.status.code = "NotFound";
  closed.status.message = "gone";
  ExpectByteStable(closed, DecodeCloseSessionResponse, "close response");
}

TEST(WireTest, SearchDtosByteStable) {
  SearchRequest request;
  request.session_id = "s1";
  request.query = R"((*, "United States") AND (trade_country, *))";
  request.k = 25;
  request.deadline_ms = 100;
  ExpectByteStable(request, DecodeSearchRequest, "search request");

  SearchResponseDto response;
  TupleDto tuple;
  tuple.nodes = {SampleNode()};
  tuple.score = 1.5;
  response.topk = {tuple};
  ContextBucketDto bucket;
  bucket.term = "term";
  response.contexts = {bucket};
  ConnectionDto conn;
  conn.term_b = 1;
  response.connections = {conn};
  response.stats = SampleStats();
  ExpectByteStable(response, DecodeSearchResponseDto, "search response");
  ExpectByteStable(SearchResponseDto{}, DecodeSearchResponseDto,
                   "empty search response");
}

TEST(WireTest, RefineRequestByteStable) {
  RefineRequest request;
  request.session_id = "s1";
  request.chosen_paths = {{"/country/name"}, {}, {"/a", "/b"}};
  request.k = 50;
  request.deadline_ms = 9;
  ExpectByteStable(request, DecodeRefineRequest, "refine request");
  auto decoded = DecodeRefineRequest(Encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().k, 50u);
}

TEST(WireTest, CompleteDtosByteStable) {
  CompleteRequest request;
  request.session_id = "s1";
  request.term_paths = {"/country/name", "/country/year"};
  request.connections = {0, 3};
  ExpectByteStable(request, DecodeCompleteRequest, "complete request");

  CompleteResponseDto response;
  response.tuples = {{SampleNode(), NodeRefDto{}}, {}};
  response.twig_count = 2;
  response.cross_twig_joins = 1;
  response.stats = SampleStats();
  ExpectByteStable(response, DecodeCompleteResponseDto, "complete response");
}

TEST(WireTest, CubeDtosByteStable) {
  CubeRequest request;
  request.session_id = "s1";
  request.add_facts = {"GDP"};
  request.remove_dimensions = {"year"};
  request.merge_fact_tables = false;
  request.group_dims = {"year", "import-country"};
  request.agg_fn = "avg";
  request.measure = "import-trade-percentage";
  ExpectByteStable(request, DecodeCubeRequest, "cube request");

  TableDto table;
  table.name = "import-trade-percentage";
  table.columns = {"country", "year", "value"};
  table.key_columns = {0, 1};
  table.rows = {{"United States", "2002", "18.1"}, {"", kNastyString, ""}};
  ExpectByteStable(table, DecodeTableDto, "table");

  CellDto cell;
  cell.group = {"2002"};
  cell.value = 40.5;
  cell.count = 3;
  ExpectByteStable(cell, DecodeCellDto, "cell");
  CellDto nan_cell;
  nan_cell.value = std::nan("");  // encodes as null, decodes as NaN
  ExpectByteStable(nan_cell, DecodeCellDto, "NaN cell");

  CubeResponseDto response;
  response.fact_tables = {table};
  response.dimension_tables = {TableDto{}};
  response.warnings = {"column 1 matched no catalog entry"};
  response.cells = {cell};
  response.cell_total = 121.5;
  response.stats = SampleStats();
  ExpectByteStable(response, DecodeCubeResponseDto, "cube response");

  // A NaN total (e.g. an avg over empty groups summed in) encodes as null
  // and must decode back to NaN, not 0 — byte-stably.
  response.cell_total = std::nan("");
  ExpectByteStable(response, DecodeCubeResponseDto, "NaN cell_total");
  auto decoded = DecodeCubeResponseDto(Encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::isnan(decoded.value().cell_total));
}

TEST(WireTest, DecodedValuesMatchNotJustBytes) {
  // Byte stability could in principle hide a codec that maps everything to
  // defaults; spot-check actual field fidelity.
  SearchRequest request;
  request.session_id = "s9";
  request.query = "(a, \"x y\")";
  request.k = 3;
  request.deadline_ms = 77;
  auto decoded = DecodeSearchRequest(Encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().session_id, "s9");
  EXPECT_EQ(decoded.value().query, "(a, \"x y\")");
  EXPECT_EQ(decoded.value().k, 3u);
  EXPECT_EQ(decoded.value().deadline_ms, 77u);

  StatsDto stats = SampleStats();
  auto stats_decoded = DecodeStatsDto(Encode(stats));
  ASSERT_TRUE(stats_decoded.ok());
  EXPECT_EQ(stats_decoded.value().tuples_trimmed,
            std::numeric_limits<uint64_t>::max());
  EXPECT_DOUBLE_EQ(stats_decoded.value().elapsed_ms, 12.75);
  EXPECT_TRUE(stats_decoded.value().deadline_exceeded);

  NodeRefDto node = SampleNode();
  auto node_decoded = DecodeNodeRefDto(Encode(node));
  ASSERT_TRUE(node_decoded.ok());
  EXPECT_EQ(node_decoded.value().doc, 4294967295u);
  EXPECT_EQ(node_decoded.value().content, kNastyString);
}

TEST(WireTest, ParserRejectsMalformedJson) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("[1 2]").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":01x}").ok());
  // Errors carry a byte offset.
  auto bad = Json::Parse("{\"a\": ?}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("offset 6"), std::string::npos)
      << bad.status().message();
}

TEST(WireTest, ParserHandlesEscapesAndNumbers) {
  auto parsed = Json::Parse(
      "{\"s\":\"a\\u00e9\\n\\\"\",\"i\":18446744073709551615,"
      "\"d\":-2.5e3,\"b\":true,\"n\":null,\"surrogate\":\"\\ud83d\\ude00\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& json = parsed.value();
  EXPECT_EQ(json.Find("s")->AsString(), "a\xc3\xa9\n\"");
  EXPECT_EQ(json.Find("i")->AsUint(), std::numeric_limits<uint64_t>::max());
  EXPECT_DOUBLE_EQ(json.Find("d")->AsDouble(), -2500.0);
  EXPECT_TRUE(json.Find("b")->AsBool());
  EXPECT_TRUE(json.Find("n")->is_null());
  EXPECT_EQ(json.Find("surrogate")->AsString(), "\xf0\x9f\x98\x80");
}

TEST(WireTest, ParserRejectsLoneSurrogates) {
  // A lone surrogate would encode to ill-formed UTF-8 (CESU-8) and leak
  // invalid bytes into "canonical" output; the strict parser refuses it.
  EXPECT_FALSE(Json::Parse("\"\\ud800\"").ok());
  EXPECT_FALSE(Json::Parse("\"\\ud800x\"").ok());
  EXPECT_FALSE(Json::Parse("\"\\udc00\"").ok());
  EXPECT_FALSE(Json::Parse("\"\\ud800\\u0041\"").ok());
}

TEST(WireTest, DecodersRejectNonObjects) {
  EXPECT_FALSE(DecodeSearchRequest("[1,2,3]").ok());
  EXPECT_FALSE(DecodeSearchRequest("42").ok());
  EXPECT_FALSE(DecodeCubeResponseDto("not json at all").ok());
}

TEST(WireTest, StatzDtosByteStable) {
  MethodStatsDto method;
  method.method = "search";
  method.count = 100;
  method.errors = 3;
  method.deadline_exceeded = 2;
  method.total_ms = 1234.5;
  method.latency_buckets = {0, 1, 2, 90, 7, 0};
  ExpectByteStable(method, DecodeMethodStatsDto, "method stats");
  ExpectByteStable(MethodStatsDto{}, DecodeMethodStatsDto,
                   "default method stats");

  ExpectByteStable(StatzRequest{}, DecodeStatzRequest, "statz request");

  StatzResponse statz;
  statz.epoch = 4;
  statz.sessions = 12;
  statz.sessions_created = 40;
  statz.sessions_evicted = 28;
  statz.uptime_ms = 98765.25;
  statz.bucket_bounds_ms = {0.25, 1, 10, 100};
  statz.methods = {method};
  statz.cumulative = SampleStats();
  statz.transport = {{"frames_received", 1000}, {"requests_shed", 17}};
  ExpectByteStable(statz, DecodeStatzResponse, "statz response");
  ExpectByteStable(StatzResponse{}, DecodeStatzResponse,
                   "default statz response");
}

}  // namespace
}  // namespace seda::api
