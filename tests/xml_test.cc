#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "xml/dewey.h"
#include "xml/document.h"
#include "xml/parser.h"

namespace seda::xml {
namespace {

TEST(DeweyTest, ParseAndToString) {
  DeweyId id = DeweyId::Parse("1.2.3");
  EXPECT_EQ(id.ToString(), "1.2.3");
  EXPECT_EQ(id.depth(), 3u);
  EXPECT_TRUE(DeweyId::Parse("").empty());
}

TEST(DeweyTest, ParseRejectsGarbage) {
  EXPECT_TRUE(DeweyId::Parse("1.x.3").empty());
}

TEST(DeweyTest, ParseRejectsOverflowingComponents) {
  // 2^32 and above used to wrap around uint32 silently, producing a bogus
  // but valid-looking id (4294967296 -> 0). The whole string is rejected.
  EXPECT_TRUE(DeweyId::Parse("4294967296").empty());
  EXPECT_TRUE(DeweyId::Parse("1.4294967296.2").empty());
  EXPECT_TRUE(DeweyId::Parse("99999999999999999999").empty());
  // The largest representable component still parses.
  DeweyId max = DeweyId::Parse("1.4294967295");
  ASSERT_EQ(max.depth(), 2u);
  EXPECT_EQ(max.components()[1], 4294967295u);
}

TEST(DeweyTest, ParseRejectsEmptyComponents) {
  EXPECT_TRUE(DeweyId::Parse("1..2").empty());
  EXPECT_TRUE(DeweyId::Parse(".").empty());
}

TEST(DeweyTest, ChildAndParent) {
  DeweyId root({1});
  DeweyId child = root.Child(2);
  EXPECT_EQ(child.ToString(), "1.2");
  EXPECT_EQ(child.Parent(), root);
  EXPECT_TRUE(root.Parent().empty());
}

TEST(DeweyTest, AncestorRelations) {
  DeweyId a = DeweyId::Parse("1.2");
  DeweyId b = DeweyId::Parse("1.2.3.1");
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_FALSE(b.IsAncestorOf(a));
  EXPECT_FALSE(a.IsAncestorOf(a));
  EXPECT_TRUE(a.IsAncestorOrSelf(a));
  EXPECT_FALSE(DeweyId::Parse("1.3").IsAncestorOf(b));
}

TEST(DeweyTest, DocumentOrderIsLexicographic) {
  EXPECT_LT(DeweyId::Parse("1"), DeweyId::Parse("1.1"));
  EXPECT_LT(DeweyId::Parse("1.1"), DeweyId::Parse("1.2"));
  EXPECT_LT(DeweyId::Parse("1.2.9"), DeweyId::Parse("1.10"));
  EXPECT_FALSE(DeweyId::Parse("1.2") < DeweyId::Parse("1.2"));
}

TEST(DeweyTest, TreeDistance) {
  DeweyId a = DeweyId::Parse("1.2.2.1.1");  // trade_country
  DeweyId b = DeweyId::Parse("1.2.2.1.2");  // percentage (same item)
  EXPECT_EQ(TreeDistance(a, b), 2u);
  DeweyId c = DeweyId::Parse("1.2.2.2.2");  // percentage of the other item
  EXPECT_EQ(TreeDistance(a, c), 4u);
  EXPECT_EQ(TreeDistance(a, a), 0u);
}

TEST(DeweyTest, CommonPrefixLength) {
  EXPECT_EQ(CommonPrefixLength(DeweyId::Parse("1.2.3"), DeweyId::Parse("1.2.4")), 2u);
  EXPECT_EQ(CommonPrefixLength(DeweyId::Parse("1"), DeweyId::Parse("2")), 0u);
}

// Property: document order is a strict total order (irreflexive, asymmetric,
// transitive) over randomly generated ids.
TEST(DeweyPropertyTest, StrictTotalOrderOnRandomIds) {
  seda::Rng rng(77);
  std::vector<DeweyId> ids;
  for (int i = 0; i < 60; ++i) {
    std::vector<uint32_t> comps;
    size_t depth = 1 + rng.Uniform(5);
    for (size_t d = 0; d < depth; ++d) {
      comps.push_back(static_cast<uint32_t>(1 + rng.Uniform(4)));
    }
    ids.emplace_back(comps);
  }
  for (const auto& a : ids) {
    EXPECT_FALSE(a < a);
    for (const auto& b : ids) {
      if (a < b) {
        EXPECT_FALSE(b < a);
      }
      if (!(a < b) && !(b < a)) {
        EXPECT_EQ(a, b);
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

// Property: an ancestor always sorts before its descendants, and Hash is
// consistent with equality.
TEST(DeweyPropertyTest, AncestorSortsFirstAndHashConsistent) {
  seda::Rng rng(78);
  for (int i = 0; i < 50; ++i) {
    std::vector<uint32_t> comps{1};
    for (size_t d = 0; d < 1 + rng.Uniform(4); ++d) {
      comps.push_back(static_cast<uint32_t>(1 + rng.Uniform(3)));
    }
    DeweyId node(comps);
    DeweyId parent = node.Parent();
    EXPECT_TRUE(parent < node);
    EXPECT_TRUE(parent.IsAncestorOf(node));
    EXPECT_EQ(node.Hash(), DeweyId(comps).Hash());
    EXPECT_NE(node.Hash(), parent.Hash());
  }
}

TEST(DocumentTest, BuildAndNavigate) {
  Document doc("test");
  Node* root = doc.CreateRoot("country");
  Node* name = root->AddElement("name");
  name->AddText("United States");
  Node* economy = root->AddElement("economy");
  Node* gdp = economy->AddElement("GDP");
  gdp->AddText("10.082T");

  EXPECT_EQ(root->dewey().ToString(), "1");
  EXPECT_EQ(name->dewey().ToString(), "1.1");
  EXPECT_EQ(gdp->dewey().ToString(), "1.2.1");
  EXPECT_EQ(gdp->ContextPath(), "/country/economy/GDP");
  EXPECT_EQ(root->ContentString(), "United States 10.082T");
  EXPECT_EQ(doc.FindByDewey(DeweyId::Parse("1.2.1")), gdp);
  EXPECT_EQ(doc.FindByDewey(DeweyId::Parse("1.9")), nullptr);
  EXPECT_EQ(doc.CountNodes(), 6u);  // country, name, #text, economy, GDP, #text
}

TEST(DocumentTest, AttributesGetAtPathsWithAtSign) {
  Document doc("test");
  Node* root = doc.CreateRoot("sea");
  Node* attr = root->AddAttribute("id", "sea-1");
  EXPECT_EQ(attr->ContextPath(), "/sea/@id");
  EXPECT_EQ(attr->ContentString(), "sea-1");
}

TEST(DocumentTest, FindChildReturnsFirstMatch) {
  Document doc("t");
  Node* root = doc.CreateRoot("a");
  root->AddElement("b");
  Node* b2 = root->AddElement("b");
  EXPECT_NE(root->FindChild("b"), b2);
  EXPECT_EQ(root->FindChild("missing"), nullptr);
}

TEST(ParserTest, ParsesSimpleDocument) {
  auto result = Parser::Parse("<a><b>hello</b><c x=\"1\"/></a>", "doc");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Document& doc = *result.value();
  EXPECT_EQ(doc.root()->name(), "a");
  EXPECT_EQ(doc.root()->children().size(), 2u);
  EXPECT_EQ(doc.root()->FindChild("b")->ContentString(), "hello");
  EXPECT_EQ(doc.root()->FindChild("c")->FindChild("x")->text(), "1");
}

TEST(ParserTest, DecodesEntities) {
  auto result = Parser::Parse("<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>", "doc");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->root()->ContentString(), "x & y <z> AB");
}

TEST(ParserTest, HandlesCdataAndComments) {
  auto result =
      Parser::Parse("<a><!-- note --><![CDATA[1 < 2 & 3]]></a>", "doc");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->root()->ContentString(), "1 < 2 & 3");
}

TEST(ParserTest, SkipsPrologAndDoctype) {
  auto result = Parser::Parse(
      "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a ANY> ]><a>x</a>", "doc");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->root()->ContentString(), "x");
}

TEST(ParserTest, RejectsMismatchedTags) {
  auto result = Parser::Parse("<a><b></a></b>", "doc");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), seda::StatusCode::kParseError);
}

TEST(ParserTest, RejectsUnterminatedInput) {
  EXPECT_FALSE(Parser::Parse("<a><b>", "doc").ok());
  EXPECT_FALSE(Parser::Parse("<a attr=>x</a>", "doc").ok());
  EXPECT_FALSE(Parser::Parse("<a attr=\"v>x</a>", "doc").ok());
  EXPECT_FALSE(Parser::Parse("", "doc").ok());
  EXPECT_FALSE(Parser::Parse("just text", "doc").ok());
}

TEST(ParserTest, RejectsTrailingContent) {
  EXPECT_FALSE(Parser::Parse("<a/><b/>", "doc").ok());
}

TEST(ParserTest, RejectsUnknownEntity) {
  EXPECT_FALSE(Parser::Parse("<a>&bogus;</a>", "doc").ok());
}

TEST(ParserTest, EnforcesTheSharedDocumentDepthBound) {
  // The persistence decoder rejects trees deeper than kMaxDocumentDepth, so
  // the parser must too — otherwise a parseable document could be saved but
  // never loaded. One below the bound parses; one above fails cleanly.
  auto nested = [](uint32_t depth) {
    std::string xml;
    for (uint32_t i = 0; i < depth; ++i) xml += "<d>";
    for (uint32_t i = 0; i < depth; ++i) xml += "</d>";
    return xml;
  };
  EXPECT_TRUE(Parser::Parse(nested(kMaxDocumentDepth), "doc").ok());
  auto too_deep = Parser::Parse(nested(kMaxDocumentDepth + 1), "doc");
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.status().code(), StatusCode::kParseError);
}

TEST(SerializeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeText("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
}

TEST(SerializeTest, RoundTripFixpoint) {
  const char* input =
      "<country><name>United &amp; States</name>"
      "<economy year=\"2006\"><GDP_ppp>12.31T</GDP_ppp></economy></country>";
  auto first = Parser::Parse(input, "doc");
  ASSERT_TRUE(first.ok());
  std::string serialized = Serialize(*first.value());
  auto second = Parser::Parse(serialized, "doc");
  ASSERT_TRUE(second.ok());
  // Fixpoint: serializing the reparsed document must be identical.
  EXPECT_EQ(Serialize(*second.value()), serialized);
  EXPECT_EQ(second.value()->CountNodes(), first.value()->CountNodes());
}

// Property: random documents round-trip through serialize -> parse with node
// counts and content preserved.
TEST(SerializePropertyTest, RandomDocumentsRoundTrip) {
  seda::Rng rng(99);
  for (int iteration = 0; iteration < 25; ++iteration) {
    Document doc("rand");
    Node* root = doc.CreateRoot("root");
    std::vector<Node*> elements{root};
    for (int i = 0; i < 30; ++i) {
      Node* parent = elements[rng.Uniform(elements.size())];
      switch (rng.Uniform(3)) {
        case 0:
          elements.push_back(parent->AddElement("el" + std::to_string(i % 7)));
          break;
        case 1:
          parent->AddText("text " + std::to_string(rng.Uniform(100)));
          break;
        default:
          parent->AddAttribute("attr" + std::to_string(i % 5),
                               std::to_string(rng.Uniform(50)));
      }
    }
    doc.Renumber();
    std::string serialized = Serialize(doc);
    auto parsed = Parser::Parse(serialized, "rand");
    ASSERT_TRUE(parsed.ok()) << serialized;
    EXPECT_EQ(Serialize(*parsed.value()), serialized);
  }
}

TEST(ParserTest, DeweyAssignmentMatchesDocumentOrder) {
  auto result = Parser::Parse("<a><b/><c><d/></c><e/></a>", "doc");
  ASSERT_TRUE(result.ok());
  std::vector<DeweyId> order;
  result.value()->ForEachNode([&](Node* n) { order.push_back(n->dewey()); });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), 5u);  // a, b, c, d, e
}

}  // namespace
}  // namespace seda::xml
