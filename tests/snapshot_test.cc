#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/seda.h"
#include "data/generators.h"

namespace seda::core {
namespace {

constexpr const char* kQuery1 =
    R"((*, "United States") AND (trade_country, *) AND (percentage, *))";

SedaOptions ScenarioOptions() {
  SedaOptions options;
  options.value_edges.push_back(
      {"/country/name", "/country/economy/import_partners/item/trade_country",
       "trade_partner"});
  return options;
}

/// A synthetic second-epoch document crafted to land in Query 1's top-k: its
/// name contains the phrase "United States" and it carries trade_country /
/// percentage leaves, so any commit leakage into a pinned epoch changes
/// results visibly. Deliberately does NOT trade with the United States —
/// that would mint value-based edges onto the US name hub and blow up
/// cross-document tuple enumeration, which is noise for these tests.
std::string EpochTwoCountry(int i) {
  return "<country><name>New United States " + std::to_string(i) +
         "</name><year>2010</year><economy><import_partners><item>"
         "<trade_country>Canada</trade_country><percentage>" +
         std::to_string(40 + i) +
         ".5</percentage></item></import_partners></economy></country>";
}

/// Byte-exact serialization of everything a SearchResponse carries that a
/// user can observe: ranked tuples with exact (hex-float) scores, both
/// summaries, and the serving epoch unless masked for cross-epoch compares.
std::string ResponseFingerprint(const SearchResponse& response,
                                const store::DocumentStore& store,
                                bool include_epoch = true) {
  std::string out;
  char buf[96];
  for (const topk::ScoredTuple& tuple : response.topk) {
    out += tuple.ToString(store);
    std::snprintf(buf, sizeof(buf), " c=%a n=%zu s=%a\n", tuple.content_score,
                  tuple.connection_size, tuple.score);
    out += buf;
  }
  out += response.contexts.ToString();
  out += response.connections.ToString();
  if (include_epoch) {
    out += "epoch=" + std::to_string(response.stats.epoch);
  }
  return out;
}

/// Canonical dump of everything a snapshot serves (mirrors the Finalize
/// fingerprint in parallel_test.cc), for incremental-vs-cold equivalence.
std::string EpochFingerprint(const Snapshot& snap) {
  std::string out;
  out += "docs=" + std::to_string(snap.store().DocumentCount());
  out += " nodes=" + std::to_string(snap.store().TotalNodeCount());
  out += " paths=" + std::to_string(snap.store().paths().size());
  out += " edges=" + std::to_string(snap.data_graph().EdgeCount());
  out += " terms=" + std::to_string(snap.index().TermCount());
  out += " indexed=" + std::to_string(snap.index().IndexedNodeCount());
  out += "\n";
  const auto& guides = snap.dataguides();
  out += "guides=" + std::to_string(guides.size());
  out += " merges=" + std::to_string(guides.build_stats().merges);
  out += " absorbed=" + std::to_string(guides.build_stats().absorbed);
  out += " links=" + std::to_string(guides.LinkCount());
  out += "\n";
  for (const auto& guide : guides.guides()) {
    out += "g:";
    for (auto path : guide.paths()) out += " " + std::to_string(path);
    out += " |";
    for (auto doc : guide.members()) out += " " + std::to_string(doc);
    out += "\n";
  }
  for (const char* term :
       {"united", "states", "new", "trade_country", "percentage", "gdp"}) {
    out += std::string("t:") + term;
    out += " df=" + std::to_string(snap.index().DocumentFrequency(term));
    out += " maxtf=" + std::to_string(snap.index().MaxTermFrequency(term));
    for (const auto& posting : snap.index().Postings(term)) {
      out += " " + posting.node.ToString() + "/" + std::to_string(posting.path);
      for (uint32_t pos : posting.positions) out += "." + std::to_string(pos);
    }
    out += " paths:";
    for (auto path : snap.index().TermPaths(term)) {
      out += " " + std::to_string(path);
    }
    out += "\n";
  }
  return out;
}

TEST(CommitTest, AddXmlAndCommitAfterFinalizeServesNewDocuments) {
  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());
  auto before = seda.Search(kQuery1);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->stats.epoch, 1u);

  for (int i = 0; i < 3; ++i) {
    auto id = seda.AddXml(EpochTwoCountry(i), "newland-" + std::to_string(i));
    ASSERT_TRUE(id.ok());
  }
  auto info = seda.Commit();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->epoch, 2u);
  EXPECT_EQ(info->docs_added, 3u);
  EXPECT_TRUE(info->incremental);

  auto after = seda.Search(kQuery1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.epoch, 2u);
  // The new countries import from the United States, so they must surface.
  EXPECT_NE(ResponseFingerprint(before.value(), seda.store(), false),
            ResponseFingerprint(after.value(), seda.store(), false));
  EXPECT_GT(seda.index().DocumentFrequency("2010"), 0u);
}

TEST(CommitTest, IncrementalCommitIsByteIdenticalToColdBuild) {
  // Cold: one epoch over the full corpus.
  Seda cold;
  data::PopulateScenario(cold.mutable_store());
  for (int i = 0; i < 5; ++i) {
    cold.AddXml(EpochTwoCountry(i), "newland-" + std::to_string(i));
  }
  ASSERT_TRUE(cold.Finalize(ScenarioOptions()).ok());

  // Incremental: same corpus split across two commits.
  Seda inc;
  data::PopulateScenario(inc.mutable_store());
  ASSERT_TRUE(inc.Finalize(ScenarioOptions()).ok());
  for (int i = 0; i < 5; ++i) {
    inc.AddXml(EpochTwoCountry(i), "newland-" + std::to_string(i));
  }
  auto info = inc.Commit();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_TRUE(info->incremental);

  EXPECT_EQ(EpochFingerprint(*cold.snapshot()), EpochFingerprint(*inc.snapshot()));

  auto cold_response = cold.Search(kQuery1);
  auto inc_response = inc.Search(kQuery1);
  ASSERT_TRUE(cold_response.ok());
  ASSERT_TRUE(inc_response.ok());
  // Epochs differ by construction (1 vs 2); everything observable must not.
  EXPECT_EQ(ResponseFingerprint(cold_response.value(), cold.store(), false),
            ResponseFingerprint(inc_response.value(), inc.store(), false));
  EXPECT_EQ(cold_response->stats.epoch, 1u);
  EXPECT_EQ(inc_response->stats.epoch, 2u);
}

TEST(CommitTest, ForcedFullRebuildMatchesIncrementalEpoch) {
  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());
  for (int i = 0; i < 4; ++i) {
    seda.AddXml(EpochTwoCountry(i), "newland-" + std::to_string(i));
  }
  ASSERT_TRUE(seda.Commit().ok());
  std::string incremental = EpochFingerprint(*seda.snapshot());

  Seda::CommitOptions full;
  full.force_full_rebuild = true;
  auto info = seda.Commit(full);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->incremental);
  EXPECT_EQ(EpochFingerprint(*seda.snapshot()), incremental);
}

TEST(CommitTest, EmptyCommitIsANoOp) {
  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());
  auto first = seda.snapshot();
  auto info = seda.Commit();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_EQ(info->docs_added, 0u);
  EXPECT_EQ(seda.snapshot().get(), first.get());
}

TEST(SessionTest, PinsItsEpochAcrossCommits) {
  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());

  auto pinned = seda.NewSession();
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->epoch(), 1u);
  auto first = pinned->Search(kQuery1);
  ASSERT_TRUE(first.ok());
  std::string expected =
      ResponseFingerprint(first.value(), pinned->snapshot().store());

  for (int i = 0; i < 3; ++i) {
    seda.AddXml(EpochTwoCountry(i), "newland-" + std::to_string(i));
  }
  ASSERT_TRUE(seda.Commit().ok());

  // The pinned session replays the exact pre-commit epoch...
  auto replay = pinned->Search(kQuery1);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->stats.epoch, 1u);
  EXPECT_EQ(ResponseFingerprint(replay.value(), pinned->snapshot().store()),
            expected);

  // ...while a fresh session serves the new epoch.
  auto fresh = seda.NewSession();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epoch(), 2u);
  auto updated = fresh->Search(kQuery1);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->stats.epoch, 2u);
  EXPECT_NE(ResponseFingerprint(updated.value(), fresh->snapshot().store(), false),
            ResponseFingerprint(replay.value(), pinned->snapshot().store(), false));
}

TEST(SessionTest, CarriesRefinementStateThroughTheFig6Loop) {
  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());
  auto session = seda.NewSession();
  ASSERT_TRUE(session.ok());

  // Refinement before any search is a session-state error.
  EXPECT_FALSE(session->RefineContexts({{}, {}, {}}).ok());
  EXPECT_FALSE(session->CompleteResults({}, {}).ok());

  ASSERT_TRUE(session->Search(kQuery1).ok());
  EXPECT_EQ(session->rounds(), 1u);
  ASSERT_TRUE(session->has_query());

  const char* kName = "/country/name";
  const char* kTrade = "/country/economy/import_partners/item/trade_country";
  const char* kPct = "/country/economy/import_partners/item/percentage";
  auto refined = session->RefineContexts({{kName}, {kTrade}, {kPct}});
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_EQ(session->rounds(), 2u);
  ASSERT_EQ(session->refinement_history().size(), 1u);
  for (const auto& bucket : refined->contexts.buckets) {
    EXPECT_EQ(bucket.entries.size(), 1u);
  }

  // The refined query is the session's current query: CompleteResults picks
  // it up without re-passing it.
  auto result = session->CompleteResults({kName, kTrade, kPct}, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tuples.size(), 8u);

  // A fresh Search resets the refinement trail.
  ASSERT_TRUE(session->Search("(name, *)").ok());
  EXPECT_TRUE(session->refinement_history().empty());
  EXPECT_EQ(session->rounds(), 3u);
}

TEST(SearchStatsTest, ServingEpochIsSurfacedInEveryResponse) {
  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());

  auto r1 = seda.Search(kQuery1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->stats.epoch, 1u);

  seda.AddXml(EpochTwoCountry(0), "newland-0");
  ASSERT_TRUE(seda.Commit().ok());
  auto r2 = seda.Search(kQuery1);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.epoch, 2u);

  // The raw searcher (outside any snapshot) reports epoch 0: "no epoch".
  topk::SearchStats stats;
  topk::TopKSearcher searcher(&seda.index(), &seda.data_graph());
  auto query = seda.Parse(kQuery1);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(searcher.Search(query.value(), topk::TopKOptions{}, &stats).ok());
  EXPECT_EQ(stats.epoch, 0u);
}

/// The acceptance-criterion race: a Session pinned to epoch 1 must return
/// byte-identical results to a single-epoch reference run while real
/// Commit()s (parse + graph/index/dataguide builds + snapshot swap) land on
/// another thread.
TEST(SnapshotConcurrencyTest, SearchDuringCommitMatchesSingleEpochRunExactly) {
  // Reference: an isolated single-epoch instance over the same corpus.
  Seda reference;
  data::PopulateScenario(reference.mutable_store());
  ASSERT_TRUE(reference.Finalize(ScenarioOptions()).ok());
  auto reference_response = reference.Search(kQuery1);
  ASSERT_TRUE(reference_response.ok());
  const std::string expected =
      ResponseFingerprint(reference_response.value(), reference.store());

  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());
  auto session = seda.NewSession();
  ASSERT_TRUE(session.ok());

  constexpr int kCommits = 4;
  constexpr int kDocsPerCommit = 5;
  std::atomic<bool> done{false};
  std::atomic<int> commits_ok{0};
  std::thread writer([&] {
    for (int c = 0; c < kCommits; ++c) {
      for (int d = 0; d < kDocsPerCommit; ++d) {
        int i = c * kDocsPerCommit + d;
        auto id = seda.AddXml(EpochTwoCountry(i), "newland-" + std::to_string(i));
        EXPECT_TRUE(id.ok());
      }
      auto info = seda.Commit();
      EXPECT_TRUE(info.ok()) << info.status().ToString();
      if (info.ok()) commits_ok.fetch_add(1);
    }
    done.store(true);
  });

  // Keep querying the pinned epoch while the commits land; every response
  // must be byte-identical to the single-epoch reference.
  size_t checks = 0;
  while (!done.load(std::memory_order_acquire) || checks < 3) {
    auto response = session->Search(kQuery1);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(ResponseFingerprint(response.value(), session->snapshot().store()),
              expected)
        << "pinned epoch perturbed after " << checks << " checks";
    ++checks;

    // The legacy shim races the swap too: it may serve any published epoch,
    // but never a torn one.
    auto shim = seda.Search(kQuery1);
    ASSERT_TRUE(shim.ok());
    EXPECT_GE(shim->stats.epoch, 1u);
    EXPECT_LE(shim->stats.epoch, 1u + kCommits);
    EXPECT_FALSE(shim->topk.empty());
  }
  writer.join();
  ASSERT_EQ(commits_ok.load(), kCommits);
  EXPECT_GE(checks, 3u);

  // After the dust settles: the pinned session still replays epoch 1, and
  // the final epoch serves all added documents.
  auto replay = session->Search(kQuery1);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(ResponseFingerprint(replay.value(), session->snapshot().store()),
            expected);
  auto final_snapshot = seda.snapshot();
  EXPECT_EQ(final_snapshot->epoch(), 1u + kCommits);
  EXPECT_EQ(final_snapshot->store().DocumentCount(),
            reference.store().DocumentCount() + kCommits * kDocsPerCommit);
}

}  // namespace
}  // namespace seda::core
