#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/seda.h"
#include "data/generators.h"

namespace seda {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, RunParallelInlineWithoutPool) {
  std::vector<int> order;
  RunParallel(nullptr, 5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, SubmittedTaskExceptionSurfacesAtWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&] { ran.fetch_add(1); });
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([&] { ran.fetch_add(1); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The worker survives the throw and the pool stays usable.
  pool.Submit([&] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, ReusableAcrossParallelForCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

/// Loads the same mixed corpus into a Seda instance: generator-produced
/// factbook documents (eager path) plus hand-written linked documents queued
/// through the deferred Seda::AddXml path.
void LoadCorpus(core::Seda* seda) {
  // The paper's worked-example corpus (factbook + mondial + google-base
  // scenario docs), small enough that the Query 1 search stays cheap.
  data::PopulateScenario(seda->mutable_store());

  for (int i = 0; i < 12; ++i) {
    std::string n = std::to_string(i);
    std::string next = std::to_string((i + 1) % 12);
    seda->AddXml("<city id='c" + n + "'><name>City " + n +
                     "</name><population>" + std::to_string(10000 + i * 37) +
                     "</population><twin idref='c" + next + "'/></city>",
                 "city-" + n + ".xml");
  }
  seda->AddXml(
      "<atlas><entry href='#c3'><note>gateway to the delta</note></entry>"
      "<entry href='#c7'><note>united trade hub</note></entry></atlas>",
      "atlas.xml");
}

core::SedaOptions PipelineOptions(size_t num_threads) {
  core::SedaOptions options;
  options.num_threads = num_threads;
  options.value_edges.push_back(
      {"/country/name", "/country/economy/import_partners/item/trade_country",
       "trade_partner"});
  return options;
}

/// Canonical dump of everything Finalize() builds that queries observe.
std::string FinalizeFingerprint(const core::Seda& seda) {
  std::string out;
  out += "docs=" + std::to_string(seda.store().DocumentCount());
  out += " nodes=" + std::to_string(seda.store().TotalNodeCount());
  out += " paths=" + std::to_string(seda.store().paths().size());
  out += " edges=" + std::to_string(seda.data_graph().EdgeCount());
  out += " terms=" + std::to_string(seda.index().TermCount());
  out += " indexed=" + std::to_string(seda.index().IndexedNodeCount());
  out += "\n";

  // Full dataguide summary: per-guide path ids and member docs, in order.
  const auto& guides = seda.dataguides();
  out += "guides=" + std::to_string(guides.size());
  out += " merges=" + std::to_string(guides.build_stats().merges);
  out += " absorbed=" + std::to_string(guides.build_stats().absorbed);
  out += "\n";
  for (const auto& guide : guides.guides()) {
    out += "g:";
    for (auto path : guide.paths()) out += " " + std::to_string(path);
    out += " |";
    for (auto doc : guide.members()) out += " " + std::to_string(doc);
    out += "\n";
  }

  // Posting lists (node ids, paths, positions) for a sample of terms.
  for (const char* term : {"united", "states", "city", "population", "gdp",
                           "trade_country", "delta"}) {
    out += std::string("t:") + term;
    out += " df=" + std::to_string(seda.index().DocumentFrequency(term));
    for (const auto& posting : seda.index().Postings(term)) {
      out += " " + posting.node.ToString() + "/" + std::to_string(posting.path);
      for (uint32_t pos : posting.positions) out += "." + std::to_string(pos);
    }
    out += " paths:";
    for (auto path : seda.index().TermPaths(term)) {
      out += " " + std::to_string(path);
    }
    out += "\n";
  }
  return out;
}

TEST(FinalizeParallelDeterminism, OneVsManyWorkersProduceIdenticalIndexes) {
  core::Seda sequential;
  LoadCorpus(&sequential);
  ASSERT_TRUE(sequential.Finalize(PipelineOptions(1)).ok());

  core::Seda parallel;
  LoadCorpus(&parallel);
  ASSERT_TRUE(parallel.Finalize(PipelineOptions(4)).ok());

  EXPECT_EQ(FinalizeFingerprint(sequential), FinalizeFingerprint(parallel));

  // Search results must match end to end: top-k tuples, context summary and
  // connection summary all derive from the merged indexes.
  const std::string query =
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))";
  auto seq_response = sequential.Search(query);
  auto par_response = parallel.Search(query);
  ASSERT_TRUE(seq_response.ok()) << seq_response.status().ToString();
  ASSERT_TRUE(par_response.ok()) << par_response.status().ToString();

  ASSERT_EQ(seq_response->topk.size(), par_response->topk.size());
  for (size_t i = 0; i < seq_response->topk.size(); ++i) {
    EXPECT_EQ(seq_response->topk[i].ToString(sequential.store()),
              par_response->topk[i].ToString(parallel.store()));
    EXPECT_DOUBLE_EQ(seq_response->topk[i].score, par_response->topk[i].score);
  }
  EXPECT_EQ(seq_response->connections.ToString(),
            par_response->connections.ToString());
  ASSERT_EQ(seq_response->contexts.buckets.size(),
            par_response->contexts.buckets.size());
  for (size_t b = 0; b < seq_response->contexts.buckets.size(); ++b) {
    EXPECT_EQ(seq_response->contexts.buckets[b].entries.size(),
              par_response->contexts.buckets[b].entries.size());
  }
}

TEST(FinalizeParallelDeterminism, RepeatedParallelRunsAreStable) {
  std::set<std::string> fingerprints;
  for (int run = 0; run < 3; ++run) {
    core::Seda seda;
    LoadCorpus(&seda);
    ASSERT_TRUE(seda.Finalize(PipelineOptions(4)).ok());
    fingerprints.insert(FinalizeFingerprint(seda));
  }
  EXPECT_EQ(fingerprints.size(), 1u);
}

TEST(SedaAddXml, DeferredParseAssignsPromisedDocIds) {
  core::Seda seda;
  auto a = seda.AddXml("<a><b>one</b></a>", "a.xml");
  auto b = seda.AddXml("<a><b>two</b></a>", "b.xml");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  ASSERT_TRUE(seda.Finalize().ok());
  EXPECT_EQ(seda.store().DocumentCount(), 2u);
  EXPECT_EQ(seda.store().document(a.value()).name(), "a.xml");
  EXPECT_EQ(seda.store().document(b.value()).name(), "b.xml");
}

TEST(SedaAddXml, StagedAfterFinalizeUntilCommit) {
  core::Seda seda;
  seda.AddXml("<a><b>first</b></a>", "first.xml");
  ASSERT_TRUE(seda.Finalize().ok());

  // Post-finalize AddXml is legal now: the document is staged and invisible
  // to the published epoch until the next Commit() swaps in its successor.
  auto late = seda.AddXml("<a><b>late</b></a>", "late.xml");
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late.value(), 1u);
  EXPECT_EQ(seda.store().DocumentCount(), 1u);

  auto info = seda.Commit();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->epoch, 2u);
  EXPECT_EQ(info->docs_added, 1u);
  EXPECT_TRUE(info->incremental);
  EXPECT_EQ(seda.store().DocumentCount(), 2u);
  EXPECT_EQ(seda.store().document(late.value()).name(), "late.xml");
}

TEST(SedaAddXml, CommitBeforeFinalizeRejected) {
  core::Seda seda;
  seda.AddXml("<a><b>x</b></a>", "x.xml");
  auto info = seda.Commit();
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SedaAddXml, EagerLoadAfterDeferredQueueIsRejected) {
  core::Seda seda;
  auto promised = seda.AddXml("<a><b>deferred</b></a>", "deferred.xml");
  ASSERT_TRUE(promised.ok());
  EXPECT_EQ(promised.value(), 0u);
  // This eager load would steal DocId 0 from the queued document.
  ASSERT_TRUE(seda.mutable_store()->AddXml("<a><b>eager</b></a>", "eager.xml").ok());
  Status status = seda.Finalize();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SedaAddXml, MalformedQueuedDocumentFailsFinalize) {
  core::Seda seda;
  seda.AddXml("<a><b>ok</b></a>", "good.xml");
  seda.AddXml("<a><unclosed>", "bad.xml");
  Status status = seda.Finalize();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace seda
