#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "column/column_store.h"
#include "core/seda.h"
#include "cube/cube_builder.h"
#include "data/generators.h"
#include "persist/format.h"

namespace seda::column {
namespace {

constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade =
    "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct =
    "/country/economy/import_partners/item/percentage";

std::string TempImagePath(const std::string& name) {
  return ::testing::TempDir() + "seda_column_" + name + "_" +
         std::to_string(::getpid()) + ".img";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Permissive thresholds: every leaf-pure path becomes a column, so tests can
/// reason about exactly which paths qualify.
InferenceOptions AllLeaves() {
  InferenceOptions options;
  options.min_doc_support = 0.0;
  options.min_docs = 1;
  return options;
}

TEST(ColumnInferenceTest, ScenarioColumnsAndTypes) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  auto columns = ColumnStore::Build(store, AllLeaves());
  ASSERT_NE(columns, nullptr);
  EXPECT_EQ(columns->doc_count(), store.DocumentCount());

  const Column* name = columns->Find(kName);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->type(), ValueType::kString);
  EXPECT_EQ(name->depth(), 2u);
  // The scenario mixes <country> docs with territory/other shapes; the
  // column covers exactly the country documents.
  EXPECT_GT(name->docs_present(), 0u);
  EXPECT_LT(name->docs_present(), store.DocumentCount());

  const Column* year = columns->Find(kYear);
  ASSERT_NE(year, nullptr);
  EXPECT_EQ(year->type(), ValueType::kInt64);
  ASSERT_EQ(year->dict_size(), year->int64_values().size());

  // "17.8%" etc.: numeric-looking but not parseable, stays a string column.
  const Column* pct = columns->Find(kPct);
  ASSERT_NE(pct, nullptr);
  EXPECT_EQ(pct->type(), ValueType::kString);
  EXPECT_EQ(pct->depth(), 5u);

  // Interior element paths never qualify (leaf purity).
  EXPECT_EQ(columns->Find("/country"), nullptr);
  EXPECT_EQ(columns->Find("/country/economy"), nullptr);

  // Path-id lookup agrees with string lookup.
  EXPECT_EQ(columns->FindByPathId(name->path_id()), name);

  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
}

TEST(ColumnInferenceTest, ProbesMatchTheTreeWalk) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  auto columns = ColumnStore::Build(store, AllLeaves());
  const Column* name = columns->Find(kName);
  ASSERT_NE(name, nullptr);

  for (store::DocId d = 0; d < store.DocumentCount(); ++d) {
    uint32_t row = 0;
    if (!name->DocPresent(d)) {
      EXPECT_EQ(name->DocSingleton(d, &row), Column::Presence::kMissing);
      continue;
    }
    ASSERT_EQ(name->DocSingleton(d, &row), Column::Presence::kValue)
        << "doc " << d;
    // The row's Dewey resolves back through FindRow and names a real node
    // whose content is the row's value.
    uint32_t again = 0;
    ASSERT_TRUE(name->FindRow(d, name->RowDewey(row), name->depth(), &again));
    EXPECT_EQ(again, row);
    store::NodeId id{d, xml::DeweyId(std::vector<uint32_t>(
                            name->RowDewey(row),
                            name->RowDewey(row) + name->depth()))};
    EXPECT_EQ(std::string(name->RowValue(row)), store.GetContent(id));
  }

  // trade_country repeats per document: DocSingleton must say duplicate,
  // while a per-item Dewey prefix still isolates exactly one row.
  const Column* trade = columns->Find(kTrade);
  ASSERT_NE(trade, nullptr);
  uint32_t row = 0;
  EXPECT_EQ(trade->DocSingleton(0, &row), Column::Presence::kDuplicate);
  const uint32_t* first = trade->RowDewey(trade->DocRowBegin(0));
  EXPECT_EQ(trade->PrefixSingleton(0, first, trade->depth() - 1, &row),
            Column::Presence::kValue);
  EXPECT_EQ(row, trade->DocRowBegin(0));
}

TEST(ColumnInferenceTest, ThresholdsGateInference) {
  store::DocumentStore store;
  data::PopulateScenario(&store);

  InferenceOptions disabled = AllLeaves();
  disabled.enabled = false;
  EXPECT_EQ(ColumnStore::Build(store, disabled)->size(), 0u);

  InferenceOptions unreachable = AllLeaves();
  unreachable.min_docs = store.DocumentCount() + 1;
  EXPECT_EQ(ColumnStore::Build(store, unreachable)->size(), 0u);

  InferenceOptions one = AllLeaves();
  one.max_columns = 1;
  auto capped = ColumnStore::Build(store, one);
  ASSERT_EQ(capped->size(), 1u);
  // The best-supported path wins the cap.
  auto all = ColumnStore::Build(store, AllLeaves());
  uint64_t best = 0;
  for (const Column& col : all->columns()) {
    best = std::max(best, col.docs_present());
  }
  EXPECT_EQ(capped->columns()[0].docs_present(), best);
}

TEST(ColumnAuditTest, AuditorCatchesDivergenceFromTheTrees) {
  store::DocumentStore a;
  ASSERT_TRUE(a.AddXml("<r><v>1</v><w>x</w></r>", "d0").ok());
  ASSERT_TRUE(a.AddXml("<r><v>2</v><w>y</w></r>", "d1").ok());
  auto columns = ColumnStore::Build(a, AllLeaves());
  ASSERT_GE(columns->size(), 2u);

  audit::SnapshotAuditor clean(&a, nullptr, nullptr, nullptr, columns.get());
  audit::AuditReport ok_report;
  clean.AuditColumns(&ok_report);
  EXPECT_TRUE(ok_report.ok()) << ok_report.ToString();

  // Same shape, one divergent value: the recompute must flag column.values.
  store::DocumentStore b;
  ASSERT_TRUE(b.AddXml("<r><v>1</v><w>x</w></r>", "d0").ok());
  ASSERT_TRUE(b.AddXml("<r><v>9</v><w>y</w></r>", "d1").ok());
  audit::SnapshotAuditor tampered(&b, nullptr, nullptr, nullptr,
                                  columns.get());
  audit::AuditReport bad_report;
  tampered.AuditColumns(&bad_report);
  EXPECT_TRUE(bad_report.Has("column.values")) << bad_report.ToString();

  // A store the columns were never built over: coverage must trip.
  store::DocumentStore c;
  ASSERT_TRUE(c.AddXml("<r><v>1</v><w>x</w></r>", "d0").ok());
  audit::SnapshotAuditor mismatched(&c, nullptr, nullptr, nullptr,
                                    columns.get());
  audit::AuditReport mismatch_report;
  mismatched.AuditColumns(&mismatch_report);
  EXPECT_TRUE(mismatch_report.Has("column.coverage"))
      << mismatch_report.ToString();
}

// --- Cube byte-identity: columns on vs off ------------------------------

/// Per-document first node with the given context path (synthesized complete
/// results, so the identity check does not depend on per-corpus queries).
std::vector<store::NodeId> FirstNodesByPath(const store::DocumentStore& store,
                                            const std::string& path) {
  std::vector<store::NodeId> out;
  std::vector<bool> seen(store.DocumentCount(), false);
  store.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    if (seen[id.doc] || node->ContextPath() != path) return;
    seen[id.doc] = true;
    out.push_back(id);
  });
  return out;
}

/// Builds a two-term complete result pairing each document's first
/// `fact_path` node with its first `dim_path` node.
twig::CompleteResult MakeResult(const store::DocumentStore& store,
                                const std::string& fact_path,
                                const std::string& dim_path) {
  twig::CompleteResult result;
  const store::PathId fact_id = store.paths().Find(fact_path);
  const store::PathId dim_id = store.paths().Find(dim_path);
  std::vector<store::NodeId> facts = FirstNodesByPath(store, fact_path);
  std::vector<store::NodeId> dims = FirstNodesByPath(store, dim_path);
  size_t di = 0;
  for (const store::NodeId& fact : facts) {
    while (di < dims.size() && dims[di].doc < fact.doc) ++di;
    if (di == dims.size()) break;
    if (dims[di].doc != fact.doc) continue;
    twig::ResultTuple tuple;
    tuple.nodes = {fact, dims[di]};
    tuple.paths = {fact_id, dim_id};
    result.tuples.push_back(std::move(tuple));
  }
  result.twig_count = 1;
  return result;
}

/// Builds the schema twice (columns on / off) and requires byte-identical
/// rendering. Returns the column-path scan count so callers can assert the
/// fast path actually ran.
uint64_t ExpectCubeByteIdentical(const core::Snapshot& snap,
                                 const cube::Catalog& catalog,
                                 const twig::CompleteResult& result,
                                 const char* label) {
  cube::CubeBuilder builder(&snap.store(), &catalog, &snap.columns());
  cube::CubeBuilder::Options on;
  on.use_columns = true;
  cube::CubeBuilder::Options off;
  off.use_columns = false;
  auto with = builder.Build(result, on);
  auto without = builder.Build(result, off);
  EXPECT_TRUE(with.ok()) << label << ": " << with.status().ToString();
  EXPECT_TRUE(without.ok()) << label << ": " << without.status().ToString();
  if (!with.ok() || !without.ok()) return 0;
  EXPECT_EQ(with.value().ToString(), without.value().ToString()) << label;
  EXPECT_EQ(without.value().column_rows_scanned, 0u) << label;
  return with.value().column_rows_scanned;
}

TEST(ColumnCubeTest, ByteIdenticalAcrossFiveCorpora) {
  struct Corpus {
    const char* name;
    void (*populate)(store::DocumentStore*);
  };
  const Corpus corpora[] = {
      {"scenario", [](store::DocumentStore* s) { data::PopulateScenario(s); }},
      {"factbook",
       [](store::DocumentStore* s) {
         data::WorldFactbookGenerator::Options o;
         o.scale = 0.02;
         data::WorldFactbookGenerator(o).Populate(s);
       }},
      {"mondial",
       [](store::DocumentStore* s) {
         data::MondialGenerator::Options o;
         o.scale = 0.02;
         data::MondialGenerator(o).Populate(s);
       }},
      {"googlebase",
       [](store::DocumentStore* s) {
         data::GoogleBaseGenerator::Options o;
         o.scale = 0.01;
         data::GoogleBaseGenerator(o).Populate(s);
       }},
      {"recipeml",
       [](store::DocumentStore* s) {
         data::RecipeMLGenerator::Options o;
         o.scale = 0.02;
         data::RecipeMLGenerator(o).Populate(s);
       }},
  };
  for (const Corpus& corpus : corpora) {
    core::Seda seda;
    corpus.populate(seda.mutable_store());
    ASSERT_TRUE(seda.Finalize().ok()) << corpus.name;
    auto snap = seda.snapshot();
    const ColumnStore& columns = snap->columns();
    ASSERT_GE(columns.size(), 2u) << corpus.name;

    // Fact context: the busiest column; absolute key + dimension source:
    // the best-supported other column.
    const Column* fact = nullptr;
    const Column* dim = nullptr;
    for (const Column& col : columns.columns()) {
      if (fact == nullptr || col.rows() > fact->rows()) fact = &col;
    }
    for (const Column& col : columns.columns()) {
      if (&col == fact) continue;
      if (dim == nullptr || col.docs_present() > dim->docs_present()) {
        dim = &col;
      }
    }
    ASSERT_NE(dim, nullptr) << corpus.name;

    cube::Catalog catalog;
    ASSERT_TRUE(catalog
                    .DefineFact("f", {{fact->path(),
                                       cube::RelativeKey::Parse(
                                           {dim->path(), "."})}})
                    .ok())
        << corpus.name;
    ASSERT_TRUE(catalog
                    .DefineDimension("d", {{dim->path(),
                                            cube::RelativeKey::Parse(
                                                {dim->path()})}})
                    .ok())
        << corpus.name;

    twig::CompleteResult result =
        MakeResult(snap->store(), fact->path(), dim->path());
    ASSERT_FALSE(result.tuples.empty()) << corpus.name;
    uint64_t scanned =
        ExpectCubeByteIdentical(*snap, catalog, result, corpus.name);
    EXPECT_GT(scanned, 0u) << corpus.name;
  }
}

cube::Catalog Fig3Catalog() {
  using cube::RelativeKey;
  cube::Catalog catalog;
  (void)catalog.DefineDimension(
      "country", {{kName, RelativeKey::Parse({kName, kYear})}});
  (void)catalog.DefineDimension("year",
                                {{kYear, RelativeKey::Parse({kName, kYear})}});
  (void)catalog.DefineDimension(
      "import-country", {{kTrade, RelativeKey::Parse({kName, kYear, "."})}});
  (void)catalog.DefineFact(
      "import-trade-percentage",
      {{kPct, RelativeKey::Parse({kName, kYear, "../trade_country"})}});
  return catalog;
}

std::string DeltaDoc(int i) {
  return "<country><name>Deltaland " + std::to_string(i) +
         "</name><year>2009</year><economy><GDP>" + std::to_string(700 + i) +
         "</GDP><import_partners><item><trade_country>Canada</trade_country>"
         "<percentage>33.1</percentage></item></import_partners></economy>"
         "</country>";
}

TEST(ColumnCubeTest, RelativeStepsIncrementalEpochsAndReopenedImages) {
  // The Fig. 3 catalog exercises every plan kind: absolute (/country/name,
  // /country/year), self ("."), and the sibling step ("../trade_country").
  core::Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize().ok());
  cube::Catalog catalog = Fig3Catalog();

  auto query = writer.Parse(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  ASSERT_TRUE(query.ok());
  auto result =
      writer.CompleteResults(query.value(), {kName, kTrade, kPct}, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  {
    auto snap = writer.snapshot();
    uint64_t scanned =
        ExpectCubeByteIdentical(*snap, catalog, result.value(), "epoch1");
    EXPECT_GT(scanned, 0u);
  }

  // Incremental commit: columns are rebuilt for the new epoch and the
  // identity must hold over the grown corpus.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(writer.AddXml(DeltaDoc(i), "delta-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Commit().ok());
  auto grown =
      writer.CompleteResults(query.value(), {kName, kTrade, kPct}, {});
  ASSERT_TRUE(grown.ok());
  {
    auto snap = writer.snapshot();
    ExpectCubeByteIdentical(*snap, catalog, grown.value(), "epoch2");
  }

  // Reopened image: the zero-copy loaded columns must give the same bytes
  // as both the reopened tree walk and the in-memory epoch.
  std::string path = TempImagePath("reopen");
  ASSERT_TRUE(writer.Save(path).ok());
  core::Seda reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.snapshot()->columns().size(),
            writer.snapshot()->columns().size());
  auto reopened =
      reader.CompleteResults(query.value(), {kName, kTrade, kPct}, {});
  ASSERT_TRUE(reopened.ok());
  {
    auto snap = reader.snapshot();
    ExpectCubeByteIdentical(*snap, catalog, reopened.value(), "reopened");
    cube::CubeBuilder in_memory(&writer.snapshot()->store(), &catalog,
                                &writer.snapshot()->columns());
    cube::CubeBuilder from_image(&snap->store(), &catalog, &snap->columns());
    auto a = in_memory.Build(grown.value());
    auto b = from_image.Build(reopened.value());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().ToString(), b.value().ToString());
  }
  std::remove(path.c_str());
}

// --- Persistence: stability, rebuild-when-absent, corruption ------------

TEST(ColumnPersistTest, SaveOpenSaveIsByteStable) {
  core::Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize().ok());
  std::string p1 = TempImagePath("stable1");
  std::string p2 = TempImagePath("stable2");
  std::string p3 = TempImagePath("stable3");
  ASSERT_TRUE(writer.Save(p1).ok());
  ASSERT_TRUE(writer.Save(p2).ok());
  EXPECT_EQ(ReadFile(p1), ReadFile(p2)) << "repeated Save differs";

  core::Seda reader;
  ASSERT_TRUE(reader.Open(p1).ok());
  ASSERT_TRUE(reader.Save(p3).ok());
  EXPECT_EQ(ReadFile(p1), ReadFile(p3)) << "Save after Open differs";
  for (const std::string& p : {p1, p2, p3}) std::remove(p.c_str());
}

/// Returns the section-table index of `id`, or npos.
size_t FindSection(const std::string& image, persist::SectionId id,
                   persist::SectionEntry* entry_out, size_t* entry_at) {
  persist::FileHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  for (uint64_t i = 0; i < header.section_count; ++i) {
    size_t at = header.section_table_offset + i * sizeof(persist::SectionEntry);
    persist::SectionEntry entry;
    std::memcpy(&entry, image.data() + at, sizeof(entry));
    if (entry.id == static_cast<uint32_t>(id)) {
      *entry_out = entry;
      *entry_at = at;
      return static_cast<size_t>(i);
    }
  }
  return std::string::npos;
}

TEST(ColumnPersistTest, AbsentSectionRebuildsFromTheTrees) {
  // Emulates a pre-column image: no kColumns section, but options that ask
  // for columns (the tail byte is flipped from disabled to enabled and the
  // CRCs re-sealed — exactly the shape an old writer's image has after the
  // options tail defaulting kicks in).
  core::SedaOptions options;
  options.columns.enabled = false;
  core::Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(options).ok());
  EXPECT_EQ(writer.snapshot()->columns().size(), 0u);
  std::string path = TempImagePath("absent");
  ASSERT_TRUE(writer.Save(path).ok());

  std::string image = ReadFile(path);
  persist::SectionEntry entry;
  size_t entry_at = 0;
  ASSERT_EQ(FindSection(image, persist::SectionId::kColumns, &entry, &entry_at),
            std::string::npos)
      << "disabled save still wrote a columns section";
  ASSERT_NE(FindSection(image, persist::SectionId::kOptions, &entry, &entry_at),
            std::string::npos);
  // The InferenceOptions tail sits at the end of the options payload:
  // u8 enabled + double + u64 + double + u64 = 33 bytes.
  const size_t enabled_at = entry.offset + entry.size - 33;
  ASSERT_EQ(image[enabled_at], 0);
  image[enabled_at] = 1;
  entry.crc = persist::Crc32(image.data() + entry.offset,
                             static_cast<size_t>(entry.size));
  std::memcpy(image.data() + entry_at, &entry, sizeof(entry));
  WriteFile(path, image);

  core::Seda reader;
  Status opened = reader.Open(path);
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  EXPECT_GT(reader.snapshot()->columns().size(), 0u)
      << "absent section was not rebuilt from the trees";
  // The rebuild is the same deterministic Build() a commit runs: it must
  // match a from-scratch enabled instance column for column.
  core::Seda enabled;
  data::PopulateScenario(enabled.mutable_store());
  ASSERT_TRUE(enabled.Finalize().ok());
  ASSERT_EQ(reader.snapshot()->columns().size(),
            enabled.snapshot()->columns().size());
  std::remove(path.c_str());
}

class ColumnCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Seda seda;
    data::PopulateScenario(seda.mutable_store());
    ASSERT_TRUE(seda.Finalize().ok());
    path_ = TempImagePath("corrupt");
    ASSERT_TRUE(seda.Save(path_).ok());
    image_ = ReadFile(path_);
    ASSERT_NE(
        FindSection(image_, persist::SectionId::kColumns, &entry_, &entry_at_),
        std::string::npos);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Overwrites `len` bytes at `at` inside the columns payload, re-seals the
  /// section CRC so only the structure validation can reject it, and opens.
  Status OpenWithPatch(size_t at, const void* bytes, size_t len) {
    std::string bad = image_;
    std::memcpy(bad.data() + entry_.offset + at, bytes, len);
    persist::SectionEntry entry = entry_;
    entry.crc = persist::Crc32(bad.data() + entry.offset,
                               static_cast<size_t>(entry.size));
    std::memcpy(bad.data() + entry_at_, &entry, sizeof(entry));
    WriteFile(path_, bad);
    core::Seda reader;
    return reader.Open(path_);
  }

  std::string path_;
  std::string image_;
  persist::SectionEntry entry_;
  size_t entry_at_ = 0;
};

TEST_F(ColumnCorruptionTest, RejectsHostileColumnCount) {
  const uint64_t huge = ~uint64_t{0};
  Status status = OpenWithPatch(8, &huge, sizeof(huge));
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
  EXPECT_NE(status.message().find("columns"), std::string::npos)
      << status.ToString();
}

TEST_F(ColumnCorruptionTest, RejectsDocCountMismatch) {
  const uint64_t off_by_one = 1;
  Status status = OpenWithPatch(0, &off_by_one, sizeof(off_by_one));
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
}

TEST_F(ColumnCorruptionTest, RejectsByteFlipsAcrossThePayload) {
  // Every flip must surface as a clean ParseError (or, for flips inside
  // value bytes the structure checks cannot distinguish, a clean load) —
  // never a crash or out-of-bounds read.
  for (size_t fraction = 0; fraction < 8; ++fraction) {
    const size_t at = 16 + (entry_.size - 16) * fraction / 8;
    std::string bad = image_;
    const uint8_t flipped =
        static_cast<uint8_t>(bad[entry_.offset + at]) ^ 0x3Fu;
    Status status = OpenWithPatch(at, &flipped, 1);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kParseError)
          << "flip at " << at << ": " << status.ToString();
    }
  }
}

}  // namespace
}  // namespace seda::column
