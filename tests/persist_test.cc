#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/seda.h"
#include "data/generators.h"
#include "persist/format.h"

namespace seda::core {
namespace {

constexpr const char* kQuery1 =
    R"((*, "United States") AND (trade_country, *) AND (percentage, *))";

SedaOptions ScenarioOptions() {
  SedaOptions options;
  options.value_edges.push_back(
      {"/country/name", "/country/economy/import_partners/item/trade_country",
       "trade_partner"});
  return options;
}

std::string DeltaDoc(int i) {
  return "<country><name>Deltaland " + std::to_string(i) +
         "</name><year>2009</year><economy><GDP>" + std::to_string(700 + i) +
         "</GDP><import_partners><item><trade_country>Canada</trade_country>"
         "<percentage>33.1</percentage></item></import_partners></economy>"
         "</country>";
}

std::string TempImagePath(const std::string& name) {
  // ctest -j runs every TEST as its own process; the pid keeps concurrent
  // tests (e.g. the corruption fixture's shared "corrupt" image) from
  // clobbering each other's files.
  return ::testing::TempDir() + "seda_persist_" + name + "_" +
         std::to_string(::getpid()) + ".img";
}

/// Byte-exact serialization of everything a SearchResponse carries that a
/// user can observe (mirrors snapshot_test.cc), including the serving epoch.
std::string ResponseFingerprint(const SearchResponse& response,
                                const store::DocumentStore& store,
                                bool include_epoch = true) {
  std::string out;
  char buf[96];
  for (const topk::ScoredTuple& tuple : response.topk) {
    out += tuple.ToString(store);
    std::snprintf(buf, sizeof(buf), " c=%a n=%zu s=%a\n", tuple.content_score,
                  tuple.connection_size, tuple.score);
    out += buf;
  }
  out += response.contexts.ToString();
  out += response.connections.ToString();
  if (include_epoch) {
    out += "epoch=" + std::to_string(response.stats.epoch);
  }
  return out;
}

/// Canonical dump of everything a snapshot serves (mirrors snapshot_test.cc).
std::string EpochFingerprint(const Snapshot& snap) {
  std::string out;
  out += "docs=" + std::to_string(snap.store().DocumentCount());
  out += " nodes=" + std::to_string(snap.store().TotalNodeCount());
  out += " paths=" + std::to_string(snap.store().paths().size());
  out += " edges=" + std::to_string(snap.data_graph().EdgeCount());
  out += " terms=" + std::to_string(snap.index().TermCount());
  out += " indexed=" + std::to_string(snap.index().IndexedNodeCount());
  out += "\n";
  const auto& guides = snap.dataguides();
  out += "guides=" + std::to_string(guides.size());
  out += " merges=" + std::to_string(guides.build_stats().merges);
  out += " absorbed=" + std::to_string(guides.build_stats().absorbed);
  out += " links=" + std::to_string(guides.LinkCount());
  out += "\n";
  for (const auto& guide : guides.guides()) {
    out += "g:";
    for (auto path : guide.paths()) out += " " + std::to_string(path);
    out += " |";
    for (auto doc : guide.members()) out += " " + std::to_string(doc);
    out += "\n";
  }
  for (const char* term :
       {"united", "states", "deltaland", "trade_country", "percentage", "gdp"}) {
    out += std::string("t:") + term;
    out += " df=" + std::to_string(snap.index().DocumentFrequency(term));
    out += " maxtf=" + std::to_string(snap.index().MaxTermFrequency(term));
    for (const auto& posting : snap.index().Postings(term)) {
      out += " " + posting.node.ToString() + "/" + std::to_string(posting.path);
      for (uint32_t pos : posting.positions) out += "." + std::to_string(pos);
    }
    out += " paths:";
    for (auto path : snap.index().TermPaths(term)) {
      out += " " + std::to_string(path);
    }
    out += "\n";
  }
  return out;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(PersistTest, SaveThenOpenServesByteIdenticalResponses) {
  Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(ScenarioOptions()).ok());
  std::string path = TempImagePath("roundtrip");
  ASSERT_TRUE(writer.Save(path).ok());

  Seda reader;
  Status opened = reader.Open(path);
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  ASSERT_TRUE(reader.finalized());
  EXPECT_EQ(reader.snapshot()->epoch(), 1u);

  EXPECT_EQ(EpochFingerprint(*writer.snapshot()),
            EpochFingerprint(*reader.snapshot()));
  for (const char* query :
       {kQuery1, R"((name, *))", R"((*, "Pacific Ocean") AND (name, *))",
        R"((GDP, *) AND (name, "United States"))"}) {
    auto expected = writer.Search(query);
    auto loaded = reader.Search(query);
    ASSERT_TRUE(expected.ok()) << query;
    ASSERT_TRUE(loaded.ok()) << query;
    // Epoch included: a loaded epoch is the same epoch, end to end.
    EXPECT_EQ(ResponseFingerprint(expected.value(), writer.store()),
              ResponseFingerprint(loaded.value(), reader.store()))
        << query;
  }
  std::remove(path.c_str());
}

TEST(PersistTest, RoundTripsAllGeneratorCorpora) {
  struct Corpus {
    const char* name;
    void (*populate)(store::DocumentStore*);
    const char* query;
  };
  const Corpus corpora[] = {
      {"factbook",
       [](store::DocumentStore* store) {
         data::WorldFactbookGenerator::Options options;
         options.scale = 0.02;
         data::WorldFactbookGenerator(options).Populate(store);
       },
       R"((name, *) AND (GDP, *))"},
      {"mondial",
       [](store::DocumentStore* store) {
         data::MondialGenerator::Options options;
         options.scale = 0.02;
         data::MondialGenerator(options).Populate(store);
       },
       R"((name, *) AND (population, *))"},
      {"googlebase",
       [](store::DocumentStore* store) {
         data::GoogleBaseGenerator::Options options;
         options.scale = 0.01;
         data::GoogleBaseGenerator(options).Populate(store);
       },
       R"((item, *))"},
  };
  for (const Corpus& corpus : corpora) {
    Seda writer;
    corpus.populate(writer.mutable_store());
    ASSERT_TRUE(writer.Finalize().ok()) << corpus.name;
    std::string path = TempImagePath(corpus.name);
    ASSERT_TRUE(writer.Save(path).ok()) << corpus.name;

    Seda reader;
    ASSERT_TRUE(reader.Open(path).ok()) << corpus.name;
    EXPECT_EQ(EpochFingerprint(*writer.snapshot()),
              EpochFingerprint(*reader.snapshot()))
        << corpus.name;
    auto expected = writer.Search(corpus.query);
    auto loaded = reader.Search(corpus.query);
    ASSERT_TRUE(expected.ok()) << corpus.name;
    ASSERT_TRUE(loaded.ok()) << corpus.name;
    EXPECT_EQ(ResponseFingerprint(expected.value(), writer.store()),
              ResponseFingerprint(loaded.value(), reader.store()))
        << corpus.name;
    std::remove(path.c_str());
  }
}

TEST(PersistTest, ImagesAreByteStableAcrossSaves) {
  Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());
  std::string path_a = TempImagePath("stable_a");
  std::string path_b = TempImagePath("stable_b");
  ASSERT_TRUE(seda.Save(path_a).ok());
  ASSERT_TRUE(seda.Save(path_b).ok());
  // Deterministic serialization (sorted term order, document-order edge log):
  // one epoch always hashes to one image.
  EXPECT_EQ(ReadFile(path_a), ReadFile(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(PersistTest, CommitOnLoadedImageMatchesAllInMemoryIncremental) {
  // Reference: base + delta committed entirely in memory.
  Seda memory;
  data::PopulateScenario(memory.mutable_store());
  ASSERT_TRUE(memory.Finalize(ScenarioOptions()).ok());
  std::string path = TempImagePath("commit_base");
  ASSERT_TRUE(memory.Save(path).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(memory.AddXml(DeltaDoc(i), "delta-" + std::to_string(i)).ok());
  }
  auto memory_info = memory.Commit();
  ASSERT_TRUE(memory_info.ok());
  ASSERT_TRUE(memory_info->incremental);

  // Same delta committed on top of the reopened image.
  Seda loaded;
  ASSERT_TRUE(loaded.Open(path).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(loaded.AddXml(DeltaDoc(i), "delta-" + std::to_string(i)).ok());
  }
  auto loaded_info = loaded.Commit();
  ASSERT_TRUE(loaded_info.ok()) << loaded_info.status().ToString();
  EXPECT_TRUE(loaded_info->incremental);
  EXPECT_EQ(loaded_info->epoch, 2u);
  EXPECT_EQ(loaded_info->docs_added, 4u);

  EXPECT_EQ(EpochFingerprint(*memory.snapshot()),
            EpochFingerprint(*loaded.snapshot()));
  auto memory_response = memory.Search(kQuery1);
  auto loaded_response = loaded.Search(kQuery1);
  ASSERT_TRUE(memory_response.ok());
  ASSERT_TRUE(loaded_response.ok());
  EXPECT_EQ(ResponseFingerprint(memory_response.value(), memory.store()),
            ResponseFingerprint(loaded_response.value(), loaded.store()));
  std::remove(path.c_str());
}

TEST(PersistTest, ConcurrentReadersOpenAndQueryOneImage) {
  Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(ScenarioOptions()).ok());
  std::string path = TempImagePath("concurrent");
  ASSERT_TRUE(writer.Save(path).ok());
  auto expected = writer.Search(kQuery1);
  ASSERT_TRUE(expected.ok());
  const std::string reference =
      ResponseFingerprint(expected.value(), writer.store());

  // The one-writer/many-reader pattern: several readers map the same image
  // at once (here: threads, each with its own Seda instance — the same code
  // path separate processes take) and every one serves identical bytes.
  constexpr int kReaders = 4;
  std::vector<std::string> fingerprints(kReaders);
  std::vector<Status> statuses(kReaders, Status::OK());
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Seda reader;
      Status opened = reader.Open(path);
      if (!opened.ok()) {
        statuses[r] = opened;
        return;
      }
      auto response = reader.Search(kQuery1);
      if (!response.ok()) {
        statuses[r] = response.status();
        return;
      }
      fingerprints[r] = ResponseFingerprint(response.value(), reader.store());
    });
  }
  for (std::thread& thread : readers) thread.join();
  for (int r = 0; r < kReaders; ++r) {
    ASSERT_TRUE(statuses[r].ok()) << statuses[r].ToString();
    EXPECT_EQ(fingerprints[r], reference) << "reader " << r;
  }
  std::remove(path.c_str());
}

class PersistCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Seda seda;
    data::PopulateScenario(seda.mutable_store());
    ASSERT_TRUE(seda.Finalize(ScenarioOptions()).ok());
    path_ = TempImagePath("corrupt");
    ASSERT_TRUE(seda.Save(path_).ok());
    image_ = ReadFile(path_);
    ASSERT_GT(image_.size(), sizeof(persist::FileHeader));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Status OpenImage() {
    Seda reader;
    return reader.Open(path_);
  }

  std::string path_;
  std::string image_;
};

TEST_F(PersistCorruptionTest, RejectsMissingFile) {
  Seda reader;
  Status status = reader.Open(TempImagePath("does_not_exist"));
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
}

TEST_F(PersistCorruptionTest, RejectsTruncatedHeader) {
  WriteFile(path_, image_.substr(0, 20));
  Status status = OpenImage();
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
}

TEST_F(PersistCorruptionTest, RejectsTruncatedBody) {
  WriteFile(path_, image_.substr(0, image_.size() / 2));
  Status status = OpenImage();
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
}

TEST_F(PersistCorruptionTest, RejectsBadMagic) {
  std::string bad = image_;
  bad[0] = 'X';
  WriteFile(path_, bad);
  Status status = OpenImage();
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
  EXPECT_NE(status.message().find("not a SEDA snapshot image"),
            std::string::npos);
}

TEST_F(PersistCorruptionTest, RejectsWrongFormatVersion) {
  // Patch the version field and re-seal the header CRC, so the version check
  // itself (not the checksum) is what trips.
  std::string bad = image_;
  persist::FileHeader header;
  std::memcpy(&header, bad.data(), sizeof(header));
  header.format_version = persist::kFormatVersion + 7;
  header.header_crc =
      persist::Crc32(&header, offsetof(persist::FileHeader, header_crc));
  std::memcpy(bad.data(), &header, sizeof(header));
  WriteFile(path_, bad);
  Status status = OpenImage();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status.ToString();
  EXPECT_NE(status.message().find("format version"), std::string::npos);
}

TEST_F(PersistCorruptionTest, RejectsBitFlipAnywhereInTheBody) {
  // Flip one bit in several spots across the payload; every flip must be
  // caught by a section (or table/header) CRC, never crash or load.
  for (size_t fraction = 1; fraction <= 4; ++fraction) {
    std::string bad = image_;
    size_t at = sizeof(persist::FileHeader) +
                (bad.size() - sizeof(persist::FileHeader)) * fraction / 5;
    bad[at] = static_cast<char>(bad[at] ^ 0x10);
    WriteFile(path_, bad);
    Status status = OpenImage();
    EXPECT_FALSE(status.ok()) << "bit flip at " << at << " loaded anyway";
  }
}

TEST_F(PersistCorruptionTest, RejectsHostileSectionCountWithValidCrc) {
  // Fuzzer-style mutation: rewrite the store-paths section's leading count
  // to a huge value and re-seal the section CRC, so every integrity check
  // passes and the decode hooks themselves are what must reject the image
  // (the SectionCursor's sticky bounds and the BoundedCount reserve clamp).
  std::string bad = image_;
  persist::FileHeader header;
  std::memcpy(&header, bad.data(), sizeof(header));
  ASSERT_LE(header.section_table_offset +
                header.section_count * sizeof(persist::SectionEntry),
            bad.size());
  bool patched = false;
  for (uint64_t i = 0; i < header.section_count; ++i) {
    size_t at = header.section_table_offset + i * sizeof(persist::SectionEntry);
    persist::SectionEntry entry;
    std::memcpy(&entry, bad.data() + at, sizeof(entry));
    if (entry.id != static_cast<uint32_t>(persist::SectionId::kStorePaths)) {
      continue;
    }
    ASSERT_GE(entry.size, sizeof(uint64_t));
    uint64_t huge = ~uint64_t{0};
    std::memcpy(bad.data() + entry.offset, &huge, sizeof(huge));
    entry.crc = persist::Crc32(bad.data() + entry.offset,
                               static_cast<size_t>(entry.size));
    std::memcpy(bad.data() + at, &entry, sizeof(entry));
    patched = true;
  }
  ASSERT_TRUE(patched);
  WriteFile(path_, bad);
  Status status = OpenImage();
  EXPECT_FALSE(status.ok()) << "hostile count decoded as a valid image";
}

TEST_F(PersistCorruptionTest, RejectsGarbageFile) {
  WriteFile(path_, std::string(4096, '\x5A'));
  Status status = OpenImage();
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
}

TEST(PersistPreconditionTest, SaveBeforeFinalizeFails) {
  Seda seda;
  EXPECT_EQ(seda.Save(TempImagePath("unfinalized")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PersistPreconditionTest, OpenOnUsedInstanceFails) {
  Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(ScenarioOptions()).ok());
  std::string path = TempImagePath("precondition");
  ASSERT_TRUE(writer.Save(path).ok());

  // Already finalized.
  EXPECT_EQ(writer.Open(path).code(), StatusCode::kFailedPrecondition);
  // Staged (eager) documents present.
  Seda staged;
  data::PopulateScenario(staged.mutable_store());
  EXPECT_EQ(staged.Open(path).code(), StatusCode::kFailedPrecondition);
  // Deferred documents present.
  Seda deferred;
  ASSERT_TRUE(deferred.AddXml(DeltaDoc(0), "delta-0").ok());
  EXPECT_EQ(deferred.Open(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace seda::core
