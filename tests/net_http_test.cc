// src/net/http.h: the request-head parser (the http_fuzzer surface) and the
// HTTP metrics listener end to end over a real socket.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "api/service.h"
#include "core/seda.h"
#include "data/generators.h"
#include "net/client.h"
#include "net/http.h"
#include "net/server.h"

namespace seda::net {
namespace {

// --- ParseHttpRequest ---------------------------------------------------

TEST(ParseHttpRequest, SimpleGet) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.0\r\n\r\n", &request),
            HttpParse::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.version, "HTTP/1.0");
  EXPECT_TRUE(request.headers.empty());
  EXPECT_EQ(request.head_bytes, 25u);
}

TEST(ParseHttpRequest, HeadersAndBareLf) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest(
                "GET /metrics?debug=1 HTTP/1.1\nHost: localhost:9090\n"
                "Accept: */*\n\n",
                &request),
            HttpParse::kOk);
  EXPECT_EQ(request.Path(), "/metrics");
  EXPECT_EQ(request.target, "/metrics?debug=1");
  ASSERT_EQ(request.headers.size(), 2u);
  EXPECT_EQ(request.headers[0].first, "Host");
  EXPECT_EQ(request.headers[0].second, "localhost:9090");
  EXPECT_EQ(request.headers[1].second, "*/*");
}

TEST(ParseHttpRequest, IncompleteUntilBlankLine) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.0\r\n", &request),
            HttpParse::kIncomplete);
  EXPECT_EQ(ParseHttpRequest("GET /metr", &request), HttpParse::kIncomplete);
  EXPECT_EQ(ParseHttpRequest("", &request), HttpParse::kIncomplete);
}

TEST(ParseHttpRequest, TrailingBytesAfterHeadAreIgnored) {
  HttpRequest request;
  const std::string data = "POST / HTTP/1.1\r\n\r\nbody bytes";
  EXPECT_EQ(ParseHttpRequest(data, &request), HttpParse::kOk);
  EXPECT_EQ(request.head_bytes, data.size() - std::strlen("body bytes"));
}

TEST(ParseHttpRequest, MalformedRequestLines) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("\r\n\r\n", &request), HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("GET\r\n\r\n", &request), HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("GET /x\r\n\r\n", &request), HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("GET /a /b HTTP/1.0\r\n\r\n", &request),
            HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("GET x HTTP/1.0\r\n\r\n", &request),
            HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("GET /x FTP/1.0\r\n\r\n", &request),
            HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("GET /x HTTP/\r\n\r\n", &request),
            HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("G@T /x HTTP/1.0\r\n\r\n", &request),
            HttpParse::kBad);
}

TEST(ParseHttpRequest, MalformedHeaders) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.0\r\nno-colon\r\n\r\n", &request),
            HttpParse::kBad);
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.0\r\n: empty-name\r\n\r\n",
                             &request),
            HttpParse::kBad);
  // Obsolete line folding (leading whitespace) is rejected, not mis-joined.
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.0\r\nA: b\r\n  folded\r\n\r\n",
                             &request),
            HttpParse::kBad);
}

TEST(ParseHttpRequest, AsteriskFormTarget) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("OPTIONS * HTTP/1.1\r\n\r\n", &request),
            HttpParse::kOk);
  EXPECT_EQ(request.target, "*");
}

TEST(ParseHttpRequest, OversizedHeadIsBadNotIncomplete) {
  HttpRequest request;
  // An unterminated head past the cap can never become valid.
  const std::string trickle(kMaxHttpHeadBytes + 1, 'A');
  EXPECT_EQ(ParseHttpRequest(trickle, &request), HttpParse::kBad);
  // A terminated line past the cap is bad too.
  std::string long_head = "GET /metrics HTTP/1.0\r\n";
  long_head += "X: " + std::string(kMaxHttpHeadBytes, 'y') + "\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(long_head, &request), HttpParse::kBad);
}

TEST(ParseHttpRequest, TooManyHeaders) {
  std::string head = "GET / HTTP/1.0\r\n";
  for (size_t i = 0; i <= kMaxHttpHeaders; ++i) {
    head += "H" + std::to_string(i) + ": v\r\n";
  }
  head += "\r\n";
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest(head, &request), HttpParse::kBad);
}

// --- HttpResponseText ---------------------------------------------------

TEST(HttpResponseText, FullAndHeadOnly) {
  const std::string full = HttpResponseText(200, "OK", "text/plain", "hi\n");
  EXPECT_EQ(full,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n"
            "Content-Length: 3\r\nConnection: close\r\n\r\nhi\n");
  // HEAD keeps the Content-Length of the would-be body, elides the body.
  const std::string head =
      HttpResponseText(200, "OK", "text/plain", "hi\n", /*head_only=*/true);
  EXPECT_EQ(head,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n"
            "Content-Length: 3\r\nConnection: close\r\n\r\n");
}

// --- HttpMetricsListener end to end -------------------------------------

/// One blocking HTTP exchange against 127.0.0.1:port; returns the raw
/// response bytes (empty on connect failure).
std::string Fetch(uint16_t port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return {};
  }
  (void)!send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(HttpMetricsListener, ServesMetricsHealthzAndErrors) {
  HttpMetricsListener listener("127.0.0.1", 0, [] {
    return std::string("seda_test_total 1\n");
  });
  ASSERT_TRUE(listener.Start().ok());
  ASSERT_NE(listener.port(), 0u);

  const std::string metrics =
      Fetch(listener.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(metrics.find("seda_test_total 1\n"), std::string::npos);

  // Query strings are routed on the path alone.
  EXPECT_NE(Fetch(listener.port(), "GET /metrics?x=1 HTTP/1.1\r\n\r\n")
                .find("200 OK"),
            std::string::npos);
  // HEAD: status + headers, no body.
  const std::string head =
      Fetch(listener.port(), "HEAD /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_EQ(head.find("seda_test_total"), std::string::npos);

  EXPECT_NE(Fetch(listener.port(), "GET /healthz HTTP/1.0\r\n\r\n")
                .find("ok\n"),
            std::string::npos);
  EXPECT_NE(Fetch(listener.port(), "GET /nope HTTP/1.0\r\n\r\n")
                .find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(Fetch(listener.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(Fetch(listener.port(), "garbage\r\n\r\n")
                .find("400 Bad Request"),
            std::string::npos);

  // /metrics + /healthz + the query-string and HEAD scrapes served.
  EXPECT_EQ(listener.requests_served(), 4u);
  listener.Stop();
  listener.Stop();  // idempotent
}

TEST(HttpMetricsListener, RendersFreshPerScrape) {
  int calls = 0;
  HttpMetricsListener listener("127.0.0.1", 0, [&calls] {
    return "seda_scrapes_total " + std::to_string(++calls) + "\n";
  });
  ASSERT_TRUE(listener.Start().ok());
  EXPECT_NE(Fetch(listener.port(), "GET /metrics HTTP/1.0\r\n\r\n")
                .find("seda_scrapes_total 1"),
            std::string::npos);
  EXPECT_NE(Fetch(listener.port(), "GET /metrics HTTP/1.0\r\n\r\n")
                .find("seda_scrapes_total 2"),
            std::string::npos);
  listener.Stop();
}

TEST(HttpMetricsListener, StartFailsOnBadAddress) {
  HttpMetricsListener listener("not-an-address", 0, [] { return ""; });
  EXPECT_FALSE(listener.Start().ok());
}

TEST(HttpMetricsListener, StartFailsOnPortInUse) {
  HttpMetricsListener first("127.0.0.1", 0, [] { return ""; });
  ASSERT_TRUE(first.Start().ok());
  HttpMetricsListener second("127.0.0.1", first.port(), [] { return ""; });
  EXPECT_FALSE(second.Start().ok());
  first.Stop();
}

// --- Server integration -------------------------------------------------

TEST(ServerMetrics, ScrapeSeesTransportAndServiceSeries) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  api::SedaService service(&seda);

  ServerOptions options;
  options.metrics_port = 0;  // ephemeral HTTP listener alongside the frames
  Server server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.metrics_port(), 0u);

  // Drive one frame request so the transport counters move.
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto response = client.Call(R"({"method":"statz"})");
  ASSERT_TRUE(response.ok());

  const std::string scrape =
      Fetch(server.metrics_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  // Service families and the transport families registered by the server
  // render in one exposition.
  EXPECT_NE(scrape.find("seda_requests_total{method=\"statz\"} 1"),
            std::string::npos);
  EXPECT_NE(scrape.find("seda_net_frames_received_total 1"),
            std::string::npos);
  EXPECT_NE(scrape.find("# TYPE seda_net_connections_active gauge"),
            std::string::npos);
  EXPECT_NE(scrape.find("seda_net_connections_accepted_total 1"),
            std::string::npos);

  client.Close();
  server.Stop();
  // Stop() unregistered the transport families: the service's exposition no
  // longer mentions them (their callbacks would dangle otherwise).
  EXPECT_EQ(service.RenderMetrics().find("seda_net_"), std::string::npos);
}

TEST(ServerMetrics, DisabledByDefault) {
  core::Seda seda;
  data::PopulateScenario(seda.mutable_store());
  ASSERT_TRUE(seda.Finalize().ok());
  api::SedaService service(&seda);
  Server server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.metrics_port(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace seda::net
