// Property tests for the streaming top-k engine:
//  1. Search (TA early termination) and NaiveSearch (exhaustive) agree on the
//     top-k result sets over generated corpora.
//  2. Parallel tuple scoring is deterministic: 1, 2 and 8 scoring threads
//     produce byte-identical SearchResponses.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/seda.h"
#include "data/generators.h"
#include "graph/data_graph.h"
#include "query/query.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

namespace seda {
namespace {

/// Exact (bit-preserving) rendering of a double, so serialized responses
/// differ iff any score differs in even the last ulp.
std::string HexDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string SerializeTuples(const std::vector<topk::ScoredTuple>& tuples) {
  std::string out;
  for (const topk::ScoredTuple& t : tuples) {
    out += HexDouble(t.score) + "|" + HexDouble(t.content_score) + "|" +
           std::to_string(t.connection_size) + "[";
    for (const text::NodeMatch& nm : t.nodes) {
      out += nm.node.ToString() + "#" + std::to_string(nm.path) + "#" +
             HexDouble(nm.score) + ",";
    }
    out += "]\n";
  }
  return out;
}

std::string SerializeStats(const topk::SearchStats& s) {
  return std::to_string(s.candidates_total) + "/" +
         std::to_string(s.docs_considered) + "/" + std::to_string(s.docs_scored) +
         "/" + std::to_string(s.tuples_scored) + "/" +
         std::to_string(s.postings_advanced) + "/" +
         std::to_string(s.docs_skipped) + "/" + std::to_string(s.heap_evictions) +
         "/" + (s.early_terminated ? "T" : "F");
}

std::string SerializeResponse(const core::SearchResponse& r) {
  return SerializeTuples(r.topk) + "---\n" + r.contexts.ToString() + "---\n" +
         r.connections.ToString() + "---\n" + SerializeStats(r.stats);
}

struct Corpus {
  std::string name;
  std::unique_ptr<store::DocumentStore> store;
  std::unique_ptr<graph::DataGraph> graph;
  std::unique_ptr<text::InvertedIndex> index;
};

std::vector<Corpus> MakeCorpora() {
  std::vector<Corpus> corpora;
  {
    Corpus c;
    c.name = "factbook";
    c.store = std::make_unique<store::DocumentStore>();
    data::WorldFactbookGenerator::Options options;
    options.scale = 0.04;
    data::WorldFactbookGenerator(options).Populate(c.store.get());
    corpora.push_back(std::move(c));
  }
  {
    Corpus c;
    c.name = "mondial";
    c.store = std::make_unique<store::DocumentStore>();
    data::MondialGenerator::Options options;
    options.scale = 0.04;
    data::MondialGenerator(options).Populate(c.store.get());
    corpora.push_back(std::move(c));
  }
  {
    Corpus c;
    c.name = "scenario";
    c.store = std::make_unique<store::DocumentStore>();
    data::PopulateScenario(c.store.get());
    corpora.push_back(std::move(c));
  }
  for (Corpus& c : corpora) {
    c.graph = std::make_unique<graph::DataGraph>(c.store.get());
    c.graph->ResolveIdRefs();
    c.index = std::make_unique<text::InvertedIndex>(c.store.get());
  }
  return corpora;
}

const char* kQueries[] = {
    R"((*, "United States") AND (trade_country, *))",
    R"((name, china OR canada) AND (percentage, *))",
    "(name, *) AND (*, china)",
    R"((*, NOT china) AND (name, *))",
    R"((*, pacific))",
};

TEST(EngineEquivalenceTest, SearchMatchesNaiveSearchAcrossCorpora) {
  for (Corpus& corpus : MakeCorpora()) {
    topk::TopKSearcher searcher(corpus.index.get(), corpus.graph.get());
    for (const char* text : kQueries) {
      SCOPED_TRACE(corpus.name + ": " + text);
      auto query = query::ParseQuery(text);
      ASSERT_TRUE(query.ok());
      topk::TopKOptions options;
      options.k = 8;
      topk::SearchStats ta_stats, naive_stats;
      auto ta = searcher.Search(query.value(), options, &ta_stats);
      auto naive = searcher.NaiveSearch(query.value(), options, &naive_stats);
      ASSERT_TRUE(ta.ok());
      ASSERT_TRUE(naive.ok());
      ASSERT_EQ(ta.value().size(), naive.value().size());
      for (size_t i = 0; i < ta.value().size(); ++i) {
        EXPECT_NEAR(ta.value()[i].score, naive.value()[i].score, 1e-12)
            << "rank " << i;
      }
      EXPECT_LE(ta_stats.docs_scored, naive_stats.docs_scored);
    }
  }
}

// The scoring pool must never change results: the same searcher state with
// 0 (inline), 1 and 7 extra workers returns byte-identical tuples and stats.
TEST(EngineEquivalenceTest, ParallelScoringIsDeterministicAtSearcherLevel) {
  for (Corpus& corpus : MakeCorpora()) {
    ThreadPool pool1(1), pool7(7);
    topk::TopKSearcher inline_searcher(corpus.index.get(), corpus.graph.get());
    topk::TopKSearcher small(corpus.index.get(), corpus.graph.get(), &pool1);
    topk::TopKSearcher wide(corpus.index.get(), corpus.graph.get(), &pool7);
    for (const char* text : kQueries) {
      SCOPED_TRACE(corpus.name + ": " + text);
      auto query = query::ParseQuery(text);
      ASSERT_TRUE(query.ok());
      topk::TopKOptions options;
      options.k = 10;
      options.parallel_batch_min = 1;  // force the pool onto every batch
      topk::SearchStats s0, s1, s7;
      auto r0 = inline_searcher.Search(query.value(), options, &s0);
      auto r1 = small.Search(query.value(), options, &s1);
      auto r7 = wide.Search(query.value(), options, &s7);
      ASSERT_TRUE(r0.ok() && r1.ok() && r7.ok());
      EXPECT_EQ(SerializeTuples(r0.value()), SerializeTuples(r1.value()));
      EXPECT_EQ(SerializeTuples(r0.value()), SerializeTuples(r7.value()));
      EXPECT_EQ(SerializeStats(s0), SerializeStats(s1));
      EXPECT_EQ(SerializeStats(s0), SerializeStats(s7));
    }
  }
}

// Full-system determinism: Seda instances built over identical corpora with
// 1, 2 and 8 query threads return byte-identical SearchResponses (top-k,
// both summaries and stats).
TEST(EngineEquivalenceTest, SedaSearchByteIdenticalAcrossQueryThreads) {
  auto make = [](size_t query_threads) {
    auto seda = std::make_unique<core::Seda>();
    data::WorldFactbookGenerator::Options data_options;
    data_options.scale = 0.04;
    data::WorldFactbookGenerator(data_options).Populate(seda->mutable_store());
    core::SedaOptions options;
    options.num_threads = 2;
    options.query_threads = query_threads;
    options.topk.parallel_batch_min = 1;
    EXPECT_TRUE(seda->Finalize(options).ok());
    return seda;
  };
  auto seda1 = make(1);
  auto seda2 = make(2);
  auto seda8 = make(8);

  const char* queries[] = {
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))",
      R"((name, china OR mexico) AND (GDP, *))",
      R"((*, NOT germany) AND (name, *))",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    auto r1 = seda1->Search(text);
    auto r2 = seda2->Search(text);
    auto r8 = seda8->Search(text);
    ASSERT_TRUE(r1.ok() && r2.ok() && r8.ok());
    std::string s1 = SerializeResponse(r1.value());
    EXPECT_EQ(s1, SerializeResponse(r2.value()));
    EXPECT_EQ(s1, SerializeResponse(r8.value()));
    EXPECT_FALSE(r1.value().topk.empty());
  }
}

}  // namespace
}  // namespace seda
