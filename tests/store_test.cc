#include <gtest/gtest.h>

#include "data/generators.h"
#include "store/document_store.h"

namespace seda::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.AddXml("<country><name>United States</name>"
                              "<economy><GDP>10T</GDP></economy></country>",
                              "us")
                    .ok());
    ASSERT_TRUE(store_.AddXml("<country><name>Mexico</name>"
                              "<economy><GDP>1T</GDP></economy></country>",
                              "mx")
                    .ok());
    ASSERT_TRUE(store_.AddXml("<territory><name>Islands</name></territory>", "t")
                    .ok());
  }
  DocumentStore store_;
};

TEST_F(StoreTest, CountsDocumentsAndNodes) {
  EXPECT_EQ(store_.DocumentCount(), 3u);
  EXPECT_GT(store_.TotalNodeCount(), 10u);
}

TEST_F(StoreTest, PathDictionaryFrequencies) {
  const PathDictionary& dict = store_.paths();
  PathId country = dict.Find("/country");
  ASSERT_NE(country, kInvalidPathId);
  EXPECT_EQ(dict.DocCount(country), 2u);
  EXPECT_EQ(dict.NodeCount(country), 2u);
  PathId gdp = dict.Find("/country/economy/GDP");
  ASSERT_NE(gdp, kInvalidPathId);
  EXPECT_EQ(dict.DocCount(gdp), 2u);
  EXPECT_EQ(dict.LastTag(gdp), "GDP");
  EXPECT_EQ(dict.Find("/nonexistent"), kInvalidPathId);
}

TEST_F(StoreTest, PathsWithLastTag) {
  const PathDictionary& dict = store_.paths();
  auto name_paths = dict.PathsWithLastTag("name");
  EXPECT_EQ(name_paths.size(), 2u);  // /country/name and /territory/name
  auto wildcard = dict.PathsMatchingTagPattern("na*");
  EXPECT_EQ(wildcard.size(), 2u);
  EXPECT_TRUE(dict.PathsWithLastTag("bogus").empty());
}

TEST_F(StoreTest, NodeLookupAndContent) {
  NodeId name_node{0, xml::DeweyId::Parse("1.1")};
  xml::Node* node = store_.GetNode(name_node);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->name(), "name");
  EXPECT_EQ(store_.GetContent(name_node), "United States");
  auto pid = store_.GetPathId(name_node);
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(store_.paths().PathString(pid.value()), "/country/name");
}

TEST_F(StoreTest, MissingNodeHandled) {
  NodeId missing{9, xml::DeweyId::Parse("1")};
  EXPECT_EQ(store_.GetNode(missing), nullptr);
  EXPECT_EQ(store_.GetContent(missing), "");
  EXPECT_FALSE(store_.GetPathId(missing).ok());
}

TEST_F(StoreTest, DocumentPathSetsAreSortedAndDistinct) {
  for (DocId d = 0; d < store_.DocumentCount(); ++d) {
    const auto& paths = store_.DocumentPathSet(d);
    EXPECT_FALSE(paths.empty());
    EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
    EXPECT_EQ(std::adjacent_find(paths.begin(), paths.end()), paths.end());
  }
}

TEST_F(StoreTest, ParseFailurePropagates) {
  auto result = store_.AddXml("<broken>", "bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(store_.DocumentCount(), 3u);  // nothing added
}

TEST_F(StoreTest, NodeIdOrderingAndHash) {
  NodeId a{0, xml::DeweyId::Parse("1.1")};
  NodeId b{0, xml::DeweyId::Parse("1.2")};
  NodeId c{1, xml::DeweyId::Parse("1.1")};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_EQ(a, (NodeId{0, xml::DeweyId::Parse("1.1")}));
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_EQ(a.ToString(), "n0@1.1");
}

// Property: every path of every document's path set resolves back to a path
// string starting with '/' and the doc counts are bounded by document count.
TEST(StorePropertyTest, DictionaryInvariantsOnScenario) {
  DocumentStore store;
  data::PopulateScenario(&store);
  const PathDictionary& dict = store.paths();
  EXPECT_GT(dict.size(), 10u);
  for (PathId p = 0; p < dict.size(); ++p) {
    EXPECT_EQ(dict.PathString(p)[0], '/');
    EXPECT_GE(dict.NodeCount(p), dict.DocCount(p));
    EXPECT_LE(dict.DocCount(p), store.DocumentCount());
    EXPECT_GE(dict.DocCount(p), 1u);
  }
}

}  // namespace
}  // namespace seda::store
