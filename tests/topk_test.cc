#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "graph/data_graph.h"
#include "query/query.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

namespace seda::topk {
namespace {

class TopKTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    graph_->ResolveIdRefs();
    index_ = std::make_unique<text::InvertedIndex>(&store_);
    searcher_ = std::make_unique<TopKSearcher>(index_.get(), graph_.get());
  }

  query::Query Q(const std::string& text) {
    auto q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<TopKSearcher> searcher_;
};

TEST_F(TopKTest, SingleTermReturnsScoredNodes) {
  TopKOptions options;
  options.k = 5;
  auto result = searcher_->Search(Q(R"((*, "Germany"))"), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  for (const ScoredTuple& t : result.value()) {
    EXPECT_EQ(t.nodes.size(), 1u);
    EXPECT_GT(t.score, 0.0);
  }
}

TEST_F(TopKTest, ScoresAreDescending) {
  TopKOptions options;
  options.k = 10;
  auto result =
      searcher_->Search(Q(R"((*, "United States") AND (percentage, *))"), options);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result.value().size(), 1u);
  for (size_t i = 1; i < result.value().size(); ++i) {
    EXPECT_GE(result.value()[i - 1].score, result.value()[i].score);
  }
}

TEST_F(TopKTest, CompactnessPrefersSameItemPairs) {
  TopKOptions options;
  options.k = 3;
  auto result =
      searcher_->Search(Q("(trade_country, \"China\") AND (percentage, *)"), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  // Best tuple must pair China's trade_country with the percentage in the
  // SAME item (connection size 2), not a sibling item's percentage.
  const ScoredTuple& best = result.value().front();
  EXPECT_EQ(best.connection_size, 2u);
}

TEST_F(TopKTest, RespectsK) {
  TopKOptions options;
  options.k = 2;
  auto result = searcher_->Search(Q("(trade_country, *) AND (percentage, *)"), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().size(), 2u);
}

TEST_F(TopKTest, ContextRestrictionFiltersCandidates) {
  TopKOptions options;
  options.k = 20;
  auto unrestricted = searcher_->Search(Q(R"((*, "United States"))"), options);
  auto restricted = searcher_->Search(Q(R"((/country/name, "United States"))"),
                                      options);
  ASSERT_TRUE(unrestricted.ok());
  ASSERT_TRUE(restricted.ok());
  EXPECT_LT(restricted.value().size(), unrestricted.value().size());
  for (const ScoredTuple& t : restricted.value()) {
    EXPECT_EQ(store_.paths().PathString(t.nodes[0].path), "/country/name");
  }
}

TEST_F(TopKTest, EmptyQueryRejected) {
  query::Query empty;
  EXPECT_FALSE(searcher_->Search(empty, TopKOptions{}).ok());
}

TEST_F(TopKTest, NoMatchesYieldsEmpty) {
  auto result = searcher_->Search(Q("(*, zzzznonexistent)"), TopKOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(TopKTest, ScoreFormulaIsContentTimesCompactness) {
  TopKOptions options;
  options.k = 5;
  auto result =
      searcher_->Search(Q("(trade_country, \"Canada\") AND (percentage, *)"), options);
  ASSERT_TRUE(result.ok());
  for (const ScoredTuple& t : result.value()) {
    double expected =
        t.content_score / (1.0 + static_cast<double>(t.connection_size));
    EXPECT_NEAR(t.score, expected, 1e-9);
  }
}

// Property: TA search and the naive baseline agree on the top-k scores for a
// panel of queries (the TA early-termination must not change results).
class TaVsNaiveTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TaVsNaiveTest, SameTopScores) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  graph::DataGraph graph(&store);
  graph.ResolveIdRefs();
  text::InvertedIndex index(&store);
  TopKSearcher searcher(&index, &graph);
  auto q = query::ParseQuery(GetParam());
  ASSERT_TRUE(q.ok());
  TopKOptions options;
  options.k = 8;
  SearchStats ta_stats, naive_stats;
  auto ta = searcher.Search(q.value(), options, &ta_stats);
  auto naive = searcher.NaiveSearch(q.value(), options, &naive_stats);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(ta.value().size(), naive.value().size());
  for (size_t i = 0; i < ta.value().size(); ++i) {
    EXPECT_NEAR(ta.value()[i].score, naive.value()[i].score, 1e-9) << "rank " << i;
  }
  EXPECT_LE(ta_stats.docs_scored, naive_stats.docs_scored);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, TaVsNaiveTest,
    ::testing::Values(
        R"((*, "United States") AND (trade_country, *) AND (percentage, *))",
        "(trade_country, *) AND (percentage, *)",
        R"((name, "Mexico") AND (GDP, *))",
        R"((*, "China"))",
        R"((sea, *) AND (name, "Pacific"))"));

TEST_F(TopKTest, StatsArePopulated) {
  TopKOptions options;
  options.k = 3;
  SearchStats stats;
  auto result = searcher_->Search(
      Q("(trade_country, *) AND (percentage, *)"), options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.candidates_total, 0u);
  EXPECT_GT(stats.docs_considered, 0u);
  EXPECT_GT(stats.tuples_scored, 0u);
  EXPECT_GT(stats.postings_advanced, 0u);
}

// Regression for the bounded-heap top-k buffer: NaiveSearch at small k must
// return exactly the prefix of the full ranking (same tuples, same order,
// same tie-breaks) that the old sort-on-every-insert produced.
TEST_F(TopKTest, BoundedHeapMatchesFullRankingPrefix) {
  query::Query query = Q("(trade_country, *) AND (percentage, *)");
  TopKOptions full_options;
  full_options.k = 100000;  // large enough to keep everything
  auto full = searcher_->NaiveSearch(query, full_options);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full.value().size(), 5u);
  for (size_t k : {1ul, 2ul, 5ul}) {
    TopKOptions options;
    options.k = k;
    auto result = searcher_->NaiveSearch(query, options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(result.value()[i].score, full.value()[i].score) << "rank " << i;
      ASSERT_EQ(result.value()[i].nodes.size(), full.value()[i].nodes.size());
      for (size_t t = 0; t < result.value()[i].nodes.size(); ++t) {
        EXPECT_EQ(result.value()[i].nodes[t].node, full.value()[i].nodes[t].node)
            << "rank " << i << " term " << t;
      }
    }
  }
}

// Hand-built corpus where the TA bound order disagrees with the final score
// order, so the bounded heap must evict; and where two tuples tie exactly,
// so the document-order tie-break is observable.
class TupleHeapSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Doc 0: 'a' and 'b' far apart (large connection size, low final score).
    ASSERT_TRUE(store_
                    .AddXml("<r><a>apple</a><m><n><o><b>berry</b></o></n></m></r>",
                            "far")
                    .ok());
    // Docs 1 and 2: identical adjacent pairs (high, tying final scores).
    ASSERT_TRUE(store_.AddXml("<r><c><a>apple</a><b>berry</b></c></r>", "near1").ok());
    ASSERT_TRUE(store_.AddXml("<r><c><a>apple</a><b>berry</b></c></r>", "near2").ok());
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    index_ = std::make_unique<text::InvertedIndex>(&store_);
    searcher_ = std::make_unique<TopKSearcher>(index_.get(), graph_.get());
  }

  query::Query Q(const std::string& text) {
    auto q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<TopKSearcher> searcher_;
};

TEST_F(TupleHeapSemanticsTest, EvictsWhenBetterTupleArrivesLater) {
  TopKOptions options;
  options.k = 1;
  SearchStats stats;
  auto result =
      searcher_->NaiveSearch(Q("(a, apple) AND (b, berry)"), options, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  // The winner is an adjacent pair, not doc 0's far pair...
  EXPECT_EQ(result.value()[0].connection_size, 2u);
  // ...which requires the heap to have displaced doc 0's earlier tuple.
  EXPECT_GT(stats.heap_evictions, 0u);
}

/// Synthetic hub corpus reproducing the ROADMAP perf cliff: every country
/// imports from "United States", so value-based PK/FK edges all land on one
/// hub node (the US name) and, uncapped, cross-document borrowing welds all
/// documents into one giant per-document cross product.
class HubCapTest : public ::testing::Test {
 protected:
  static constexpr int kSatellites = 10;

  void SetUp() override {
    auto us = store_.AddXml(
        "<country><name>United States</name><economy><GDP>14000</GDP>"
        "</economy></country>",
        "us");
    ASSERT_TRUE(us.ok());
    for (int i = 0; i < kSatellites; ++i) {
      auto doc = store_.AddXml(
          "<country><name>Satellite " + std::to_string(i) +
              "</name><economy><import_partners><item>"
              "<trade_country>United States</trade_country><percentage>" +
              std::to_string(10 + i) +
              ".5</percentage></item></import_partners></economy></country>",
          "satellite-" + std::to_string(i));
      ASSERT_TRUE(doc.ok());
    }
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    // The paper's value-based input relationship: one PK node (the US name)
    // fans out to every satellite's trade_country leaf.
    ASSERT_EQ(graph_->AddValueBasedEdges(
                  "/country/name",
                  "/country/economy/import_partners/item/trade_country",
                  "trade_partner"),
              static_cast<size_t>(kSatellites));
    index_ = std::make_unique<text::InvertedIndex>(&store_);
    searcher_ = std::make_unique<TopKSearcher>(index_.get(), graph_.get());
  }

  query::Query Q(const std::string& text) {
    auto q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  TopKOptions CliffOptions() {
    TopKOptions options;
    options.k = 5;
    options.max_per_doc_per_term = 4;
    options.max_tuples_per_query = 0;  // isolate the hub cap
    return options;
  }

  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<TopKSearcher> searcher_;
};

constexpr const char* kCliffQuery =
    R"((*, "United States") AND (trade_country, *) AND (percentage, *))";

TEST_F(HubCapTest, HubDegreeCapBoundsCrossDocumentBlowup) {
  // Uncapped: the hub links every satellite to the US doc and vice versa, so
  // borrowed candidates inflate every document's cross product.
  TopKOptions uncapped = CliffOptions();
  uncapped.max_hub_degree = 0;
  SearchStats uncapped_stats;
  auto uncapped_result =
      searcher_->Search(Q(kCliffQuery), uncapped, &uncapped_stats);
  ASSERT_TRUE(uncapped_result.ok());
  EXPECT_EQ(uncapped_stats.hub_links_skipped, 0u);

  // Capped below the hub's degree: links mediated by the hub are dropped
  // (counted), and tuple enumeration shrinks by an order of magnitude.
  TopKOptions capped = CliffOptions();
  capped.max_hub_degree = kSatellites / 2;
  SearchStats capped_stats;
  auto capped_result = searcher_->Search(Q(kCliffQuery), capped, &capped_stats);
  ASSERT_TRUE(capped_result.ok());
  EXPECT_GT(capped_stats.hub_links_skipped, 0u);
  EXPECT_LT(capped_stats.tuples_scored, uncapped_stats.tuples_scored / 4);
  // Trimming hub noise must not cost answers: the in-document matches still
  // fill the top-k.
  EXPECT_EQ(capped_result.value().size(), uncapped_result.value().size());
}

TEST_F(HubCapTest, DefaultOptionsDoNotTouchLowDegreeCorpora) {
  // The default cap (64) is far above this corpus' hub degree (10): results
  // and counters must be identical to an explicitly uncapped run.
  TopKOptions defaults = CliffOptions();  // max_hub_degree = 64 default
  SearchStats default_stats;
  auto default_result =
      searcher_->Search(Q(kCliffQuery), defaults, &default_stats);
  TopKOptions uncapped = CliffOptions();
  uncapped.max_hub_degree = 0;
  SearchStats uncapped_stats;
  auto uncapped_result =
      searcher_->Search(Q(kCliffQuery), uncapped, &uncapped_stats);
  ASSERT_TRUE(default_result.ok());
  ASSERT_TRUE(uncapped_result.ok());
  EXPECT_EQ(default_stats.hub_links_skipped, 0u);
  EXPECT_EQ(default_stats.tuples_scored, uncapped_stats.tuples_scored);
  ASSERT_EQ(default_result.value().size(), uncapped_result.value().size());
  for (size_t i = 0; i < default_result.value().size(); ++i) {
    EXPECT_EQ(default_result.value()[i].ToString(store_),
              uncapped_result.value()[i].ToString(store_));
  }
}

TEST_F(HubCapTest, TupleBudgetIsAHardCeiling) {
  TopKOptions budgeted = CliffOptions();
  budgeted.max_hub_degree = 0;   // leave the blowup on
  budgeted.max_tuples_per_query = 40;
  SearchStats stats;
  auto result = searcher_->Search(Q(kCliffQuery), budgeted, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(stats.tuples_scored, 40u);
  EXPECT_GT(stats.tuples_trimmed, 0u);
  // The budget consumes documents in TA upper-bound order, so the best
  // answers are scored before it runs out.
  EXPECT_FALSE(result.value().empty());
}

TEST_F(HubCapTest, TrimmedCountsAreSurfacedInSearchStats) {
  TopKOptions options = CliffOptions();
  options.max_hub_degree = 1;
  options.max_tuples_per_query = 10;
  SearchStats stats;
  ASSERT_TRUE(searcher_->Search(Q(kCliffQuery), options, &stats).ok());
  // Both trim counters fire on this corpus and are visible to callers.
  EXPECT_GT(stats.hub_links_skipped, 0u);
  EXPECT_GT(stats.tuples_trimmed, 0u);
  EXPECT_LE(stats.tuples_scored, 10u);
}

TEST_F(TupleHeapSemanticsTest, ExactTiesBreakByDocumentOrder) {
  TopKOptions options;
  options.k = 3;
  auto result = searcher_->Search(Q("(a, apple) AND (b, berry)"), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 3u);
  // Docs 1 and 2 tie exactly; document order must decide rank 0 vs rank 1.
  EXPECT_EQ(result.value()[0].score, result.value()[1].score);
  EXPECT_EQ(result.value()[0].nodes[0].node.doc, 1u);
  EXPECT_EQ(result.value()[1].nodes[0].node.doc, 2u);
  EXPECT_EQ(result.value()[2].nodes[0].node.doc, 0u);
}

}  // namespace
}  // namespace seda::topk
