#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "core/seda.h"
#include "data/generators.h"
#include "graph/csr.h"
#include "graph/data_graph.h"
#include "persist/reader.h"
#include "persist/writer.h"
#include "store/document_store.h"

namespace seda::graph {
namespace {

std::string TempImagePath(const std::string& name) {
  return ::testing::TempDir() + "seda_graph_kernel_" + name + "_" +
         std::to_string(::getpid()) + ".img";
}

/// All non-text nodes of the store, in document order — the CSR vertex
/// universe.
std::vector<store::NodeId> ElementNodes(const store::DocumentStore& store) {
  std::vector<store::NodeId> nodes;
  store.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    nodes.push_back(id);
  });
  return nodes;
}

/// Deterministic sample of ~`want` entries spread across the vector.
std::vector<store::NodeId> Sample(const std::vector<store::NodeId>& nodes,
                                  size_t want) {
  std::vector<store::NodeId> out;
  if (nodes.empty()) return out;
  size_t stride = std::max<size_t>(1, nodes.size() / want);
  for (size_t i = 0; i < nodes.size(); i += stride) out.push_back(nodes[i]);
  return out;
}

std::optional<size_t> Dist(DataGraph* graph, GraphKernelMode mode,
                           const store::NodeId& a, const store::NodeId& b,
                           size_t max_depth, size_t max_visits = 0,
                           GraphStats* stats = nullptr) {
  graph->set_kernel_mode(mode);
  return graph->ShortestPathLength(a, b, max_depth, max_visits, stats);
}

std::vector<store::NodeId> PathOf(DataGraph* graph, GraphKernelMode mode,
                                  const store::NodeId& a,
                                  const store::NodeId& b, size_t max_depth,
                                  size_t max_visits = 0) {
  graph->set_kernel_mode(mode);
  return graph->ShortestPath(a, b, max_depth, max_visits);
}

/// One corpus the property tests run over: an owned store + a resolved,
/// CSR-built graph.
struct Corpus {
  std::string name;
  std::unique_ptr<store::DocumentStore> store;
  std::unique_ptr<DataGraph> graph;
};

Corpus MakeScenario() {
  Corpus c;
  c.name = "scenario";
  c.store = std::make_unique<store::DocumentStore>();
  data::PopulateScenario(c.store.get());
  c.graph = std::make_unique<DataGraph>(c.store.get());
  c.graph->ResolveLinks(/*idrefs=*/true, /*xlinks=*/true);
  c.graph->AddValueBasedEdges(
      "/country/name", "/country/economy/import_partners/item/trade_country",
      "trade_partner");
  return c;
}

/// The ROADMAP hub cliff in miniature: every satellite's trade_country leaf
/// links to the one US name node, so one vertex carries ~all non-tree edges.
Corpus MakeHub(int satellites) {
  Corpus c;
  c.name = "hub";
  c.store = std::make_unique<store::DocumentStore>();
  EXPECT_TRUE(c.store
                  ->AddXml(
                      "<country><name>United States</name><economy>"
                      "<GDP>14000</GDP></economy></country>",
                      "us")
                  .ok());
  for (int i = 0; i < satellites; ++i) {
    EXPECT_TRUE(c.store
                    ->AddXml("<country><name>Satellite " + std::to_string(i) +
                                 "</name><economy><import_partners><item>"
                                 "<trade_country>United States</trade_country>"
                                 "<percentage>" + std::to_string(10 + i) +
                                 ".5</percentage></item></import_partners>"
                                 "</economy></country>",
                             "satellite-" + std::to_string(i))
                    .ok());
  }
  c.graph = std::make_unique<DataGraph>(c.store.get());
  EXPECT_EQ(c.graph->AddValueBasedEdges(
                "/country/name",
                "/country/economy/import_partners/item/trade_country",
                "trade_partner"),
            static_cast<size_t>(satellites));
  return c;
}

Corpus MakeMondial() {
  Corpus c;
  c.name = "mondial";
  c.store = std::make_unique<store::DocumentStore>();
  data::MondialGenerator::Options options;
  options.scale = 0.02;
  data::MondialGenerator(options).Populate(c.store.get());
  c.graph = std::make_unique<DataGraph>(c.store.get());
  c.graph->ResolveLinks(/*idrefs=*/true, /*xlinks=*/true);
  return c;
}

Corpus MakeFactbook() {
  Corpus c;
  c.name = "factbook";
  c.store = std::make_unique<store::DocumentStore>();
  data::WorldFactbookGenerator::Options options;
  options.scale = 0.02;
  data::WorldFactbookGenerator(options).Populate(c.store.get());
  c.graph = std::make_unique<DataGraph>(c.store.get());
  c.graph->ResolveLinks(/*idrefs=*/true, /*xlinks=*/true);
  return c;
}

/// Runs `fn(corpus)` over every generator corpus with the CSR layer built.
template <typename Fn>
void ForEachCorpus(const Fn& fn) {
  for (auto* make : {&MakeScenario, &MakeMondial, &MakeFactbook}) {
    Corpus c = make();
    ASSERT_TRUE(c.graph->BuildCsr()) << c.name;
    ASSERT_NE(c.graph->csr(), nullptr) << c.name;
    fn(c);
  }
  Corpus hub = MakeHub(40);
  ASSERT_TRUE(hub.graph->BuildCsr());
  fn(hub);
}

/// Deterministic pair sample: each sampled node against a handful of
/// pseudo-scattered partners (same-document and cross-document mixes).
std::vector<std::pair<store::NodeId, store::NodeId>> SamplePairs(
    const std::vector<store::NodeId>& nodes, size_t want_nodes) {
  std::vector<store::NodeId> sampled = Sample(nodes, want_nodes);
  std::vector<std::pair<store::NodeId, store::NodeId>> pairs;
  for (size_t i = 0; i < sampled.size(); ++i) {
    for (size_t step : {1u, 7u, 23u}) {
      pairs.emplace_back(sampled[i], sampled[(i * 3 + step) % sampled.size()]);
    }
  }
  return pairs;
}

TEST(CsrLayoutTest, RowsMatchForEachNeighborWalk) {
  ForEachCorpus([](const Corpus& c) {
    const Csr* csr = c.graph->csr();
    std::vector<store::NodeId> nodes = ElementNodes(*c.store);
    EXPECT_EQ(csr->num_vertices(), nodes.size()) << c.name;
    EXPECT_EQ(csr->edge_count(), c.graph->EdgeCount()) << c.name;
    for (const store::NodeId& id : Sample(nodes, 300)) {
      auto v = csr->VertexOf(id);
      ASSERT_TRUE(v.has_value()) << c.name;
      EXPECT_EQ(csr->NodeIdOf(*v), id) << c.name;
      // The legacy walk, mapped to vertices, must equal the CSR row
      // element for element (duplicates and all).
      std::vector<uint32_t> walk;
      c.graph->ForEachNeighbor(id, [&](const store::NodeId& n) {
        auto vn = csr->VertexOf(n);
        EXPECT_TRUE(vn.has_value()) << c.name;
        walk.push_back(*vn);
        return true;
      });
      std::vector<uint32_t> row(csr->RowBegin(*v), csr->RowEnd(*v));
      EXPECT_EQ(row, walk) << c.name << " vertex " << *v;
      EXPECT_EQ(csr->DegreeOf(*v), walk.size()) << c.name;
      EXPECT_EQ(csr->NonTreeDegreeOf(*v), c.graph->Degree(id)) << c.name;
    }
  });
}

TEST(CsrLayoutTest, SortedRowsAreSortedDedupedRows) {
  ForEachCorpus([](const Corpus& c) {
    const Csr* csr = c.graph->csr();
    for (uint32_t v = 0; v < csr->num_vertices();
         v += std::max<uint32_t>(1, csr->num_vertices() / 300)) {
      std::vector<uint32_t> expect(csr->RowBegin(v), csr->RowEnd(v));
      std::sort(expect.begin(), expect.end());
      expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
      std::vector<uint32_t> sorted(csr->SortedRowBegin(v),
                                   csr->SortedRowEnd(v));
      EXPECT_EQ(sorted, expect) << c.name << " vertex " << v;
    }
  });
}

TEST(CsrLayoutTest, TextNodesHaveNoVertexAndFallBackToLegacy) {
  Corpus c = MakeScenario();
  ASSERT_TRUE(c.graph->BuildCsr());
  std::optional<store::NodeId> text;
  c.store->ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (!text.has_value() && node->kind() == xml::NodeKind::kText) text = id;
  });
  ASSERT_TRUE(text.has_value());
  EXPECT_FALSE(c.graph->csr()->VertexOf(*text).has_value());
  // Kernel-mode queries from a text endpoint resolve via the legacy walker
  // and still agree with forced-legacy answers.
  store::NodeId other = ElementNodes(*c.store).front();
  EXPECT_EQ(Dist(c.graph.get(), GraphKernelMode::kAuto, *text, other, 12),
            Dist(c.graph.get(), GraphKernelMode::kLegacy, *text, other, 12));
}

TEST(KernelEquivalenceTest, ShortestPathLengthMatchesLegacyBudgetOff) {
  ForEachCorpus([](const Corpus& c) {
    auto pairs = SamplePairs(ElementNodes(*c.store), 40);
    for (const auto& [a, b] : pairs) {
      for (size_t depth : {2u, 4u, 12u}) {
        auto legacy = Dist(c.graph.get(), GraphKernelMode::kLegacy, a, b, depth);
        for (GraphKernelMode mode :
             {GraphKernelMode::kCsrBfs, GraphKernelMode::kCsrIntersect,
              GraphKernelMode::kAuto}) {
          EXPECT_EQ(Dist(c.graph.get(), mode, a, b, depth), legacy)
              << c.name << " depth " << depth;
        }
      }
    }
  });
}

TEST(KernelEquivalenceTest, ShortestPathNodesMatchLegacyBudgetOff) {
  ForEachCorpus([](const Corpus& c) {
    auto pairs = SamplePairs(ElementNodes(*c.store), 25);
    for (const auto& [a, b] : pairs) {
      auto legacy = PathOf(c.graph.get(), GraphKernelMode::kLegacy, a, b, 6);
      for (GraphKernelMode mode :
           {GraphKernelMode::kCsrBfs, GraphKernelMode::kCsrIntersect,
            GraphKernelMode::kAuto}) {
        EXPECT_EQ(PathOf(c.graph.get(), mode, a, b, 6), legacy) << c.name;
      }
    }
  });
}

TEST(KernelEquivalenceTest, ConnectionSizeMatchesLegacyBudgetOff) {
  ForEachCorpus([](const Corpus& c) {
    std::vector<store::NodeId> sampled = Sample(ElementNodes(*c.store), 30);
    for (size_t i = 0; i + 2 < sampled.size(); i += 3) {
      std::vector<store::NodeId> tuple = {sampled[i], sampled[i + 1],
                                          sampled[i + 2]};
      c.graph->set_kernel_mode(GraphKernelMode::kLegacy);
      auto legacy = c.graph->ConnectionSize(tuple);
      c.graph->set_kernel_mode(GraphKernelMode::kAuto);
      EXPECT_EQ(c.graph->ConnectionSize(tuple), legacy) << c.name;
    }
  });
}

TEST(KernelEquivalenceTest, BudgetedCsrBfsMatchesLegacyExactly) {
  // kCsrBfs preserves the legacy engine bit for bit, including the budget's
  // false negatives: same answers and the same expansion counts.
  ForEachCorpus([](const Corpus& c) {
    auto pairs = SamplePairs(ElementNodes(*c.store), 30);
    for (const auto& [a, b] : pairs) {
      for (size_t visits : {1u, 3u, 8u}) {
        GraphStats legacy_stats, csr_stats;
        auto legacy = Dist(c.graph.get(), GraphKernelMode::kLegacy, a, b, 12,
                           visits, &legacy_stats);
        auto csr = Dist(c.graph.get(), GraphKernelMode::kCsrBfs, a, b, 12,
                        visits, &csr_stats);
        EXPECT_EQ(csr, legacy) << c.name << " visits " << visits;
        EXPECT_EQ(csr_stats.bfs_expansions, legacy_stats.bfs_expansions)
            << c.name << " visits " << visits;
      }
    }
  });
}

TEST(KernelEquivalenceTest, AutoAnswersWithinTwoAreBudgetIndependent) {
  // The intended semantic upgrade: under kAuto, any distance <= 2 answer is
  // exact regardless of max_visits (the legacy walker's budget could
  // truncate those to "not connected").
  ForEachCorpus([](const Corpus& c) {
    auto pairs = SamplePairs(ElementNodes(*c.store), 30);
    for (const auto& [a, b] : pairs) {
      auto unbudgeted = Dist(c.graph.get(), GraphKernelMode::kAuto, a, b, 12);
      if (!unbudgeted.has_value() || *unbudgeted > 2) continue;
      for (size_t visits : {1u, 2u, 5u}) {
        EXPECT_EQ(Dist(c.graph.get(), GraphKernelMode::kAuto, a, b, 12, visits),
                  unbudgeted)
            << c.name;
      }
    }
  });
}

TEST(KernelCounterTest, CountersFireOnTheHubCorpus) {
  Corpus c = MakeHub(40);
  CsrOptions options;
  options.sketch_min_degree = 4;
  options.sketch_max_count = 4;
  ASSERT_TRUE(c.graph->BuildCsr(options));
  const Csr* csr = c.graph->csr();
  ASSERT_GT(csr->SketchCount(), 0u);

  // Probes from the hub (US name node) into one satellite: trade_country is
  // distance 1 (the value edge), its parent item distance 2, and the sibling
  // percentage leaf distance 3 — one node per kernel tier.
  std::vector<store::NodeId> nodes = ElementNodes(*c.store);
  std::optional<store::NodeId> hub, dist1, dist2, dist3;
  for (const store::NodeId& id : nodes) {
    xml::Node* n = c.store->GetNode(id);
    if (id.doc == 0 && n->name() == "name") hub = id;
    if (id.doc == 5 && n->name() == "trade_country") dist1 = id;
    if (id.doc == 5 && n->name() == "item") dist2 = id;
    if (id.doc == 5 && n->name() == "percentage") dist3 = id;
  }
  ASSERT_TRUE(hub.has_value() && dist1.has_value() && dist2.has_value() &&
              dist3.has_value());

  GraphStats bfs_stats;
  EXPECT_EQ(Dist(c.graph.get(), GraphKernelMode::kCsrBfs, *hub, *dist3, 12, 0,
                 &bfs_stats),
            std::optional<size_t>(3));
  EXPECT_GT(bfs_stats.bfs_expansions, 0u);

  GraphStats isect_stats;
  EXPECT_EQ(Dist(c.graph.get(), GraphKernelMode::kCsrIntersect, *hub, *dist1,
                 12, 0, &isect_stats),
            std::optional<size_t>(1));
  EXPECT_GT(isect_stats.intersection_probes, 0u);
  EXPECT_EQ(isect_stats.bfs_expansions, 0u);

  GraphStats auto_stats;
  EXPECT_EQ(Dist(c.graph.get(), GraphKernelMode::kAuto, *hub, *dist2, 12, 0,
                 &auto_stats),
            std::optional<size_t>(2));
  EXPECT_GT(auto_stats.sketch_hits, 0u);
  EXPECT_EQ(auto_stats.bfs_expansions, 0u);
}

TEST(KernelCounterTest, SketchAnswersMatchIntersection) {
  Corpus c = MakeHub(60);
  CsrOptions options;
  options.sketch_min_degree = 2;
  options.sketch_max_count = 8;
  ASSERT_TRUE(c.graph->BuildCsr(options));
  ASSERT_GT(c.graph->csr()->SketchCount(), 0u);
  auto pairs = SamplePairs(ElementNodes(*c.store), 40);
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(Dist(c.graph.get(), GraphKernelMode::kAuto, a, b, 12),
              Dist(c.graph.get(), GraphKernelMode::kCsrIntersect, a, b, 12));
  }
}

TEST(CsrPersistenceTest, ImageRoundTripPreservesKernels) {
  Corpus c = MakeScenario();
  ASSERT_TRUE(c.graph->BuildCsr());
  std::string path = TempImagePath("roundtrip");
  {
    persist::ImageWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(c.graph->SaveTo(&writer).ok());
    ASSERT_TRUE(writer.Finish(/*epoch=*/1).ok());
  }
  auto image = persist::MappedImage::Open(path);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto loaded = DataGraph::LoadFrom(std::move(image).value(), c.store.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  DataGraph* reopened = loaded.value().get();
  ASSERT_NE(reopened->csr(), nullptr);
  EXPECT_EQ(reopened->csr()->num_vertices(), c.graph->csr()->num_vertices());
  EXPECT_EQ(reopened->csr()->edge_count(), c.graph->csr()->edge_count());

  auto pairs = SamplePairs(ElementNodes(*c.store), 30);
  for (const auto& [a, b] : pairs) {
    for (GraphKernelMode mode :
         {GraphKernelMode::kCsrBfs, GraphKernelMode::kAuto}) {
      EXPECT_EQ(Dist(reopened, mode, a, b, 12),
                Dist(c.graph.get(), GraphKernelMode::kLegacy, a, b, 12));
    }
  }
  std::remove(path.c_str());
}

TEST(CsrPersistenceTest, MissingCsrSectionRebuildsOnLoad) {
  // A pre-CSR image (graph saved before BuildCsr) must reopen with the
  // kernels rebuilt from the edge log — no format break.
  Corpus c = MakeScenario();  // deliberately no BuildCsr()
  std::string path = TempImagePath("rebuild");
  {
    persist::ImageWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(c.graph->SaveTo(&writer).ok());
    ASSERT_TRUE(writer.Finish(/*epoch=*/1).ok());
  }
  auto image = persist::MappedImage::Open(path);
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(image.value()->HasSection(persist::SectionId::kGraphCsr));
  auto loaded = DataGraph::LoadFrom(std::move(image).value(), c.store.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded.value()->csr(), nullptr);
  std::remove(path.c_str());
}

TEST(CsrPersistenceTest, SedaSaveOpenRoundTripKeepsKernelAnswers) {
  core::SedaOptions options;
  options.value_edges.push_back(
      {"/country/name", "/country/economy/import_partners/item/trade_country",
       "trade_partner"});
  core::Seda writer;
  data::PopulateScenario(writer.mutable_store());
  ASSERT_TRUE(writer.Finalize(options).ok());
  ASSERT_NE(writer.data_graph().csr(), nullptr);

  std::string path = TempImagePath("seda");
  ASSERT_TRUE(writer.Save(path).ok());
  core::Seda reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ASSERT_NE(reader.data_graph().csr(), nullptr);

  auto pairs = SamplePairs(ElementNodes(writer.store()), 30);
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(reader.data_graph().ShortestPathLength(a, b, 12),
              writer.data_graph().ShortestPathLength(a, b, 12));
  }
  std::remove(path.c_str());
}

TEST(CsrAuditTest, StaleCsrIsCaughtByTheAuditor) {
  Corpus c = MakeScenario();
  ASSERT_TRUE(c.graph->BuildCsr());
  {
    audit::SnapshotAuditor auditor(c.store.get(), nullptr, c.graph.get(),
                                   nullptr);
    audit::AuditReport report;
    auditor.AuditGraph(&report);
    EXPECT_FALSE(report.Has("graph.csr_offsets")) << report.ToString();
    EXPECT_FALSE(report.Has("graph.csr_symmetry")) << report.ToString();
  }
  // An edge added after BuildCsr leaves the arrays stale — exactly what the
  // csr invariants exist to catch.
  std::vector<store::NodeId> nodes = ElementNodes(*c.store);
  c.graph->AddEdge(nodes.front(), nodes.back(), EdgeType::kIdRef, "stale");
  audit::SnapshotAuditor auditor(c.store.get(), nullptr, c.graph.get(),
                                 nullptr);
  audit::AuditReport report;
  auditor.AuditGraph(&report);
  EXPECT_TRUE(report.Has("graph.csr_offsets")) << report.ToString();
}

}  // namespace
}  // namespace seda::graph
