// Service-level observability: the statz <-> /metrics round trip (both are
// views of the same registry), traced envelopes over the Handle() wire, the
// metricz envelope method, and the sampled slow-query log.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"
#include "data/generators.h"

namespace seda::api {
namespace {

/// Value of one rendered series line ("name{labels} 42\n") in an exposition,
/// or -1 when the series is absent.
double SeriesValue(const std::string& text, const std::string& series) {
  const std::string prefix = series + " ";
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t line_end = text.find('\n', pos);
    const std::string line = text.substr(pos, line_end - pos);
    if (line.compare(0, prefix.size(), prefix) == 0) {
      return std::atof(line.c_str() + prefix.size());
    }
    if (line_end == std::string::npos) break;
    pos = line_end + 1;
  }
  return -1;
}

uint64_t SumElapsed(const std::vector<obs::SpanNode>& children) {
  uint64_t total = 0;
  for (const obs::SpanNode& child : children) total += child.elapsed_us;
  return total;
}

class ObsServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(seda_.mutable_store());
    ASSERT_TRUE(seda_.Finalize().ok());
  }

  core::Seda seda_;
};

TEST_F(ObsServiceTest, StatzAndMetricsAgree) {
  SedaService service(&seda_);
  SearchRequest search;
  search.query = R"x((name, "United States"))x";
  ASSERT_TRUE(service.Search(search).status.ok());
  ASSERT_TRUE(service.Search(search).status.ok());
  SearchRequest bad;
  bad.query = "((((";
  ASSERT_FALSE(service.Search(bad).status.ok());

  // Render first, statz second: a request increments its own series only
  // after building its response, so the statz call would otherwise show up
  // in the rendered text but not in its own snapshot.
  const std::string text = service.RenderMetrics();
  const StatzResponse statz = service.Statz(StatzRequest{});

  // Every per-method counter statz reports is the same series the
  // exposition renders — they are two views of one registry.
  for (const MethodStatsDto& method : statz.methods) {
    const std::string labels = "{method=\"" + method.method + "\"}";
    EXPECT_EQ(SeriesValue(text, "seda_requests_total" + labels),
              static_cast<double>(method.count))
        << method.method;
    EXPECT_EQ(SeriesValue(text, "seda_request_errors_total" + labels),
              static_cast<double>(method.errors))
        << method.method;
    EXPECT_EQ(SeriesValue(text,
                          "seda_request_deadline_exceeded_total" + labels),
              static_cast<double>(method.deadline_exceeded))
        << method.method;
    EXPECT_EQ(SeriesValue(text, "seda_request_latency_ms_count" + labels),
              static_cast<double>(method.count))
        << method.method;
  }

  // Cumulative engine counters round-trip too.
  const StatsDto& c = statz.cumulative;
  EXPECT_EQ(SeriesValue(text, "seda_engine_candidates_total"),
            static_cast<double>(c.candidates_total));
  EXPECT_EQ(SeriesValue(text, "seda_engine_docs_considered_total"),
            static_cast<double>(c.docs_considered));
  EXPECT_EQ(SeriesValue(text, "seda_engine_docs_scored_total"),
            static_cast<double>(c.docs_scored));
  EXPECT_EQ(SeriesValue(text, "seda_engine_tuples_scored_total"),
            static_cast<double>(c.tuples_scored));
  EXPECT_EQ(SeriesValue(text, "seda_engine_postings_advanced_total"),
            static_cast<double>(c.postings_advanced));
  EXPECT_GT(c.candidates_total, 0u);

  // Session gauges.
  EXPECT_EQ(SeriesValue(text, "seda_sessions"),
            static_cast<double>(statz.sessions));
  EXPECT_EQ(SeriesValue(text, "seda_sessions_created_total"),
            static_cast<double>(statz.sessions_created));
  EXPECT_EQ(SeriesValue(text, "seda_epoch"), static_cast<double>(statz.epoch));
}

TEST_F(ObsServiceTest, MetriczEnvelopeServesExposition) {
  SedaService service(&seda_);
  auto response =
      DecodeMetriczResponse(service.Handle(R"x({"method":"metricz"})x"));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().status.ok());
  const std::string& text = response.value().text;
  EXPECT_NE(text.find("# TYPE seda_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE seda_request_latency_ms histogram"),
            std::string::npos);
  // A request counts itself only after rendering its response, so the first
  // scrape shows metricz at 0 and the second shows the first.
  EXPECT_EQ(SeriesValue(text, "seda_requests_total{method=\"metricz\"}"), 0.0);
  auto second =
      DecodeMetriczResponse(service.Handle(R"x({"method":"metricz"})x"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(SeriesValue(second.value().text,
                        "seda_requests_total{method=\"metricz\"}"),
            1.0);
}

TEST_F(ObsServiceTest, TracedSearchReturnsSpanTree) {
  SedaService service(&seda_);
  auto created = service.CreateSession(CreateSessionRequest{});
  ASSERT_TRUE(created.status.ok());

  // Untraced request: no trace in the response envelope (canonical bytes).
  const std::string untraced = service.Handle(
      R"x({"method":"search","session_id":")x" + created.session_id +
      R"x(","query":"(name, *)"})x");
  EXPECT_EQ(untraced.find("\"trace\""), std::string::npos);

  // Traced request: a span tree whose root is the method span.
  auto traced = DecodeSearchResponseDto(service.Handle(
      R"x({"method":"search","session_id":")x" + created.session_id +
      R"x(","query":"(name, *)","trace":true})x"));
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(traced.value().status.ok());
  const obs::SpanNode& root = traced.value().trace;
  EXPECT_EQ(root.name, "search");
  EXPECT_GT(root.unix_ms, 0u);
  ASSERT_FALSE(root.children.empty());
  // The engine stages appear as children (parse always, then the pipeline).
  EXPECT_EQ(root.children[0].name, "parse");
  // Single-threaded trace invariant: direct children sum <= parent, at
  // every level of the tree.
  EXPECT_LE(SumElapsed(root.children), root.elapsed_us);
  for (const obs::SpanNode& child : root.children) {
    EXPECT_LE(SumElapsed(child.children), child.elapsed_us) << child.name;
  }
}

TEST_F(ObsServiceTest, TracingDisabledReturnsNoTree) {
  ServiceOptions options;
  options.tracing = false;
  SedaService service(&seda_, options);
  auto created = service.CreateSession(CreateSessionRequest{});
  ASSERT_TRUE(created.status.ok());
  const std::string response = service.Handle(
      R"x({"method":"search","session_id":")x" + created.session_id +
      R"x(","query":"(name, *)","trace":true})x");
  // The request asked, but tracing is off: the envelope stays trace-free.
  EXPECT_EQ(response.find("\"trace\""), std::string::npos);
}

TEST_F(ObsServiceTest, SampledSlowLogCapturesRequests) {
  ServiceOptions options;
  options.trace_sample_every_n = 1;  // deterministic: every request sampled
  SedaService service(&seda_, options);
  auto created = service.CreateSession(CreateSessionRequest{});
  ASSERT_TRUE(created.status.ok());
  SearchRequest search;
  search.session_id = created.session_id;
  search.query = R"x((name, "United States"))x";
  ASSERT_TRUE(service.Search(search).status.ok());

  auto response = DecodeSlowlogResponse(
      service.Handle(R"x({"method":"slowlog","limit":10})x"));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().status.ok());
  ASSERT_GE(response.value().entries.size(), 2u);  // create_session + search
  EXPECT_EQ(response.value().total_logged, response.value().entries.size());

  bool found_search = false;
  for (const obs::SlowLogEntry& entry : response.value().entries) {
    EXPECT_TRUE(entry.sampled);  // nothing here was actually slow
    EXPECT_GT(entry.seq, 0u);
    EXPECT_GT(entry.unix_ms, 0u);
    if (entry.method == "search") {
      found_search = true;
      EXPECT_EQ(entry.detail, search.query);
      EXPECT_EQ(entry.session_id, created.session_id);
      EXPECT_EQ(entry.status_code, "OK");
      // Sampling captures the span tree even though the client didn't ask.
      EXPECT_EQ(entry.trace.name, "search");
      EXPECT_FALSE(entry.trace.children.empty());
    }
  }
  EXPECT_TRUE(found_search);

  // Newest first: the slowlog request's predecessor is at the front.
  const auto& entries = response.value().entries;
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i - 1].seq, entries[i].seq);
  }
}

TEST_F(ObsServiceTest, SlowLogOffByDefault) {
  SedaService service(&seda_);
  SearchRequest search;
  search.query = R"x((name, "United States"))x";
  ASSERT_TRUE(service.Search(search).status.ok());
  auto response =
      DecodeSlowlogResponse(service.Handle(R"x({"method":"slowlog"})x"));
  ASSERT_TRUE(response.ok());
  // Fast requests, no sampling: nothing logged.
  EXPECT_EQ(response.value().total_logged, 0u);
  EXPECT_TRUE(response.value().entries.empty());
}

TEST_F(ObsServiceTest, SlowLogEntryWireRoundTrip) {
  obs::SlowLogEntry entry;
  entry.seq = 7;
  entry.unix_ms = 1234567890123u;
  entry.method = "search";
  entry.session_id = "s9";
  entry.detail = R"x((name, "a\b"))x";
  entry.elapsed_ms = 12.5;
  entry.threshold_ms = 10;
  entry.status_code = "OK";
  entry.deadline_exceeded = true;
  entry.sampled = false;
  entry.trace.name = "search";
  entry.trace.elapsed_us = 12500;
  entry.trace.unix_ms = entry.unix_ms;
  obs::SpanNode child;
  child.name = "parse";
  child.start_us = 3;
  child.elapsed_us = 40;
  child.counters = {{"terms", 2}};
  entry.trace.children.push_back(child);

  const obs::SlowLogEntry decoded =
      SlowLogEntryFromJson(ToJson(entry));
  EXPECT_EQ(decoded.seq, entry.seq);
  EXPECT_EQ(decoded.unix_ms, entry.unix_ms);
  EXPECT_EQ(decoded.method, entry.method);
  EXPECT_EQ(decoded.session_id, entry.session_id);
  EXPECT_EQ(decoded.detail, entry.detail);
  EXPECT_DOUBLE_EQ(decoded.elapsed_ms, entry.elapsed_ms);
  EXPECT_EQ(decoded.threshold_ms, entry.threshold_ms);
  EXPECT_EQ(decoded.status_code, entry.status_code);
  EXPECT_TRUE(decoded.deadline_exceeded);
  EXPECT_FALSE(decoded.sampled);
  EXPECT_EQ(decoded.trace.name, "search");
  ASSERT_EQ(decoded.trace.children.size(), 1u);
  EXPECT_EQ(decoded.trace.children[0].name, "parse");
  ASSERT_EQ(decoded.trace.children[0].counters.size(), 1u);
  EXPECT_EQ(decoded.trace.children[0].counters[0].first, "terms");
  EXPECT_EQ(decoded.trace.children[0].counters[0].second, 2u);
}

TEST_F(ObsServiceTest, TransportStatzStillFlowsThroughStatz) {
  SedaService service(&seda_);
  service.set_transport_statz([] {
    return std::vector<std::pair<std::string, uint64_t>>{{"conns", 3}};
  });
  const StatzResponse statz = service.Statz(StatzRequest{});
  ASSERT_EQ(statz.transport.size(), 1u);
  EXPECT_EQ(statz.transport[0].first, "conns");
  EXPECT_EQ(statz.transport[0].second, 3u);
}

}  // namespace
}  // namespace seda::api
