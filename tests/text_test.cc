#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "text/analyzer.h"
#include "text/inverted_index.h"
#include "text/text_expr.h"

namespace seda::text {
namespace {

TEST(AnalyzerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("United States"), (std::vector<std::string>{"united", "states"}));
  EXPECT_EQ(Tokenize("GDP_ppp"), (std::vector<std::string>{"gdp_ppp"}));
  EXPECT_EQ(Tokenize("a,b;c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(Tokenize("  ,;  ").empty());
}

TEST(AnalyzerTest, KeepsDecimalNumbersWhole) {
  EXPECT_EQ(Tokenize("12.31T rate"), (std::vector<std::string>{"12.31t", "rate"}));
  EXPECT_EQ(Tokenize("16.9%"), (std::vector<std::string>{"16.9"}));
  // A '.' not between digits splits.
  EXPECT_EQ(Tokenize("a.b"), (std::vector<std::string>{"a", "b"}));
}

TEST(AnalyzerTest, NormalizeToken) {
  EXPECT_EQ(NormalizeToken("Romania"), "romania");
  EXPECT_EQ(NormalizeToken("!!"), "");
}

TEST(TextExprTest, ParseSingleTerm) {
  auto e = ParseTextExpr("Romania");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, TextExpr::Kind::kTerm);
  EXPECT_EQ(e.value()->term, "romania");
}

TEST(TextExprTest, ParsePhrase) {
  auto e = ParseTextExpr("\"United States\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, TextExpr::Kind::kPhrase);
  EXPECT_EQ(e.value()->phrase, (std::vector<std::string>{"united", "states"}));
}

TEST(TextExprTest, SingleWordPhraseBecomesTerm) {
  auto e = ParseTextExpr("\"import\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, TextExpr::Kind::kTerm);
}

TEST(TextExprTest, ParseBooleanCombinations) {
  auto e = ParseTextExpr("a AND b OR c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, TextExpr::Kind::kOr);
  auto f = ParseTextExpr("a b");  // juxtaposition = AND (bag of words)
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value()->kind, TextExpr::Kind::kAnd);
  auto g = ParseTextExpr("NOT a b");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value()->kind, TextExpr::Kind::kAnd);
}

TEST(TextExprTest, ParseParenthesesAndStar) {
  auto e = ParseTextExpr("(a OR b) AND c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, TextExpr::Kind::kAnd);
  auto star = ParseTextExpr("*");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star.value()->kind, TextExpr::Kind::kAll);
  auto empty = ParseTextExpr("   ");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value()->kind, TextExpr::Kind::kAll);
}

TEST(TextExprTest, ParseErrors) {
  EXPECT_FALSE(ParseTextExpr("(a").ok());
  EXPECT_FALSE(ParseTextExpr("\"unterminated").ok());
  EXPECT_FALSE(ParseTextExpr("a )").ok());
}

TEST(TextExprTest, MatchesSemantics) {
  std::vector<std::string> tokens{"united", "states", "import", "partners"};
  EXPECT_TRUE(ParseTextExpr("united").value()->Matches(tokens));
  EXPECT_TRUE(ParseTextExpr("\"united states\"").value()->Matches(tokens));
  EXPECT_FALSE(ParseTextExpr("\"states united\"").value()->Matches(tokens));
  EXPECT_TRUE(ParseTextExpr("united AND import").value()->Matches(tokens));
  EXPECT_FALSE(ParseTextExpr("united AND export").value()->Matches(tokens));
  EXPECT_TRUE(ParseTextExpr("united OR export").value()->Matches(tokens));
  EXPECT_TRUE(ParseTextExpr("united AND NOT export").value()->Matches(tokens));
  EXPECT_FALSE(ParseTextExpr("united AND NOT import").value()->Matches(tokens));
  EXPECT_TRUE(ParseTextExpr("*").value()->Matches({}));
}

TEST(TextExprTest, PositiveTermsAndClone) {
  auto e = ParseTextExpr("\"united states\" AND NOT mexico OR gdp");
  ASSERT_TRUE(e.ok());
  auto terms = e.value()->PositiveTerms();
  EXPECT_EQ(terms, (std::vector<std::string>{"gdp", "states", "united"}));
  auto clone = e.value()->Clone();
  EXPECT_EQ(clone->ToString(), e.value()->ToString());
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    index_ = std::make_unique<InvertedIndex>(&store_);
  }
  store::DocumentStore store_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(IndexTest, PostingsAreInDocumentOrder) {
  const auto& postings = index_->Postings("united");
  ASSERT_FALSE(postings.empty());
  for (size_t i = 1; i < postings.size(); ++i) {
    EXPECT_TRUE(postings[i - 1].node < postings[i].node);
  }
}

TEST_F(IndexTest, NodePostingsIncludeAncestors) {
  // "china" appears in trade_country leaves; the /country roots containing
  // them must also match (Definition 3 content semantics).
  auto matches = index_->EvaluateNodes(*TextExpr::Term("china"));
  bool saw_leaf = false, saw_root = false;
  for (const NodeMatch& m : matches) {
    const std::string& path = store_.paths().PathString(m.path);
    if (path == "/country/economy/import_partners/item/trade_country") saw_leaf = true;
    if (path == "/country") saw_root = true;
  }
  EXPECT_TRUE(saw_leaf);
  EXPECT_TRUE(saw_root);
}

TEST_F(IndexTest, PathPostingsAreDirectOnly) {
  // Figure 8 semantics: the term maps to the paths *directly* containing it.
  auto paths = index_->TermPaths("china");
  std::vector<std::string> texts;
  for (store::PathId p : paths) texts.push_back(store_.paths().PathString(p));
  EXPECT_TRUE(std::find(texts.begin(), texts.end(), "/country") == texts.end());
  EXPECT_TRUE(std::find(texts.begin(), texts.end(),
                        "/country/economy/import_partners/item/trade_country") !=
              texts.end());
}

TEST_F(IndexTest, UnitedStatesHasThreeFactbookContexts) {
  // The paper's Example 1: "United States" occurs as a country name, an
  // import partner and an export partner (plus the Mondial country name in
  // the combined scenario).
  auto expr = ParseTextExpr("\"united states\"");
  ASSERT_TRUE(expr.ok());
  auto paths = index_->EvaluatePaths(*expr.value());
  std::vector<std::string> texts;
  for (store::PathId p : paths) texts.push_back(store_.paths().PathString(p));
  EXPECT_TRUE(std::count(texts.begin(), texts.end(), "/country/name") == 1);
  EXPECT_TRUE(std::count(texts.begin(), texts.end(),
                         "/country/economy/import_partners/item/trade_country") == 1);
  EXPECT_TRUE(std::count(texts.begin(), texts.end(),
                         "/country/economy/export_partners/item/trade_country") == 1);
  EXPECT_TRUE(std::count(texts.begin(), texts.end(), "/mondial_country/name") == 1);
  EXPECT_EQ(texts.size(), 4u);
}

TEST_F(IndexTest, PhraseEvaluationRequiresAdjacency) {
  auto phrase = ParseTextExpr("\"pacific ocean\"");
  ASSERT_TRUE(phrase.ok());
  auto matches = index_->EvaluateNodes(*phrase.value());
  EXPECT_FALSE(matches.empty());
  auto reversed = ParseTextExpr("\"ocean pacific\"");
  EXPECT_TRUE(index_->EvaluateNodes(*reversed.value()).empty());
}

TEST_F(IndexTest, BooleanEvaluation) {
  auto expr = ParseTextExpr("mexico AND germany");
  auto matches = index_->EvaluateNodes(*expr.value());
  // Only nodes containing both: the mexico-2003 doc's root/economy chain.
  ASSERT_FALSE(matches.empty());
  for (const NodeMatch& m : matches) {
    EXPECT_EQ(m.node.doc, 4u);  // mexico-2003
  }
  auto none = ParseTextExpr("mexico AND philippines");
  EXPECT_TRUE(index_->EvaluateNodes(*none.value()).empty());
}

TEST_F(IndexTest, NotEvaluation) {
  auto expr = ParseTextExpr("mexico AND NOT germany");
  auto matches = index_->EvaluateNodes(*expr.value());
  ASSERT_FALSE(matches.empty());
  for (const NodeMatch& m : matches) {
    auto tokens = Tokenize(store_.GetNode(m.node)->ContentString());
    EXPECT_NE(std::find(tokens.begin(), tokens.end(), "mexico"), tokens.end());
    EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "germany"), tokens.end());
  }
}

TEST_F(IndexTest, TagNamesAreIndexedForPaths) {
  auto paths = index_->TermPaths("trade_country");
  EXPECT_EQ(paths.size(), 2u);  // import + export variants
}

TEST_F(IndexTest, DocumentFrequencyAndIdf) {
  // mexico-2003, mexico-2005 plus us-2004/us-2005 (Mexico as trade partner).
  EXPECT_EQ(index_->DocumentFrequency("mexico"), 4u);
  EXPECT_GT(index_->Idf("germany"), index_->Idf("united"));
}

TEST_F(IndexTest, TermPathCountMatchesDictionaryScale) {
  auto paths = index_->TermPaths("china");
  for (store::PathId p : paths) {
    EXPECT_GE(index_->TermPathCount("china", p), 1u);
    EXPECT_GE(store_.paths().NodeCount(p), index_->TermPathCount("china", p));
  }
}

TEST_F(IndexTest, NodesWithPathReturnsDocumentOrder) {
  store::PathId pid =
      store_.paths().Find("/country/economy/import_partners/item/trade_country");
  ASSERT_NE(pid, store::kInvalidPathId);
  const auto& nodes = index_->NodesWithPath(pid);
  ASSERT_GT(nodes.size(), 3u);
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_TRUE(nodes[i - 1] < nodes[i]);
  }
  EXPECT_TRUE(index_->NodesWithPath(store::kInvalidPathId).empty());
}

// Property: index evaluation agrees with brute-force Matches() over the
// node contents, for a panel of random boolean queries.
class IndexEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(IndexEquivalenceTest, MatchesBruteForce) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  InvertedIndex index(&store);
  auto expr = ParseTextExpr(GetParam());
  ASSERT_TRUE(expr.ok());

  std::set<std::string> expected;
  store.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    auto tokens = Tokenize(node->ContentString());
    if (expr.value()->Matches(tokens)) expected.insert(id.ToString());
  });
  std::set<std::string> actual;
  for (const NodeMatch& m : index.EvaluateNodes(*expr.value())) {
    actual.insert(m.node.ToString());
  }
  EXPECT_EQ(actual, expected) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, IndexEquivalenceTest,
    ::testing::Values("united", "\"united states\"", "china AND canada",
                      "mexico OR philippines", "germany AND NOT mexico",
                      "(china OR canada) AND 2006", "gdp_ppp",
                      "NOT united", "\"pacific ocean\" OR \"china sea\""));

}  // namespace
}  // namespace seda::text
