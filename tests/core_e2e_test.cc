#include <gtest/gtest.h>

#include "core/seda.h"
#include "data/generators.h"

namespace seda::core {
namespace {

constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";

/// End-to-end reproduction of the paper's worked example (Query 1, Figures
/// 2-3): search -> context summary -> refinement -> connection summary ->
/// complete results -> star schema -> OLAP.
class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(seda_.mutable_store());
    SedaOptions options;
    options.value_edges.push_back({"/country/name", kTrade, "trade_partner"});
    ASSERT_TRUE(seda_.Finalize(options).ok());
    auto* catalog = seda_.mutable_catalog();
    ASSERT_TRUE(catalog
                    ->DefineDimension("country", {{kName, cube::RelativeKey::Parse(
                                                              {kName, kYear})}})
                    .ok());
    ASSERT_TRUE(catalog
                    ->DefineDimension("year", {{kYear, cube::RelativeKey::Parse(
                                                           {kName, kYear})}})
                    .ok());
    ASSERT_TRUE(catalog
                    ->DefineDimension(
                        "import-country",
                        {{kTrade, cube::RelativeKey::Parse({kName, kYear, "."})}})
                    .ok());
    ASSERT_TRUE(catalog
                    ->DefineFact("import-trade-percentage",
                                 {{kPct, cube::RelativeKey::Parse(
                                             {kName, kYear, "../trade_country"})}})
                    .ok());
  }

  Seda seda_;
};

TEST_F(EndToEndTest, FinalizeOnlyOnce) {
  EXPECT_FALSE(seda_.Finalize().ok());
  EXPECT_TRUE(seda_.finalized());
}

TEST_F(EndToEndTest, SearchBeforeFinalizeFails) {
  Seda fresh;
  EXPECT_FALSE(fresh.Search("(a, b)").ok());
}

TEST_F(EndToEndTest, Query1SearchReturnsTopKAndSummaries) {
  auto response = seda_.Search(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response.value().topk.empty());
  ASSERT_EQ(response.value().contexts.buckets.size(), 3u);
  // "United States": 3 factbook contexts + the mondial country name.
  EXPECT_EQ(response.value().contexts.buckets[0].entries.size(), 4u);
  EXPECT_EQ(response.value().contexts.buckets[1].entries.size(), 2u);
  EXPECT_EQ(response.value().contexts.buckets[2].entries.size(), 2u);
  EXPECT_FALSE(response.value().connections.entries.empty());
}

TEST_F(EndToEndTest, RefinementNarrowsContexts) {
  auto query = seda_.Parse(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  ASSERT_TRUE(query.ok());
  auto refined = seda_.RefineContexts(query.value(), {{kName}, {kTrade}, {kPct}});
  ASSERT_TRUE(refined.ok());
  auto response = seda_.Search(refined.value());
  ASSERT_TRUE(response.ok());
  for (const auto& bucket : response.value().contexts.buckets) {
    EXPECT_EQ(bucket.entries.size(), 1u);
  }
  // After refinement every top-k tuple is in the import context.
  for (const auto& tuple : response.value().topk) {
    EXPECT_EQ(seda_.store().paths().PathString(tuple.nodes[1].path), kTrade);
  }
}

TEST_F(EndToEndTest, RefineContextsValidation) {
  auto query = seda_.Parse("(a, b)");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(seda_.RefineContexts(query.value(), {{"/x"}, {"/y"}}).ok());
  EXPECT_FALSE(seda_.RefineContexts(query.value(), {{"not-absolute"}}).ok());
}

TEST_F(EndToEndTest, ConnectionSummaryShowsTwoWaysAfterRefinement) {
  auto query = seda_.Parse("(trade_country, *) AND (percentage, *)");
  ASSERT_TRUE(query.ok());
  auto refined = seda_.RefineContexts(query.value(), {{kTrade}, {kPct}});
  ASSERT_TRUE(refined.ok());
  auto response = seda_.Search(refined.value());
  ASSERT_TRUE(response.ok());
  // Paper §6: two different ways to connect trade_country and percentage.
  std::set<size_t> lengths;
  for (const auto& entry : response.value().connections.entries) {
    lengths.insert(entry.connection.Length());
  }
  EXPECT_TRUE(lengths.count(2));
  EXPECT_TRUE(lengths.count(4));
}

TEST_F(EndToEndTest, CompleteResultsAndFigure3Cube) {
  auto query = seda_.Parse(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  ASSERT_TRUE(query.ok());
  auto result = seda_.CompleteResults(query.value(), {kName, kTrade, kPct}, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tuples.size(), 8u);

  auto schema = seda_.BuildCube(result.value());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema.value().fact_tables.size(), 1u);
  EXPECT_EQ(schema.value().fact_tables[0].columns,
            (std::vector<std::string>{"country", "year", "import-country",
                                      "import-trade-percentage"}));

  auto cube = seda_.ToOlapCube(schema.value());
  ASSERT_TRUE(cube.ok());
  auto by_partner = cube.value().Aggregate({"import-country"}, olap::AggFn::kAvg,
                                           "import-trade-percentage");
  ASSERT_TRUE(by_partner.ok());
  EXPECT_EQ(by_partner.value().cells.size(), 3u);  // Canada, China, Mexico
}

TEST_F(EndToEndTest, ChosenConnectionFromSummaryIsExecutable) {
  auto query = seda_.Parse("(trade_country, *) AND (percentage, *)");
  ASSERT_TRUE(query.ok());
  auto refined = seda_.RefineContexts(query.value(), {{kTrade}, {kPct}});
  ASSERT_TRUE(refined.ok());
  auto response = seda_.Search(refined.value());
  ASSERT_TRUE(response.ok());
  // Pick the shortest (same-item) connection from the summary and execute.
  const summary::ConnectionEntry* shortest = nullptr;
  for (const auto& entry : response.value().connections.entries) {
    if (shortest == nullptr ||
        entry.connection.Length() < shortest->connection.Length()) {
      shortest = &entry;
    }
  }
  ASSERT_NE(shortest, nullptr);
  auto chosen = twig::ChosenConnection::FromDataguideConnection(
      0, 1, shortest->connection);
  ASSERT_TRUE(chosen.ok());
  auto result = seda_.CompleteResults(refined.value(), {kTrade, kPct},
                                      {chosen.value()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Same-item pairs: 9 items with both children across scenario docs
  // (us-2002 x2, us-2004 x2, us-2005 x2, us-2006 x2, mexico-2003 x2 = 10).
  EXPECT_EQ(result.value().tuples.size(), 10u);
}

TEST_F(EndToEndTest, ValueBasedEdgesJoinFactbookAndFactbook) {
  // trade_partner value edges let a country tuple connect to the documents
  // importing from it (paper Figure 1's trade_partner dashed edge).
  EXPECT_GT(seda_.data_graph().EdgeCount(), 4u);  // 4 idref + value edges
}

TEST_F(EndToEndTest, DataguideStatisticsExposed) {
  EXPECT_GT(seda_.dataguides().size(), 0u);
  EXPECT_EQ(seda_.dataguides().build_stats().documents, 11u);
  EXPECT_GT(seda_.dataguides().LinkCount(), 0u);
}

TEST_F(EndToEndTest, BadQuerySyntaxSurfacesParseError) {
  EXPECT_FALSE(seda_.Search("not a query").ok());
}

}  // namespace
}  // namespace seda::core
