#include <gtest/gtest.h>

#include "data/generators.h"
#include "summary/connection_summary.h"
#include "summary/context_summary.h"
#include "topk/topk.h"

namespace seda::summary {
namespace {

class SummaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::PopulateScenario(&store_);
    graph_ = std::make_unique<graph::DataGraph>(&store_);
    graph_->ResolveIdRefs();
    index_ = std::make_unique<text::InvertedIndex>(&store_);
    dataguide::DataguideCollection::Options options;
    options.overlap_threshold = 0.4;
    guides_ = std::make_unique<dataguide::DataguideCollection>(
        dataguide::DataguideCollection::Build(store_, options));
    guides_->AddLinksFromGraph(*graph_);
    searcher_ = std::make_unique<topk::TopKSearcher>(index_.get(), graph_.get());
  }

  query::Query Q(const std::string& text) {
    auto q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  store::DocumentStore store_;
  std::unique_ptr<graph::DataGraph> graph_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<dataguide::DataguideCollection> guides_;
  std::unique_ptr<topk::TopKSearcher> searcher_;
};

TEST_F(SummaryTest, UnitedStatesContextBucket) {
  ContextSummaryGenerator generator(index_.get());
  auto bucket = generator.GenerateBucket(Q(R"((*, "United States"))").terms[0]);
  // Scenario contexts: /country/name, import trade_country, export
  // trade_country, /mondial_country/name.
  ASSERT_EQ(bucket.entries.size(), 4u);
  // Sorted by document frequency in the whole collection.
  for (size_t i = 1; i < bucket.entries.size(); ++i) {
    EXPECT_GE(bucket.entries[i - 1].doc_count, bucket.entries[i].doc_count);
  }
}

TEST_F(SummaryTest, FrequenciesAreAbsoluteNotResultScoped) {
  // §5: SEDA shows the frequency of the path itself, irrespective of the
  // keyword. "Germany" appears once, but its path (import trade_country)
  // has doc_count 4 (us-2002/2004/2005/2006 + mexico-2003 = 5 actually).
  ContextSummaryGenerator generator(index_.get());
  auto bucket = generator.GenerateBucket(Q(R"((*, "Germany"))").terms[0]);
  ASSERT_EQ(bucket.entries.size(), 1u);
  EXPECT_EQ(bucket.entries[0].path_text,
            "/country/economy/import_partners/item/trade_country");
  EXPECT_EQ(bucket.entries[0].doc_count,
            store_.paths().DocCount(bucket.entries[0].path));
  EXPECT_GT(bucket.entries[0].doc_count, 1u);
}

TEST_F(SummaryTest, TagContextProbing) {
  // (trade_country, *): both import and export contexts.
  ContextSummaryGenerator generator(index_.get());
  auto bucket = generator.GenerateBucket(Q("(trade_country, *)").terms[0]);
  EXPECT_EQ(bucket.entries.size(), 2u);
  // (percentage, *): likewise two contexts.
  auto pct = generator.GenerateBucket(Q("(percentage, *)").terms[0]);
  EXPECT_EQ(pct.entries.size(), 2u);
}

TEST_F(SummaryTest, TwelveCombinationsBeforeRefinement) {
  // Example 1: 3 x 2 x 2 = 12 ways before context selection (factbook-only;
  // the mondial name context adds a 4th for the first term -> 16 here).
  ContextSummaryGenerator generator(index_.get());
  auto summary = generator.Generate(
      Q(R"((*, "United States") AND (trade_country, *) AND (percentage, *))"));
  ASSERT_EQ(summary.buckets.size(), 3u);
  EXPECT_EQ(summary.buckets[0].entries.size(), 4u);  // 3 factbook + 1 mondial
  EXPECT_EQ(summary.buckets[1].entries.size(), 2u);
  EXPECT_EQ(summary.buckets[2].entries.size(), 2u);
  EXPECT_EQ(summary.CombinationCount(), 16u);
}

TEST_F(SummaryTest, PathContextRestrictsBucket) {
  ContextSummaryGenerator generator(index_.get());
  auto bucket = generator.GenerateBucket(
      Q(R"((/country/economy/import_partners/item/trade_country, "United States"))")
          .terms[0]);
  ASSERT_EQ(bucket.entries.size(), 1u);
  EXPECT_EQ(bucket.entries[0].path_text,
            "/country/economy/import_partners/item/trade_country");
}

TEST_F(SummaryTest, ConnectionSummaryFindsBothItemConnections) {
  topk::TopKOptions options;
  options.k = 20;
  auto topk_result = searcher_->Search(
      Q("(trade_country, *) AND (percentage, *)"), options);
  ASSERT_TRUE(topk_result.ok());
  ConnectionSummaryGenerator generator(guides_.get(), graph_.get());
  auto summary = generator.Generate(topk_result.value());
  ASSERT_FALSE(summary.entries.empty());
  // The same-item connection (length 2) must be instantiated by top-k
  // results; the cross-item connection (length 4) is discovered from the
  // dataguide.
  bool saw_len2_with_instances = false;
  bool saw_len4 = false;
  for (const ConnectionEntry& entry : summary.entries) {
    if (entry.connection.Length() == 2 && entry.instance_count > 0) {
      saw_len2_with_instances = true;
    }
    if (entry.connection.Length() == 4) saw_len4 = true;
  }
  EXPECT_TRUE(saw_len2_with_instances);
  EXPECT_TRUE(saw_len4);
}

TEST_F(SummaryTest, FalsePositivesAreFlagged) {
  topk::TopKOptions options;
  options.k = 5;
  auto topk_result = searcher_->Search(
      Q("(trade_country, \"China\") AND (percentage, *)"), options);
  ASSERT_TRUE(topk_result.ok());
  ConnectionSummaryGenerator generator(guides_.get(), graph_.get());
  auto summary = generator.Generate(topk_result.value());
  // Any entry with zero instances must be flagged, and FalsePositiveCount
  // must agree.
  uint64_t manual = 0;
  for (const ConnectionEntry& entry : summary.entries) {
    EXPECT_EQ(entry.false_positive, entry.instance_count == 0);
    if (entry.false_positive) ++manual;
  }
  EXPECT_EQ(summary.FalsePositiveCount(), manual);
}

TEST_F(SummaryTest, EmptyTopKYieldsEmptyConnectionSummary) {
  ConnectionSummaryGenerator generator(guides_.get(), graph_.get());
  auto summary = generator.Generate({});
  EXPECT_TRUE(summary.entries.empty());
}

TEST_F(SummaryTest, SummariesRenderToText) {
  ContextSummaryGenerator generator(index_.get());
  auto summary = generator.Generate(Q(R"((*, "United States"))"));
  EXPECT_NE(summary.ToString().find("/country/name"), std::string::npos);
}

}  // namespace
}  // namespace seda::summary
