#include <gtest/gtest.h>

#include "data/generators.h"
#include "query/query.h"

namespace seda::query {
namespace {

TEST(ContextSpecTest, ParseVariants) {
  EXPECT_TRUE(ContextSpec::Parse("*").value().unrestricted());
  EXPECT_TRUE(ContextSpec::Parse("").value().unrestricted());
  ContextSpec tag = ContextSpec::Parse("trade_country").value();
  ASSERT_EQ(tag.alternatives().size(), 1u);
  EXPECT_FALSE(tag.alternatives()[0].is_path);
  ContextSpec path = ContextSpec::Parse("/country/economy/GDP").value();
  ASSERT_EQ(path.alternatives().size(), 1u);
  EXPECT_TRUE(path.alternatives()[0].is_path);
  ContextSpec both = ContextSpec::Parse("name | /country/year").value();
  EXPECT_EQ(both.alternatives().size(), 2u);
}

TEST(ContextSpecTest, RejectsEmptyAlternatives) {
  // "a | | b" must be an error, not a silent two-alternative spec.
  auto empty_middle = ContextSpec::Parse("a | | b");
  ASSERT_FALSE(empty_middle.ok());
  EXPECT_EQ(empty_middle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty_middle.status().message().find("empty alternative"),
            std::string::npos);
  EXPECT_FALSE(ContextSpec::Parse("a |").ok());
  EXPECT_FALSE(ContextSpec::Parse("| a").ok());
  EXPECT_FALSE(ContextSpec::Parse("|").ok());
}

TEST(ContextSpecTest, StarAlternativeMakesSpecUnrestricted) {
  // '*' admits every context, so a disjunction containing it is the
  // unrestricted spec — not a spec that silently dropped the '*'.
  EXPECT_TRUE(ContextSpec::Parse("a | *").value().unrestricted());
  EXPECT_TRUE(ContextSpec::Parse("* | /b/c").value().unrestricted());
}

TEST(ContextSpecTest, MatchesDefinition3) {
  ContextSpec tag = ContextSpec::Parse("trade_country").value();
  EXPECT_TRUE(tag.Matches("/country/economy/import_partners/item/trade_country",
                          "trade_country"));
  EXPECT_FALSE(tag.Matches("/country/name", "name"));
  ContextSpec wild = ContextSpec::Parse("trade_*").value();
  EXPECT_TRUE(wild.Matches("/x/trade_country", "trade_country"));
  ContextSpec path = ContextSpec::Parse("/country/name").value();
  EXPECT_TRUE(path.Matches("/country/name", "name"));
  EXPECT_FALSE(path.Matches("/territory/name", "name"));
  EXPECT_TRUE(ContextSpec().Matches("/anything", "anything"));
}

TEST(ContextSpecTest, ResolvePathIds) {
  store::DocumentStore store;
  data::PopulateScenario(&store);
  ContextSpec tag = ContextSpec::Parse("trade_country").value();
  auto ids = tag.ResolvePathIds(store.paths());
  EXPECT_EQ(ids.size(), 2u);  // import + export variants
  ContextSpec all;
  EXPECT_EQ(all.ResolvePathIds(store.paths()).size(), store.paths().size());
  ContextSpec missing = ContextSpec::Parse("/no/such/path").value();
  EXPECT_TRUE(missing.ResolvePathIds(store.paths()).empty());
}

TEST(QueryParseTest, PaperQuery1) {
  auto q = ParseQuery(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().terms.size(), 3u);
  EXPECT_TRUE(q.value().terms[0].context.unrestricted());
  EXPECT_EQ(q.value().terms[0].search->kind, text::TextExpr::Kind::kPhrase);
  EXPECT_FALSE(q.value().terms[1].context.unrestricted());
  EXPECT_EQ(q.value().terms[1].search->kind, text::TextExpr::Kind::kAll);
}

TEST(QueryParseTest, UnicodeConjunctionAndAmpersands) {
  auto q = ParseQuery("(a, x) \xe2\x88\xa7 (b, y) && (c, z)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().terms.size(), 3u);
}

TEST(QueryParseTest, QuotedContext) {
  auto q = ParseQuery(R"(("country", "Romania"))");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().terms.size(), 1u);
  EXPECT_EQ(q.value().terms[0].context.ToString(), "country");
}

TEST(QueryParseTest, BooleanSearchInsideTerm) {
  auto q = ParseQuery("(economy, gdp AND (growth OR decline))");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().terms[0].search->kind, text::TextExpr::Kind::kAnd);
}

TEST(QueryParseTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("no parens").ok());
  EXPECT_FALSE(ParseQuery("(missing comma)").ok());
  EXPECT_FALSE(ParseQuery("(a, b").ok());
}

TEST(QueryParseTest, ErrorsCarryByteOffsetAndToken) {
  // Offset 9 is where "oops..." starts after the first term and separator.
  auto bad_start = ParseQuery("(a, b) && oops(c, d)");
  ASSERT_FALSE(bad_start.ok());
  EXPECT_NE(bad_start.status().message().find("offset 10"), std::string::npos)
      << bad_start.status().message();
  EXPECT_NE(bad_start.status().message().find("'oops(c,"), std::string::npos)
      << bad_start.status().message();

  auto no_comma = ParseQuery("(a, b) AND (missing comma)");
  ASSERT_FALSE(no_comma.ok());
  EXPECT_NE(no_comma.status().message().find("offset 11"), std::string::npos)
      << no_comma.status().message();
  EXPECT_NE(no_comma.status().message().find("','"), std::string::npos);

  auto no_close = ParseQuery("(a, b");
  ASSERT_FALSE(no_close.ok());
  EXPECT_NE(no_close.status().message().find("offset 0"), std::string::npos)
      << no_close.status().message();
  EXPECT_NE(no_close.status().message().find("<end of input>"),
            std::string::npos);

  // A bad context propagates its error anchored at the context's offset.
  auto bad_context = ParseQuery("(a | | b, x)");
  ASSERT_FALSE(bad_context.ok());
  EXPECT_NE(bad_context.status().message().find("offset 1"), std::string::npos)
      << bad_context.status().message();
  EXPECT_NE(bad_context.status().message().find("empty alternative"),
            std::string::npos);

  // A bad search expression is anchored at the search part's offset.
  auto bad_search = ParseQuery("(a, x AND)");
  ASSERT_FALSE(bad_search.ok());
  EXPECT_NE(bad_search.status().message().find("offset 3"), std::string::npos)
      << bad_search.status().message();
}

TEST(QueryParseTest, RoundTripToString) {
  auto q = ParseQuery(R"((trade_country, "China") AND (percentage, *))");
  ASSERT_TRUE(q.ok());
  std::string text = q.value().ToString();
  EXPECT_NE(text.find("trade_country"), std::string::npos);
  EXPECT_NE(text.find("china"), std::string::npos);
  EXPECT_NE(text.find("AND"), std::string::npos);
}

TEST(QueryTest, TermCopySemantics) {
  auto q = ParseQuery("(a, x AND y)");
  ASSERT_TRUE(q.ok());
  Query copy = q.value();  // deep copy via QueryTerm copy ctor
  EXPECT_EQ(copy.terms[0].search->ToString(), q.value().terms[0].search->ToString());
  EXPECT_NE(copy.terms[0].search.get(), q.value().terms[0].search.get());
}

}  // namespace
}  // namespace seda::query
