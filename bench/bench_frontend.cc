// Frontend benchmark AND correctness gate for the network serving path:
//
//   1. Response equivalence — the exact bytes a TCP client receives from a
//      sharded (scatter-gather) server match the unsharded server for every
//      query, modulo the volatile stats.elapsed_ms field. A mismatch is a
//      hard failure (non-zero exit), not a report line.
//   2. Concurrent-connection throughput — N clients (1 / 8 / 32 by default)
//      each run `--requests` round trips over their own socket against the
//      sharded server; reports req/s and p50/p99 per level.
//   3. Load shedding under overload — a deliberately tiny server (1 worker,
//      queue capacity 2) receives a pipelined burst of >= 2x queue capacity
//      frames per connection. Every frame MUST come back as a well-formed
//      response — OK or an explicit `Unavailable: overloaded` envelope —
//      with zero connection resets and zero decode failures. At least one
//      frame must actually be shed, or the phase didn't test anything.
//
//   ./bench_frontend --scale 0.15 --requests 24 --shards 3 --out BENCH_frontend.json
//
// Fd budget stays far under CI limits: max 32 concurrent sockets.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "core/seda.h"
#include "data/generators.h"
#include "net/client.h"
#include "net/server.h"

using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

const char* kQueries[] = {
    R"json({"method":"search","query":"(*, \"United States\") AND (trade_country, *)","k":10})json",
    R"json({"method":"search","query":"(trade_country, \"China\") AND (percentage, *)","k":10})json",
    R"json({"method":"search","query":"(name, *) AND (GDP_ppp, *)","k":10})json",
    R"json({"method":"search","query":"(*, pacific)","k":10})json",
};

struct Level {
  size_t clients = 0;
  size_t requests = 0;
  double wall_ms = 0;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

/// In-process server over a shared engine, on an ephemeral loopback port.
struct Frontend {
  Frontend(seda::core::Seda* seda, size_t shards,
           seda::net::ServerOptions options = seda::net::ServerOptions{}) {
    seda::api::ServiceOptions service_options;
    service_options.topk_shards = shards;
    service = std::make_unique<seda::api::SedaService>(seda, service_options);
    options.port = 0;
    server = std::make_unique<seda::net::Server>(service.get(), options);
    start_status = server->Start();
  }

  seda::net::BlockingClient Connect() {
    seda::net::BlockingClient client;
    seda::Status status =
        client.Connect("127.0.0.1", server->port(), /*recv_timeout_ms=*/30000);
    if (!status.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", status.ToString().c_str());
    }
    return client;
  }

  std::unique_ptr<seda::api::SedaService> service;
  std::unique_ptr<seda::net::Server> server;
  seda::Status start_status;
};

/// Response bytes with stats cleared. Timing is volatile, and the scan
/// counters legitimately differ across serving modes (each shard's TA loop
/// terminates on its own threshold) — the equivalence claim is about the
/// ranking and summaries a client acts on.
bool CanonicalBytes(const std::string& response_json, std::string* out) {
  auto decoded = seda::api::DecodeSearchResponseDto(response_json);
  if (!decoded.ok()) return false;
  seda::api::SearchResponseDto response = std::move(decoded).value();
  response.stats = seda::api::StatsDto{};
  *out = Encode(response);
  return true;
}

/// Status code of a response envelope ("" when absent/unparseable).
std::string EnvelopeCode(const std::string& response_json) {
  auto parsed = seda::api::Json::Parse(response_json);
  if (!parsed.ok()) return "";
  const seda::api::Json* status = parsed.value().Find("status");
  if (status == nullptr) return "";
  const seda::api::Json* code = status->Find("code");
  return code != nullptr ? code->AsString() : "";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.15;
  size_t requests_per_client = 24;
  size_t shards = 3;
  std::string out_path = "BENCH_frontend.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--requests") == 0) {
      requests_per_client = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  std::printf("=== TCP frontend: equivalence, concurrency, load shedding ===\n");

  seda::core::Seda seda;
  {
    seda::data::WorldFactbookGenerator::Options corpus;
    corpus.scale = scale;
    seda::data::WorldFactbookGenerator(corpus).Populate(seda.mutable_store());
    if (!seda.Finalize().ok()) {
      std::printf("finalize failed\n");
      return 1;
    }
  }
  std::printf("corpus: factbook scale %.2f (%zu docs)\n", scale,
              seda.store().DocumentCount());

  bool gates_ok = true;

  // --- Phase 1: sharded vs unsharded response equivalence over TCP -------
  size_t equivalence_checked = 0;
  {
    Frontend unsharded(&seda, 1);
    Frontend sharded(&seda, shards);
    if (!unsharded.start_status.ok() || !sharded.start_status.ok()) {
      std::printf("server start failed\n");
      return 1;
    }
    seda::net::BlockingClient a = unsharded.Connect();
    seda::net::BlockingClient b = sharded.Connect();
    if (!a.connected() || !b.connected()) return 1;
    for (const char* query : kQueries) {
      auto base = a.Call(query);
      auto test = b.Call(query);
      std::string base_bytes, test_bytes;
      if (!base.ok() || !test.ok() ||
          !CanonicalBytes(base.value(), &base_bytes) ||
          !CanonicalBytes(test.value(), &test_bytes) ||
          base_bytes != test_bytes) {
        std::printf("EQUIVALENCE FAILED (shards=%zu): %s\n", shards, query);
        gates_ok = false;
        continue;
      }
      ++equivalence_checked;
    }
    std::printf("equivalence: %zu/%zu queries byte-identical at shards=%zu\n",
                equivalence_checked,
                sizeof(kQueries) / sizeof(*kQueries), shards);
  }

  // --- Phase 2: concurrent connections against the sharded server -------
  std::vector<Level> levels;
  {
    Frontend frontend(&seda, shards);
    if (!frontend.start_status.ok()) return 1;
    for (size_t clients : {size_t{1}, size_t{8}, size_t{32}}) {
      std::vector<std::vector<double>> per_client(clients);
      std::atomic<bool> failed{false};
      auto wall_start = Clock::now();
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          seda::net::BlockingClient client = frontend.Connect();
          if (!client.connected()) {
            failed.store(true);
            return;
          }
          per_client[c].reserve(requests_per_client);
          for (size_t r = 0; r < requests_per_client; ++r) {
            const char* query =
                kQueries[(c + r) % (sizeof(kQueries) / sizeof(*kQueries))];
            auto start = Clock::now();
            auto response = client.Call(query);
            per_client[c].push_back(Ms(start, Clock::now()));
            if (!response.ok() || EnvelopeCode(response.value()) != "OK") {
              failed.store(true);
              return;
            }
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      double wall_ms = Ms(wall_start, Clock::now());
      if (failed.load()) {
        std::printf("concurrency level %zu failed\n", clients);
        gates_ok = false;
        continue;
      }
      std::vector<double> latencies;
      for (const auto& client_latencies : per_client) {
        latencies.insert(latencies.end(), client_latencies.begin(),
                         client_latencies.end());
      }
      std::sort(latencies.begin(), latencies.end());
      Level level;
      level.clients = clients;
      level.requests = latencies.size();
      level.wall_ms = wall_ms;
      level.rps = wall_ms > 0
                      ? 1000.0 * static_cast<double>(latencies.size()) / wall_ms
                      : 0;
      level.p50_ms = Percentile(latencies, 0.50);
      level.p99_ms = Percentile(latencies, 0.99);
      levels.push_back(level);
      std::printf("%2zu connection(s): %5zu requests in %8.1f ms  "
                  "%8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
                  level.clients, level.requests, level.wall_ms, level.rps,
                  level.p50_ms, level.p99_ms);
    }
  }

  // --- Phase 3: load shedding at >= 2x queue capacity --------------------
  uint64_t shed_ok = 0, shed_overloaded = 0, shed_other = 0;
  {
    seda::net::ServerOptions tiny;
    tiny.worker_threads = 1;
    tiny.queue_capacity = 2;
    Frontend frontend(&seda, 1, tiny);
    if (!frontend.start_status.ok()) return 1;
    constexpr size_t kClients = 4;
    // 16 pipelined frames per connection: 64 total against capacity 2.
    constexpr size_t kBurst = 16;
    std::atomic<uint64_t> resets{0};
    std::atomic<uint64_t> ok{0}, overloaded{0}, other{0};
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&] {
        seda::net::BlockingClient client = frontend.Connect();
        if (!client.connected()) {
          resets.fetch_add(kBurst);
          return;
        }
        std::string burst;
        for (size_t r = 0; r < kBurst; ++r) {
          burst += seda::net::EncodeFrame(kQueries[0]);
        }
        if (!client.SendRaw(burst).ok()) {
          resets.fetch_add(kBurst);
          return;
        }
        for (size_t r = 0; r < kBurst; ++r) {
          auto response = client.ReadFrame();
          if (!response.ok()) {
            // Connection reset / torn frame: the failure the gate forbids.
            resets.fetch_add(kBurst - r);
            return;
          }
          const std::string code = EnvelopeCode(response.value());
          if (code == "OK") {
            ok.fetch_add(1);
          } else if (code == "Unavailable") {
            overloaded.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    shed_ok = ok.load();
    shed_overloaded = overloaded.load();
    shed_other = other.load();
    std::printf("overload burst: %llu ok, %llu overloaded, %llu other, "
                "%llu resets (of %zu frames)\n",
                static_cast<unsigned long long>(shed_ok),
                static_cast<unsigned long long>(shed_overloaded),
                static_cast<unsigned long long>(shed_other),
                static_cast<unsigned long long>(resets.load()),
                kClients * kBurst);
    if (resets.load() != 0 || shed_other != 0 ||
        shed_ok + shed_overloaded != kClients * kBurst) {
      std::printf("LOAD-SHED GATE FAILED: responses lost or malformed\n");
      gates_ok = false;
    }
    if (shed_overloaded == 0) {
      std::printf("LOAD-SHED GATE FAILED: burst never tripped admission\n");
      gates_ok = false;
    }
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) return 1;
  std::fprintf(out, "{\"bench\":\"frontend\",\"scale\":%g,\"shards\":%zu,",
               scale, shards);
  std::fprintf(out, "\"equivalent_queries\":%zu,", equivalence_checked);
  std::fprintf(out, "\"requests_per_client\":%zu,\"levels\":[",
               requests_per_client);
  for (size_t i = 0; i < levels.size(); ++i) {
    const Level& level = levels[i];
    std::fprintf(out,
                 "%s{\"clients\":%zu,\"requests\":%zu,\"wall_ms\":%.2f,"
                 "\"rps\":%.2f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
                 i > 0 ? "," : "", level.clients, level.requests,
                 level.wall_ms, level.rps, level.p50_ms, level.p99_ms);
  }
  std::fprintf(out,
               "],\"overload\":{\"ok\":%llu,\"overloaded\":%llu,"
               "\"other\":%llu},\"gates_ok\":%s}\n",
               static_cast<unsigned long long>(shed_ok),
               static_cast<unsigned long long>(shed_overloaded),
               static_cast<unsigned long long>(shed_other),
               gates_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return gates_ok ? 0 : 1;
}
