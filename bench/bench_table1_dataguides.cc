// Reproduces Table 1 of the paper: "Dataguide statistics for threshold of
// 40%" — number of documents and number of dataguides for the four datasets
// (Google Base snapshot, Mondial, RecipeML, World Factbook).
//
// Paper values: Google Base 10000/88, Mondial 5563/86, RecipeML 10988/3,
// World Factbook 1600/500 (reduction factors ~114x, ~65x, ~3663x, ~3.2x).
// Our datasets are synthetic stand-ins tuned to those shapes; the claim to
// check is the *ordering* of reduction factors (flat/regular data compresses
// by orders of magnitude, flexible data barely compresses).

#include <chrono>
#include <cstdio>

#include "data/generators.h"
#include "dataguide/dataguide.h"

using seda::dataguide::DataguideCollection;

namespace {

struct Row {
  const char* name;
  size_t documents;
  size_t dataguides;
  double reduction;
  double build_seconds;
  size_t paper_docs;
  size_t paper_guides;
};

template <typename Generator>
Row Measure(const char* name, const Generator& generator, size_t paper_docs,
            size_t paper_guides) {
  seda::store::DocumentStore store;
  generator.Populate(&store);
  DataguideCollection::Options options;
  options.overlap_threshold = 0.4;
  auto start = std::chrono::steady_clock::now();
  auto collection = DataguideCollection::Build(store, options);
  std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return {name,
          store.DocumentCount(),
          collection.size(),
          collection.build_stats().reduction_factor,
          elapsed.count(),
          paper_docs,
          paper_guides};
}

}  // namespace

int main() {
  std::printf("=== Table 1: Dataguide statistics for threshold of 40%% ===\n");
  std::printf("%-22s %12s %12s %10s | %10s %12s %10s\n", "Data set", "# documents",
              "# dataguides", "reduction", "paper docs", "paper guides",
              "paper red.");

  Row rows[] = {
      Measure("Google Base snapshot", seda::data::GoogleBaseGenerator(), 10000, 88),
      Measure("Mondial", seda::data::MondialGenerator(), 5563, 86),
      Measure("RecipeML", seda::data::RecipeMLGenerator(), 10988, 3),
      Measure("World Factbook", seda::data::WorldFactbookGenerator(), 1600, 500),
  };
  for (const Row& row : rows) {
    std::printf("%-22s %12zu %12zu %9.1fx | %10zu %12zu %9.1fx\n", row.name,
                row.documents, row.dataguides, row.reduction, row.paper_docs,
                row.paper_guides,
                static_cast<double>(row.paper_docs) /
                    static_cast<double>(row.paper_guides));
  }
  std::printf("\nShape check (paper ordering: RecipeML >> GoogleBase ~ Mondial >> "
              "Factbook):\n");
  bool shape = rows[2].reduction > rows[0].reduction &&
               rows[0].reduction > rows[3].reduction &&
               rows[1].reduction > rows[3].reduction;
  std::printf("  reduction ordering holds: %s\n", shape ? "YES" : "NO");
  for (const Row& row : rows) {
    std::printf("  %-22s build %.2fs\n", row.name, row.build_seconds);
  }
  return shape ? 0 : 1;
}
