// Columnar cube-extraction bench (ROADMAP "schema inference + columnar
// hybrid projections" item): the same star schema is materialized from a
// complete result twice — once scanning the commit-time columnar
// projections (src/column/), once forced down the per-node tree walk the
// columns replace. The tree walk re-evaluates every absolute key component
// with a full-document node scan per result tuple, which is exactly the
// quadratic-ish work the DocId/Dewey row indexes answer with two binary
// searches.
//
// Gates (exit non-zero on violation):
//  * the rendered star schema is byte-identical with columns on and off,
//    and the OLAP cell totals agree bit for bit;
//  * the column path is >= --min-speedup (default 3x) faster than the
//    tree walk.
//
// Writes BENCH_cube.json for CI.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/seda.h"
#include "data/generators.h"

using Clock = std::chrono::steady_clock;
using seda::cube::RelativeKey;

namespace {

constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade =
    "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct =
    "/country/economy/import_partners/item/percentage";

double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  double min_speedup = 3.0;
  int reps = 10;
  std::string out_path = "BENCH_cube.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--min-speedup") == 0) {
      min_speedup = std::atof(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
  }

  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options options;
  options.scale = scale;
  seda::data::WorldFactbookGenerator(options).Populate(seda.mutable_store());
  if (!seda.Finalize().ok()) return 1;
  auto snap = seda.snapshot();
  std::printf("factbook scale %.3f: %zu docs, %zu inferred columns\n", scale,
              snap->store().DocumentCount(), snap->columns().size());

  // The paper's Fig. 3(b) catalog: absolute, self and sibling-step key
  // components, so every column plan kind is on the measured path.
  auto* catalog = seda.mutable_catalog();
  (void)catalog->DefineDimension("country",
                                 {{kName, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension("year",
                                 {{kYear, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension(
      "import-country", {{kTrade, RelativeKey::Parse({kName, kYear, "."})}});
  (void)catalog->DefineFact(
      "import-trade-percentage",
      {{kPct, RelativeKey::Parse({kName, kYear, "../trade_country"})}});

  auto query = seda.Parse(R"((trade_country, *) AND (percentage, *))");
  if (!query.ok()) return 1;
  auto result = seda.CompleteResults(query.value(), {kTrade, kPct}, {});
  if (!result.ok()) {
    std::fprintf(stderr, "complete failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("complete result: %zu tuples\n", result.value().tuples.size());

  seda::cube::CubeBuilder::Options with;
  with.use_columns = true;
  seda::cube::CubeBuilder::Options without;
  without.use_columns = false;

  // Warm both paths once, gate byte-identity and cell totals, then time.
  auto on = seda.BuildCube(result.value(), with);
  auto off = seda.BuildCube(result.value(), without);
  if (!on.ok() || !off.ok()) return 1;
  const bool bytes_ok = on.value().ToString() == off.value().ToString();

  bool cells_ok = true;
  double total_on = 0, total_off = 0;
  {
    auto cube_on = seda.ToOlapCube(on.value());
    auto cube_off = seda.ToOlapCube(off.value());
    if (!cube_on.ok() || !cube_off.ok()) return 1;
    auto agg_on = cube_on.value().Aggregate(
        {"import-country"}, seda::olap::AggFn::kCount, "import-trade-percentage");
    auto agg_off = cube_off.value().Aggregate(
        {"import-country"}, seda::olap::AggFn::kCount, "import-trade-percentage");
    if (!agg_on.ok() || !agg_off.ok()) return 1;
    total_on = agg_on.value().Total();
    total_off = agg_off.value().Total();
    cells_ok = agg_on.value().ToString() == agg_off.value().ToString();
  }

  double ms_on = 0, ms_off = 0;
  for (int r = 0; r < reps; ++r) {
    Clock::time_point t0 = Clock::now();
    auto a = seda.BuildCube(result.value(), with);
    Clock::time_point t1 = Clock::now();
    auto b = seda.BuildCube(result.value(), without);
    Clock::time_point t2 = Clock::now();
    if (!a.ok() || !b.ok()) return 1;
    if (a.value().ToString() != b.value().ToString()) return 1;
    ms_on += Ms(t0, t1);
    ms_off += Ms(t1, t2);
  }
  ms_on /= reps;
  ms_off /= reps;
  const double speedup = ms_on > 0 ? ms_off / ms_on : 0.0;
  const bool speedup_ok = speedup >= min_speedup;

  std::printf("columns on:  %8.3f ms/build (%llu rows scanned, %llu tree"
              " fallbacks)\n",
              ms_on,
              static_cast<unsigned long long>(on.value().column_rows_scanned),
              static_cast<unsigned long long>(on.value().column_fallback_docs));
  std::printf("columns off: %8.3f ms/build\n", ms_off);
  std::printf("schema bytes identical: %s\n", bytes_ok ? "YES" : "NO");
  std::printf("olap cell totals identical: %s (%.1f vs %.1f)\n",
              cells_ok ? "YES" : "NO", total_on, total_off);
  std::printf("speedup %.2fx (gate >= %.1fx): %s\n", speedup, min_speedup,
              speedup_ok ? "YES" : "NO");

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      json,
      "{\n  \"bench\": \"cube_columns\",\n  \"scale\": %.4f,\n"
      "  \"docs\": %zu,\n  \"columns\": %zu,\n  \"tuples\": %zu,\n"
      "  \"ms_per_build_columns\": %.4f,\n  \"ms_per_build_tree\": %.4f,\n"
      "  \"speedup_tree_over_columns\": %.3f,\n"
      "  \"column_rows_scanned\": %llu,\n  \"column_fallback_docs\": %llu,\n"
      "  \"schema_bytes_identical\": %s,\n  \"cells_identical\": %s,\n"
      "  \"speedup_gate\": %s\n}\n",
      scale, snap->store().DocumentCount(), snap->columns().size(),
      result.value().tuples.size(), ms_on, ms_off, speedup,
      static_cast<unsigned long long>(on.value().column_rows_scanned),
      static_cast<unsigned long long>(on.value().column_fallback_docs),
      bytes_ok ? "true" : "false", cells_ok ? "true" : "false",
      speedup_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  return (bytes_ok && cells_ok && speedup_ok) ? 0 : 1;
}
