// Ablation A3: the connection cache of §6.1 ("As an optimization, we cache
// the connections we discover so that we can leverage the cache for later
// query hits"). Measures repeated connection-summary generation with the
// cache enabled vs disabled.

#include <chrono>
#include <cstdio>

#include "data/generators.h"
#include "dataguide/dataguide.h"
#include "graph/data_graph.h"
#include "summary/connection_summary.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

using Clock = std::chrono::steady_clock;

int main() {
  seda::store::DocumentStore store;
  seda::data::WorldFactbookGenerator::Options options;
  options.scale = 0.2;
  seda::data::WorldFactbookGenerator(options).Populate(&store);
  seda::graph::DataGraph graph(&store);
  graph.ResolveIdRefs();
  seda::text::InvertedIndex index(&store);
  seda::topk::TopKSearcher searcher(&index, &graph);

  seda::dataguide::DataguideCollection::Options dg;
  dg.overlap_threshold = 0.4;
  auto guides = seda::dataguide::DataguideCollection::Build(store, dg);
  guides.AddLinksFromGraph(graph);

  auto query = seda::query::ParseQuery(
                   R"((*, "United States") AND (trade_country, *) AND (percentage, *))")
                   .value();
  seda::topk::TopKOptions topk_options;
  topk_options.k = 20;
  auto topk = searcher.Search(query, topk_options);
  if (!topk.ok()) return 1;

  seda::summary::ConnectionSummaryGenerator generator(&guides, &graph);
  constexpr int kRounds = 25;

  std::printf("=== Ablation A3: connection cache on/off (%d repeated queries) "
              "===\n",
              kRounds);
  for (bool enabled : {false, true}) {
    guides.set_cache_enabled(enabled);
    // Warm once so both modes pay the same first-time cost outside timing.
    auto start = Clock::now();
    size_t entries = 0;
    for (int round = 0; round < kRounds; ++round) {
      auto summary = generator.Generate(topk.value());
      entries = summary.entries.size();
    }
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    std::printf("cache %-8s: %8.2f ms total, %6.2f ms/query  (%zu entries, "
                "%llu hits / %llu misses)\n",
                enabled ? "ENABLED" : "disabled", ms, ms / kRounds, entries,
                static_cast<unsigned long long>(guides.cache_hits()),
                static_cast<unsigned long long>(guides.cache_misses()));
  }
  return 0;
}
