// Reproduces Figure 6 of the paper: the SEDA control flow. Runs every stage
// (top-k search -> context summary -> refinement -> top-k again ->
// connection summary -> complete results -> data cube) on a mid-sized
// Factbook collection and reports per-stage latency and cardinalities.

#include <chrono>
#include <cstdio>

#include "core/seda.h"
#include "data/generators.h"

using Clock = std::chrono::steady_clock;

namespace {
double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";
}  // namespace

int main() {
  std::printf("=== Figure 6: SEDA control flow, stage by stage ===\n");
  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options data_options;
  data_options.scale = 0.25;  // ~400 documents
  auto ingest_start = Clock::now();
  seda::data::WorldFactbookGenerator(data_options).Populate(seda.mutable_store());
  std::printf("%-42s %8.1f ms  (%zu docs, %llu nodes)\n", "ingest",
              Ms(ingest_start), seda.store().DocumentCount(),
              static_cast<unsigned long long>(seda.store().TotalNodeCount()));

  // Single-threaded reference finalize on an identical copy of the corpus,
  // so the parallel ingestion pipeline's speedup is visible in the report.
  {
    seda::core::Seda reference;
    seda::data::WorldFactbookGenerator(data_options).Populate(
        reference.mutable_store());
    seda::core::SedaOptions sequential;
    sequential.num_threads = 1;
    auto sequential_start = Clock::now();
    if (!reference.Finalize(sequential).ok()) return 1;
    std::printf("%-42s %8.1f ms\n", "finalize (1 worker, reference)",
                Ms(sequential_start));
  }

  seda::core::SedaOptions parallel;
  parallel.num_threads = 0;  // one worker per hardware core
  auto finalize_start = Clock::now();
  if (!seda.Finalize(parallel).ok()) return 1;
  std::printf("%-42s %8.1f ms  (%zu workers, %zu dataguides, %zu distinct paths)\n",
              "finalize (graph + index + dataguides)", Ms(finalize_start),
              seda::ThreadPool::DefaultThreadCount(), seda.dataguides().size(),
              seda.store().paths().size());

  auto* catalog = seda.mutable_catalog();
  using seda::cube::RelativeKey;
  (void)catalog->DefineDimension("country",
                                 {{kName, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension("year",
                                 {{kYear, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension(
      "import-country", {{kTrade, RelativeKey::Parse({kName, kYear, "."})}});
  (void)catalog->DefineFact(
      "import-trade-percentage",
      {{kPct, RelativeKey::Parse({kName, kYear, "../trade_country"})}});

  // Stage 1: full-text query -> top-k + summaries.
  auto query = seda.Parse(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  if (!query.ok()) return 1;
  auto search_start = Clock::now();
  auto response = seda.Search(query.value());
  if (!response.ok()) {
    std::printf("search failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%-42s %8.1f ms  (top-%zu, %llu combinations)\n",
              "top-k search + context/connection summary", Ms(search_start),
              response.value().topk.size(),
              static_cast<unsigned long long>(
                  response.value().contexts.CombinationCount()));
  for (size_t i = 0; i < response.value().contexts.buckets.size(); ++i) {
    std::printf("    term %zu: %zu contexts\n", i,
                response.value().contexts.buckets[i].entries.size());
  }
  std::printf("    connection summary: %zu entries (%llu false positives)\n",
              response.value().connections.entries.size(),
              static_cast<unsigned long long>(
                  response.value().connections.FalsePositiveCount()));

  // Stage 2: feedback loop — user picks contexts, search re-runs.
  auto refined = seda.RefineContexts(query.value(), {{kName}, {kTrade}, {kPct}});
  if (!refined.ok()) return 1;
  auto refine_start = Clock::now();
  auto refined_response = seda.Search(refined.value());
  if (!refined_response.ok()) return 1;
  std::printf("%-42s %8.1f ms  (top-%zu)\n", "refined search (contexts chosen)",
              Ms(refine_start), refined_response.value().topk.size());

  // Stage 3: complete result set.
  auto complete_start = Clock::now();
  auto result = seda.CompleteResults(refined.value(), {kName, kTrade, kPct}, {});
  if (!result.ok()) return 1;
  std::printf("%-42s %8.1f ms  (%zu tuples, %zu twigs)\n",
              "complete result set (twig joins)", Ms(complete_start),
              result.value().tuples.size(), result.value().twig_count);

  // Stage 4: data cube.
  auto cube_start = Clock::now();
  auto schema = seda.BuildCube(result.value());
  if (!schema.ok()) {
    std::printf("cube failed: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  std::printf("%-42s %8.1f ms  (%zu fact rows, %zu dims)\n",
              "star schema generation", Ms(cube_start),
              schema.value().fact_tables[0].rows.size(),
              schema.value().dimension_tables.size());

  auto cube = seda.ToOlapCube(schema.value());
  if (!cube.ok()) return 1;
  auto olap_start = Clock::now();
  auto rollup = cube.value().Rollup({"year", "import-country"},
                                    seda::olap::AggFn::kAvg,
                                    "import-trade-percentage");
  if (!rollup.ok()) return 1;
  std::printf("%-42s %8.1f ms  (%zu cuboids)\n", "OLAP rollup", Ms(olap_start),
              rollup.value().size());
  std::printf("\nprecise data, ready for analysis: YES\n");
  return 0;
}
