// Reproduces Figure 6 of the paper: the SEDA control flow. Runs every stage
// (top-k search -> context summary -> refinement -> top-k again ->
// connection summary -> complete results -> data cube) on a mid-sized
// Factbook collection and reports per-stage latency and cardinalities.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/seda.h"
#include "data/generators.h"

using Clock = std::chrono::steady_clock;

namespace {
double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";
}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;  // ~400 documents
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  std::printf("=== Figure 6: SEDA control flow, stage by stage ===\n");
  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options data_options;
  data_options.scale = scale;
  auto ingest_start = Clock::now();
  seda::data::WorldFactbookGenerator(data_options).Populate(seda.mutable_store());
  std::vector<std::pair<std::string, double>> stages;
  stages.emplace_back("ingest", Ms(ingest_start));
  std::printf("%-42s %8.1f ms  (%zu docs, %llu nodes)\n", "ingest",
              stages.back().second, seda.store().DocumentCount(),
              static_cast<unsigned long long>(seda.store().TotalNodeCount()));

  // Single-threaded reference finalize on an identical copy of the corpus,
  // so the parallel ingestion pipeline's speedup is visible in the report.
  {
    seda::core::Seda reference;
    seda::data::WorldFactbookGenerator(data_options).Populate(
        reference.mutable_store());
    seda::core::SedaOptions sequential;
    sequential.num_threads = 1;
    auto sequential_start = Clock::now();
    if (!reference.Finalize(sequential).ok()) return 1;
    std::printf("%-42s %8.1f ms\n", "finalize (1 worker, reference)",
                Ms(sequential_start));
  }

  seda::core::SedaOptions parallel;
  parallel.num_threads = 0;  // one worker per hardware core
  auto finalize_start = Clock::now();
  if (!seda.Finalize(parallel).ok()) return 1;
  stages.emplace_back("finalize", Ms(finalize_start));
  std::printf("%-42s %8.1f ms  (%zu workers, %zu dataguides, %zu distinct paths)\n",
              "finalize (graph + index + dataguides)", stages.back().second,
              seda::ThreadPool::DefaultThreadCount(), seda.dataguides().size(),
              seda.store().paths().size());

  auto* catalog = seda.mutable_catalog();
  using seda::cube::RelativeKey;
  (void)catalog->DefineDimension("country",
                                 {{kName, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension("year",
                                 {{kYear, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension(
      "import-country", {{kTrade, RelativeKey::Parse({kName, kYear, "."})}});
  (void)catalog->DefineFact(
      "import-trade-percentage",
      {{kPct, RelativeKey::Parse({kName, kYear, "../trade_country"})}});

  // Stage 1: full-text query -> top-k + summaries.
  auto query = seda.Parse(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  if (!query.ok()) return 1;
  auto search_start = Clock::now();
  auto response = seda.Search(query.value());
  if (!response.ok()) {
    std::printf("search failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  stages.emplace_back("search", Ms(search_start));
  std::printf("%-42s %8.1f ms  (top-%zu, %llu combinations)\n",
              "top-k search + context/connection summary", stages.back().second,
              response.value().topk.size(),
              static_cast<unsigned long long>(
                  response.value().contexts.CombinationCount()));
  for (size_t i = 0; i < response.value().contexts.buckets.size(); ++i) {
    std::printf("    term %zu: %zu contexts\n", i,
                response.value().contexts.buckets[i].entries.size());
  }
  std::printf("    connection summary: %zu entries (%llu false positives)\n",
              response.value().connections.entries.size(),
              static_cast<unsigned long long>(
                  response.value().connections.FalsePositiveCount()));

  // Stage 2: feedback loop — user picks contexts, search re-runs.
  auto refined = seda.RefineContexts(query.value(), {{kName}, {kTrade}, {kPct}});
  if (!refined.ok()) return 1;
  auto refine_start = Clock::now();
  auto refined_response = seda.Search(refined.value());
  if (!refined_response.ok()) return 1;
  stages.emplace_back("refined_search", Ms(refine_start));
  std::printf("%-42s %8.1f ms  (top-%zu)\n", "refined search (contexts chosen)",
              stages.back().second, refined_response.value().topk.size());

  // Stage 3: complete result set.
  auto complete_start = Clock::now();
  auto result = seda.CompleteResults(refined.value(), {kName, kTrade, kPct}, {});
  if (!result.ok()) return 1;
  stages.emplace_back("complete_results", Ms(complete_start));
  std::printf("%-42s %8.1f ms  (%zu tuples, %zu twigs)\n",
              "complete result set (twig joins)", stages.back().second,
              result.value().tuples.size(), result.value().twig_count);

  // Stage 4: data cube.
  auto cube_start = Clock::now();
  auto schema = seda.BuildCube(result.value());
  if (!schema.ok()) {
    std::printf("cube failed: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  stages.emplace_back("star_schema", Ms(cube_start));
  std::printf("%-42s %8.1f ms  (%zu fact rows, %zu dims)\n",
              "star schema generation", stages.back().second,
              schema.value().fact_tables[0].rows.size(),
              schema.value().dimension_tables.size());

  auto cube = seda.ToOlapCube(schema.value());
  if (!cube.ok()) return 1;
  auto olap_start = Clock::now();
  auto rollup = cube.value().Rollup({"year", "import-country"},
                                    seda::olap::AggFn::kAvg,
                                    "import-trade-percentage");
  if (!rollup.ok()) return 1;
  stages.emplace_back("olap_rollup", Ms(olap_start));
  std::printf("%-42s %8.1f ms  (%zu cuboids)\n", "OLAP rollup",
              stages.back().second, rollup.value().size());

  // Machine-readable emission for the perf trajectory (CI smoke step).
  const seda::topk::SearchStats& stats = response.value().stats;
  if (FILE* json = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"bench\": \"fig6_pipeline\",\n  \"scale\": %.4f,\n"
                 "  \"documents\": %zu,\n  \"stages_ms\": {",
                 scale, seda.store().DocumentCount());
    for (size_t i = 0; i < stages.size(); ++i) {
      std::fprintf(json, "%s\"%s\": %.4f", i == 0 ? "" : ", ",
                   stages[i].first.c_str(), stages[i].second);
    }
    double search_ms = 0;
    for (const auto& [name, ms] : stages) {
      if (name == "search" || name == "refined_search") search_ms += ms;
    }
    std::fprintf(
        json,
        "},\n  \"search_qps\": %.2f,\n  \"docs_scored\": %llu,\n"
        "  \"tuples_scored\": %llu,\n  \"early_terminated\": %s,\n"
        "  \"postings_advanced\": %llu,\n  \"heap_evictions\": %llu\n}\n",
        search_ms > 0 ? 2000.0 / search_ms : 0.0,
        static_cast<unsigned long long>(stats.docs_scored),
        static_cast<unsigned long long>(stats.tuples_scored),
        stats.early_terminated ? "true" : "false",
        static_cast<unsigned long long>(stats.postings_advanced),
        static_cast<unsigned long long>(stats.heap_evictions));
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::printf("\nprecise data, ready for analysis: YES\n");
  return 0;
}
