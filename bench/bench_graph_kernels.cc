// Graph-kernel ablation bench (ROADMAP "CSR graph kernels" item): a
// hub-heavy corpus — every satellite document's trade_country leaf carries a
// value edge to the one US name node — is exactly the shape where the legacy
// hash-map BFS pays O(hub degree) per cross-document connection query. The
// CSR kernels answer the dominant distance-1/2 hub hops by sorted-row
// intersection or a 2-hop sketch instead.
//
// Two layers, two gates:
//  * micro: ConnectionSize({hub, satellite item}) per kernel mode. Gate:
//    auto (sketch) beats legacy by >= 3x on the budget-off hub workload.
//  * engine: the cliff query through TopKSearcher per mode. Gates: the
//    budget-off SearchResponse ranking is byte-identical across legacy and
//    CSR modes, and the CSR budget-on ranking matches budget-off (under
//    kAuto, every <=2-hop answer is budget-independent; the legacy engine is
//    reported, not gated — its budget famously truncates hub answers).
//
// Writes BENCH_graph.json for CI.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/data_graph.h"
#include "query/query.h"
#include "store/document_store.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

using Clock = std::chrono::steady_clock;

namespace {

struct ModeSpec {
  const char* name;
  seda::graph::GraphKernelMode mode;
};

constexpr ModeSpec kModes[] = {
    {"legacy", seda::graph::GraphKernelMode::kLegacy},
    {"csr-bfs", seda::graph::GraphKernelMode::kCsrBfs},
    {"intersect", seda::graph::GraphKernelMode::kCsrIntersect},
    {"auto", seda::graph::GraphKernelMode::kAuto},
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Byte-exact rendering of everything a caller observes in a ranking: node
/// identities, the connection size and the exact score bits (%a).
std::string RankingFingerprint(
    const std::vector<seda::topk::ScoredTuple>& tuples) {
  std::string fp;
  char buf[64];
  for (const auto& tuple : tuples) {
    for (const auto& match : tuple.nodes) {
      fp += std::to_string(match.node.doc);
      fp += ':';
      fp += match.node.dewey.ToString();
      fp += ' ';
    }
    std::snprintf(buf, sizeof(buf), "c=%a n=%zu s=%a\n", tuple.content_score,
                  tuple.connection_size, tuple.score);
    fp += buf;
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  std::string out_path = "BENCH_graph.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  const int satellites =
      std::max(200, static_cast<int>(1500 * scale));

  seda::store::DocumentStore store;
  auto us = store.AddXml(
      "<country><name>United States</name><economy><GDP>14000</GDP>"
      "</economy></country>",
      "us");
  if (!us.ok()) return 1;
  for (int i = 0; i < satellites; ++i) {
    auto doc = store.AddXml(
        "<country><name>Satellite " + std::to_string(i) +
            "</name><economy><import_partners><item>"
            "<trade_country>United States</trade_country><percentage>" +
            std::to_string(10 + i % 80) +
            ".5</percentage></item></import_partners></economy></country>",
        "satellite-" + std::to_string(i));
    if (!doc.ok()) return 1;
  }

  seda::graph::DataGraph graph(&store);
  size_t edges = graph.AddValueBasedEdges(
      "/country/name", "/country/economy/import_partners/item/trade_country",
      "trade_partner");
  if (edges != static_cast<size_t>(satellites)) {
    std::fprintf(stderr, "hub corpus wiring broke: %zu edges\n", edges);
    return 1;
  }
  if (!graph.BuildCsr()) {
    std::fprintf(stderr, "BuildCsr failed\n");
    return 1;
  }

  // The micro workload: the hub name node against every satellite's item
  // node (distance 2 through the hub's value edge — the dominant hop shape
  // of cross-document connection scoring).
  seda::store::NodeId hub{us.value(), seda::xml::DeweyId::Parse("1.1")};
  std::vector<std::vector<seda::store::NodeId>> tuples;
  for (int i = 0; i < satellites; ++i) {
    tuples.push_back(
        {hub, seda::store::NodeId{static_cast<seda::store::DocId>(1 + i),
                                  seda::xml::DeweyId::Parse("1.2.1.1")}});
  }

  std::printf("=== bench_graph_kernels: CSR adjacency / intersection / 2-hop "
              "sketches ===\n");
  std::printf("corpus: 1 hub + %d satellites, %zu value edges, %u vertices\n\n",
              satellites, graph.EdgeCount(), graph.csr()->num_vertices());
  std::printf("--- micro: ConnectionSize({hub, item}) x %d pairs ---\n",
              satellites);
  std::printf("%-10s | %12s %12s | %12s %12s %12s\n", "mode", "off us/pair",
              "on us/pair", "bfs_exp", "isect_probe", "sketch_hit");

  // mode -> {budget-off us/pair, budget-on us/pair}
  double micro_us[std::size(kModes)][2];
  seda::graph::GraphStats micro_stats[std::size(kModes)];
  for (size_t m = 0; m < std::size(kModes); ++m) {
    graph.set_kernel_mode(kModes[m].mode);
    for (int budgeted = 0; budgeted < 2; ++budgeted) {
      size_t max_visits = budgeted ? 64 : 0;
      seda::graph::GraphStats stats;
      // Warm-up pass, then measured passes. Budget-off must always connect;
      // budgeted legacy/csr-bfs may legitimately give up (the cliff).
      for (const auto& tuple : tuples) {
        if (!graph.ConnectionSize(tuple, 12, max_visits).has_value() &&
            max_visits == 0) {
          std::fprintf(stderr, "hub pair unexpectedly unconnected\n");
          return 1;
        }
      }
      constexpr int kRuns = 3;
      auto start = Clock::now();
      for (int run = 0; run < kRuns; ++run) {
        for (const auto& tuple : tuples) {
          graph.ConnectionSize(tuple, 12, max_visits, &stats);
        }
      }
      double us_per_pair =
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count() /
          (kRuns * tuples.size());
      micro_us[m][budgeted] = us_per_pair;
      if (!budgeted) micro_stats[m] = stats;
    }
    std::printf("%-10s | %12.3f %12.3f | %12llu %12llu %12llu\n",
                kModes[m].name, micro_us[m][0], micro_us[m][1],
                static_cast<unsigned long long>(micro_stats[m].bfs_expansions),
                static_cast<unsigned long long>(
                    micro_stats[m].intersection_probes),
                static_cast<unsigned long long>(micro_stats[m].sketch_hits));
  }
  double micro_speedup = micro_us[3][0] > 0
                             ? micro_us[0][0] / micro_us[3][0]
                             : 0.0;
  std::printf("micro speedup legacy/auto (budget off): %.2fx\n\n",
              micro_speedup);

  // --- engine layer: the cliff query through the full searcher ----------
  seda::text::InvertedIndex index(&store);
  seda::topk::TopKSearcher searcher(&index, &graph);
  auto parsed = seda::query::ParseQuery(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  if (!parsed.ok()) return 1;

  std::printf("--- engine: cliff query, k=5, uncapped hub ---\n");
  std::printf("%-10s | %10s %10s | %10s %10s\n", "mode", "off ms", "on ms",
              "tuples", "bfs_exp");

  // mode x budget -> {ms, fingerprint, stats}
  struct EngineRun {
    double ms = 0;
    std::string fingerprint;
    seda::topk::SearchStats stats;
  };
  EngineRun runs[std::size(kModes)][2];
  for (size_t m = 0; m < std::size(kModes); ++m) {
    graph.set_kernel_mode(kModes[m].mode);
    for (int budgeted = 0; budgeted < 2; ++budgeted) {
      seda::topk::TopKOptions options;
      options.k = 5;
      options.max_per_doc_per_term = 4;
      options.max_hub_degree = 0;  // uncapped: exercise the hub
      // The tuple budget trims in TA order before any kernel runs, so it is
      // mode-independent — the equivalence gates hold under it, and it keeps
      // the legacy budget-off run (a full-store BFS flood per tuple) from
      // taking minutes.
      options.max_tuples_per_query = 1000;
      options.max_connect_visits = budgeted ? 64 : 0;
      EngineRun& run = runs[m][budgeted];
      auto start = Clock::now();
      seda::topk::SearchStats stats;
      auto result = searcher.Search(parsed.value(), options, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "search failed (%s)\n", kModes[m].name);
        return 1;
      }
      run.fingerprint = RankingFingerprint(result.value());
      run.stats = stats;
      run.ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                   .count();
    }
    std::printf("%-10s | %10.2f %10.2f | %10llu %10llu\n", kModes[m].name,
                runs[m][0].ms, runs[m][1].ms,
                static_cast<unsigned long long>(runs[m][0].stats.tuples_scored),
                static_cast<unsigned long long>(
                    runs[m][0].stats.bfs_expansions));
  }

  // Gates.
  bool micro_ok = micro_speedup >= 3.0;
  bool equivalence_ok = true;
  for (size_t m = 1; m < std::size(kModes); ++m) {
    if (runs[m][0].fingerprint != runs[0][0].fingerprint) {
      equivalence_ok = false;
      std::printf("FAIL: budget-off ranking of %s differs from legacy\n",
                  kModes[m].name);
    }
  }
  // kAuto (and kCsrIntersect) budget-on must equal budget-off: distance <= 2
  // hub hops no longer depend on the visit budget.
  bool budget_ok = runs[3][1].fingerprint == runs[3][0].fingerprint &&
                   runs[2][1].fingerprint == runs[2][0].fingerprint;
  bool legacy_budget_differs = runs[0][1].fingerprint != runs[0][0].fingerprint;

  std::printf("\nbudget-off rankings identical across modes: %s\n",
              equivalence_ok ? "YES" : "NO");
  std::printf("csr budget-on ranking == budget-off: %s\n",
              budget_ok ? "YES" : "NO");
  std::printf("legacy budget-on ranking drifts (reported, not gated): %s\n",
              legacy_budget_differs ? "yes" : "no");
  std::printf("micro speedup >= 3x: %s\n", micro_ok ? "YES" : "NO");

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"graph_kernels\",\n  \"scale\": %.4f,\n"
               "  \"satellites\": %d,\n  \"vertices\": %u,\n"
               "  \"micro_speedup_legacy_over_auto\": %.3f,\n"
               "  \"modes\": [\n",
               scale, satellites, graph.csr()->num_vertices(), micro_speedup);
  for (size_t m = 0; m < std::size(kModes); ++m) {
    std::fprintf(
        json,
        "    {\"mode\": \"%s\", \"micro_us_per_pair_off\": %.4f, "
        "\"micro_us_per_pair_on\": %.4f, \"engine_ms_off\": %.4f, "
        "\"engine_ms_on\": %.4f, \"bfs_expansions\": %llu, "
        "\"intersection_probes\": %llu, \"sketch_hits\": %llu}%s\n",
        JsonEscape(kModes[m].name).c_str(), micro_us[m][0], micro_us[m][1],
        runs[m][0].ms, runs[m][1].ms,
        static_cast<unsigned long long>(micro_stats[m].bfs_expansions),
        static_cast<unsigned long long>(micro_stats[m].intersection_probes),
        static_cast<unsigned long long>(micro_stats[m].sketch_hits),
        m + 1 < std::size(kModes) ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"rankings_identical_budget_off\": %s,\n"
               "  \"csr_budget_invariant\": %s,\n"
               "  \"legacy_budget_drifts\": %s,\n"
               "  \"micro_speedup_gate\": %s\n}\n",
               equivalence_ok ? "true" : "false", budget_ok ? "true" : "false",
               legacy_budget_differs ? "true" : "false",
               micro_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  return (micro_ok && equivalence_ok && budget_ok) ? 0 : 1;
}
