// Service-facade throughput: drives api::SedaService with 1 / 8 / 32
// concurrent sessions over a snapshot image loaded the way a serving process
// would (Save() then Open(), not re-ingestion), and reports requests/sec and
// p50/p99 request latency per concurrency level — the baseline the HTTP
// frontend and admission-control work builds on.
//
//   ./bench_service_throughput --scale 0.25 --requests 64 --out BENCH_service.json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "core/seda.h"
#include "data/generators.h"

using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

const char* kQueries[] = {
    R"((*, "United States") AND (trade_country, *))",
    R"((trade_country, "China") AND (percentage, *))",
    R"((name, *) AND (GDP_ppp, *))",
    R"((*, "refugees"))",
};

struct Level {
  size_t sessions = 0;
  size_t requests = 0;
  double wall_ms = 0;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  size_t requests_per_session = 32;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--requests") == 0) {
      requests_per_session = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  std::printf("=== SedaService throughput over a loaded snapshot image ===\n");

  // Stage 0: build the corpus once and save it; the served instance Opens
  // the image like a fresh serving process would.
  const std::string image = "bench_service.img";
  {
    seda::core::Seda builder;
    seda::data::WorldFactbookGenerator::Options corpus;
    corpus.scale = scale;
    seda::data::WorldFactbookGenerator(corpus).Populate(builder.mutable_store());
    if (!builder.Finalize().ok()) {
      std::printf("finalize failed\n");
      return 1;
    }
    if (!builder.Save(image).ok()) {
      std::printf("save failed\n");
      return 1;
    }
  }
  seda::core::Seda seda;
  auto open_start = Clock::now();
  if (!seda.Open(image).ok()) {
    std::printf("open failed\n");
    return 1;
  }
  std::printf("opened image (%zu docs) in %.1f ms\n",
              seda.store().DocumentCount(), Ms(open_start, Clock::now()));

  seda::api::SedaService service(&seda);
  std::vector<Level> levels;

  for (size_t sessions : {size_t{1}, size_t{8}, size_t{32}}) {
    std::vector<double> latencies;
    std::vector<std::vector<double>> per_thread(sessions);
    std::atomic<bool> failed{false};
    auto wall_start = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      workers.emplace_back([&, s] {
        auto created =
            service.CreateSession(seda::api::CreateSessionRequest{});
        if (!created.status.ok()) {
          failed.store(true);
          return;
        }
        per_thread[s].reserve(requests_per_session);
        for (size_t r = 0; r < requests_per_session; ++r) {
          seda::api::SearchRequest request;
          request.session_id = created.session_id;
          request.query = kQueries[(s + r) % (sizeof(kQueries) / sizeof(*kQueries))];
          auto start = Clock::now();
          seda::api::SearchResponseDto response = service.Search(request);
          per_thread[s].push_back(Ms(start, Clock::now()));
          if (!response.status.ok()) {
            std::printf("request failed: %s\n", response.status.message.c_str());
            failed.store(true);
            return;
          }
        }
        (void)service.CloseSession(
            seda::api::CloseSessionRequest{created.session_id});
      });
    }
    for (std::thread& worker : workers) worker.join();
    double wall_ms = Ms(wall_start, Clock::now());
    if (failed.load()) {
      std::remove(image.c_str());
      return 1;
    }
    for (const auto& thread_latencies : per_thread) {
      latencies.insert(latencies.end(), thread_latencies.begin(),
                       thread_latencies.end());
    }
    std::sort(latencies.begin(), latencies.end());

    Level level;
    level.sessions = sessions;
    level.requests = latencies.size();
    level.wall_ms = wall_ms;
    level.rps = wall_ms > 0 ? 1000.0 * static_cast<double>(latencies.size()) /
                                  wall_ms
                            : 0;
    level.p50_ms = Percentile(latencies, 0.50);
    level.p99_ms = Percentile(latencies, 0.99);
    levels.push_back(level);
    std::printf("%2zu session(s): %5zu requests in %8.1f ms  "
                "%8.1f req/s  p50 %6.2f ms  p99 %6.2f ms\n",
                level.sessions, level.requests, level.wall_ms, level.rps,
                level.p50_ms, level.p99_ms);
  }
  std::remove(image.c_str());

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) return 1;
  std::fprintf(out, "{\"bench\":\"service_throughput\",\"scale\":%g,", scale);
  std::fprintf(out, "\"requests_per_session\":%zu,\"levels\":[",
               requests_per_session);
  for (size_t i = 0; i < levels.size(); ++i) {
    const Level& level = levels[i];
    std::fprintf(out,
                 "%s{\"sessions\":%zu,\"requests\":%zu,\"wall_ms\":%.2f,"
                 "\"rps\":%.2f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
                 i > 0 ? "," : "", level.sessions, level.requests, level.wall_ms,
                 level.rps, level.p50_ms, level.p99_ms);
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
