// Ablation A1: the Threshold-Algorithm top-k search vs. the naive
// enumerate-everything baseline. The paper's §4 ("SEDA first quickly
// retrieves top-k tuples") rests on TA pruning documents whose score upper
// bound cannot beat the current k-th result; this bench quantifies that
// pruning (documents scored, tuples scored, wall time) while asserting both
// engines return identical scores.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "data/generators.h"
#include "graph/data_graph.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

using Clock = std::chrono::steady_clock;

int main() {
  seda::store::DocumentStore store;
  seda::data::WorldFactbookGenerator::Options options;
  options.scale = 0.35;
  seda::data::WorldFactbookGenerator(options).Populate(&store);
  seda::graph::DataGraph graph(&store);
  seda::text::InvertedIndex index(&store);
  seda::topk::TopKSearcher searcher(&index, &graph);

  const char* queries[] = {
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))",
      R"((name, "China") AND (GDP, *))",
      "(trade_country, *) AND (percentage, *)",
      R"((*, "Canada"))",
  };

  std::printf("=== Ablation A1: TA top-k vs naive enumeration ===\n");
  std::printf("%-14s %6s | %10s %10s %9s | %10s %10s %9s | %5s | %9s %8s %7s\n",
              "query", "k", "TA docs", "TA tuples", "TA ms", "naive docs",
              "nv tuples", "naive ms", "same", "postings", "dskip", "evict");
  for (const char* text : queries) {
    auto query = seda::query::ParseQuery(text).value();
    for (size_t k : {5ul, 20ul}) {
      seda::topk::TopKOptions topk_options;
      topk_options.k = k;
      seda::topk::SearchStats ta_stats, naive_stats;

      auto ta_start = Clock::now();
      auto ta = searcher.Search(query, topk_options, &ta_stats);
      double ta_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - ta_start).count();

      auto naive_start = Clock::now();
      auto naive = searcher.NaiveSearch(query, topk_options, &naive_stats);
      double naive_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - naive_start)
              .count();

      bool same = ta.ok() && naive.ok() &&
                  ta.value().size() == naive.value().size();
      if (same) {
        for (size_t i = 0; i < ta.value().size(); ++i) {
          if (std::fabs(ta.value()[i].score - naive.value()[i].score) > 1e-9) {
            same = false;
            break;
          }
        }
      }
      std::string label(text);
      if (label.size() > 14) label = label.substr(0, 11) + "...";
      std::printf("%-14s %6zu | %10llu %10llu %9.2f | %10llu %10llu %9.2f | %5s "
                  "| %9llu %8llu %7llu\n",
                  label.c_str(), k,
                  static_cast<unsigned long long>(ta_stats.docs_scored),
                  static_cast<unsigned long long>(ta_stats.tuples_scored), ta_ms,
                  static_cast<unsigned long long>(naive_stats.docs_scored),
                  static_cast<unsigned long long>(naive_stats.tuples_scored),
                  naive_ms, same ? "YES" : "NO",
                  static_cast<unsigned long long>(ta_stats.postings_advanced),
                  static_cast<unsigned long long>(ta_stats.docs_skipped),
                  static_cast<unsigned long long>(ta_stats.heap_evictions));
      if (!same) return 1;
    }
  }
  std::printf("\nTA scores every candidate document only until the threshold "
              "fires; the ratio\nof docs scored is the paper's motivation for "
              "a TA-family algorithm (§4).\n");
  return 0;
}
