// Observability overhead gate: the bench_service_throughput workload run
// twice per round — ServiceOptions::tracing=false (span tracking fully off)
// vs tracing=true with no request asking for a trace (the production
// default: spans are opened and timed, never detached). The gate holds the
// delta under --max-overhead (default 3%): the always-on span path must stay
// two clock reads per span, or this bench fails the build.
//
// Rounds alternate off/on and the best (minimum) wall time per mode is
// compared, so one scheduler hiccup cannot fail the gate by itself.
//
//   ./bench_obs --scale 0.25 --requests 48 --rounds 8 --out BENCH_obs.json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "core/seda.h"
#include "data/generators.h"

using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

const char* kQueries[] = {
    R"((*, "United States") AND (trade_country, *))",
    R"((trade_country, "China") AND (percentage, *))",
    R"((name, *) AND (GDP_ppp, *))",
    R"((*, "refugees"))",
};

/// One full workload pass: `sessions` threads, `requests` searches each.
/// Returns wall ms, or a negative value on request failure.
double RunWorkload(seda::api::SedaService* service, size_t sessions,
                   size_t requests) {
  std::atomic<bool> failed{false};
  const auto wall_start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    workers.emplace_back([&, s] {
      auto created =
          service->CreateSession(seda::api::CreateSessionRequest{});
      if (!created.status.ok()) {
        failed.store(true);
        return;
      }
      for (size_t r = 0; r < requests; ++r) {
        seda::api::SearchRequest request;
        request.session_id = created.session_id;
        request.query =
            kQueries[(s + r) % (sizeof(kQueries) / sizeof(*kQueries))];
        if (!service->Search(request).status.ok()) {
          failed.store(true);
          return;
        }
      }
      (void)service->CloseSession(
          seda::api::CloseSessionRequest{created.session_id});
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_ms = Ms(wall_start, Clock::now());
  return failed.load() ? -1.0 : wall_ms;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  size_t sessions = 8;
  size_t requests = 48;
  size_t rounds = 8;
  double max_overhead = 0.03;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--requests") == 0) {
      requests = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--rounds") == 0) {
      rounds = static_cast<size_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--max-overhead") == 0) {
      max_overhead = std::atof(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  std::printf("=== observability overhead gate (tracing off vs on) ===\n");

  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options corpus;
  corpus.scale = scale;
  seda::data::WorldFactbookGenerator(corpus).Populate(seda.mutable_store());
  if (!seda.Finalize().ok()) {
    std::printf("finalize failed\n");
    return 1;
  }
  std::printf("corpus: %zu docs, %zu sessions x %zu requests, %zu rounds\n",
              seda.store().DocumentCount(), sessions, requests, rounds);

  seda::api::ServiceOptions off_options;
  off_options.tracing = false;
  seda::api::SedaService off_service(&seda, off_options);
  seda::api::SedaService on_service(&seda);  // default: tracing on, untraced

  // Warmup both services once (first-touch allocations, page faults).
  if (RunWorkload(&off_service, sessions, requests) < 0 ||
      RunWorkload(&on_service, sessions, requests) < 0) {
    std::printf("warmup failed\n");
    return 1;
  }

  std::vector<double> off_ms;
  std::vector<double> on_ms;
  for (size_t round = 0; round < rounds; ++round) {
    const double off = RunWorkload(&off_service, sessions, requests);
    const double on = RunWorkload(&on_service, sessions, requests);
    if (off < 0 || on < 0) {
      std::printf("round %zu failed\n", round);
      return 1;
    }
    off_ms.push_back(off);
    on_ms.push_back(on);
    std::printf("round %zu: tracing-off %8.1f ms   tracing-on %8.1f ms\n",
                round, off, on);
  }

  const double best_off = *std::min_element(off_ms.begin(), off_ms.end());
  const double best_on = *std::min_element(on_ms.begin(), on_ms.end());
  const double overhead = best_off > 0 ? (best_on - best_off) / best_off : 0;
  const bool pass = overhead <= max_overhead;
  const size_t total = sessions * requests;
  std::printf("best: off %.1f ms (%.0f req/s)  on %.1f ms (%.0f req/s)\n",
              best_off, 1000.0 * static_cast<double>(total) / best_off,
              best_on, 1000.0 * static_cast<double>(total) / best_on);
  std::printf("span-tracking overhead: %+.2f%% (gate %.0f%%) -> %s\n",
              overhead * 100.0, max_overhead * 100.0,
              pass ? "PASS" : "FAIL");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "{\"bench\":\"obs_overhead\",\"scale\":%g,\"sessions\":%zu,"
               "\"requests_per_session\":%zu,\"rounds\":%zu,"
               "\"best_off_ms\":%.2f,\"best_on_ms\":%.2f,"
               "\"overhead\":%.4f,\"max_overhead\":%.4f,\"pass\":%s}\n",
               scale, sessions, requests, rounds, best_off, best_on, overhead,
               max_overhead, pass ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
