// Persistence bench: cold Finalize() (full ingestion: parse + link resolve +
// tokenize/index + dataguide probing) vs Snapshot::Save vs Seda::Open on a
// mid-sized Factbook. Open reads a validated mmap'd image and materializes
// the structures without re-running any ingestion stage, so reopening a
// warehouse is O(image size) — the property the CI smoke gates (a loaded
// epoch must also serve byte-identical answers; exit 1 on divergence).
// Emits BENCH_persist.json for the perf trajectory.
//
// Modes:
//   bench_snapshot_io [--scale S] [--out F] [--image PATH] [--keep-image]
//       full bench: build, save, reopen, verify, emit JSON
//   bench_snapshot_io --reopen PATH
//       open an existing image in THIS process (for the CI step that saves in
//       one process and reopens in a genuinely fresh one), run the probe
//       query, print timings; exit 1 if the image fails to load or serve.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/seda.h"
#include "data/generators.h"
#include "xml/parser.h"

using Clock = std::chrono::steady_clock;

namespace {

constexpr const char* kProbeQuery = R"((name, "United States") AND (GDP, *))";

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::string EpochDigest(const seda::core::Snapshot& snap) {
  std::string out;
  out += "docs=" + std::to_string(snap.store().DocumentCount());
  out += " nodes=" + std::to_string(snap.store().TotalNodeCount());
  out += " paths=" + std::to_string(snap.store().paths().size());
  out += " edges=" + std::to_string(snap.data_graph().EdgeCount());
  out += " terms=" + std::to_string(snap.index().TermCount());
  out += " indexed=" + std::to_string(snap.index().IndexedNodeCount());
  out += " guides=" + std::to_string(snap.dataguides().size());
  out += " merges=" + std::to_string(snap.dataguides().build_stats().merges);
  out += " links=" + std::to_string(snap.dataguides().LinkCount());
  return out;
}

std::string ProbeFingerprint(const seda::core::Seda& seda) {
  auto response = seda.Search(kProbeQuery);
  if (!response.ok()) return "probe-failed: " + response.status().ToString();
  std::string out;
  for (const auto& tuple : response->topk) {
    out += tuple.ToString(seda.store()) + "\n";
  }
  out += response->contexts.ToString();
  out += response->connections.ToString();
  return out;
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

int ReopenMode(const std::string& path) {
  std::printf("=== Reopen-only mode (fresh process) ===\n");
  seda::core::Seda seda;
  auto open_start = Clock::now();
  seda::Status opened = seda.Open(path);
  double open_ms = Ms(open_start);
  if (!opened.ok()) {
    std::printf("FAIL: %s\n", opened.ToString().c_str());
    return 1;
  }
  std::printf("%-44s %9.1f ms  (%zu docs, epoch %llu)\n", "Seda::Open(image)",
              open_ms, seda.store().DocumentCount(),
              static_cast<unsigned long long>(seda.snapshot()->epoch()));
  auto response = seda.Search(kProbeQuery);
  if (!response.ok() || response->topk.empty()) {
    std::printf("FAIL: probe query on reopened image\n");
    return 1;
  }
  // Machine-parsed by the parent bench process (see FreshProcessOpenMs).
  std::printf("OPEN_MS=%.4f\n", open_ms);
  std::printf("probe query served %zu tuples from the reopened image  OK\n",
              response->topk.size());
  return 0;
}

/// Reopens `image` in a fresh child process — what a restart actually is —
/// and returns the child's measured Seda::Open latency. An in-process reopen
/// right after a full cold build measures the cold build's heap as much as
/// the image. Returns < 0 on failure.
double FreshProcessOpenMs(const char* self, const std::string& image) {
  std::string report = image + ".open_ms";
  std::string command = std::string(self) + " --reopen " + image + " > " +
                        report + " 2>&1";
  if (std::system(command.c_str()) != 0) return -1.0;
  double open_ms = -1.0;
  if (std::FILE* f = std::fopen(report.c_str(), "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      double value = 0;
      if (std::sscanf(line, "OPEN_MS=%lf", &value) == 1) open_ms = value;
    }
    std::fclose(f);
  }
  std::remove(report.c_str());
  return open_ms;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;  // full synthetic Factbook, ~1600 documents
  std::string out_path = "BENCH_persist.json";
  std::string image_path = "snapshot_bench.img";
  bool keep_image = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--keep-image") == 0) {
      keep_image = true;
      continue;
    }
    if (i + 1 >= argc) break;
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0) out_path = argv[++i];
    else if (std::strcmp(argv[i], "--image") == 0) image_path = argv[++i];
    else if (std::strcmp(argv[i], "--reopen") == 0) return ReopenMode(argv[i + 1]);
  }

  std::printf("=== Snapshot persistence: cold build vs save vs reopen ===\n");
  // The corpus as a process would find it on disk after a restart: raw XML.
  // (The generator emits parsed trees; serializing them back gives every
  // contender the same starting line.)
  std::vector<std::string> xml_docs;
  std::vector<std::string> names;
  {
    seda::store::DocumentStore staging;
    seda::data::WorldFactbookGenerator::Options data_options;
    data_options.scale = scale;
    seda::data::WorldFactbookGenerator(data_options).Populate(&staging);
    xml_docs.reserve(staging.DocumentCount());
    for (seda::store::DocId d = 0; d < staging.DocumentCount(); ++d) {
      xml_docs.push_back(seda::xml::Serialize(staging.document(d)));
      names.push_back(staging.document(d).name());
    }
  }
  size_t docs = xml_docs.size();

  // The production configuration of the paper's scenario: IDREF/XLink
  // resolution plus the value-based trade_partner relationship provided as
  // input (§3) — cold starts pay its full-store resolution scans, reopens
  // replay the resolved edge log from the image.
  seda::core::SedaOptions options;
  options.value_edges.push_back(
      {"/country/name", "/country/economy/import_partners/item/trade_country",
       "trade_partner"});
  // Tight serving budgets for the equivalence probes: this bench measures
  // persistence, not engine throughput, and the budgets travel inside the
  // image, so cold and reopened instances trim identically.
  options.topk.max_tuples_per_query = 500;
  options.topk.max_connect_visits = 256;

  // 1. Cold start: the full ingestion pipeline every process pays today —
  // XML parsing, link + value-edge resolution, tokenization + indexing,
  // dataguide probing.
  seda::core::Seda cold;
  auto finalize_start = Clock::now();
  for (size_t d = 0; d < docs; ++d) {
    if (!cold.AddXml(xml_docs[d], names[d]).ok()) return 1;
  }
  if (!cold.Finalize(options).ok()) return 1;
  double cold_ms = Ms(finalize_start);
  std::printf("%-44s %9.1f ms  (%zu docs)\n",
              "cold start (parse + Finalize ingestion)", cold_ms, docs);

  // 2. Save the epoch to a binary image.
  auto save_start = Clock::now();
  if (!cold.Save(image_path).ok()) return 1;
  double save_ms = Ms(save_start);
  long image_bytes = FileSize(image_path);
  std::printf("%-44s %9.1f ms  (%.2f MiB)\n", "Snapshot::Save(image)", save_ms,
              static_cast<double>(image_bytes) / (1024.0 * 1024.0));

  // 3. Reopen it in a fresh process (what a restart is): validation +
  // materialization only, measured by the child itself.
  double open_ms = FreshProcessOpenMs(argv[0], image_path);
  if (open_ms < 0) {
    std::printf("FAIL: fresh-process reopen failed\n");
    return 1;
  }
  std::printf("%-44s %9.1f ms\n", "Seda::Open(image) (fresh process)", open_ms);

  // In-process reopen for the equivalence check (and as a secondary number;
  // it inherits the cold build's heap, so it runs slower than a restart).
  seda::core::Seda reopened;
  auto inproc_start = Clock::now();
  seda::Status opened = reopened.Open(image_path);
  double inproc_open_ms = Ms(inproc_start);
  if (!opened.ok()) {
    std::printf("FAIL: %s\n", opened.ToString().c_str());
    return 1;
  }
  std::printf("%-44s %9.1f ms\n", "Seda::Open(image) (in-process)",
              inproc_open_ms);

  // Equivalence gate: the reopened epoch must be indistinguishable from the
  // built one — structure and served answers.
  if (EpochDigest(*cold.snapshot()) != EpochDigest(*reopened.snapshot()) ||
      ProbeFingerprint(cold) != ProbeFingerprint(reopened)) {
    std::printf("FAIL: reopened epoch diverged from the built epoch\n");
    return 1;
  }
  std::printf("equivalence: reopened image == cold build  OK\n");

  double speedup = open_ms > 0 ? cold_ms / open_ms : 0.0;
  std::printf("reopen speedup over cold ingestion: %.1fx\n", speedup);

  if (FILE* json = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"bench\": \"snapshot_io\",\n  \"scale\": %.4f,\n"
                 "  \"documents\": %zu,\n  \"image_bytes\": %ld,\n"
                 "  \"cold_finalize_ms\": %.4f,\n  \"save_ms\": %.4f,\n"
                 "  \"open_ms\": %.4f,\n  \"open_ms_in_process\": %.4f,\n"
                 "  \"open_speedup\": %.4f\n}\n",
                 scale, docs, image_bytes, cold_ms, save_ms, open_ms,
                 inproc_open_ms, speedup);
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!keep_image) std::remove(image_path.c_str());

  // Gate: reopening must beat re-ingestion decisively. The headline target
  // is >=10x; fail the smoke only below 3x to keep noisy CI machines green.
  if (speedup < 3.0) {
    std::printf("FAIL: reopen speedup %.1fx below the 3x floor\n", speedup);
    return 1;
  }
  return 0;
}
