// Reproduces Figure 3 of the paper: the full result R(q) of Query 1, the
// matching against facts/dimensions F and D, and the final fact + dimension
// tables — including the automatic addition of the year column required to
// make the fact table's key unique ("without the year dimension, the fact
// table would not have a primary key").

#include <cstdio>

#include "core/seda.h"
#include "data/generators.h"

using seda::cube::RelativeKey;

namespace {
constexpr const char* kName = "/country/name";
constexpr const char* kYear = "/country/year";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";
}  // namespace

int main() {
  seda::core::Seda seda;
  seda::data::PopulateScenario(seda.mutable_store());
  seda::core::SedaOptions options;
  options.value_edges.push_back({kName, kTrade, "trade_partner"});
  if (!seda.Finalize(options).ok()) return 1;

  // Figure 3(b): the catalog of known facts F and dimensions D.
  auto* catalog = seda.mutable_catalog();
  (void)catalog->DefineDimension("country",
                                 {{kName, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension("year",
                                 {{kYear, RelativeKey::Parse({kName, kYear})}});
  (void)catalog->DefineDimension(
      "import-country", {{kTrade, RelativeKey::Parse({kName, kYear, "."})}});
  (void)catalog->DefineFact(
      "import-trade-percentage",
      {{kPct, RelativeKey::Parse({kName, kYear, "../trade_country"})}});
  (void)catalog->DefineFact(
      "GDP", {{"/country/economy/GDP", RelativeKey::Parse({kName, kYear})},
              {"/country/economy/GDP_ppp", RelativeKey::Parse({kName, kYear})}});

  std::printf("=== Figure 3: Query 1 end-to-end ===\n");
  std::printf("Query 1: (*, \"United States\") AND (trade_country, *) AND "
              "(percentage, *)\n\n");

  auto query = seda.Parse(
      R"((*, "United States") AND (trade_country, *) AND (percentage, *))");
  if (!query.ok()) return 1;

  // Figure 3(a): the full query result R(q) with (node id, path) pairs.
  auto result = seda.CompleteResults(query.value(), {kName, kTrade, kPct}, {});
  if (!result.ok()) {
    std::printf("complete result failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("--- Full query result R(q): %zu tuples "
              "(nodeid_i, path_i per term) ---\n",
              result.value().tuples.size());
  size_t shown = 0;
  for (const auto& tuple : result.value().tuples) {
    if (shown++ >= 4) {
      std::printf("  ...\n");
      break;
    }
    std::printf(" ");
    for (size_t i = 0; i < tuple.nodes.size(); ++i) {
      std::printf(" %s %s", tuple.nodes[i].ToString().c_str(),
                  seda.store().paths().PathString(tuple.paths[i]).c_str());
    }
    std::printf("\n");
  }

  // Figure 3(c): the star schema.
  auto schema = seda.BuildCube(result.value());
  if (!schema.ok()) {
    std::printf("cube failed: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- Fact & dimension tables (paper Fig. 3c) ---\n%s",
              schema.value().ToString().c_str());

  // Feed the fact table to the OLAP engine and aggregate, closing the loop.
  auto cube = seda.ToOlapCube(schema.value());
  if (!cube.ok()) return 1;
  auto avg = cube.value().Aggregate({"import-country"}, seda::olap::AggFn::kAvg,
                                    "import-trade-percentage");
  std::printf("--- OLAP: average import share per partner ---\n%s",
              avg.value().ToString().c_str());

  bool ok = result.value().tuples.size() == 8 &&
            schema.value().fact_tables.size() == 1 &&
            schema.value().fact_tables[0].columns.size() == 4;
  std::printf("\nshape check (8 tuples, 1 fact table, year auto-added): %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
