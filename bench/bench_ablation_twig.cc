// Ablation A2: the holistic twig-join complete-result generator (paper §7,
// Bruno et al. [4]) vs. a naive backtracking join that verifies every
// connection predicate pairwise. Both must produce identical tuple sets; the
// holistic engine's advantage grows with the candidate list sizes.

#include <chrono>
#include <cstdio>

#include "data/generators.h"
#include "graph/data_graph.h"
#include "text/inverted_index.h"
#include "twig/twig.h"

using Clock = std::chrono::steady_clock;

namespace {
constexpr const char* kName = "/country/name";
constexpr const char* kTrade = "/country/economy/import_partners/item/trade_country";
constexpr const char* kPct = "/country/economy/import_partners/item/percentage";
}  // namespace

int main() {
  std::printf("=== Ablation A2: holistic twig join vs naive backtracking join ===\n");
  std::printf("The naive engine enumerates candidates in term order, so it is\n"
              "fast when a selective term comes first and degrades when the\n"
              "selective term comes last; the holistic engine is order-"
              "independent.\n\n");
  std::printf("%8s | %8s | %12s %12s | %14s %14s | %5s\n", "docs", "tuples",
              "twig(sel 1st)", "twig(sel last)", "naive(sel 1st)",
              "naive(sel last)", "same");

  for (double scale : {0.05, 0.1, 0.2, 0.4}) {
    seda::store::DocumentStore store;
    seda::data::WorldFactbookGenerator::Options options;
    options.scale = scale;
    seda::data::WorldFactbookGenerator(options).Populate(&store);
    seda::graph::DataGraph graph(&store);
    seda::text::InvertedIndex index(&store);
    seda::twig::CompleteResultGenerator generator(&index, &graph);

    auto us = seda::text::ParseTextExpr("\"united states\"").value();
    // Selective term (the US name predicate) first vs last.
    std::vector<seda::twig::TermBinding> sel_first{
        {kName, us.get()}, {kTrade, nullptr}, {kPct, nullptr}};
    std::vector<seda::twig::TermBinding> sel_last{
        {kTrade, nullptr}, {kPct, nullptr}, {kName, us.get()}};

    auto time = [](auto&& fn) {
      auto start = Clock::now();
      auto result = fn();
      double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start).count();
      return std::make_pair(std::move(result), ms);
    };
    auto [twig_a, twig_a_ms] =
        time([&] { return generator.Execute(sel_first, {}); });
    auto [twig_b, twig_b_ms] = time([&] { return generator.Execute(sel_last, {}); });
    auto [naive_a, naive_a_ms] =
        time([&] { return generator.ExecuteNaive(sel_first, {}); });
    auto [naive_b, naive_b_ms] =
        time([&] { return generator.ExecuteNaive(sel_last, {}); });

    bool same = twig_a.ok() && twig_b.ok() && naive_a.ok() && naive_b.ok() &&
                twig_a.value().tuples.size() == naive_a.value().tuples.size() &&
                twig_b.value().tuples.size() == naive_b.value().tuples.size() &&
                twig_a.value().tuples.size() == twig_b.value().tuples.size();
    if (same) {
      for (size_t i = 0; i < twig_a.value().tuples.size(); ++i) {
        for (size_t t = 0; t < 3; ++t) {
          if (!(twig_a.value().tuples[i].nodes[t] ==
                naive_a.value().tuples[i].nodes[t])) {
            same = false;
          }
        }
      }
    }
    std::printf("%8zu | %8zu | %12.2f %12.2f | %14.2f %14.2f | %5s\n",
                store.DocumentCount(),
                twig_a.ok() ? twig_a.value().tuples.size() : 0, twig_a_ms,
                twig_b_ms, naive_a_ms, naive_b_ms, same ? "YES" : "NO");
    if (!same) return 1;
  }
  std::printf("\nBoth engines implement identical semantics (verified above); the\n"
              "holistic engine's cost is term-order independent, matching the\n"
              "holistic-vs-binary-join motivation of Bruno et al. [4] (paper §7).\n");
  return 0;
}
