// Ablation S6/A-threshold: sweeps the dataguide overlap-merge threshold and
// reports, per dataset, the number of dataguides (paper §6.1: reduction
// factors range from 3x to 100x depending on the dataset) and, on the
// Factbook, the number of false-positive connections surfaced by the
// connection summary (paper §6.1: "the higher the overlap threshold, the
// fewer the false positive connections").

#include <cstdio>
#include <memory>

#include "data/generators.h"
#include "dataguide/dataguide.h"
#include "graph/data_graph.h"
#include "query/query.h"
#include "summary/connection_summary.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

using seda::dataguide::DataguideCollection;

int main() {
  // Scaled-down datasets keep the sweep fast while preserving shape.
  seda::store::DocumentStore factbook, gbase, recipes;
  {
    seda::data::WorldFactbookGenerator::Options o;
    o.scale = 0.2;
    seda::data::WorldFactbookGenerator(o).Populate(&factbook);
  }
  {
    seda::data::GoogleBaseGenerator::Options o;
    o.documents = 2000;
    seda::data::GoogleBaseGenerator(o).Populate(&gbase);
  }
  {
    seda::data::RecipeMLGenerator::Options o;
    o.documents = 2000;
    seda::data::RecipeMLGenerator(o).Populate(&recipes);
  }

  // Shared query state for false-positive measurement on the Factbook.
  seda::graph::DataGraph graph(&factbook);
  graph.ResolveIdRefs();
  seda::text::InvertedIndex index(&factbook);
  seda::topk::TopKSearcher searcher(&index, &graph);
  auto query =
      seda::query::ParseQuery("(trade_country, *) AND (percentage, *)").value();
  seda::topk::TopKOptions topk_options;
  topk_options.k = 20;
  auto topk = searcher.Search(query, topk_options);
  if (!topk.ok()) return 1;

  std::printf("=== Ablation: dataguide overlap threshold sweep ===\n");
  std::printf("%9s | %9s %9s %9s | %17s\n", "threshold", "factbook", "gbase",
              "recipeml", "factbook conn FPs");
  size_t last_fp = 0;
  for (double threshold : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    DataguideCollection::Options options;
    options.overlap_threshold = threshold;
    auto fb = DataguideCollection::Build(factbook, options);
    auto gb = DataguideCollection::Build(gbase, options);
    auto rm = DataguideCollection::Build(recipes, options);

    fb.AddLinksFromGraph(graph);
    seda::summary::ConnectionSummaryGenerator generator(&fb, &graph);
    auto summary = generator.Generate(topk.value());
    last_fp = summary.FalsePositiveCount();

    std::printf("%9.1f | %9zu %9zu %9zu | %17llu\n", threshold, fb.size(),
                gb.size(), rm.size(),
                static_cast<unsigned long long>(summary.FalsePositiveCount()));
  }
  (void)last_fp;
  std::printf(
      "\npaper claim 1 (guide count rises with threshold; reduction factors\n"
      "span ~3x..100x across datasets): holds above.\n"
      "paper claim 2 (higher threshold => fewer merge-induced false-positive\n"
      "connections): at this scale the remaining false positives are\n"
      "structural (multiplicity the dataguide cannot see, e.g. sibling-item\n"
      "connections with no instance among the top-k), so the count stays\n"
      "flat rather than falling — merges between Factbook guides do not\n"
      "fabricate new trade_country/percentage connections because every\n"
      "guide already contains the full import_partners subtree.\n");
  return 0;
}
