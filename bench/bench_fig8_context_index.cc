// Microbenchmarks for the Figure 8 full-text path index that drives context
// discovery (§5), including the A4 ablation: reading per-path occurrence
// counts from the document-store-side dictionary (the paper's chosen design)
// vs. from per-term path postings (the rejected design that duplicates
// counts across posting lists).

#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "store/document_store.h"
#include "summary/context_summary.h"
#include "text/inverted_index.h"

namespace {

struct Fixture {
  seda::store::DocumentStore store;
  std::unique_ptr<seda::text::InvertedIndex> index;

  Fixture() {
    seda::data::WorldFactbookGenerator::Options options;
    options.scale = 0.2;
    seda::data::WorldFactbookGenerator(options).Populate(&store);
    index = std::make_unique<seda::text::InvertedIndex>(&store);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_ProbeSimpleKeyword(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto expr = seda::text::ParseTextExpr("china").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index->EvaluatePaths(*expr));
  }
}
BENCHMARK(BM_ProbeSimpleKeyword);

void BM_ProbePhrase(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto expr = seda::text::ParseTextExpr("\"united states\"").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index->EvaluatePaths(*expr));
  }
}
BENCHMARK(BM_ProbePhrase);

void BM_ProbeBoolean(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto expr = seda::text::ParseTextExpr("(china OR canada) AND NOT mexico").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index->EvaluatePaths(*expr));
  }
}
BENCHMARK(BM_ProbeBoolean);

void BM_ProbeTagConstrained(benchmark::State& state) {
  // §5: "If the context of the query term is only a tag name ... we use the
  // tag name in conjunction with the search query to probe the index."
  Fixture& f = GetFixture();
  auto query =
      seda::query::ParseQuery(R"((trade_country, "united states"))").value();
  seda::summary::ContextSummaryGenerator generator(f.index.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.GenerateBucket(query.terms[0]));
  }
}
BENCHMARK(BM_ProbeTagConstrained);

// A4 ablation, layout 1 (paper's choice): counts live in the path dictionary
// (document store side); one lookup per distinct path.
void BM_CountsFromDictionary(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto expr = seda::text::ParseTextExpr("united").value();
  auto paths = f.index->EvaluatePaths(*expr);
  for (auto _ : state) {
    uint64_t total = 0;
    for (auto p : paths) total += f.store.paths().DocCount(p);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountsFromDictionary);

// A4 ablation, layout 2 (rejected): per-(term, path) counts inside the
// posting lists — no store access, but the counts are duplicated per term.
void BM_CountsFromPostings(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto expr = seda::text::ParseTextExpr("united").value();
  auto paths = f.index->EvaluatePaths(*expr);
  for (auto _ : state) {
    uint64_t total = 0;
    for (auto p : paths) total += f.index->TermPathCount("united", p);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CountsFromPostings);

void BM_FullContextSummaryQuery1(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto query = seda::query::ParseQuery(
                   R"((*, "United States") AND (trade_country, *) AND (percentage, *))")
                   .value();
  seda::summary::ContextSummaryGenerator generator(f.index.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(query));
  }
}
BENCHMARK(BM_FullContextSummaryQuery1);

}  // namespace

BENCHMARK_MAIN();
