// Snapshot commit latency: cold commit (full rebuild of every ingestion
// stage) vs. incremental commit (parsed documents shared, inverted index and
// dataguide summary extended; only link resolution rescans). Loads a
// mid-sized Factbook as epoch 1, stages a small document delta, and times
//
//   1. the initial Finalize()            — cold build of the base corpus,
//   2. Commit() of the delta             — the incremental path,
//   3. Commit({force_full_rebuild})      — cold rebuild of the same state,
//
// then cross-checks that the incremental epoch is indistinguishable from a
// from-scratch build over the combined corpus (exit 1 on any divergence, so
// the CI smoke step doubles as an equivalence gate). Emits
// BENCH_commit.json for the perf trajectory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/seda.h"
#include "data/generators.h"

using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::string DeltaDoc(int i) {
  return "<country><name>Deltaland " + std::to_string(i) +
         "</name><year>2008</year><economy><GDP>" + std::to_string(900 + i) +
         "</GDP><import_partners><item><trade_country>China</trade_country>"
         "<percentage>12.5</percentage></item></import_partners></economy>"
         "</country>";
}

/// Structural digest of an epoch; cheap but sensitive to any divergence in
/// store, graph, index or dataguides.
std::string EpochDigest(const seda::core::Snapshot& snap) {
  std::string out;
  out += "docs=" + std::to_string(snap.store().DocumentCount());
  out += " nodes=" + std::to_string(snap.store().TotalNodeCount());
  out += " paths=" + std::to_string(snap.store().paths().size());
  out += " edges=" + std::to_string(snap.data_graph().EdgeCount());
  out += " terms=" + std::to_string(snap.index().TermCount());
  out += " indexed=" + std::to_string(snap.index().IndexedNodeCount());
  out += " guides=" + std::to_string(snap.dataguides().size());
  out += " merges=" + std::to_string(snap.dataguides().build_stats().merges);
  out += " df_delta=" + std::to_string(snap.index().DocumentFrequency("deltaland"));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;  // ~400 documents
  size_t delta_docs = 0;  // 0 = base documents / 20, min 8
  std::string out_path = "BENCH_commit.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--delta") == 0)
      delta_docs = static_cast<size_t>(std::atoi(argv[i + 1]));
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  std::printf("=== Snapshot commits: cold vs incremental ===\n");
  seda::core::Seda seda;
  seda::data::WorldFactbookGenerator::Options data_options;
  data_options.scale = scale;
  seda::data::WorldFactbookGenerator(data_options).Populate(seda.mutable_store());
  size_t base_docs = seda.mutable_store()->DocumentCount();
  if (delta_docs == 0) delta_docs = base_docs / 20 > 8 ? base_docs / 20 : 8;

  // 1. Cold build of the base corpus: the first commit.
  auto finalize_start = Clock::now();
  if (!seda.Finalize().ok()) return 1;
  double cold_initial_ms = Ms(finalize_start);
  std::printf("%-44s %9.1f ms  (%zu docs)\n", "finalize (cold commit, epoch 1)",
              cold_initial_ms, base_docs);

  // 2. Incremental commit of the delta.
  for (size_t i = 0; i < delta_docs; ++i) {
    auto added = seda.AddXml(DeltaDoc(static_cast<int>(i)),
                             "delta-" + std::to_string(i));
    if (!added.ok()) return 1;
  }
  auto inc_start = Clock::now();
  auto inc_info = seda.Commit();
  double incremental_ms = Ms(inc_start);
  if (!inc_info.ok() || !inc_info->incremental) {
    std::printf("incremental commit failed\n");
    return 1;
  }
  std::printf("%-44s %9.1f ms  (+%zu docs, epoch %llu)\n",
              "incremental commit (index/guides extended)", incremental_ms,
              delta_docs, static_cast<unsigned long long>(inc_info->epoch));
  std::string incremental_digest = EpochDigest(*seda.snapshot());

  // 3. Cold rebuild of the very same state, for the apples-to-apples ratio.
  auto full_start = Clock::now();
  seda::core::Seda::CommitOptions force;
  force.force_full_rebuild = true;
  auto full_info = seda.Commit(force);
  double full_rebuild_ms = Ms(full_start);
  if (!full_info.ok()) return 1;
  std::printf("%-44s %9.1f ms  (same %zu docs)\n",
              "forced full-rebuild commit", full_rebuild_ms,
              base_docs + delta_docs);

  // Equivalence gate 1: the forced rebuild must reproduce the incremental
  // epoch bit for bit.
  if (EpochDigest(*seda.snapshot()) != incremental_digest) {
    std::printf("FAIL: full rebuild diverged from incremental epoch\n");
    return 1;
  }

  // Equivalence gate 2: a separate single-epoch instance over the combined
  // corpus must serve identical search results.
  seda::core::Seda cold;
  seda::data::WorldFactbookGenerator(data_options).Populate(cold.mutable_store());
  for (size_t i = 0; i < delta_docs; ++i) {
    (void)cold.AddXml(DeltaDoc(static_cast<int>(i)), "delta-" + std::to_string(i));
  }
  if (!cold.Finalize().ok()) return 1;
  if (EpochDigest(*cold.snapshot()) != incremental_digest) {
    std::printf("FAIL: incremental epoch diverged from cold combined build\n");
    return 1;
  }
  const char* probe = R"((name, "Deltaland") AND (GDP, *))";
  auto inc_response = seda.Search(probe);
  auto cold_response = cold.Search(probe);
  if (!inc_response.ok() || !cold_response.ok() ||
      inc_response->topk.size() != cold_response->topk.size() ||
      inc_response->topk.empty()) {
    std::printf("FAIL: probe query diverged between incremental and cold\n");
    return 1;
  }
  for (size_t i = 0; i < inc_response->topk.size(); ++i) {
    if (inc_response->topk[i].ToString(seda.store()) !=
        cold_response->topk[i].ToString(cold.store())) {
      std::printf("FAIL: probe tuple %zu diverged\n", i);
      return 1;
    }
  }
  std::printf("equivalence: incremental == forced full == cold combined  OK\n");

  double speedup = incremental_ms > 0 ? full_rebuild_ms / incremental_ms : 0.0;
  std::printf("incremental commit speedup over full rebuild: %.2fx\n", speedup);

  if (FILE* json = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"bench\": \"commit_epochs\",\n  \"scale\": %.4f,\n"
                 "  \"base_documents\": %zu,\n  \"delta_documents\": %zu,\n"
                 "  \"cold_initial_commit_ms\": %.4f,\n"
                 "  \"incremental_commit_ms\": %.4f,\n"
                 "  \"full_rebuild_commit_ms\": %.4f,\n"
                 "  \"incremental_speedup\": %.4f,\n"
                 "  \"epochs_committed\": %llu\n}\n",
                 scale, base_docs, delta_docs, cold_initial_ms, incremental_ms,
                 full_rebuild_ms, speedup,
                 static_cast<unsigned long long>(full_info->epoch));
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
