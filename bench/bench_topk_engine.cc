// Streaming top-k engine bench: runs a query panel (including NOT / "*"
// terms) through the cursor-based TA engine, reports queries/sec, documents
// scored, the early-termination rate and the cursor counters, and writes the
// machine-readable BENCH_topk.json consumed by CI.
//
// The headline assertion: candidate-stream construction no longer
// materializes NOT/kAll universes. For every query whose terms would have
// forced the old engine to materialize the node universe, the cursor
// postings-advanced counter must be strictly below the old engine's
// materialized candidate total (computed here via EvaluateNodes, the
// compatibility shim that still implements one-shot materialization).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/generators.h"
#include "exec/candidates.h"
#include "graph/data_graph.h"
#include "query/query.h"
#include "text/inverted_index.h"
#include "topk/topk.h"

using Clock = std::chrono::steady_clock;

namespace {

struct QuerySpec {
  const char* text;
  /// True when the old engine materialized a node universe for this query
  /// (a NOT term or an unrestricted "*" term).
  bool universe_bound;
};

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Universe-sized intermediates the pre-cursor evaluator allocated for this
/// expression: one per kAll leaf, one per NOT (its complement base), one per
/// pure-negation conjunction. A conservative lower bound — the old evaluator
/// also allocated universe-sized subtraction outputs on top.
uint64_t UniverseAllocations(const seda::text::TextExpr& e) {
  using Kind = seda::text::TextExpr::Kind;
  switch (e.kind) {
    case Kind::kAll:
      return 1;
    case Kind::kTerm:
    case Kind::kPhrase:
      return 0;
    case Kind::kNot:
      return 1 + UniverseAllocations(*e.children.front());
    case Kind::kAnd: {
      uint64_t n = 0;
      bool have_positive = false;
      for (const auto& child : e.children) {
        if (child->kind == Kind::kNot) {
          n += UniverseAllocations(*child->children.front());
        } else {
          have_positive = true;
          n += UniverseAllocations(*child);
        }
      }
      return n + (have_positive ? 0 : 1);
    }
    case Kind::kOr: {
      uint64_t n = 0;
      for (const auto& child : e.children) n += UniverseAllocations(*child);
      return n;
    }
  }
  return 0;
}

/// The candidate volume the pre-cursor engine materialized: the full (uncapped,
/// pre-context-filter) EvaluateNodes output per content term, the context's
/// node occurrences per structure-only term, plus one universe-sized vector
/// per NOT/kAll intermediate.
uint64_t OldMaterializedCandidates(const seda::text::InvertedIndex& index,
                                   const seda::query::Query& query) {
  uint64_t total = 0;
  for (const seda::query::QueryTerm& term : query.terms) {
    bool structure_only =
        !term.search ||
        term.search->kind == seda::text::TextExpr::Kind::kAll;
    if (structure_only) {
      for (seda::store::PathId path :
           term.context.ResolvePathIds(index.store().paths())) {
        total += index.NodesWithPath(path).size();
      }
      continue;
    }
    total += index.EvaluateNodes(*term.search).size();
    total += UniverseAllocations(*term.search) * index.IndexedNodeCount();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  std::string out_path = "BENCH_topk.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  seda::store::DocumentStore store;
  seda::data::WorldFactbookGenerator::Options options;
  options.scale = scale;
  seda::data::WorldFactbookGenerator(options).Populate(&store);
  seda::graph::DataGraph graph(&store);
  seda::text::InvertedIndex index(&store);
  seda::topk::TopKSearcher searcher(&index, &graph);

  const QuerySpec queries[] = {
      {R"((*, "United States") AND (trade_country, *) AND (percentage, *))", false},
      {R"((name, "China") AND (GDP, *))", false},
      {"(trade_country, *) AND (percentage, *)", false},
      {R"((*, NOT china) AND (name, *))", true},
      {R"((name, NOT "united states") AND (GDP, *))", true},
      {R"((*, "Canada"))", false},
  };

  std::printf("=== bench_topk_engine: streaming cursor DAAT top-k ===\n");
  std::printf("corpus: %zu docs, %llu indexed nodes (scale %.2f)\n\n",
              store.DocumentCount(),
              static_cast<unsigned long long>(index.IndexedNodeCount()), scale);
  std::printf("%-40s | %8s %9s %8s | %10s %10s %8s | %5s\n", "query", "qps",
              "docs_sc", "early", "postings", "old_cand", "skipped", "evict");

  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"topk_engine\",\n  \"scale\": %.4f,\n"
               "  \"documents\": %zu,\n  \"indexed_nodes\": %llu,\n"
               "  \"queries\": [\n",
               scale, store.DocumentCount(),
               static_cast<unsigned long long>(index.IndexedNodeCount()));

  bool failed = false;
  size_t early_terminated_count = 0;
  size_t query_count = 0;
  for (const QuerySpec& spec : queries) {
    auto parsed = seda::query::ParseQuery(spec.text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n", spec.text);
      return 1;
    }
    seda::topk::TopKOptions topk_options;
    topk_options.k = 10;

    // Warm + measured runs; stats are deterministic, timing is averaged.
    seda::topk::SearchStats stats;
    constexpr int kRuns = 5;
    auto start = Clock::now();
    for (int run = 0; run < kRuns; ++run) {
      auto result = searcher.Search(parsed.value(), topk_options, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "search failed: %s\n", spec.text);
        return 1;
      }
    }
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count() /
                kRuns;
    double qps = ms > 0 ? 1000.0 / ms : 0.0;

    uint64_t old_candidates = OldMaterializedCandidates(index, parsed.value());
    ++query_count;
    if (stats.early_terminated) ++early_terminated_count;

    bool universe_ok =
        !spec.universe_bound || stats.postings_advanced < old_candidates;
    if (!universe_ok) failed = true;

    std::string label(spec.text);
    if (label.size() > 40) label = label.substr(0, 37) + "...";
    std::printf("%-40s | %8.1f %9llu %8s | %10llu %10llu %8llu | %5llu %s\n",
                label.c_str(), qps,
                static_cast<unsigned long long>(stats.docs_scored),
                stats.early_terminated ? "yes" : "no",
                static_cast<unsigned long long>(stats.postings_advanced),
                static_cast<unsigned long long>(old_candidates),
                static_cast<unsigned long long>(stats.docs_skipped),
                static_cast<unsigned long long>(stats.heap_evictions),
                universe_ok ? "" : "  <-- UNIVERSE MATERIALIZED");

    std::fprintf(
        json,
        "    {\"query\": \"%s\", \"k\": %zu, \"qps\": %.2f, "
        "\"ms_per_query\": %.4f, \"docs_considered\": %llu, "
        "\"docs_scored\": %llu, \"tuples_scored\": %llu, "
        "\"early_terminated\": %s, \"postings_advanced\": %llu, "
        "\"docs_skipped\": %llu, \"heap_evictions\": %llu, "
        "\"old_materialized_candidates\": %llu, \"universe_bound\": %s}%s\n",
        JsonEscape(label).c_str(), topk_options.k, qps, ms,
        static_cast<unsigned long long>(stats.docs_considered),
        static_cast<unsigned long long>(stats.docs_scored),
        static_cast<unsigned long long>(stats.tuples_scored),
        stats.early_terminated ? "true" : "false",
        static_cast<unsigned long long>(stats.postings_advanced),
        static_cast<unsigned long long>(stats.docs_skipped),
        static_cast<unsigned long long>(stats.heap_evictions),
        static_cast<unsigned long long>(old_candidates),
        spec.universe_bound ? "true" : "false",
        &spec == &queries[std::size(queries) - 1] ? "" : ",");
  }

  std::fprintf(json,
               "  ],\n  \"early_termination_rate\": %.4f\n}\n",
               query_count == 0
                   ? 0.0
                   : static_cast<double>(early_terminated_count) /
                         static_cast<double>(query_count));
  std::fclose(json);

  std::printf("\nearly-termination rate: %zu/%zu; wrote %s\n",
              early_terminated_count, query_count, out_path.c_str());
  if (failed) {
    std::printf("FAIL: a NOT/kAll query advanced more postings than the old "
                "engine materialized\n");
    return 1;
  }
  std::printf("NOT/kAll queries stream below the old materialization cost: YES\n");
  return 0;
}
