// Reproduces the in-text World Factbook statistics from §1 and §5 of the
// paper (experiment S1 in DESIGN.md):
//   * the query term (*, "United States") matches 27 distinct paths,
//   * the collection has 1984 distinct paths in total,
//   * /country occurs in 1577 of 1600 documents,
//   * /transnational_issues/refugees/country_of_origin occurs in only 186
//     documents (the "long tail"),
// plus the long-tail histogram those numbers illustrate.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/generators.h"
#include "store/document_store.h"
#include "text/inverted_index.h"
#include "text/text_expr.h"

int main() {
  seda::store::DocumentStore store;
  seda::data::WorldFactbookGenerator().Populate(&store);
  seda::text::InvertedIndex index(&store);

  std::printf("=== S1: World Factbook path statistics (paper §1/§5) ===\n");
  std::printf("%-46s %10s %10s\n", "statistic", "measured", "paper");

  std::printf("%-46s %10zu %10d\n", "documents", store.DocumentCount(), 1600);
  std::printf("%-46s %10zu %10d\n", "distinct paths", store.paths().size(), 1984);

  auto country = store.paths().Find("/country");
  std::printf("%-46s %10llu %10d\n", "docs containing /country",
              static_cast<unsigned long long>(store.paths().DocCount(country)),
              1577);

  auto refugees = store.paths().Find(
      "/country/transnational_issues/refugees/country_of_origin");
  std::printf("%-46s %10llu %10d\n", "docs containing refugees path",
              static_cast<unsigned long long>(
                  refugees == seda::store::kInvalidPathId
                      ? 0
                      : store.paths().DocCount(refugees)),
              186);

  auto us = seda::text::ParseTextExpr("\"united states\"");
  size_t us_paths = index.EvaluatePaths(*us.value()).size();
  std::printf("%-46s %10zu %10d\n", "paths matching (*, \"United States\")",
              us_paths, 27);

  // Long-tail histogram: how many paths occur in <= N documents.
  std::vector<uint64_t> doc_counts;
  for (seda::store::PathId p = 0; p < store.paths().size(); ++p) {
    doc_counts.push_back(store.paths().DocCount(p));
  }
  std::sort(doc_counts.begin(), doc_counts.end());
  std::printf("\nLong tail of infrequent paths (paper: \"a long tail of such "
              "infrequent paths\"):\n");
  for (uint64_t bound : {1ull, 10ull, 50ull, 186ull, 500ull, 1600ull}) {
    size_t count = std::upper_bound(doc_counts.begin(), doc_counts.end(), bound) -
                   doc_counts.begin();
    std::printf("  paths in <= %4llu docs: %5zu (%.1f%%)\n",
                static_cast<unsigned long long>(bound), count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(doc_counts.size()));
  }
  bool ok = us_paths == 27 && store.paths().size() > 1200;
  std::printf("\nshape check: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
