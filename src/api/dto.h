#ifndef SEDA_API_DTO_H_
#define SEDA_API_DTO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace seda::api {

/// The service boundary's data-transfer objects: every request and response
/// of api::SedaService is a plain-data struct over std types only — no
/// pointers into a snapshot, no engine objects — referencing nodes, paths
/// and connections by stable ids (DocId + Dewey string, root-to-leaf path
/// strings, connection indices into the session's last search response).
/// Each DTO has a canonical JSON encoding in api/wire.h, so an in-process
/// caller, the explore_cli stdin/stdout client and a future network frontend
/// all speak the same schema.

/// Serializable Status: `code` is the StatusCodeName ("OK",
/// "InvalidArgument", ...), `message` the human-readable detail.
struct WireStatus {
  std::string code = "OK";
  std::string message;

  bool ok() const { return code == "OK"; }
  static WireStatus FromStatus(const Status& status);
  /// Reconstructs a Status (kInternal for an unknown code string).
  Status ToStatus() const;
};

/// Per-request accounting, on every response. Mirrors topk::SearchStats for
/// search-shaped requests (zeros elsewhere) plus the service-side deadline
/// bookkeeping: `deadline_ms` echoes the request, `deadline_exceeded` is the
/// overrun flag — a response with it set is a well-formed partial answer,
/// not an error.
struct StatsDto {
  uint64_t epoch = 0;          ///< snapshot epoch that served the request
  double elapsed_ms = 0;       ///< service-measured wall clock
  uint64_t deadline_ms = 0;    ///< request budget (0 = none)
  bool deadline_exceeded = false;
  // topk::SearchStats counters (search/refine only):
  uint64_t candidates_total = 0;
  uint64_t docs_considered = 0;
  uint64_t docs_scored = 0;
  uint64_t tuples_scored = 0;
  bool early_terminated = false;
  uint64_t postings_advanced = 0;
  uint64_t docs_skipped = 0;
  uint64_t heap_evictions = 0;
  uint64_t hub_links_skipped = 0;
  uint64_t tuples_trimmed = 0;
  // Graph-kernel counters (graph/csr.h ablation; see topk::SearchStats):
  uint64_t bfs_expansions = 0;
  uint64_t intersection_probes = 0;
  uint64_t sketch_hits = 0;
  // Columnar cube-extraction counters (cube requests only; see
  // topk::SearchStats):
  uint64_t column_rows_scanned = 0;
  uint64_t column_fallback_docs = 0;
};

/// Stable node reference: document id + Dewey id ("1.2.2.1"), plus the
/// node's root-to-leaf path and content for display — everything a client
/// needs without holding pointers into the store.
struct NodeRefDto {
  uint32_t doc = 0;
  std::string dewey;
  std::string path;
  std::string content;
};

/// One ranked answer (topk::ScoredTuple over the wire).
struct TupleDto {
  std::vector<NodeRefDto> nodes;  ///< one per query term, in term order
  double content_score = 0;
  uint64_t connection_size = 0;
  double score = 0;
};

/// One context bucket entry (§5 summary; absolute collection frequencies).
struct ContextEntryDto {
  std::string path;
  uint64_t doc_count = 0;
  uint64_t node_count = 0;
};

struct ContextBucketDto {
  std::string term;
  std::vector<ContextEntryDto> entries;
};

/// One step of a schema-level connection ("up" / "down" / "link").
struct ConnectionStepDto {
  std::string move;
  std::string path;   ///< context arrived at after the move
  std::string label;  ///< relationship label for link moves
};

/// One connection summary entry (§6). Its position in
/// SearchResponseDto::connections is the *connection index*
/// CompleteRequest::connections refers to.
struct ConnectionDto {
  uint64_t term_a = 0;
  uint64_t term_b = 0;
  std::string from_path;
  std::string to_path;
  std::vector<ConnectionStepDto> steps;
  uint64_t instance_count = 0;
  bool false_positive = false;
};

// --- Observability (statz) ---------------------------------------------

/// Per-request-type accounting: request count, error count, and a
/// fixed-bound latency histogram (bucket i counts requests with latency <=
/// StatzResponse::bucket_bounds_ms[i]; the final bucket is the overflow).
struct MethodStatsDto {
  std::string method;
  uint64_t count = 0;
  uint64_t errors = 0;             ///< responses with non-OK status
  uint64_t deadline_exceeded = 0;  ///< responses flagged as partial
  double total_ms = 0;             ///< summed wall clock across requests
  std::vector<uint64_t> latency_buckets;
};

struct StatzRequest {};

/// The service's observability surface: session-registry gauges, per-method
/// latency histograms and the cumulative engine counters, all monotonic
/// since service construction. Served as envelope method "statz" — this is
/// what the net-layer admission controller, the CI server smoke and any
/// dashboard poll.
struct StatzResponse {
  WireStatus status;
  uint64_t epoch = 0;             ///< currently served snapshot epoch
  uint64_t sessions = 0;          ///< live (non-evicted) sessions
  uint64_t sessions_created = 0;
  uint64_t sessions_evicted = 0;  ///< TTL + LRU evictions (not explicit closes)
  double uptime_ms = 0;           ///< since service construction
  std::vector<double> bucket_bounds_ms;  ///< histogram upper bounds
  std::vector<MethodStatsDto> methods;
  /// Cumulative topk::SearchStats counters summed over every search-shaped
  /// response (epoch/elapsed/deadline fields carry their usual per-request
  /// meaning nowhere here and stay zero except deadline_ms-independent sums).
  StatsDto cumulative;
  /// Transport counters injected by a hosting frontend (net::Server) —
  /// empty when the service is driven in-process.
  std::vector<std::pair<std::string, uint64_t>> transport;
};

// --- Session lifecycle -------------------------------------------------

struct CreateSessionRequest {
  /// Caller-chosen id (must be unused); empty = the service assigns one.
  std::string session_id;
  /// Idle lifetime override in ms; 0 = the service default.
  uint64_t ttl_ms = 0;
};

struct CreateSessionResponse {
  WireStatus status;
  std::string session_id;
  uint64_t epoch = 0;  ///< snapshot epoch the session is pinned to
};

struct CloseSessionRequest {
  std::string session_id;
};

struct CloseSessionResponse {
  WireStatus status;
};

// --- Fig. 6 loop -------------------------------------------------------

/// First stage: top-k search + both summaries. An empty session_id runs the
/// request one-shot on the current epoch (no session state is kept).
struct SearchRequest {
  std::string session_id;
  std::string query;         ///< paper surface syntax, see query::ParseQuery
  uint64_t k = 0;            ///< top-k override; 0 = snapshot default
  uint64_t deadline_ms = 0;  ///< wall-clock budget; 0 = none
  /// Return the request's span tree in the response ("trace":true on the
  /// envelope). Tracing itself is always on (ServiceOptions::tracing); this
  /// flag only controls whether the tree is shipped back.
  bool trace = false;
};

struct SearchResponseDto {
  WireStatus status;
  std::vector<TupleDto> topk;
  std::vector<ContextBucketDto> contexts;     ///< one bucket per query term
  std::vector<ConnectionDto> connections;
  StatsDto stats;
  /// Detached span tree; only populated (and only serialized) when the
  /// request asked for it — `trace.name` is empty otherwise.
  obs::SpanNode trace;
};

/// Feedback edge: context picks (one list per term of the session's current
/// query; empty list = leave the term as is) applied and re-searched.
struct RefineRequest {
  std::string session_id;
  std::vector<std::vector<std::string>> chosen_paths;
  uint64_t k = 0;            ///< top-k override for the re-search; 0 = default
  uint64_t deadline_ms = 0;
  bool trace = false;        ///< see SearchRequest::trace
};

/// Completion stage: the full result set R(q) for the session's current
/// query with each term pinned to a single context path. `connections` are
/// indices into the session's last search response's connection list.
struct CompleteRequest {
  std::string session_id;
  std::vector<std::string> term_paths;  ///< one absolute path per term
  std::vector<uint64_t> connections;    ///< chosen connection indices
  uint64_t deadline_ms = 0;
  bool trace = false;                   ///< see SearchRequest::trace
};

struct CompleteResponseDto {
  WireStatus status;
  /// R(q) rows: one NodeRef per term (content omitted — rows can be many).
  std::vector<std::vector<NodeRefDto>> tuples;
  uint64_t twig_count = 0;
  uint64_t cross_twig_joins = 0;
  StatsDto stats;
  obs::SpanNode trace;  ///< see SearchResponseDto::trace
};

/// Last stage: star schema (and optional OLAP aggregate) from the session's
/// last complete result.
struct CubeRequest {
  std::string session_id;
  // CubeBuilder::Options step-2 augmentation, by catalog name:
  std::vector<std::string> add_facts;
  std::vector<std::string> remove_facts;
  std::vector<std::string> add_dimensions;
  std::vector<std::string> remove_dimensions;
  bool merge_fact_tables = true;
  /// Optional aggregation over the first fact table: when `measure` is
  /// non-empty the response carries the cells of
  /// olap::Cube::Aggregate(group_dims, agg_fn, measure).
  std::vector<std::string> group_dims;
  std::string agg_fn = "sum";  ///< sum | count | avg | min | max
  std::string measure;
  uint64_t deadline_ms = 0;
  bool trace = false;  ///< see SearchRequest::trace
};

/// A relational table (fact or dimension) over the wire.
struct TableDto {
  std::string name;
  std::vector<std::string> columns;
  std::vector<uint64_t> key_columns;
  std::vector<std::vector<std::string>> rows;
};

/// One aggregated cube cell.
struct CellDto {
  std::vector<std::string> group;  ///< one value per grouped dimension
  double value = 0;
  uint64_t count = 0;
};

struct CubeResponseDto {
  WireStatus status;
  std::vector<TableDto> fact_tables;
  std::vector<TableDto> dimension_tables;
  std::vector<std::string> warnings;
  std::vector<CellDto> cells;  ///< only when CubeRequest::measure was set
  double cell_total = 0;       ///< Cuboid::Total() of the aggregate
  StatsDto stats;
  obs::SpanNode trace;  ///< see SearchResponseDto::trace
};

// --- Observability (metricz / slowlog) ---------------------------------

/// Prometheus text exposition of the service's metrics registry. The same
/// bytes are served on the HTTP metrics listener (`GET /metrics`); this
/// envelope method exists so frame-protocol clients (explore_cli) can scrape
/// without a second port.
struct MetriczRequest {};

struct MetriczResponse {
  WireStatus status;
  std::string text;  ///< exposition format 0.0.4, byte-stable
};

/// The sampled slow-query log (obs/slowlog.h): requests that met their
/// method's latency threshold, plus every Nth request when the sampling
/// knob is on. Entries come back newest-first with their span trees.
struct SlowlogRequest {
  uint64_t limit = 0;  ///< cap on returned entries; 0 = all retained
};

struct SlowlogResponse {
  WireStatus status;
  uint64_t total_logged = 0;  ///< ever logged, including evicted entries
  std::vector<obs::SlowLogEntry> entries;
};

}  // namespace seda::api

#endif  // SEDA_API_DTO_H_
