#ifndef SEDA_API_SERVICE_H_
#define SEDA_API_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/dto.h"
#include "core/seda.h"

namespace seda::api {

/// Configuration of the service facade.
struct ServiceOptions {
  /// Upper bound on live sessions; creating one past the bound evicts the
  /// least-recently-used session (expired ones first).
  size_t max_sessions = 1024;
  /// Idle lifetime: a session untouched for this long is evicted lazily (on
  /// the next registry sweep). CreateSessionRequest::ttl_ms overrides per
  /// session. 0 = sessions never expire by idleness.
  uint64_t session_ttl_ms = 15 * 60 * 1000;
  /// Applied when a request carries deadline_ms == 0. 0 = no deadline.
  uint64_t default_deadline_ms = 0;
  /// Shard-by-DocId scatter-gather for every search/refine request: with
  /// N > 1, the TA scan fans out into N per-shard scans over the snapshot's
  /// thread pool and the merged ranking is byte-identical to the unsharded
  /// one (see topk::TopKOptions::shard_count for the exactness argument and
  /// budget caveat). 0/1 = unsharded. This is a serving-mode knob — the
  /// seda_server --shards flag lands here.
  size_t topk_shards = 1;
};

/// The service facade over the whole Fig. 6 loop — the one supported public
/// entry point of the system. Every method takes a plain-data request and
/// returns a plain-data response (api/dto.h) referencing nodes, paths and
/// connections by stable ids, so the same call shape works in-process, over
/// the explore_cli stdin/stdout wire, or behind a future network frontend.
///
/// Architecture: the service multiplexes many concurrent explorations over
/// the shared snapshot machinery. Each session entry owns a core::Session
/// (the internal engine object — no longer the public surface) pinned to the
/// epoch that was current at CreateSession time, plus the cross-request
/// state the wire format references by index (the last search response's
/// connection entries, the last complete result). A registry maps string
/// session ids to entries with TTL + LRU eviction; the registry lock is held
/// only for lookup/eviction, while each request serializes on its session's
/// own mutex — so thousands of sessions make progress concurrently and an
/// evicted session finishes its in-flight request safely (shared_ptr keeps
/// the entry alive).
///
/// Deadlines: every request carries deadline_ms (0 = ServiceOptions
/// default). Search-shaped requests plumb it into the engine's cooperative
/// TA-scan check (TopKOptions::deadline_ms) and return a well-formed partial
/// response with stats.deadline_exceeded set; complete/cube requests flag
/// the overrun in stats after the fact. An overrun is never an error.
///
/// Thread safety: all methods are safe to call from any number of threads.
/// Requests for the same session are serialized; requests for different
/// sessions run concurrently. The backing Seda writer may Commit() freely —
/// sessions keep their pinned epoch, new sessions pin the new one.
class SedaService {
 public:
  /// Serves `seda` (not owned; must outlive the service and be finalized
  /// before the first request — CreateSession fails cleanly otherwise).
  explicit SedaService(const core::Seda* seda,
                       ServiceOptions options = ServiceOptions{});

  // --- Typed entry points ---------------------------------------------
  CreateSessionResponse CreateSession(const CreateSessionRequest& request);
  CloseSessionResponse CloseSession(const CloseSessionRequest& request);
  /// An empty session_id runs one-shot on the current epoch (no state kept).
  SearchResponseDto Search(const SearchRequest& request);
  SearchResponseDto Refine(const RefineRequest& request);
  CompleteResponseDto Complete(const CompleteRequest& request);
  CubeResponseDto Cube(const CubeRequest& request);
  /// Observability snapshot: registry gauges, per-method latency histograms
  /// and cumulative engine counters (api/dto.h StatzResponse). Cheap —
  /// O(methods x buckets) under a stats mutex, no engine work.
  StatzResponse Statz(const StatzRequest& request);

  /// Lets a hosting transport (net::Server) contribute its own counters to
  /// every Statz response, as name/value pairs under "transport". Call
  /// before serving; the callback must be thread-safe.
  void set_transport_statz(
      std::function<std::vector<std::pair<std::string, uint64_t>>()> source) {
    transport_statz_ = std::move(source);
  }

  /// Wire entry point: one JSON request envelope in, one JSON response out.
  /// The envelope is the request DTO's object plus a "method" field:
  ///   {"method":"search","session_id":"s1","query":"(a, b)", ...}
  /// Methods: create_session, close_session, search, refine, complete,
  /// cube. Envelope-level failures (malformed JSON, unknown method) return
  /// {"status":{...}} with the error; method-level failures are the
  /// method's own response DTO with its status set.
  std::string Handle(const std::string& request_json);

  /// Live (non-evicted) session count, for tests and ops.
  size_t SessionCount() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct SessionEntry {
    std::string id;
    /// Serializes requests on this session (core::Session mutates state).
    std::mutex mu;
    core::Session session;
    /// Result of the last Complete(), consumed by Cube(). Reset by a new
    /// Search/Refine round (the tuples belong to the superseded query).
    std::optional<twig::CompleteResult> last_complete;
    /// Guarded by the registry mutex (not mu): eviction bookkeeping.
    std::chrono::steady_clock::time_point last_used;
    uint64_t ttl_ms = 0;

    SessionEntry(std::string session_id, core::Session engine)
        : id(std::move(session_id)), session(std::move(engine)) {}
  };

  /// Looks up a session, refreshes its LRU stamp and returns a shared
  /// handle, or NotFound/expired. Never blocks on the session's own mutex.
  Result<std::shared_ptr<SessionEntry>> FindSession(const std::string& id);

  /// Registry-lock-held: drops every expired session. Runs on each
  /// CreateSession and, rate-limited, on lookups — so idle-expired sessions
  /// release their pinned epochs even without new session traffic.
  void SweepExpiredLocked(std::chrono::steady_clock::time_point now);

  /// Registry-lock-held: evicts least-recently-used sessions until an
  /// insert fits within max_sessions. Only called when an insert WILL
  /// happen — a request that fails validation must not cost a live session.
  void EvictLruForInsertLocked();

  uint64_t EffectiveDeadline(uint64_t request_deadline_ms) const {
    return request_deadline_ms != 0 ? request_deadline_ms
                                    : options_.default_deadline_ms;
  }

  /// Index into metrics_ — one slot per envelope method.
  enum Method : size_t {
    kCreateSession = 0,
    kCloseSession,
    kSearch,
    kRefine,
    kComplete,
    kCube,
    kStatz,
    kMethodCount,
  };

  /// Records one finished request into the statz accounting (histogram slot,
  /// error/deadline counters, cumulative engine sums). `stats` may be null
  /// for requests without a stats block (create/close session).
  void RecordMetrics(Method method, double elapsed_ms, bool ok,
                     const StatsDto* stats);

  // The typed entry points above are thin metric-recording wrappers over
  // these implementations, so every return path of a request lands in the
  // statz accounting exactly once.
  CreateSessionResponse DoCreateSession(const CreateSessionRequest& request);
  CloseSessionResponse DoCloseSession(const CloseSessionRequest& request);
  SearchResponseDto DoSearch(const SearchRequest& request);
  SearchResponseDto DoRefine(const RefineRequest& request);
  CompleteResponseDto DoComplete(const CompleteRequest& request);
  CubeResponseDto DoCube(const CubeRequest& request);

  const core::Seda* seda_;
  ServiceOptions options_;

  mutable std::mutex registry_mu_;
  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  uint64_t next_session_number_ = 1;  ///< guarded by registry_mu_
  /// Last full expiry sweep (guarded by registry_mu_); lookups re-sweep at
  /// most once per second to keep the hot path O(1).
  std::chrono::steady_clock::time_point last_sweep_{};
  /// Registry lifecycle counters for statz (guarded by registry_mu_).
  uint64_t sessions_created_ = 0;
  uint64_t sessions_evicted_ = 0;

  /// Per-method statz accounting (guarded by stats_mu_ — the mutex costs
  /// nanoseconds against engine work that costs milliseconds).
  struct MethodMetrics {
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t deadline_exceeded = 0;
    double total_ms = 0;
    std::vector<uint64_t> latency_buckets;
  };
  mutable std::mutex stats_mu_;
  MethodMetrics metrics_[kMethodCount];
  StatsDto cumulative_;  ///< summed engine counters, guarded by stats_mu_
  std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  std::function<std::vector<std::pair<std::string, uint64_t>>()>
      transport_statz_;
};

}  // namespace seda::api

#endif  // SEDA_API_SERVICE_H_
