#ifndef SEDA_API_SERVICE_H_
#define SEDA_API_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/dto.h"
#include "core/seda.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace seda::api {

/// Configuration of the service facade.
struct ServiceOptions {
  /// Upper bound on live sessions; creating one past the bound evicts the
  /// least-recently-used session (expired ones first).
  size_t max_sessions = 1024;
  /// Idle lifetime: a session untouched for this long is evicted lazily (on
  /// the next registry sweep). CreateSessionRequest::ttl_ms overrides per
  /// session. 0 = sessions never expire by idleness.
  uint64_t session_ttl_ms = 15 * 60 * 1000;
  /// Applied when a request carries deadline_ms == 0. 0 = no deadline.
  uint64_t default_deadline_ms = 0;
  /// Shard-by-DocId scatter-gather for every search/refine request: with
  /// N > 1, the TA scan fans out into N per-shard scans over the snapshot's
  /// thread pool and the merged ranking is byte-identical to the unsharded
  /// one (see topk::TopKOptions::shard_count for the exactness argument and
  /// budget caveat). 0/1 = unsharded. This is a serving-mode knob — the
  /// seda_server --shards flag lands here.
  size_t topk_shards = 1;
  /// Per-request span collection (obs/trace.h). On (the default), every
  /// request opens a span tree — two steady_clock reads per span, gated to
  /// <3% throughput overhead by bench_obs. The tree is shipped back only
  /// when the envelope says "trace":true; slow/sampled requests retain it in
  /// the slow-query log. Off = requests run with a disabled Trace (the
  /// null-pointer fast path the bench compares against).
  bool tracing = true;
  /// Slow-query sampling knob, compiled in but disabled by default: when
  /// N > 0 every Nth request (across methods) lands in the slow log with
  /// its span tree regardless of latency. Deterministic — tests set 1.
  uint64_t trace_sample_every_n = 0;
  /// Slow-query log policy (ring capacity, per-method latency thresholds).
  obs::SlowLogOptions slowlog;
};

/// The service facade over the whole Fig. 6 loop — the one supported public
/// entry point of the system. Every method takes a plain-data request and
/// returns a plain-data response (api/dto.h) referencing nodes, paths and
/// connections by stable ids, so the same call shape works in-process, over
/// the explore_cli stdin/stdout wire, or behind a future network frontend.
///
/// Architecture: the service multiplexes many concurrent explorations over
/// the shared snapshot machinery. Each session entry owns a core::Session
/// (the internal engine object — no longer the public surface) pinned to the
/// epoch that was current at CreateSession time, plus the cross-request
/// state the wire format references by index (the last search response's
/// connection entries, the last complete result). A registry maps string
/// session ids to entries with TTL + LRU eviction; the registry lock is held
/// only for lookup/eviction, while each request serializes on its session's
/// own mutex — so thousands of sessions make progress concurrently and an
/// evicted session finishes its in-flight request safely (shared_ptr keeps
/// the entry alive).
///
/// Deadlines: every request carries deadline_ms (0 = ServiceOptions
/// default). Search-shaped requests plumb it into the engine's cooperative
/// TA-scan check (TopKOptions::deadline_ms) and return a well-formed partial
/// response with stats.deadline_exceeded set; complete/cube requests flag
/// the overrun in stats after the fact. An overrun is never an error.
///
/// Thread safety: all methods are safe to call from any number of threads.
/// Requests for the same session are serialized; requests for different
/// sessions run concurrently. The backing Seda writer may Commit() freely —
/// sessions keep their pinned epoch, new sessions pin the new one.
class SedaService {
 public:
  /// Serves `seda` (not owned; must outlive the service and be finalized
  /// before the first request — CreateSession fails cleanly otherwise).
  explicit SedaService(const core::Seda* seda,
                       ServiceOptions options = ServiceOptions{});

  // --- Typed entry points ---------------------------------------------
  CreateSessionResponse CreateSession(const CreateSessionRequest& request);
  CloseSessionResponse CloseSession(const CloseSessionRequest& request);
  /// An empty session_id runs one-shot on the current epoch (no state kept).
  SearchResponseDto Search(const SearchRequest& request);
  SearchResponseDto Refine(const RefineRequest& request);
  CompleteResponseDto Complete(const CompleteRequest& request);
  CubeResponseDto Cube(const CubeRequest& request);
  /// Observability snapshot: registry gauges, per-method latency histograms
  /// and cumulative engine counters (api/dto.h StatzResponse). Cheap —
  /// O(methods x buckets) reads of relaxed atomics, no lock, no engine work.
  StatzResponse Statz(const StatzRequest& request);
  /// Prometheus text exposition of the metrics registry (RenderMetrics()
  /// over the wire) — the same bytes `GET /metrics` serves.
  MetriczResponse Metricz(const MetriczRequest& request);
  /// The sampled slow-query log, newest-first, span trees included.
  SlowlogResponse Slowlog(const SlowlogRequest& request);

  /// Lets a hosting transport (net::Server) contribute its own counters to
  /// every Statz response, as name/value pairs under "transport". Call
  /// before serving; the callback must be thread-safe.
  void set_transport_statz(
      std::function<std::vector<std::pair<std::string, uint64_t>>()> source) {
    transport_statz_ = std::move(source);
  }

  /// The service's metrics registry. A hosting transport registers its own
  /// families here (net::Server does: seda_net_*) so one exposition covers
  /// service + transport; tests read it back via Snapshot().
  obs::MetricsRegistry& metrics() { return registry_; }
  /// Prometheus text exposition of every registered family; byte-stable for
  /// a given state. This is what the HTTP metrics listener serves.
  std::string RenderMetrics() const { return registry_.RenderText(); }
  /// The slow-query log (for the drain-time dump in seda_server).
  const obs::SlowLog& slow_log() const { return slowlog_; }

  /// Wire entry point: one JSON request envelope in, one JSON response out.
  /// The envelope is the request DTO's object plus a "method" field:
  ///   {"method":"search","session_id":"s1","query":"(a, b)", ...}
  /// Methods: create_session, close_session, search, refine, complete,
  /// cube, statz, metricz, slowlog. Search-shaped envelopes accept
  /// "trace":true to get the request's span tree back in the response.
  /// Envelope-level failures (malformed JSON, unknown method) return
  /// {"status":{...}} with the error; method-level failures are the
  /// method's own response DTO with its status set.
  std::string Handle(const std::string& request_json);

  /// Live (non-evicted) session count, for tests and ops.
  size_t SessionCount() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct SessionEntry {
    std::string id;
    /// Serializes requests on this session (core::Session mutates state).
    std::mutex mu;
    core::Session session;
    /// Result of the last Complete(), consumed by Cube(). Reset by a new
    /// Search/Refine round (the tuples belong to the superseded query).
    std::optional<twig::CompleteResult> last_complete;
    /// Guarded by the registry mutex (not mu): eviction bookkeeping.
    std::chrono::steady_clock::time_point last_used;
    uint64_t ttl_ms = 0;

    SessionEntry(std::string session_id, core::Session engine)
        : id(std::move(session_id)), session(std::move(engine)) {}
  };

  /// Looks up a session, refreshes its LRU stamp and returns a shared
  /// handle, or NotFound/expired. Never blocks on the session's own mutex.
  Result<std::shared_ptr<SessionEntry>> FindSession(const std::string& id);

  /// Registry-lock-held: drops every expired session. Runs on each
  /// CreateSession and, rate-limited, on lookups — so idle-expired sessions
  /// release their pinned epochs even without new session traffic.
  void SweepExpiredLocked(std::chrono::steady_clock::time_point now);

  /// Registry-lock-held: evicts least-recently-used sessions until an
  /// insert fits within max_sessions. Only called when an insert WILL
  /// happen — a request that fails validation must not cost a live session.
  void EvictLruForInsertLocked();

  uint64_t EffectiveDeadline(uint64_t request_deadline_ms) const {
    return request_deadline_ms != 0 ? request_deadline_ms
                                    : options_.default_deadline_ms;
  }

  /// Index into method_series_ — one slot per envelope method.
  enum Method : size_t {
    kCreateSession = 0,
    kCloseSession,
    kSearch,
    kRefine,
    kComplete,
    kCube,
    kStatz,
    kMetricz,
    kSlowlog,
    kMethodCount,
  };

  /// Registry handles for one method's request accounting. Every update is
  /// a relaxed atomic on a pre-registered series — the old stats_mu_ mutex
  /// serialized all methods through one lock and showed up as contention in
  /// the concurrent-connection bench once the engine work got cheap
  /// (sessions run concurrently, but every response funneled through it);
  /// per-series atomics make recording wait-free and scale with cores.
  struct MethodSeries {
    obs::Counter* count = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Histogram* latency_ms = nullptr;
  };

  /// Opens the per-request trace (enabled iff ServiceOptions::tracing).
  obs::Trace StartTrace(Method method) const;

  /// Records one finished request into the registry (count/error/deadline
  /// counters, latency histogram, cumulative engine sums — all atomics),
  /// then decides whether the trace is kept: shipped back via `trace_out`
  /// when the request asked, retained in the slow log when the method's
  /// latency threshold fired or the sampling knob picked the request.
  /// `stats` may be null for requests without a stats block.
  void FinishRequest(Method method, double elapsed_ms, const WireStatus& status,
                     const StatsDto* stats, obs::Trace trace,
                     bool trace_requested, obs::SpanNode* trace_out,
                     const std::string& session_id, const std::string& detail);

  // The typed entry points above are thin tracing+metric wrappers over
  // these implementations, so every return path of a request lands in the
  // accounting exactly once. `root` is the request's root span (null when
  // tracing is off).
  CreateSessionResponse DoCreateSession(const CreateSessionRequest& request);
  CloseSessionResponse DoCloseSession(const CloseSessionRequest& request);
  SearchResponseDto DoSearch(const SearchRequest& request,
                             obs::TraceSpan* root);
  SearchResponseDto DoRefine(const RefineRequest& request,
                             obs::TraceSpan* root);
  CompleteResponseDto DoComplete(const CompleteRequest& request,
                                 obs::TraceSpan* root);
  CubeResponseDto DoCube(const CubeRequest& request, obs::TraceSpan* root);

  const core::Seda* seda_;
  ServiceOptions options_;

  mutable std::mutex registry_mu_;
  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  uint64_t next_session_number_ = 1;  ///< guarded by registry_mu_
  /// Last full expiry sweep (guarded by registry_mu_); lookups re-sweep at
  /// most once per second to keep the hot path O(1).
  std::chrono::steady_clock::time_point last_sweep_{};
  /// Registry lifecycle counters for statz (guarded by registry_mu_).
  uint64_t sessions_created_ = 0;
  uint64_t sessions_evicted_ = 0;

  /// All request/engine accounting lives in the registry as lock-free
  /// atomics (see MethodSeries for the contention story); statz renders its
  /// JSON from these same series, so statz and /metrics can never disagree.
  obs::MetricsRegistry registry_;
  MethodSeries method_series_[kMethodCount];
  /// Cumulative topk::SearchStats counters (seda_engine_*_total), indexed
  /// in StatsDto field order — see kEngineCounters in service.cc.
  std::vector<obs::Counter*> engine_counters_;
  obs::SlowLog slowlog_;
  /// Per-method slow threshold, resolved once from options_.slowlog.
  uint64_t slow_threshold_ms_[kMethodCount] = {};
  /// Round-robin pick for the every-Nth-request sampling knob.
  mutable std::atomic<uint64_t> sample_counter_{0};
  std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  std::function<std::vector<std::pair<std::string, uint64_t>>()>
      transport_statz_;
};

}  // namespace seda::api

#endif  // SEDA_API_SERVICE_H_
