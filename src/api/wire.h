#ifndef SEDA_API_WIRE_H_
#define SEDA_API_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/dto.h"
#include "common/status.h"

namespace seda::api {

/// Minimal JSON document model for the wire format. Self-contained (the
/// container ships no JSON dependency) and *canonical*: writers emit compact
/// JSON with encoder-fixed key order, integers without exponent/decimal
/// point, doubles via %.17g (which round-trips every finite double exactly),
/// and a fixed escape policy — so for every DTO,
/// Encode(Decode(Encode(x))) == Encode(x) byte for byte. That stability is
/// what lets tests, logs and caches compare responses as strings.
class Json {
 public:
  enum class Kind { kNull, kBool, kUint, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Uint(uint64_t u);
  /// Non-finite doubles encode as null (JSON has no NaN/Inf).
  static Json Double(double d);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Typed readers; they coerce where lossless (Uint -> Double) and return
  // the fallback otherwise — DTO decoders validate presence separately.
  bool AsBool(bool fallback = false) const;
  uint64_t AsUint(uint64_t fallback = 0) const;
  double AsDouble(double fallback = 0) const;
  const std::string& AsString() const;  ///< empty for non-strings

  // Array access.
  void Append(Json value);
  size_t size() const;
  const Json& at(size_t i) const;  ///< Null sentinel when out of range

  // Object access: insertion-ordered keys (canonical encoding preserves the
  // encoder's field order).
  void Set(const std::string& key, Json value);
  const Json* Find(const std::string& key) const;  ///< nullptr when absent
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Compact canonical serialization.
  std::string Write() const;

  /// Strict parser (UTF-8 passthrough, \uXXXX escapes, no trailing input).
  /// Errors carry the byte offset of the failure.
  static Result<Json> Parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// --- DTO codecs ---------------------------------------------------------
// Every request/response DTO encodes to one canonical JSON object and
// decodes from it. Decoders are lenient about missing fields (defaults
// apply) but strict about malformed JSON and wrong value shapes.

std::string Encode(const WireStatus& v);
std::string Encode(const StatsDto& v);
std::string Encode(const NodeRefDto& v);
std::string Encode(const TupleDto& v);
std::string Encode(const ContextEntryDto& v);
std::string Encode(const ContextBucketDto& v);
std::string Encode(const ConnectionStepDto& v);
std::string Encode(const ConnectionDto& v);
std::string Encode(const CreateSessionRequest& v);
std::string Encode(const CreateSessionResponse& v);
std::string Encode(const CloseSessionRequest& v);
std::string Encode(const CloseSessionResponse& v);
std::string Encode(const SearchRequest& v);
std::string Encode(const SearchResponseDto& v);
std::string Encode(const RefineRequest& v);
std::string Encode(const CompleteRequest& v);
std::string Encode(const CompleteResponseDto& v);
std::string Encode(const CubeRequest& v);
std::string Encode(const TableDto& v);
std::string Encode(const CellDto& v);
std::string Encode(const CubeResponseDto& v);
std::string Encode(const MethodStatsDto& v);
std::string Encode(const StatzRequest& v);
std::string Encode(const StatzResponse& v);
std::string Encode(const MetriczRequest& v);
std::string Encode(const MetriczResponse& v);
std::string Encode(const SlowlogRequest& v);
std::string Encode(const SlowlogResponse& v);

Result<WireStatus> DecodeWireStatus(const std::string& json);
Result<StatsDto> DecodeStatsDto(const std::string& json);
Result<NodeRefDto> DecodeNodeRefDto(const std::string& json);
Result<TupleDto> DecodeTupleDto(const std::string& json);
Result<ContextEntryDto> DecodeContextEntryDto(const std::string& json);
Result<ContextBucketDto> DecodeContextBucketDto(const std::string& json);
Result<ConnectionStepDto> DecodeConnectionStepDto(const std::string& json);
Result<ConnectionDto> DecodeConnectionDto(const std::string& json);
Result<CreateSessionRequest> DecodeCreateSessionRequest(const std::string& json);
Result<CreateSessionResponse> DecodeCreateSessionResponse(const std::string& json);
Result<CloseSessionRequest> DecodeCloseSessionRequest(const std::string& json);
Result<CloseSessionResponse> DecodeCloseSessionResponse(const std::string& json);
Result<SearchRequest> DecodeSearchRequest(const std::string& json);
Result<SearchResponseDto> DecodeSearchResponseDto(const std::string& json);
Result<RefineRequest> DecodeRefineRequest(const std::string& json);
Result<CompleteRequest> DecodeCompleteRequest(const std::string& json);
Result<CompleteResponseDto> DecodeCompleteResponseDto(const std::string& json);
Result<CubeRequest> DecodeCubeRequest(const std::string& json);
Result<TableDto> DecodeTableDto(const std::string& json);
Result<CellDto> DecodeCellDto(const std::string& json);
Result<CubeResponseDto> DecodeCubeResponseDto(const std::string& json);
Result<MethodStatsDto> DecodeMethodStatsDto(const std::string& json);
Result<StatzRequest> DecodeStatzRequest(const std::string& json);
Result<StatzResponse> DecodeStatzResponse(const std::string& json);
Result<MetriczRequest> DecodeMetriczRequest(const std::string& json);
Result<MetriczResponse> DecodeMetriczResponse(const std::string& json);
Result<SlowlogRequest> DecodeSlowlogRequest(const std::string& json);
Result<SlowlogResponse> DecodeSlowlogResponse(const std::string& json);

// Json-level converters, for composing DTOs into envelopes (the service's
// Handle() dispatch uses these; the string Encode/Decode pairs above wrap
// them).
Json ToJson(const WireStatus& v);
Json ToJson(const StatsDto& v);
Json ToJson(const NodeRefDto& v);
Json ToJson(const TupleDto& v);
Json ToJson(const ContextEntryDto& v);
Json ToJson(const ContextBucketDto& v);
Json ToJson(const ConnectionStepDto& v);
Json ToJson(const ConnectionDto& v);
Json ToJson(const CreateSessionRequest& v);
Json ToJson(const CreateSessionResponse& v);
Json ToJson(const CloseSessionRequest& v);
Json ToJson(const CloseSessionResponse& v);
Json ToJson(const SearchRequest& v);
Json ToJson(const SearchResponseDto& v);
Json ToJson(const RefineRequest& v);
Json ToJson(const CompleteRequest& v);
Json ToJson(const CompleteResponseDto& v);
Json ToJson(const CubeRequest& v);
Json ToJson(const TableDto& v);
Json ToJson(const CellDto& v);
Json ToJson(const CubeResponseDto& v);
Json ToJson(const MethodStatsDto& v);
Json ToJson(const StatzRequest& v);
Json ToJson(const StatzResponse& v);
Json ToJson(const MetriczRequest& v);
Json ToJson(const MetriczResponse& v);
Json ToJson(const SlowlogRequest& v);
Json ToJson(const SlowlogResponse& v);
// obs plain-data types embedded in responses (span trees, slow-log rows).
Json ToJson(const obs::SpanNode& v);
Json ToJson(const obs::SlowLogEntry& v);

WireStatus WireStatusFromJson(const Json& json);
StatsDto StatsDtoFromJson(const Json& json);
NodeRefDto NodeRefDtoFromJson(const Json& json);
TupleDto TupleDtoFromJson(const Json& json);
ContextEntryDto ContextEntryDtoFromJson(const Json& json);
ContextBucketDto ContextBucketDtoFromJson(const Json& json);
ConnectionStepDto ConnectionStepDtoFromJson(const Json& json);
ConnectionDto ConnectionDtoFromJson(const Json& json);
CreateSessionRequest CreateSessionRequestFromJson(const Json& json);
CreateSessionResponse CreateSessionResponseFromJson(const Json& json);
CloseSessionRequest CloseSessionRequestFromJson(const Json& json);
CloseSessionResponse CloseSessionResponseFromJson(const Json& json);
SearchRequest SearchRequestFromJson(const Json& json);
SearchResponseDto SearchResponseDtoFromJson(const Json& json);
RefineRequest RefineRequestFromJson(const Json& json);
CompleteRequest CompleteRequestFromJson(const Json& json);
CompleteResponseDto CompleteResponseDtoFromJson(const Json& json);
CubeRequest CubeRequestFromJson(const Json& json);
TableDto TableDtoFromJson(const Json& json);
CellDto CellDtoFromJson(const Json& json);
CubeResponseDto CubeResponseDtoFromJson(const Json& json);
MethodStatsDto MethodStatsDtoFromJson(const Json& json);
StatzRequest StatzRequestFromJson(const Json& json);
StatzResponse StatzResponseFromJson(const Json& json);
MetriczRequest MetriczRequestFromJson(const Json& json);
MetriczResponse MetriczResponseFromJson(const Json& json);
SlowlogRequest SlowlogRequestFromJson(const Json& json);
SlowlogResponse SlowlogResponseFromJson(const Json& json);
obs::SpanNode SpanNodeFromJson(const Json& json);
obs::SlowLogEntry SlowLogEntryFromJson(const Json& json);

}  // namespace seda::api

#endif  // SEDA_API_WIRE_H_
