#include "api/wire.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace seda::api {

// --- Json: constructors and accessors -----------------------------------

Json Json::Bool(bool b) {
  Json v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Json Json::Uint(uint64_t u) {
  Json v;
  v.kind_ = Kind::kUint;
  v.uint_ = u;
  return v;
}

Json Json::Double(double d) {
  if (!std::isfinite(d)) return Json();  // null: JSON has no NaN/Inf
  Json v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

Json Json::Str(std::string s) {
  Json v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Json Json::Array() {
  Json v;
  v.kind_ = Kind::kArray;
  return v;
}

Json Json::Object() {
  Json v;
  v.kind_ = Kind::kObject;
  return v;
}

bool Json::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

uint64_t Json::AsUint(uint64_t fallback) const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kDouble && double_ >= 0 &&
      double_ <= 18446744073709549568.0 && double_ == std::floor(double_)) {
    return static_cast<uint64_t>(double_);
  }
  return fallback;
}

double Json::AsDouble(double fallback) const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kUint) return static_cast<double>(uint_);
  return fallback;
}

const std::string& Json::AsString() const {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_ : kEmpty;
}

void Json::Append(Json value) {
  if (kind_ != Kind::kArray) {
    kind_ = Kind::kArray;
    array_.clear();
  }
  array_.push_back(std::move(value));
}

size_t Json::size() const { return array_.size(); }

const Json& Json::at(size_t i) const {
  static const Json kNullValue;
  return i < array_.size() ? array_[i] : kNullValue;
}

void Json::Set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) {
    kind_ = Kind::kObject;
    object_.clear();
  }
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  return object_;
}

// --- Json: canonical writer ---------------------------------------------

namespace {

void WriteEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));  // UTF-8 passthrough
        }
    }
  }
  out->push_back('"');
}

void WriteValue(const Json& v, std::string* out) {
  switch (v.kind()) {
    case Json::Kind::kNull:
      *out += "null";
      break;
    case Json::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case Json::Kind::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(v.AsUint()));
      *out += buf;
      break;
    }
    case Json::Kind::kDouble: {
      // Encode-side contract: JSON has no NaN/Infinity, and no engine score
      // or statistic should ever be non-finite — a NaN here means a scoring
      // bug upstream, not a wire problem.
      SEDA_DCHECK(std::isfinite(v.AsDouble()))
          << "non-finite double on the wire";
      // %.17g round-trips every finite double exactly, making the canonical
      // encoding byte-stable across encode/decode cycles.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      *out += buf;
      break;
    }
    case Json::Kind::kString:
      WriteEscaped(v.AsString(), out);
      break;
    case Json::Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out->push_back(',');
        WriteValue(v.at(i), out);
      }
      out->push_back(']');
      break;
    }
    case Json::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        WriteEscaped(key, out);
        out->push_back(':');
        WriteValue(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string Json::Write() const {
  std::string out;
  WriteValue(*this, &out);
  return out;
}

// --- Json: parser --------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipSpace();
    Json value;
    SEDA_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after JSON value");
    }
    return value;
  }

 private:
  static constexpr size_t kMaxDepth = 96;

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, size_t depth) {
    if (depth > kMaxDepth) return Error("JSON nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of JSON");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': return ParseString(out);
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = Json::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = Json::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = Json::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseObject(Json* out, size_t depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      Json key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      SEDA_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipSpace();
      Json value;
      SEDA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key.AsString(), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out, size_t depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipSpace();
      Json value;
      SEDA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(Json* out) {
    ++pos_;  // '"'
    std::string value;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = Json::Str(std::move(value));
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': value.push_back('"'); break;
          case '\\': value.push_back('\\'); break;
          case '/': value.push_back('/'); break;
          case 'b': value.push_back('\b'); break;
          case 'f': value.push_back('\f'); break;
          case 'n': value.push_back('\n'); break;
          case 'r': value.push_back('\r'); break;
          case 't': value.push_back('\t'); break;
          case 'u': {
            uint32_t code = 0;
            SEDA_RETURN_IF_ERROR(ParseHex4(&code));
            if (code >= 0xD800 && code <= 0xDBFF) {
              // A high surrogate is only valid as the first half of a pair;
              // a lone one would encode to ill-formed UTF-8 (CESU-8).
              if (text_.compare(pos_, 2, "\\u") != 0) {
                return Error("lone high surrogate in \\u escape");
              }
              pos_ += 2;
              uint32_t low = 0;
              SEDA_RETURN_IF_ERROR(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("lone low surrogate in \\u escape");
            }
            AppendUtf8(code, &value);
            break;
          }
          default:
            return Error("invalid escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      value.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("invalid hex digit in \\u escape");
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("invalid number");
    if (!is_double && token[0] != '-') {
      errno = 0;
      char* end = nullptr;
      unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (errno == ERANGE || end != token.c_str() + token.size()) {
        return Error("integer out of range");
      }
      *out = Json::Uint(u);
      return Status::OK();
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    *out = Json::Double(d);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

// --- WireStatus <-> Status ----------------------------------------------

WireStatus WireStatus::FromStatus(const Status& status) {
  WireStatus wire;
  wire.code = StatusCodeName(status.code());
  wire.message = status.message();
  return wire;
}

Status WireStatus::ToStatus() const {
  if (ok()) return Status::OK();
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kAlreadyExists,   StatusCode::kParseError,
      StatusCode::kOutOfRange,      StatusCode::kFailedPrecondition,
      StatusCode::kInternal,        StatusCode::kUnimplemented,
      StatusCode::kIoError,         StatusCode::kUnavailable};
  for (StatusCode candidate : kCodes) {
    if (code == StatusCodeName(candidate)) {
      switch (candidate) {
        case StatusCode::kInvalidArgument: return Status::InvalidArgument(message);
        case StatusCode::kNotFound: return Status::NotFound(message);
        case StatusCode::kAlreadyExists: return Status::AlreadyExists(message);
        case StatusCode::kParseError: return Status::ParseError(message);
        case StatusCode::kOutOfRange: return Status::OutOfRange(message);
        case StatusCode::kFailedPrecondition:
          return Status::FailedPrecondition(message);
        case StatusCode::kInternal: return Status::Internal(message);
        case StatusCode::kUnimplemented: return Status::Unimplemented(message);
        case StatusCode::kIoError: return Status::IoError(message);
        case StatusCode::kUnavailable: return Status::Unavailable(message);
        default: break;
      }
    }
  }
  return Status::Internal("unknown wire status code '" + code +
                          "': " + message);
}

// --- DTO codecs ----------------------------------------------------------

namespace {

/// Canonical encoding for string lists and nested string lists.
Json StringsToJson(const std::vector<std::string>& values) {
  Json array = Json::Array();
  for (const std::string& v : values) array.Append(Json::Str(v));
  return array;
}

std::vector<std::string> StringsFromJson(const Json* json) {
  std::vector<std::string> out;
  if (json == nullptr) return out;
  out.reserve(json->size());
  for (size_t i = 0; i < json->size(); ++i) out.push_back(json->at(i).AsString());
  return out;
}

template <typename T, typename Fn>
Json ListToJson(const std::vector<T>& values, Fn&& to_json) {
  Json array = Json::Array();
  for (const T& v : values) array.Append(to_json(v));
  return array;
}

template <typename T, typename Fn>
std::vector<T> ListFromJson(const Json* json, Fn&& from_json) {
  std::vector<T> out;
  if (json == nullptr) return out;
  out.reserve(json->size());
  for (size_t i = 0; i < json->size(); ++i) out.push_back(from_json(json->at(i)));
  return out;
}

uint64_t UintField(const Json& json, const char* key) {
  const Json* v = json.Find(key);
  return v != nullptr ? v->AsUint() : 0;
}

double DoubleField(const Json& json, const char* key) {
  const Json* v = json.Find(key);
  return v != nullptr ? v->AsDouble() : 0;
}

bool BoolField(const Json& json, const char* key, bool fallback = false) {
  const Json* v = json.Find(key);
  return v != nullptr ? v->AsBool(fallback) : fallback;
}

std::string StringField(const Json& json, const char* key) {
  const Json* v = json.Find(key);
  return v != nullptr ? v->AsString() : std::string();
}

/// Shared by every string-level decoder: strict parse + object check.
template <typename T, typename Fn>
Result<T> DecodeObject(const std::string& json, const char* what, Fn&& from_json) {
  auto parsed = Json::Parse(json);
  if (!parsed.ok()) return parsed.status();
  if (parsed.value().kind() != Json::Kind::kObject) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a JSON object");
  }
  return from_json(parsed.value());
}

}  // namespace

Json ToJson(const WireStatus& v) {
  Json json = Json::Object();
  json.Set("code", Json::Str(v.code));
  json.Set("message", Json::Str(v.message));
  return json;
}

WireStatus WireStatusFromJson(const Json& json) {
  WireStatus v;
  v.code = StringField(json, "code");
  if (v.code.empty()) v.code = "OK";
  v.message = StringField(json, "message");
  return v;
}

Json ToJson(const StatsDto& v) {
  Json json = Json::Object();
  json.Set("epoch", Json::Uint(v.epoch));
  json.Set("elapsed_ms", Json::Double(v.elapsed_ms));
  json.Set("deadline_ms", Json::Uint(v.deadline_ms));
  json.Set("deadline_exceeded", Json::Bool(v.deadline_exceeded));
  json.Set("candidates_total", Json::Uint(v.candidates_total));
  json.Set("docs_considered", Json::Uint(v.docs_considered));
  json.Set("docs_scored", Json::Uint(v.docs_scored));
  json.Set("tuples_scored", Json::Uint(v.tuples_scored));
  json.Set("early_terminated", Json::Bool(v.early_terminated));
  json.Set("postings_advanced", Json::Uint(v.postings_advanced));
  json.Set("docs_skipped", Json::Uint(v.docs_skipped));
  json.Set("heap_evictions", Json::Uint(v.heap_evictions));
  json.Set("hub_links_skipped", Json::Uint(v.hub_links_skipped));
  json.Set("tuples_trimmed", Json::Uint(v.tuples_trimmed));
  json.Set("bfs_expansions", Json::Uint(v.bfs_expansions));
  json.Set("intersection_probes", Json::Uint(v.intersection_probes));
  json.Set("sketch_hits", Json::Uint(v.sketch_hits));
  json.Set("column_rows_scanned", Json::Uint(v.column_rows_scanned));
  json.Set("column_fallback_docs", Json::Uint(v.column_fallback_docs));
  return json;
}

StatsDto StatsDtoFromJson(const Json& json) {
  StatsDto v;
  v.epoch = UintField(json, "epoch");
  v.elapsed_ms = DoubleField(json, "elapsed_ms");
  v.deadline_ms = UintField(json, "deadline_ms");
  v.deadline_exceeded = BoolField(json, "deadline_exceeded");
  v.candidates_total = UintField(json, "candidates_total");
  v.docs_considered = UintField(json, "docs_considered");
  v.docs_scored = UintField(json, "docs_scored");
  v.tuples_scored = UintField(json, "tuples_scored");
  v.early_terminated = BoolField(json, "early_terminated");
  v.postings_advanced = UintField(json, "postings_advanced");
  v.docs_skipped = UintField(json, "docs_skipped");
  v.heap_evictions = UintField(json, "heap_evictions");
  v.hub_links_skipped = UintField(json, "hub_links_skipped");
  v.tuples_trimmed = UintField(json, "tuples_trimmed");
  v.bfs_expansions = UintField(json, "bfs_expansions");
  v.intersection_probes = UintField(json, "intersection_probes");
  v.sketch_hits = UintField(json, "sketch_hits");
  v.column_rows_scanned = UintField(json, "column_rows_scanned");
  v.column_fallback_docs = UintField(json, "column_fallback_docs");
  return v;
}

Json ToJson(const NodeRefDto& v) {
  Json json = Json::Object();
  json.Set("doc", Json::Uint(v.doc));
  json.Set("dewey", Json::Str(v.dewey));
  json.Set("path", Json::Str(v.path));
  json.Set("content", Json::Str(v.content));
  return json;
}

NodeRefDto NodeRefDtoFromJson(const Json& json) {
  NodeRefDto v;
  v.doc = static_cast<uint32_t>(UintField(json, "doc"));
  v.dewey = StringField(json, "dewey");
  v.path = StringField(json, "path");
  v.content = StringField(json, "content");
  return v;
}

Json ToJson(const TupleDto& v) {
  Json json = Json::Object();
  json.Set("nodes", ListToJson(v.nodes, [](const NodeRefDto& n) {
    return ToJson(n);
  }));
  json.Set("content_score", Json::Double(v.content_score));
  json.Set("connection_size", Json::Uint(v.connection_size));
  json.Set("score", Json::Double(v.score));
  return json;
}

TupleDto TupleDtoFromJson(const Json& json) {
  TupleDto v;
  v.nodes = ListFromJson<NodeRefDto>(json.Find("nodes"), NodeRefDtoFromJson);
  v.content_score = DoubleField(json, "content_score");
  v.connection_size = UintField(json, "connection_size");
  v.score = DoubleField(json, "score");
  return v;
}

Json ToJson(const ContextEntryDto& v) {
  Json json = Json::Object();
  json.Set("path", Json::Str(v.path));
  json.Set("doc_count", Json::Uint(v.doc_count));
  json.Set("node_count", Json::Uint(v.node_count));
  return json;
}

ContextEntryDto ContextEntryDtoFromJson(const Json& json) {
  ContextEntryDto v;
  v.path = StringField(json, "path");
  v.doc_count = UintField(json, "doc_count");
  v.node_count = UintField(json, "node_count");
  return v;
}

Json ToJson(const ContextBucketDto& v) {
  Json json = Json::Object();
  json.Set("term", Json::Str(v.term));
  json.Set("entries", ListToJson(v.entries, [](const ContextEntryDto& e) {
    return ToJson(e);
  }));
  return json;
}

ContextBucketDto ContextBucketDtoFromJson(const Json& json) {
  ContextBucketDto v;
  v.term = StringField(json, "term");
  v.entries =
      ListFromJson<ContextEntryDto>(json.Find("entries"), ContextEntryDtoFromJson);
  return v;
}

Json ToJson(const ConnectionStepDto& v) {
  Json json = Json::Object();
  json.Set("move", Json::Str(v.move));
  json.Set("path", Json::Str(v.path));
  json.Set("label", Json::Str(v.label));
  return json;
}

ConnectionStepDto ConnectionStepDtoFromJson(const Json& json) {
  ConnectionStepDto v;
  v.move = StringField(json, "move");
  v.path = StringField(json, "path");
  v.label = StringField(json, "label");
  return v;
}

Json ToJson(const ConnectionDto& v) {
  Json json = Json::Object();
  json.Set("term_a", Json::Uint(v.term_a));
  json.Set("term_b", Json::Uint(v.term_b));
  json.Set("from_path", Json::Str(v.from_path));
  json.Set("to_path", Json::Str(v.to_path));
  json.Set("steps", ListToJson(v.steps, [](const ConnectionStepDto& s) {
    return ToJson(s);
  }));
  json.Set("instance_count", Json::Uint(v.instance_count));
  json.Set("false_positive", Json::Bool(v.false_positive));
  return json;
}

ConnectionDto ConnectionDtoFromJson(const Json& json) {
  ConnectionDto v;
  v.term_a = UintField(json, "term_a");
  v.term_b = UintField(json, "term_b");
  v.from_path = StringField(json, "from_path");
  v.to_path = StringField(json, "to_path");
  v.steps = ListFromJson<ConnectionStepDto>(json.Find("steps"),
                                            ConnectionStepDtoFromJson);
  v.instance_count = UintField(json, "instance_count");
  v.false_positive = BoolField(json, "false_positive");
  return v;
}

Json ToJson(const CreateSessionRequest& v) {
  Json json = Json::Object();
  json.Set("session_id", Json::Str(v.session_id));
  json.Set("ttl_ms", Json::Uint(v.ttl_ms));
  return json;
}

CreateSessionRequest CreateSessionRequestFromJson(const Json& json) {
  CreateSessionRequest v;
  v.session_id = StringField(json, "session_id");
  v.ttl_ms = UintField(json, "ttl_ms");
  return v;
}

Json ToJson(const CreateSessionResponse& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  json.Set("session_id", Json::Str(v.session_id));
  json.Set("epoch", Json::Uint(v.epoch));
  return json;
}

CreateSessionResponse CreateSessionResponseFromJson(const Json& json) {
  CreateSessionResponse v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  v.session_id = StringField(json, "session_id");
  v.epoch = UintField(json, "epoch");
  return v;
}

Json ToJson(const CloseSessionRequest& v) {
  Json json = Json::Object();
  json.Set("session_id", Json::Str(v.session_id));
  return json;
}

CloseSessionRequest CloseSessionRequestFromJson(const Json& json) {
  CloseSessionRequest v;
  v.session_id = StringField(json, "session_id");
  return v;
}

Json ToJson(const CloseSessionResponse& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  return json;
}

CloseSessionResponse CloseSessionResponseFromJson(const Json& json) {
  CloseSessionResponse v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  return v;
}

Json ToJson(const SearchRequest& v) {
  Json json = Json::Object();
  json.Set("session_id", Json::Str(v.session_id));
  json.Set("query", Json::Str(v.query));
  json.Set("k", Json::Uint(v.k));
  json.Set("deadline_ms", Json::Uint(v.deadline_ms));
  // Only serialized when set, so untraced requests keep their pre-tracing
  // canonical bytes (same below for responses' "trace" subtree).
  if (v.trace) json.Set("trace", Json::Bool(true));
  return json;
}

SearchRequest SearchRequestFromJson(const Json& json) {
  SearchRequest v;
  v.session_id = StringField(json, "session_id");
  v.query = StringField(json, "query");
  v.k = UintField(json, "k");
  v.deadline_ms = UintField(json, "deadline_ms");
  v.trace = BoolField(json, "trace");
  return v;
}

Json ToJson(const SearchResponseDto& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  json.Set("topk", ListToJson(v.topk, [](const TupleDto& t) {
    return ToJson(t);
  }));
  json.Set("contexts", ListToJson(v.contexts, [](const ContextBucketDto& b) {
    return ToJson(b);
  }));
  json.Set("connections", ListToJson(v.connections, [](const ConnectionDto& c) {
    return ToJson(c);
  }));
  json.Set("stats", ToJson(v.stats));
  if (!v.trace.name.empty()) json.Set("trace", ToJson(v.trace));
  return json;
}

SearchResponseDto SearchResponseDtoFromJson(const Json& json) {
  SearchResponseDto v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  v.topk = ListFromJson<TupleDto>(json.Find("topk"), TupleDtoFromJson);
  v.contexts = ListFromJson<ContextBucketDto>(json.Find("contexts"),
                                              ContextBucketDtoFromJson);
  v.connections =
      ListFromJson<ConnectionDto>(json.Find("connections"), ConnectionDtoFromJson);
  const Json* stats = json.Find("stats");
  if (stats != nullptr) v.stats = StatsDtoFromJson(*stats);
  const Json* trace = json.Find("trace");
  if (trace != nullptr) v.trace = SpanNodeFromJson(*trace);
  return v;
}

Json ToJson(const RefineRequest& v) {
  Json json = Json::Object();
  json.Set("session_id", Json::Str(v.session_id));
  json.Set("chosen_paths",
           ListToJson(v.chosen_paths, [](const std::vector<std::string>& paths) {
             return StringsToJson(paths);
           }));
  json.Set("k", Json::Uint(v.k));
  json.Set("deadline_ms", Json::Uint(v.deadline_ms));
  if (v.trace) json.Set("trace", Json::Bool(true));
  return json;
}

RefineRequest RefineRequestFromJson(const Json& json) {
  RefineRequest v;
  v.session_id = StringField(json, "session_id");
  const Json* lists = json.Find("chosen_paths");
  if (lists != nullptr) {
    v.chosen_paths.reserve(lists->size());
    for (size_t i = 0; i < lists->size(); ++i) {
      v.chosen_paths.push_back(StringsFromJson(&lists->at(i)));
    }
  }
  v.k = UintField(json, "k");
  v.deadline_ms = UintField(json, "deadline_ms");
  v.trace = BoolField(json, "trace");
  return v;
}

Json ToJson(const CompleteRequest& v) {
  Json json = Json::Object();
  json.Set("session_id", Json::Str(v.session_id));
  json.Set("term_paths", StringsToJson(v.term_paths));
  Json connections = Json::Array();
  for (uint64_t index : v.connections) connections.Append(Json::Uint(index));
  json.Set("connections", std::move(connections));
  json.Set("deadline_ms", Json::Uint(v.deadline_ms));
  if (v.trace) json.Set("trace", Json::Bool(true));
  return json;
}

CompleteRequest CompleteRequestFromJson(const Json& json) {
  CompleteRequest v;
  v.session_id = StringField(json, "session_id");
  v.term_paths = StringsFromJson(json.Find("term_paths"));
  const Json* connections = json.Find("connections");
  if (connections != nullptr) {
    v.connections.reserve(connections->size());
    for (size_t i = 0; i < connections->size(); ++i) {
      v.connections.push_back(connections->at(i).AsUint());
    }
  }
  v.deadline_ms = UintField(json, "deadline_ms");
  v.trace = BoolField(json, "trace");
  return v;
}

Json ToJson(const CompleteResponseDto& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  json.Set("tuples", ListToJson(v.tuples, [](const std::vector<NodeRefDto>& row) {
    return ListToJson(row, [](const NodeRefDto& n) { return ToJson(n); });
  }));
  json.Set("twig_count", Json::Uint(v.twig_count));
  json.Set("cross_twig_joins", Json::Uint(v.cross_twig_joins));
  json.Set("stats", ToJson(v.stats));
  if (!v.trace.name.empty()) json.Set("trace", ToJson(v.trace));
  return json;
}

CompleteResponseDto CompleteResponseDtoFromJson(const Json& json) {
  CompleteResponseDto v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  const Json* tuples = json.Find("tuples");
  if (tuples != nullptr) {
    v.tuples.reserve(tuples->size());
    for (size_t i = 0; i < tuples->size(); ++i) {
      v.tuples.push_back(
          ListFromJson<NodeRefDto>(&tuples->at(i), NodeRefDtoFromJson));
    }
  }
  v.twig_count = UintField(json, "twig_count");
  v.cross_twig_joins = UintField(json, "cross_twig_joins");
  const Json* stats = json.Find("stats");
  if (stats != nullptr) v.stats = StatsDtoFromJson(*stats);
  const Json* trace = json.Find("trace");
  if (trace != nullptr) v.trace = SpanNodeFromJson(*trace);
  return v;
}

Json ToJson(const CubeRequest& v) {
  Json json = Json::Object();
  json.Set("session_id", Json::Str(v.session_id));
  json.Set("add_facts", StringsToJson(v.add_facts));
  json.Set("remove_facts", StringsToJson(v.remove_facts));
  json.Set("add_dimensions", StringsToJson(v.add_dimensions));
  json.Set("remove_dimensions", StringsToJson(v.remove_dimensions));
  json.Set("merge_fact_tables", Json::Bool(v.merge_fact_tables));
  json.Set("group_dims", StringsToJson(v.group_dims));
  json.Set("agg_fn", Json::Str(v.agg_fn));
  json.Set("measure", Json::Str(v.measure));
  json.Set("deadline_ms", Json::Uint(v.deadline_ms));
  if (v.trace) json.Set("trace", Json::Bool(true));
  return json;
}

CubeRequest CubeRequestFromJson(const Json& json) {
  CubeRequest v;
  v.session_id = StringField(json, "session_id");
  v.add_facts = StringsFromJson(json.Find("add_facts"));
  v.remove_facts = StringsFromJson(json.Find("remove_facts"));
  v.add_dimensions = StringsFromJson(json.Find("add_dimensions"));
  v.remove_dimensions = StringsFromJson(json.Find("remove_dimensions"));
  v.merge_fact_tables = BoolField(json, "merge_fact_tables", true);
  v.group_dims = StringsFromJson(json.Find("group_dims"));
  v.agg_fn = StringField(json, "agg_fn");
  if (v.agg_fn.empty()) v.agg_fn = "sum";
  v.measure = StringField(json, "measure");
  v.deadline_ms = UintField(json, "deadline_ms");
  v.trace = BoolField(json, "trace");
  return v;
}

Json ToJson(const TableDto& v) {
  Json json = Json::Object();
  json.Set("name", Json::Str(v.name));
  json.Set("columns", StringsToJson(v.columns));
  Json keys = Json::Array();
  for (uint64_t k : v.key_columns) keys.Append(Json::Uint(k));
  json.Set("key_columns", std::move(keys));
  json.Set("rows", ListToJson(v.rows, [](const std::vector<std::string>& row) {
    return StringsToJson(row);
  }));
  return json;
}

TableDto TableDtoFromJson(const Json& json) {
  TableDto v;
  v.name = StringField(json, "name");
  v.columns = StringsFromJson(json.Find("columns"));
  const Json* keys = json.Find("key_columns");
  if (keys != nullptr) {
    v.key_columns.reserve(keys->size());
    for (size_t i = 0; i < keys->size(); ++i) {
      v.key_columns.push_back(keys->at(i).AsUint());
    }
  }
  const Json* rows = json.Find("rows");
  if (rows != nullptr) {
    v.rows.reserve(rows->size());
    for (size_t i = 0; i < rows->size(); ++i) {
      v.rows.push_back(StringsFromJson(&rows->at(i)));
    }
  }
  return v;
}

Json ToJson(const CellDto& v) {
  Json json = Json::Object();
  json.Set("group", StringsToJson(v.group));
  json.Set("value", Json::Double(v.value));
  json.Set("count", Json::Uint(v.count));
  return json;
}

CellDto CellDtoFromJson(const Json& json) {
  CellDto v;
  v.group = StringsFromJson(json.Find("group"));
  // A null value is an encoded NaN (JSON has no NaN literal); an absent
  // field keeps the struct default.
  const Json* value = json.Find("value");
  if (value != nullptr) {
    v.value = value->is_null() ? std::nan("") : value->AsDouble();
  }
  v.count = UintField(json, "count");
  return v;
}

Json ToJson(const CubeResponseDto& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  json.Set("fact_tables", ListToJson(v.fact_tables, [](const TableDto& t) {
    return ToJson(t);
  }));
  json.Set("dimension_tables",
           ListToJson(v.dimension_tables, [](const TableDto& t) {
             return ToJson(t);
           }));
  json.Set("warnings", StringsToJson(v.warnings));
  json.Set("cells", ListToJson(v.cells, [](const CellDto& c) {
    return ToJson(c);
  }));
  json.Set("cell_total", Json::Double(v.cell_total));
  json.Set("stats", ToJson(v.stats));
  if (!v.trace.name.empty()) json.Set("trace", ToJson(v.trace));
  return json;
}

CubeResponseDto CubeResponseDtoFromJson(const Json& json) {
  CubeResponseDto v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  v.fact_tables = ListFromJson<TableDto>(json.Find("fact_tables"), TableDtoFromJson);
  v.dimension_tables =
      ListFromJson<TableDto>(json.Find("dimension_tables"), TableDtoFromJson);
  v.warnings = StringsFromJson(json.Find("warnings"));
  v.cells = ListFromJson<CellDto>(json.Find("cells"), CellDtoFromJson);
  // Like CellDto::value, a null cell_total is an encoded NaN; mapping it to
  // 0 would both corrupt the value and break encode/decode byte stability.
  // An absent field keeps the struct default (0).
  const Json* total = json.Find("cell_total");
  if (total != nullptr) {
    v.cell_total = total->is_null() ? std::nan("") : total->AsDouble();
  }
  const Json* stats = json.Find("stats");
  if (stats != nullptr) v.stats = StatsDtoFromJson(*stats);
  const Json* trace = json.Find("trace");
  if (trace != nullptr) v.trace = SpanNodeFromJson(*trace);
  return v;
}

Json ToJson(const MethodStatsDto& v) {
  Json json = Json::Object();
  json.Set("method", Json::Str(v.method));
  json.Set("count", Json::Uint(v.count));
  json.Set("errors", Json::Uint(v.errors));
  json.Set("deadline_exceeded", Json::Uint(v.deadline_exceeded));
  json.Set("total_ms", Json::Double(v.total_ms));
  json.Set("latency_buckets", ListToJson(v.latency_buckets, [](uint64_t n) {
    return Json::Uint(n);
  }));
  return json;
}

MethodStatsDto MethodStatsDtoFromJson(const Json& json) {
  MethodStatsDto v;
  v.method = StringField(json, "method");
  v.count = UintField(json, "count");
  v.errors = UintField(json, "errors");
  v.deadline_exceeded = UintField(json, "deadline_exceeded");
  v.total_ms = DoubleField(json, "total_ms");
  v.latency_buckets = ListFromJson<uint64_t>(
      json.Find("latency_buckets"), [](const Json& n) { return n.AsUint(); });
  return v;
}

Json ToJson(const StatzRequest&) { return Json::Object(); }

StatzRequest StatzRequestFromJson(const Json&) { return StatzRequest{}; }

Json ToJson(const StatzResponse& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  json.Set("epoch", Json::Uint(v.epoch));
  json.Set("sessions", Json::Uint(v.sessions));
  json.Set("sessions_created", Json::Uint(v.sessions_created));
  json.Set("sessions_evicted", Json::Uint(v.sessions_evicted));
  json.Set("uptime_ms", Json::Double(v.uptime_ms));
  json.Set("bucket_bounds_ms", ListToJson(v.bucket_bounds_ms, [](double b) {
    return Json::Double(b);
  }));
  json.Set("methods", ListToJson(v.methods, [](const MethodStatsDto& m) {
    return ToJson(m);
  }));
  json.Set("cumulative", ToJson(v.cumulative));
  // Transport counters keep the source's pair order (an object would merge
  // duplicate names silently and lose it).
  Json transport = Json::Array();
  for (const auto& [name, value] : v.transport) {
    Json counter = Json::Object();
    counter.Set("name", Json::Str(name));
    counter.Set("value", Json::Uint(value));
    transport.Append(std::move(counter));
  }
  json.Set("transport", std::move(transport));
  return json;
}

StatzResponse StatzResponseFromJson(const Json& json) {
  StatzResponse v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  v.epoch = UintField(json, "epoch");
  v.sessions = UintField(json, "sessions");
  v.sessions_created = UintField(json, "sessions_created");
  v.sessions_evicted = UintField(json, "sessions_evicted");
  v.uptime_ms = DoubleField(json, "uptime_ms");
  v.bucket_bounds_ms = ListFromJson<double>(
      json.Find("bucket_bounds_ms"), [](const Json& b) { return b.AsDouble(); });
  v.methods = ListFromJson<MethodStatsDto>(json.Find("methods"),
                                           MethodStatsDtoFromJson);
  const Json* transport = json.Find("transport");
  if (transport != nullptr) {
    v.transport.reserve(transport->size());
    for (size_t i = 0; i < transport->size(); ++i) {
      const Json& counter = transport->at(i);
      v.transport.emplace_back(StringField(counter, "name"),
                               UintField(counter, "value"));
    }
  }
  const Json* cumulative = json.Find("cumulative");
  if (cumulative != nullptr) v.cumulative = StatsDtoFromJson(*cumulative);
  return v;
}

Json ToJson(const obs::SpanNode& v) {
  Json json = Json::Object();
  json.Set("name", Json::Str(v.name));
  json.Set("start_us", Json::Uint(v.start_us));
  json.Set("elapsed_us", Json::Uint(v.elapsed_us));
  if (v.unix_ms != 0) json.Set("unix_ms", Json::Uint(v.unix_ms));
  if (!v.counters.empty()) {
    // An array of name/value objects, not an object: keeps insertion order
    // explicit and survives hypothetical duplicate counter names.
    Json counters = Json::Array();
    for (const auto& [name, value] : v.counters) {
      Json counter = Json::Object();
      counter.Set("name", Json::Str(name));
      counter.Set("value", Json::Uint(value));
      counters.Append(std::move(counter));
    }
    json.Set("counters", std::move(counters));
  }
  if (!v.children.empty()) {
    json.Set("children", ListToJson(v.children, [](const obs::SpanNode& child) {
      return ToJson(child);
    }));
  }
  return json;
}

obs::SpanNode SpanNodeFromJson(const Json& json) {
  obs::SpanNode v;
  v.name = StringField(json, "name");
  v.start_us = UintField(json, "start_us");
  v.elapsed_us = UintField(json, "elapsed_us");
  v.unix_ms = UintField(json, "unix_ms");
  const Json* counters = json.Find("counters");
  if (counters != nullptr) {
    v.counters.reserve(counters->size());
    for (size_t i = 0; i < counters->size(); ++i) {
      const Json& counter = counters->at(i);
      v.counters.emplace_back(StringField(counter, "name"),
                              UintField(counter, "value"));
    }
  }
  v.children = ListFromJson<obs::SpanNode>(json.Find("children"),
                                           SpanNodeFromJson);
  return v;
}

Json ToJson(const obs::SlowLogEntry& v) {
  Json json = Json::Object();
  json.Set("seq", Json::Uint(v.seq));
  json.Set("unix_ms", Json::Uint(v.unix_ms));
  json.Set("method", Json::Str(v.method));
  json.Set("session_id", Json::Str(v.session_id));
  json.Set("detail", Json::Str(v.detail));
  json.Set("elapsed_ms", Json::Double(v.elapsed_ms));
  json.Set("threshold_ms", Json::Uint(v.threshold_ms));
  json.Set("status_code", Json::Str(v.status_code));
  json.Set("deadline_exceeded", Json::Bool(v.deadline_exceeded));
  json.Set("sampled", Json::Bool(v.sampled));
  if (!v.trace.name.empty()) json.Set("trace", ToJson(v.trace));
  return json;
}

obs::SlowLogEntry SlowLogEntryFromJson(const Json& json) {
  obs::SlowLogEntry v;
  v.seq = UintField(json, "seq");
  v.unix_ms = UintField(json, "unix_ms");
  v.method = StringField(json, "method");
  v.session_id = StringField(json, "session_id");
  v.detail = StringField(json, "detail");
  v.elapsed_ms = DoubleField(json, "elapsed_ms");
  v.threshold_ms = UintField(json, "threshold_ms");
  v.status_code = StringField(json, "status_code");
  v.deadline_exceeded = BoolField(json, "deadline_exceeded");
  v.sampled = BoolField(json, "sampled");
  const Json* trace = json.Find("trace");
  if (trace != nullptr) v.trace = SpanNodeFromJson(*trace);
  return v;
}

Json ToJson(const MetriczRequest&) { return Json::Object(); }

MetriczRequest MetriczRequestFromJson(const Json&) { return MetriczRequest{}; }

Json ToJson(const MetriczResponse& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  json.Set("text", Json::Str(v.text));
  return json;
}

MetriczResponse MetriczResponseFromJson(const Json& json) {
  MetriczResponse v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  v.text = StringField(json, "text");
  return v;
}

Json ToJson(const SlowlogRequest& v) {
  Json json = Json::Object();
  json.Set("limit", Json::Uint(v.limit));
  return json;
}

SlowlogRequest SlowlogRequestFromJson(const Json& json) {
  SlowlogRequest v;
  v.limit = UintField(json, "limit");
  return v;
}

Json ToJson(const SlowlogResponse& v) {
  Json json = Json::Object();
  json.Set("status", ToJson(v.status));
  json.Set("total_logged", Json::Uint(v.total_logged));
  json.Set("entries", ListToJson(v.entries, [](const obs::SlowLogEntry& e) {
    return ToJson(e);
  }));
  return json;
}

SlowlogResponse SlowlogResponseFromJson(const Json& json) {
  SlowlogResponse v;
  const Json* status = json.Find("status");
  if (status != nullptr) v.status = WireStatusFromJson(*status);
  v.total_logged = UintField(json, "total_logged");
  v.entries = ListFromJson<obs::SlowLogEntry>(json.Find("entries"),
                                              SlowLogEntryFromJson);
  return v;
}

// --- String-level wrappers ----------------------------------------------

#define SEDA_API_STRING_CODEC(Type)                                         \
  std::string Encode(const Type& v) { return ToJson(v).Write(); }           \
  Result<Type> Decode##Type(const std::string& json) {                      \
    return DecodeObject<Type>(json, #Type, [](const Json& parsed) {         \
      return Type##FromJson(parsed);                                        \
    });                                                                     \
  }

SEDA_API_STRING_CODEC(WireStatus)
SEDA_API_STRING_CODEC(StatsDto)
SEDA_API_STRING_CODEC(NodeRefDto)
SEDA_API_STRING_CODEC(TupleDto)
SEDA_API_STRING_CODEC(ContextEntryDto)
SEDA_API_STRING_CODEC(ContextBucketDto)
SEDA_API_STRING_CODEC(ConnectionStepDto)
SEDA_API_STRING_CODEC(ConnectionDto)
SEDA_API_STRING_CODEC(CreateSessionRequest)
SEDA_API_STRING_CODEC(CreateSessionResponse)
SEDA_API_STRING_CODEC(CloseSessionRequest)
SEDA_API_STRING_CODEC(CloseSessionResponse)
SEDA_API_STRING_CODEC(SearchRequest)
SEDA_API_STRING_CODEC(SearchResponseDto)
SEDA_API_STRING_CODEC(RefineRequest)
SEDA_API_STRING_CODEC(CompleteRequest)
SEDA_API_STRING_CODEC(CompleteResponseDto)
SEDA_API_STRING_CODEC(CubeRequest)
SEDA_API_STRING_CODEC(TableDto)
SEDA_API_STRING_CODEC(CellDto)
SEDA_API_STRING_CODEC(CubeResponseDto)
SEDA_API_STRING_CODEC(MethodStatsDto)
SEDA_API_STRING_CODEC(StatzRequest)
SEDA_API_STRING_CODEC(StatzResponse)
SEDA_API_STRING_CODEC(MetriczRequest)
SEDA_API_STRING_CODEC(MetriczResponse)
SEDA_API_STRING_CODEC(SlowlogRequest)
SEDA_API_STRING_CODEC(SlowlogResponse)

#undef SEDA_API_STRING_CODEC

}  // namespace seda::api
