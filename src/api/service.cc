#include "api/service.h"

#include <algorithm>

#include "api/wire.h"

namespace seda::api {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Layers a request's overrides (top-k, deadline), the service's serving
/// mode (shard count) and the request's trace over the snapshot's configured
/// engine options.
topk::TopKOptions RequestTopKOptions(const core::Snapshot& snapshot, uint64_t k,
                                     uint64_t deadline_ms, size_t shards,
                                     obs::TraceSpan* trace) {
  topk::TopKOptions options = snapshot.options().topk;
  if (k > 0) options.k = static_cast<size_t>(k);
  options.deadline_ms = deadline_ms;
  options.shard_count = shards > 1 ? shards : 0;
  options.trace = trace;
  return options;
}

/// statz latency histogram bounds (upper bound per bucket, ms); one overflow
/// bucket rides at the end, so there are kLatencyBucketCount+1 counters.
constexpr double kLatencyBoundsMs[] = {0.25, 0.5,  1,    2,    5,    10,
                                       25,   50,   100,  250,  500,  1000,
                                       2500, 5000, 10000};
constexpr size_t kLatencyBucketCount =
    sizeof(kLatencyBoundsMs) / sizeof(*kLatencyBoundsMs);

const char* MethodName(size_t method) {
  static constexpr const char* kNames[] = {
      "create_session", "close_session", "search",  "refine", "complete",
      "cube",           "statz",         "metricz", "slowlog"};
  return kNames[method];
}

/// Cumulative engine counters (seda_engine_*_total), in StatsDto field
/// order — FinishRequest and Statz walk this table so a new counter only
/// needs one row here plus its StatsDto field.
struct EngineCounterSpec {
  const char* name;
  const char* help;
};
constexpr EngineCounterSpec kEngineCounters[] = {
    {"seda_engine_candidates_total", "Candidate nodes produced by term lookups."},
    {"seda_engine_docs_considered_total", "Documents entering the TA scan."},
    {"seda_engine_docs_scored_total", "Documents fully scored by the TA scan."},
    {"seda_engine_tuples_scored_total", "Term-node tuples scored."},
    {"seda_engine_postings_advanced_total", "Posting cursor advances."},
    {"seda_engine_docs_skipped_total", "Documents pruned before scoring."},
    {"seda_engine_heap_evictions_total", "Top-k heap evictions."},
    {"seda_engine_hub_links_skipped_total", "Hub links skipped while scoring."},
    {"seda_engine_tuples_trimmed_total", "Tuples trimmed by per-doc budgets."},
    {"seda_engine_bfs_expansions_total", "Connection-scoring BFS expansions."},
    {"seda_engine_intersection_probes_total",
     "Adjacency intersection probes (graph kernels)."},
    {"seda_engine_sketch_hits_total", "2-hop sketch hits (graph kernels)."},
    {"seda_engine_column_rows_scanned_total",
     "Columnar row lookups during cube extraction."},
    {"seda_engine_column_fallback_docs_total",
     "Cube result tuples extracted via the tree-walk fallback."},
};
constexpr size_t kEngineCounterCount =
    sizeof(kEngineCounters) / sizeof(*kEngineCounters);

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

StatsDto MakeStats(const topk::SearchStats& stats, double elapsed_ms,
                   uint64_t deadline_ms) {
  StatsDto dto;
  dto.epoch = stats.epoch;
  dto.elapsed_ms = elapsed_ms;
  dto.deadline_ms = deadline_ms;
  dto.deadline_exceeded = stats.deadline_exceeded;
  dto.candidates_total = stats.candidates_total;
  dto.docs_considered = stats.docs_considered;
  dto.docs_scored = stats.docs_scored;
  dto.tuples_scored = stats.tuples_scored;
  dto.early_terminated = stats.early_terminated;
  dto.postings_advanced = stats.postings_advanced;
  dto.docs_skipped = stats.docs_skipped;
  dto.heap_evictions = stats.heap_evictions;
  dto.hub_links_skipped = stats.hub_links_skipped;
  dto.tuples_trimmed = stats.tuples_trimmed;
  dto.bfs_expansions = stats.bfs_expansions;
  dto.intersection_probes = stats.intersection_probes;
  dto.sketch_hits = stats.sketch_hits;
  dto.column_rows_scanned = stats.column_rows_scanned;
  dto.column_fallback_docs = stats.column_fallback_docs;
  return dto;
}

/// Service-side stats for requests that have no engine scan (complete/cube):
/// epoch + elapsed + after-the-fact deadline overrun flag.
StatsDto MakeServiceStats(uint64_t epoch, double elapsed_ms,
                          uint64_t deadline_ms) {
  StatsDto dto;
  dto.epoch = epoch;
  dto.elapsed_ms = elapsed_ms;
  dto.deadline_ms = deadline_ms;
  dto.deadline_exceeded =
      deadline_ms > 0 && elapsed_ms >= static_cast<double>(deadline_ms);
  return dto;
}

NodeRefDto MakeNodeRef(const store::NodeId& node, store::PathId path,
                       const store::DocumentStore& store, bool with_content) {
  NodeRefDto dto;
  dto.doc = node.doc;
  dto.dewey = node.dewey.ToString();
  if (path != store::kInvalidPathId) dto.path = store.paths().PathString(path);
  if (with_content) dto.content = store.GetContent(node);
  return dto;
}

const char* MoveName(dataguide::Connection::Move move) {
  switch (move) {
    case dataguide::Connection::Move::kUp: return "up";
    case dataguide::Connection::Move::kDown: return "down";
    case dataguide::Connection::Move::kLink: return "link";
  }
  return "up";
}

/// Projects a core::SearchResponse onto the wire DTO: nodes become stable
/// (doc, Dewey, path) references, connection entries keep their summary
/// order — their position IS the connection index Complete refers to.
SearchResponseDto MakeSearchResponse(const core::SearchResponse& response,
                                     const store::DocumentStore& store) {
  SearchResponseDto dto;
  dto.topk.reserve(response.topk.size());
  for (const topk::ScoredTuple& tuple : response.topk) {
    TupleDto tuple_dto;
    tuple_dto.nodes.reserve(tuple.nodes.size());
    for (const text::NodeMatch& match : tuple.nodes) {
      tuple_dto.nodes.push_back(
          MakeNodeRef(match.node, match.path, store, /*with_content=*/true));
    }
    tuple_dto.content_score = tuple.content_score;
    tuple_dto.connection_size = tuple.connection_size;
    tuple_dto.score = tuple.score;
    dto.topk.push_back(std::move(tuple_dto));
  }
  dto.contexts.reserve(response.contexts.buckets.size());
  for (const summary::ContextBucket& bucket : response.contexts.buckets) {
    ContextBucketDto bucket_dto;
    bucket_dto.term = bucket.term_text;
    bucket_dto.entries.reserve(bucket.entries.size());
    for (const summary::ContextEntry& entry : bucket.entries) {
      ContextEntryDto entry_dto;
      entry_dto.path = entry.path_text;
      entry_dto.doc_count = entry.doc_count;
      entry_dto.node_count = entry.node_count;
      bucket_dto.entries.push_back(std::move(entry_dto));
    }
    dto.contexts.push_back(std::move(bucket_dto));
  }
  dto.connections.reserve(response.connections.entries.size());
  for (const summary::ConnectionEntry& entry : response.connections.entries) {
    ConnectionDto conn;
    conn.term_a = entry.term_a;
    conn.term_b = entry.term_b;
    conn.from_path = entry.connection.from_path;
    conn.to_path = entry.connection.to_path;
    conn.steps.reserve(entry.connection.steps.size());
    for (const dataguide::Connection::Step& step : entry.connection.steps) {
      ConnectionStepDto step_dto;
      step_dto.move = MoveName(step.move);
      step_dto.path = step.path;
      step_dto.label = step.label;
      conn.steps.push_back(std::move(step_dto));
    }
    conn.instance_count = entry.instance_count;
    conn.false_positive = entry.false_positive;
    dto.connections.push_back(std::move(conn));
  }
  return dto;
}

TableDto MakeTable(const cube::Table& table) {
  TableDto dto;
  dto.name = table.name;
  dto.columns = table.columns;
  dto.key_columns.reserve(table.key_columns.size());
  for (size_t column : table.key_columns) dto.key_columns.push_back(column);
  dto.rows = table.rows;
  return dto;
}

Result<olap::AggFn> ParseAggFn(const std::string& name) {
  if (name == "sum") return olap::AggFn::kSum;
  if (name == "count") return olap::AggFn::kCount;
  if (name == "avg") return olap::AggFn::kAvg;
  if (name == "min") return olap::AggFn::kMin;
  if (name == "max") return olap::AggFn::kMax;
  return Status::InvalidArgument("unknown agg_fn '" + name +
                                 "'; expected sum|count|avg|min|max");
}

}  // namespace

SedaService::SedaService(const core::Seda* seda, ServiceOptions options)
    : seda_(seda), options_(std::move(options)), slowlog_(options_.slowlog) {
  const std::vector<double> bounds(kLatencyBoundsMs,
                                   kLatencyBoundsMs + kLatencyBucketCount);
  for (size_t method = 0; method < kMethodCount; ++method) {
    const obs::LabelSet labels = {{"method", MethodName(method)}};
    MethodSeries& series = method_series_[method];
    series.count = registry_.AddCounter(
        "seda_requests_total", "Requests handled, by envelope method.", labels);
    series.errors = registry_.AddCounter(
        "seda_request_errors_total",
        "Requests that returned a non-OK status.", labels);
    series.deadline_exceeded = registry_.AddCounter(
        "seda_request_deadline_exceeded_total",
        "Responses flagged as partial by a deadline overrun.", labels);
    series.latency_ms = registry_.AddHistogram(
        "seda_request_latency_ms",
        "Request wall-clock latency in milliseconds.", bounds, labels);
    slow_threshold_ms_[method] =
        options_.slowlog.ThresholdFor(MethodName(method));
  }
  engine_counters_.reserve(kEngineCounterCount);
  for (const EngineCounterSpec& spec : kEngineCounters) {
    engine_counters_.push_back(registry_.AddCounter(spec.name, spec.help));
  }
  registry_.AddGauge("seda_sessions", "Live (non-evicted) sessions.", {},
                     [this] { return static_cast<double>(SessionCount()); });
  registry_.AddCallbackCounter("seda_sessions_created_total",
                               "Sessions ever created.", {}, [this] {
                                 std::lock_guard<std::mutex> lock(registry_mu_);
                                 return sessions_created_;
                               });
  registry_.AddCallbackCounter(
      "seda_sessions_evicted_total",
      "Sessions evicted by TTL expiry or LRU pressure.", {}, [this] {
        std::lock_guard<std::mutex> lock(registry_mu_);
        return sessions_evicted_;
      });
  registry_.AddGauge("seda_epoch", "Currently served snapshot epoch.", {},
                     [this] {
                       const auto snapshot = seda_->snapshot();
                       return snapshot != nullptr
                                  ? static_cast<double>(snapshot->epoch())
                                  : 0.0;
                     });
  registry_.AddGauge("seda_uptime_ms",
                     "Milliseconds since service construction.", {},
                     [this] { return ElapsedMs(start_time_); });
  registry_.AddCallbackCounter(
      "seda_slowlog_entries_total",
      "Requests ever captured by the slow-query log.", {},
      [this] { return slowlog_.TotalLogged(); });
}

size_t SedaService::SessionCount() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return sessions_.size();
}

void SedaService::SweepExpiredLocked(Clock::time_point now) {
  last_sweep_ = now;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const SessionEntry& entry = *it->second;
    if (entry.ttl_ms > 0 &&
        now - entry.last_used >= std::chrono::milliseconds(entry.ttl_ms)) {
      it = sessions_.erase(it);  // in-flight requests keep the shared_ptr
      ++sessions_evicted_;
    } else {
      ++it;
    }
  }
}

void SedaService::EvictLruForInsertLocked() {
  while (options_.max_sessions > 0 && sessions_.size() >= options_.max_sessions) {
    auto oldest = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second->last_used < oldest->second->last_used) oldest = it;
    }
    sessions_.erase(oldest);
    ++sessions_evicted_;
  }
}

CreateSessionResponse SedaService::DoCreateSession(
    const CreateSessionRequest& request) {
  CreateSessionResponse response;
  auto session = seda_->NewSession();
  if (!session.ok()) {
    response.status = WireStatus::FromStatus(session.status());
    return response;
  }
  const Clock::time_point now = Clock::now();

  std::lock_guard<std::mutex> lock(registry_mu_);
  // Expired sessions are fair game for any request (that is the TTL
  // contract), but the duplicate-id check must come BEFORE any LRU
  // eviction: a create that fails with AlreadyExists must not have cost a
  // live session its slot — least of all the very session it collided with.
  SweepExpiredLocked(now);
  std::string id = request.session_id;
  if (id.empty()) {
    do {
      id = "s" + std::to_string(next_session_number_++);
    } while (sessions_.count(id) > 0);
  } else if (sessions_.count(id) > 0) {
    response.status = WireStatus::FromStatus(
        Status::AlreadyExists("session '" + id + "' already exists"));
    return response;
  }
  EvictLruForInsertLocked();
  auto entry =
      std::make_shared<SessionEntry>(id, std::move(session).value());
  entry->ttl_ms = request.ttl_ms > 0 ? request.ttl_ms : options_.session_ttl_ms;
  entry->last_used = now;
  response.epoch = entry->session.epoch();
  sessions_.emplace(id, std::move(entry));
  ++sessions_created_;
  response.session_id = std::move(id);
  return response;
}

CloseSessionResponse SedaService::DoCloseSession(
    const CloseSessionRequest& request) {
  CloseSessionResponse response;
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (sessions_.erase(request.session_id) == 0) {
    response.status = WireStatus::FromStatus(Status::NotFound(
        "unknown or expired session '" + request.session_id + "'"));
  }
  return response;
}

Result<std::shared_ptr<SedaService::SessionEntry>> SedaService::FindSession(
    const std::string& id) {
  if (id.empty()) {
    return Status::InvalidArgument(
        "this request is stateful and requires a session_id; call "
        "create_session first");
  }
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(registry_mu_);
  // Periodic full sweep so idle-expired sessions release their pinned
  // epochs even when no CreateSession ever runs again; rate-limited to keep
  // the lookup hot path O(1).
  if (now - last_sweep_ >= std::chrono::seconds(1)) SweepExpiredLocked(now);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown or expired session '" + id + "'");
  }
  SessionEntry& entry = *it->second;
  if (entry.ttl_ms > 0 &&
      now - entry.last_used >= std::chrono::milliseconds(entry.ttl_ms)) {
    sessions_.erase(it);
    ++sessions_evicted_;
    return Status::NotFound("session '" + id + "' expired");
  }
  entry.last_used = now;
  return it->second;
}

SearchResponseDto SedaService::DoSearch(const SearchRequest& request,
                                        obs::TraceSpan* root) {
  const Clock::time_point start = Clock::now();
  const uint64_t deadline_ms = EffectiveDeadline(request.deadline_ms);
  SearchResponseDto response;

  // One-shot path: an empty session id pins the current epoch for exactly
  // this request, like the deprecated Seda::Search shim but over the wire
  // schema.
  if (request.session_id.empty()) {
    auto session = seda_->NewSession();
    if (!session.ok()) {
      response.status = WireStatus::FromStatus(session.status());
      return response;
    }
    auto result = session->Search(
        request.query,
        RequestTopKOptions(session->snapshot(), request.k, deadline_ms,
                           options_.topk_shards, root));
    if (!result.ok()) {
      response.status = WireStatus::FromStatus(result.status());
      return response;
    }
    response = MakeSearchResponse(result.value(), session->snapshot().store());
    response.stats =
        MakeStats(result.value().stats, ElapsedMs(start), deadline_ms);
    return response;
  }

  auto entry = FindSession(request.session_id);
  if (!entry.ok()) {
    response.status = WireStatus::FromStatus(entry.status());
    return response;
  }
  SessionEntry& state = *entry.value();
  std::lock_guard<std::mutex> lock(state.mu);
  auto result = state.session.Search(
      request.query,
      RequestTopKOptions(state.session.snapshot(), request.k, deadline_ms,
                         options_.topk_shards, root));
  if (!result.ok()) {
    response.status = WireStatus::FromStatus(result.status());
    return response;
  }
  state.last_complete.reset();  // new query round invalidates the old R(q)
  response = MakeSearchResponse(result.value(), state.session.snapshot().store());
  response.stats = MakeStats(result.value().stats, ElapsedMs(start), deadline_ms);
  return response;
}

SearchResponseDto SedaService::DoRefine(const RefineRequest& request,
                                        obs::TraceSpan* root) {
  const Clock::time_point start = Clock::now();
  const uint64_t deadline_ms = EffectiveDeadline(request.deadline_ms);
  SearchResponseDto response;
  auto entry = FindSession(request.session_id);
  if (!entry.ok()) {
    response.status = WireStatus::FromStatus(entry.status());
    return response;
  }
  SessionEntry& state = *entry.value();
  std::lock_guard<std::mutex> lock(state.mu);
  auto result = state.session.RefineContexts(
      request.chosen_paths,
      RequestTopKOptions(state.session.snapshot(), request.k, deadline_ms,
                         options_.topk_shards, root));
  if (!result.ok()) {
    response.status = WireStatus::FromStatus(result.status());
    return response;
  }
  state.last_complete.reset();
  response = MakeSearchResponse(result.value(), state.session.snapshot().store());
  response.stats = MakeStats(result.value().stats, ElapsedMs(start), deadline_ms);
  return response;
}

CompleteResponseDto SedaService::DoComplete(const CompleteRequest& request,
                                            obs::TraceSpan* root) {
  const Clock::time_point start = Clock::now();
  const uint64_t deadline_ms = EffectiveDeadline(request.deadline_ms);
  CompleteResponseDto response;
  auto entry = FindSession(request.session_id);
  if (!entry.ok()) {
    response.status = WireStatus::FromStatus(entry.status());
    return response;
  }
  SessionEntry& state = *entry.value();
  std::lock_guard<std::mutex> lock(state.mu);

  // Resolve connection indices against the session's last search round —
  // the wire format references connections by their position in that
  // response's connection list.
  std::vector<twig::ChosenConnection> connections;
  connections.reserve(request.connections.size());
  const core::SearchResponse* last = state.session.last_response();
  for (uint64_t index : request.connections) {
    if (last == nullptr) {
      response.status = WireStatus::FromStatus(Status::FailedPrecondition(
          "connection indices refer to the last search response, but this "
          "session has not searched yet"));
      return response;
    }
    if (index >= last->connections.entries.size()) {
      response.status = WireStatus::FromStatus(Status::OutOfRange(
          "connection index " + std::to_string(index) +
          " out of range: the last search response has " +
          std::to_string(last->connections.entries.size()) + " connection(s)"));
      return response;
    }
    const summary::ConnectionEntry& chosen = last->connections.entries[index];
    auto executable = twig::ChosenConnection::FromDataguideConnection(
        chosen.term_a, chosen.term_b, chosen.connection);
    if (!executable.ok()) {
      response.status = WireStatus::FromStatus(executable.status());
      return response;
    }
    connections.push_back(std::move(executable).value());
  }

  twig::ExecuteOptions exec_options;
  exec_options.deadline_ms = deadline_ms;
  exec_options.trace = root;
  auto result = state.session.CompleteResults(request.term_paths, connections,
                                              exec_options);
  if (!result.ok()) {
    response.status = WireStatus::FromStatus(result.status());
    return response;
  }
  const store::DocumentStore& store = state.session.snapshot().store();
  response.tuples.reserve(result.value().tuples.size());
  for (const twig::ResultTuple& tuple : result.value().tuples) {
    std::vector<NodeRefDto> row;
    row.reserve(tuple.nodes.size());
    for (size_t i = 0; i < tuple.nodes.size(); ++i) {
      row.push_back(MakeNodeRef(tuple.nodes[i], tuple.paths[i], store,
                                /*with_content=*/false));
    }
    response.tuples.push_back(std::move(row));
  }
  response.twig_count = result.value().twig_count;
  response.cross_twig_joins = result.value().cross_twig_joins;
  const bool engine_deadline = result.value().deadline_exceeded;
  state.last_complete = std::move(result).value();
  response.stats = MakeServiceStats(state.session.epoch(), ElapsedMs(start),
                                    deadline_ms);
  // The cooperative in-join check may fire before the after-the-fact
  // elapsed-time comparison does; either signal means truncation.
  response.stats.deadline_exceeded |= engine_deadline;
  return response;
}

CubeResponseDto SedaService::DoCube(const CubeRequest& request,
                                    obs::TraceSpan* root) {
  const Clock::time_point start = Clock::now();
  const uint64_t deadline_ms = EffectiveDeadline(request.deadline_ms);
  CubeResponseDto response;
  auto entry = FindSession(request.session_id);
  if (!entry.ok()) {
    response.status = WireStatus::FromStatus(entry.status());
    return response;
  }
  SessionEntry& state = *entry.value();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.last_complete.has_value()) {
    response.status = WireStatus::FromStatus(Status::FailedPrecondition(
        "no complete result in this session; call complete before cube"));
    return response;
  }

  cube::CubeBuilder::Options options;
  options.trace = root;
  options.add_facts = request.add_facts;
  options.remove_facts = request.remove_facts;
  options.add_dimensions = request.add_dimensions;
  options.remove_dimensions = request.remove_dimensions;
  options.merge_fact_tables = request.merge_fact_tables;
  auto schema = state.session.BuildCube(*state.last_complete, options);
  if (!schema.ok()) {
    response.status = WireStatus::FromStatus(schema.status());
    return response;
  }
  for (const cube::Table& table : schema.value().fact_tables) {
    response.fact_tables.push_back(MakeTable(table));
  }
  for (const cube::Table& table : schema.value().dimension_tables) {
    response.dimension_tables.push_back(MakeTable(table));
  }
  response.warnings = schema.value().warnings;

  if (!request.measure.empty()) {
    auto agg_fn = ParseAggFn(request.agg_fn);
    if (!agg_fn.ok()) {
      response.status = WireStatus::FromStatus(agg_fn.status());
      return response;
    }
    auto cube = state.session.ToOlapCube(schema.value());
    if (!cube.ok()) {
      response.status = WireStatus::FromStatus(cube.status());
      return response;
    }
    auto cuboid =
        cube.value().Aggregate(request.group_dims, agg_fn.value(), request.measure);
    if (!cuboid.ok()) {
      response.status = WireStatus::FromStatus(cuboid.status());
      return response;
    }
    response.cells.reserve(cuboid.value().cells.size());
    for (const olap::Cell& cell : cuboid.value().cells) {
      CellDto dto;
      dto.group = cell.group;
      dto.value = cell.value;
      dto.count = cell.count;
      response.cells.push_back(std::move(dto));
    }
    response.cell_total = cuboid.value().Total();
  }
  response.stats = MakeServiceStats(state.session.epoch(), ElapsedMs(start),
                                    deadline_ms);
  response.stats.column_rows_scanned = schema.value().column_rows_scanned;
  response.stats.column_fallback_docs = schema.value().column_fallback_docs;
  return response;
}

// --- Tracing + metric-recording wrappers -------------------------------

obs::Trace SedaService::StartTrace(Method method) const {
  return options_.tracing ? obs::Trace(MethodName(method)) : obs::Trace();
}

void SedaService::FinishRequest(Method method, double elapsed_ms,
                                const WireStatus& status, const StatsDto* stats,
                                obs::Trace trace, bool trace_requested,
                                obs::SpanNode* trace_out,
                                const std::string& session_id,
                                const std::string& detail) {
  // Request accounting: every update is a relaxed atomic on a series
  // registered at construction — no lock, no contention across methods.
  MethodSeries& series = method_series_[method];
  series.count->Inc();
  if (!status.ok()) series.errors->Inc();
  series.latency_ms->Observe(elapsed_ms);
  if (stats != nullptr) {
    if (stats->deadline_exceeded) series.deadline_exceeded->Inc();
    const uint64_t values[kEngineCounterCount] = {
        stats->candidates_total, stats->docs_considered,
        stats->docs_scored,      stats->tuples_scored,
        stats->postings_advanced, stats->docs_skipped,
        stats->heap_evictions,   stats->hub_links_skipped,
        stats->tuples_trimmed,   stats->bfs_expansions,
        stats->intersection_probes, stats->sketch_hits,
        stats->column_rows_scanned, stats->column_fallback_docs};
    for (size_t i = 0; i < kEngineCounterCount; ++i) {
      if (values[i] > 0) engine_counters_[i]->Inc(values[i]);
    }
  }

  // Keep the trace? Ship it back when the envelope asked; retain it in the
  // slow log when the method's threshold fired or the sampling knob picked
  // this request. The common case (none of the three) detaches nothing.
  const uint64_t threshold_ms = slow_threshold_ms_[method];
  const bool slow =
      threshold_ms > 0 && elapsed_ms >= static_cast<double>(threshold_ms);
  bool sampled = false;
  if (options_.trace_sample_every_n > 0) {
    const uint64_t n =
        sample_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    sampled = n % options_.trace_sample_every_n == 0;
  }
  if (!trace_requested && !slow && !sampled) return;
  obs::SpanNode tree = trace.Detach();
  if (trace_requested && trace_out != nullptr) *trace_out = tree;
  if (!slow && !sampled) return;
  obs::SlowLogEntry entry;
  entry.unix_ms = NowUnixMs();
  entry.method = MethodName(method);
  entry.session_id = session_id;
  entry.detail = detail;
  entry.elapsed_ms = elapsed_ms;
  entry.threshold_ms = threshold_ms;
  entry.status_code = status.code;
  entry.deadline_exceeded = stats != nullptr && stats->deadline_exceeded;
  entry.sampled = sampled && !slow;
  entry.trace = std::move(tree);
  slowlog_.Add(std::move(entry));
}

CreateSessionResponse SedaService::CreateSession(
    const CreateSessionRequest& request) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kCreateSession);
  CreateSessionResponse response = DoCreateSession(request);
  FinishRequest(kCreateSession, ElapsedMs(start), response.status, nullptr,
                std::move(trace), /*trace_requested=*/false, nullptr,
                request.session_id, /*detail=*/"");
  return response;
}

CloseSessionResponse SedaService::CloseSession(
    const CloseSessionRequest& request) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kCloseSession);
  CloseSessionResponse response = DoCloseSession(request);
  FinishRequest(kCloseSession, ElapsedMs(start), response.status, nullptr,
                std::move(trace), /*trace_requested=*/false, nullptr,
                request.session_id, /*detail=*/"");
  return response;
}

SearchResponseDto SedaService::Search(const SearchRequest& request) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kSearch);
  SearchResponseDto response = DoSearch(request, trace.root());
  FinishRequest(kSearch, ElapsedMs(start), response.status, &response.stats,
                std::move(trace), request.trace, &response.trace,
                request.session_id, request.query);
  return response;
}

SearchResponseDto SedaService::Refine(const RefineRequest& request) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kRefine);
  SearchResponseDto response = DoRefine(request, trace.root());
  FinishRequest(kRefine, ElapsedMs(start), response.status, &response.stats,
                std::move(trace), request.trace, &response.trace,
                request.session_id,
                std::to_string(request.chosen_paths.size()) +
                    " context pick list(s)");
  return response;
}

CompleteResponseDto SedaService::Complete(const CompleteRequest& request) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kComplete);
  CompleteResponseDto response = DoComplete(request, trace.root());
  std::string detail;
  for (const std::string& path : request.term_paths) {
    if (!detail.empty()) detail += ", ";
    detail += path;
  }
  FinishRequest(kComplete, ElapsedMs(start), response.status, &response.stats,
                std::move(trace), request.trace, &response.trace,
                request.session_id, detail);
  return response;
}

CubeResponseDto SedaService::Cube(const CubeRequest& request) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kCube);
  CubeResponseDto response = DoCube(request, trace.root());
  FinishRequest(kCube, ElapsedMs(start), response.status, &response.stats,
                std::move(trace), request.trace, &response.trace,
                request.session_id,
                request.measure.empty() ? std::string("star schema")
                                        : request.agg_fn + "(" +
                                              request.measure + ")");
  return response;
}

StatzResponse SedaService::Statz(const StatzRequest&) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kStatz);
  StatzResponse response;
  const std::shared_ptr<const core::Snapshot> snapshot = seda_->snapshot();
  response.epoch = snapshot != nullptr ? snapshot->epoch() : 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    response.sessions = sessions_.size();
    response.sessions_created = sessions_created_;
    response.sessions_evicted = sessions_evicted_;
  }
  response.uptime_ms = ElapsedMs(start_time_);
  response.bucket_bounds_ms.assign(kLatencyBoundsMs,
                                   kLatencyBoundsMs + kLatencyBucketCount);
  // The statz JSON is a projection of the metrics registry: the same series
  // the Prometheus exposition renders, so the two surfaces cannot disagree.
  response.methods.reserve(kMethodCount);
  for (size_t method = 0; method < kMethodCount; ++method) {
    const MethodSeries& series = method_series_[method];
    MethodStatsDto dto;
    dto.method = MethodName(method);
    dto.count = series.count->Value();
    dto.errors = series.errors->Value();
    dto.deadline_exceeded = series.deadline_exceeded->Value();
    dto.total_ms = series.latency_ms->Sum();
    dto.latency_buckets.reserve(series.latency_ms->BucketCount());
    for (size_t i = 0; i < series.latency_ms->BucketCount(); ++i) {
      dto.latency_buckets.push_back(series.latency_ms->BinCount(i));
    }
    response.methods.push_back(std::move(dto));
  }
  StatsDto& cumulative = response.cumulative;
  uint64_t* fields[kEngineCounterCount] = {
      &cumulative.candidates_total, &cumulative.docs_considered,
      &cumulative.docs_scored,      &cumulative.tuples_scored,
      &cumulative.postings_advanced, &cumulative.docs_skipped,
      &cumulative.heap_evictions,   &cumulative.hub_links_skipped,
      &cumulative.tuples_trimmed,   &cumulative.bfs_expansions,
      &cumulative.intersection_probes, &cumulative.sketch_hits,
      &cumulative.column_rows_scanned, &cumulative.column_fallback_docs};
  for (size_t i = 0; i < kEngineCounterCount; ++i) {
    *fields[i] = engine_counters_[i]->Value();
  }
  if (transport_statz_) response.transport = transport_statz_();
  FinishRequest(kStatz, ElapsedMs(start), response.status, nullptr,
                std::move(trace), /*trace_requested=*/false, nullptr,
                /*session_id=*/"", /*detail=*/"");
  return response;
}

MetriczResponse SedaService::Metricz(const MetriczRequest&) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kMetricz);
  MetriczResponse response;
  response.text = registry_.RenderText();
  FinishRequest(kMetricz, ElapsedMs(start), response.status, nullptr,
                std::move(trace), /*trace_requested=*/false, nullptr,
                /*session_id=*/"", /*detail=*/"");
  return response;
}

SlowlogResponse SedaService::Slowlog(const SlowlogRequest& request) {
  const Clock::time_point start = Clock::now();
  obs::Trace trace = StartTrace(kSlowlog);
  SlowlogResponse response;
  response.total_logged = slowlog_.TotalLogged();
  response.entries = slowlog_.Entries(request.limit);
  FinishRequest(kSlowlog, ElapsedMs(start), response.status, nullptr,
                std::move(trace), /*trace_requested=*/false, nullptr,
                /*session_id=*/"", /*detail=*/"");
  return response;
}

std::string SedaService::Handle(const std::string& request_json) {
  auto envelope = Json::Parse(request_json);
  auto envelope_error = [](const Status& status) {
    Json json = Json::Object();
    json.Set("status", ToJson(WireStatus::FromStatus(status)));
    return json.Write();
  };
  if (!envelope.ok()) return envelope_error(envelope.status());
  if (envelope.value().kind() != Json::Kind::kObject) {
    return envelope_error(
        Status::InvalidArgument("request envelope must be a JSON object"));
  }
  const Json& json = envelope.value();
  const std::string method = json.Find("method") != nullptr
                                 ? json.Find("method")->AsString()
                                 : std::string();
  if (method == "create_session") {
    return ToJson(CreateSession(CreateSessionRequestFromJson(json))).Write();
  }
  if (method == "close_session") {
    return ToJson(CloseSession(CloseSessionRequestFromJson(json))).Write();
  }
  if (method == "search") {
    return ToJson(Search(SearchRequestFromJson(json))).Write();
  }
  if (method == "refine") {
    return ToJson(Refine(RefineRequestFromJson(json))).Write();
  }
  if (method == "complete") {
    return ToJson(Complete(CompleteRequestFromJson(json))).Write();
  }
  if (method == "cube") {
    return ToJson(Cube(CubeRequestFromJson(json))).Write();
  }
  if (method == "statz") {
    return ToJson(Statz(StatzRequest{})).Write();
  }
  if (method == "metricz") {
    return ToJson(Metricz(MetriczRequest{})).Write();
  }
  if (method == "slowlog") {
    return ToJson(Slowlog(SlowlogRequestFromJson(json))).Write();
  }
  return envelope_error(Status::InvalidArgument(
      "unknown method '" + method +
      "'; expected "
      "create_session|close_session|search|refine|complete|cube|statz|"
      "metricz|slowlog"));
}

}  // namespace seda::api
