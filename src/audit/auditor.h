#ifndef SEDA_AUDIT_AUDITOR_H_
#define SEDA_AUDIT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "column/column_store.h"
#include "dataguide/dataguide.h"
#include "graph/data_graph.h"
#include "persist/reader.h"
#include "store/document_store.h"
#include "text/inverted_index.h"

namespace seda::audit {

/// One violated invariant. `invariant` is a stable dotted name
/// ("store.child_numbering", "graph.adjacency_symmetry", ...) tests match on;
/// `detail` pins the violation to a concrete node/term/section.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// Result of an audit walk. Violations are capped per invariant name (the
/// first few concrete witnesses are enough to debug; a corrupted posting list
/// would otherwise report once per posting) — `suppressed` counts the rest,
/// so ok() stays exact either way.
struct AuditReport {
  std::vector<Violation> violations;
  uint64_t checks_run = 0;
  uint64_t suppressed = 0;

  bool ok() const { return violations.empty() && suppressed == 0; }

  /// Records a violation under the per-invariant cap.
  void Add(const std::string& invariant, const std::string& detail);

  /// True iff some recorded violation names this invariant.
  bool Has(const std::string& invariant) const;

  /// Merges `other` into this report (cap re-applied per invariant).
  void Merge(const AuditReport& other);

  /// Human-readable rendering for the seda_audit CLI: one line per
  /// violation plus a summary line.
  std::string ToString() const;
};

/// Walks one epoch's component structures and verifies the cross-layer
/// invariants the engine's hot paths assume but never re-check:
///
///   store.*      Dewey preorder numbering, parent pointers, node lookup,
///                path-dictionary statistics, per-document path sets.
///   index.*      posting-list order/bounds/path agreement, document
///                frequencies, max-tf, path postings, path->nodes table.
///   graph.*      edge-log index bounds, forward/backward adjacency
///                symmetry, endpoint resolution; CSR kernel arrays
///                (graph.csr_offsets: numbering + row-for-row agreement
///                with the legacy walk, graph.csr_symmetry: sorted-row
///                symmetry + sketch bitmaps vs exact 2-hop recomputation).
///   dataguide.*  sorted guide paths, exactly-once member coverage, guide
///                path sets covering their members' documents.
///   column.*     columnar projections vs a tree-walk recompute
///                (column.values: every decoded row value equals its node's
///                content and every column is ordered/leaf-pure;
///                column.coverage: the row index covers each qualifying
///                document's occurrences exactly once, bitmap included).
///   image.*      persisted-image section table sanity and agreement between
///                section headers and the decoded structures.
///
/// The auditor only reads through public APIs, so a passing audit means the
/// structures agree as seen by the engine itself. It is debug/test tooling:
/// O(collection) walks, not meant for the serving path.
class SnapshotAuditor {
 public:
  SnapshotAuditor(const store::DocumentStore* store,
                  const text::InvertedIndex* index,
                  const graph::DataGraph* graph,
                  const dataguide::DataguideCollection* guides,
                  const column::ColumnStore* columns = nullptr)
      : store_(store),
        index_(index),
        graph_(graph),
        guides_(guides),
        columns_(columns) {}

  /// Runs every component audit below (not AuditImage, which needs the
  /// image the epoch was loaded from).
  AuditReport AuditAll() const;

  void AuditStore(AuditReport* report) const;
  void AuditIndex(AuditReport* report) const;
  void AuditGraph(AuditReport* report) const;
  void AuditDataguides(AuditReport* report) const;
  /// No-op when the auditor was built without a column store.
  void AuditColumns(AuditReport* report) const;

  /// Verifies the persisted image agrees with the structures decoded from
  /// it: known/unique section ids, 64-byte alignment, in-file bounds, and
  /// the leading counts of each section matching the in-memory sizes.
  /// `expected_epoch` is the epoch of the snapshot loaded from this image.
  void AuditImage(const persist::MappedImage& image, uint64_t expected_epoch,
                  AuditReport* report) const;

 private:
  const store::DocumentStore* store_;
  const text::InvertedIndex* index_;
  const graph::DataGraph* graph_;
  const dataguide::DataguideCollection* guides_;
  const column::ColumnStore* columns_;
};

}  // namespace seda::audit

#endif  // SEDA_AUDIT_AUDITOR_H_
