#include "audit/auditor.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "graph/csr.h"
#include "persist/format.h"
#include "xml/document.h"

namespace seda::audit {
namespace {

/// Witnesses kept per invariant name; the rest only bump `suppressed`.
constexpr size_t kMaxWitnesses = 8;

std::string NodeRef(const store::NodeId& id) { return id.ToString(); }

/// Independent tree-walk recompute of the columnar projections: collects, for
/// every path that has a materialized column, the document's leaf occurrences
/// in preorder (== per-document Dewey order, the column's row order). A
/// column-path node that is not a leaf breaks the leaf-purity qualification
/// and is reported directly.
void WalkForColumns(
    const column::ColumnStore& columns, const xml::Node* node,
    store::DocId doc, std::string* path,
    std::unordered_map<const column::Column*, std::vector<const xml::Node*>>*
        hits,
    AuditReport* report) {
  const size_t base = path->size();
  path->push_back('/');
  if (node->kind() == xml::NodeKind::kAttribute) path->push_back('@');
  path->append(node->name());

  bool leaf = true;
  for (const auto& child : node->children()) {
    if (child->kind() != xml::NodeKind::kText) {
      leaf = false;
      break;
    }
  }
  if (const column::Column* col = columns.Find(*path); col != nullptr) {
    ++report->checks_run;
    if (leaf) {
      (*hits)[col].push_back(node);
    } else {
      report->Add("column.coverage",
                  "column " + *path + " has a non-leaf occurrence at node " +
                      node->dewey().ToString() + " of document " +
                      std::to_string(doc));
    }
  }
  if (!leaf) {
    for (const auto& child : node->children()) {
      if (child->kind() != xml::NodeKind::kText) {
        WalkForColumns(columns, child.get(), doc, path, hits, report);
      }
    }
  }
  path->resize(base);
}

}  // namespace

void AuditReport::Add(const std::string& invariant, const std::string& detail) {
  size_t count = 0;
  for (const Violation& v : violations) {
    if (v.invariant == invariant) ++count;
  }
  if (count >= kMaxWitnesses) {
    ++suppressed;
    return;
  }
  violations.push_back({invariant, detail});
}

bool AuditReport::Has(const std::string& invariant) const {
  for (const Violation& v : violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

void AuditReport::Merge(const AuditReport& other) {
  for (const Violation& v : other.violations) Add(v.invariant, v.detail);
  checks_run += other.checks_run;
  suppressed += other.suppressed;
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  for (const Violation& v : violations) {
    out << "VIOLATION " << v.invariant << ": " << v.detail << "\n";
  }
  if (suppressed > 0) {
    out << "(+" << suppressed << " further violations suppressed)\n";
  }
  out << (ok() ? "audit OK" : "audit FAILED") << " — " << checks_run
      << " checks, " << (violations.size() + suppressed) << " violations\n";
  return out.str();
}

AuditReport SnapshotAuditor::AuditAll() const {
  AuditReport report;
  AuditStore(&report);
  AuditIndex(&report);
  AuditGraph(&report);
  AuditDataguides(&report);
  AuditColumns(&report);
  return report;
}

void SnapshotAuditor::AuditStore(AuditReport* report) const {
  const store::PathDictionary& dict = store_->paths();
  // Recounted-from-scratch statistics, compared against the dictionary after
  // the walk. Indexed by PathId.
  std::vector<uint64_t> node_counts(dict.size(), 0);
  std::vector<uint64_t> doc_counts(dict.size(), 0);
  uint64_t total_nodes = 0;

  for (store::DocId d = 0; d < store_->DocumentCount(); ++d) {
    const xml::Document& doc = store_->document(d);
    xml::Node* root = doc.root();
    ++report->checks_run;
    if (root == nullptr) {
      report->Add("store.root_missing",
                  "document " + std::to_string(d) + " has no root");
      continue;
    }
    ++report->checks_run;
    if (root->dewey() != xml::DeweyId({1})) {
      report->Add("store.root_dewey", "document " + std::to_string(d) +
                                          " root carries Dewey '" +
                                          root->dewey().ToString() + "'");
    }
    ++report->checks_run;
    if (root->parent() != nullptr) {
      report->Add("store.parent_pointer",
                  "document " + std::to_string(d) + " root has a parent");
    }

    // Distinct element/attribute paths seen in this document, for the
    // path-set cross-check and the dictionary doc counts.
    std::unordered_set<store::PathId> doc_paths;

    doc.ForEachNode([&](xml::Node* node) {
      ++total_nodes;
      const store::NodeId id{d, node->dewey()};

      // Child numbering: the i-th child (1-based, all kinds) extends the
      // parent's Dewey with component i.
      const auto& children = node->children();
      for (size_t i = 0; i < children.size(); ++i) {
        ++report->checks_run;
        if (children[i]->dewey() !=
            node->dewey().Child(static_cast<uint32_t>(i + 1))) {
          report->Add("store.child_numbering",
                      NodeRef(id) + " child " + std::to_string(i + 1) +
                          " carries Dewey '" + children[i]->dewey().ToString() +
                          "'");
        }
        ++report->checks_run;
        if (children[i]->parent() != node) {
          report->Add("store.parent_pointer",
                      NodeRef(id) + " child " + std::to_string(i + 1) +
                          " does not point back to its parent");
        }
      }

      // Every node must be reachable through the engine's lookup path.
      ++report->checks_run;
      if (store_->GetNode(id) != node) {
        report->Add("store.node_lookup",
                    NodeRef(id) + " does not resolve to itself via GetNode");
      }

      // Text nodes share their parent's path and are not interned.
      if (node->kind() == xml::NodeKind::kText) return;
      const std::string context = node->ContextPath();
      const store::PathId pid = dict.Find(context);
      ++report->checks_run;
      if (pid == store::kInvalidPathId || pid >= dict.size()) {
        report->Add("store.path_interned",
                    NodeRef(id) + " path '" + context + "' is not interned");
        return;
      }
      ++node_counts[pid];
      doc_paths.insert(pid);
    });

    for (store::PathId pid : doc_paths) ++doc_counts[pid];

    // The recorded per-document path set must be exactly the distinct paths
    // walked above, sorted strictly ascending and in dictionary bounds.
    const std::vector<store::PathId>& recorded = store_->DocumentPathSet(d);
    for (size_t i = 0; i < recorded.size(); ++i) {
      ++report->checks_run;
      if (recorded[i] >= dict.size()) {
        report->Add("store.doc_path_set_bounds",
                    "document " + std::to_string(d) + " path set entry " +
                        std::to_string(recorded[i]) + " out of bounds");
      }
      ++report->checks_run;
      if (i > 0 && recorded[i] <= recorded[i - 1]) {
        report->Add("store.doc_path_set_sorted",
                    "document " + std::to_string(d) +
                        " path set not strictly ascending at entry " +
                        std::to_string(i));
      }
    }
    ++report->checks_run;
    if (recorded.size() != doc_paths.size() ||
        !std::all_of(recorded.begin(), recorded.end(),
                     [&](store::PathId p) { return doc_paths.count(p) > 0; })) {
      report->Add("store.doc_path_set_exact",
                  "document " + std::to_string(d) + " path set records " +
                      std::to_string(recorded.size()) + " paths, walk found " +
                      std::to_string(doc_paths.size()));
    }
  }

  ++report->checks_run;
  if (total_nodes != store_->TotalNodeCount()) {
    report->Add("store.total_nodes",
                "store reports " + std::to_string(store_->TotalNodeCount()) +
                    " nodes, walk found " + std::to_string(total_nodes));
  }

  for (store::PathId pid = 0; pid < dict.size(); ++pid) {
    ++report->checks_run;
    if (dict.NodeCount(pid) != node_counts[pid]) {
      report->Add("store.path_node_count",
                  "path '" + dict.PathString(pid) + "' records " +
                      std::to_string(dict.NodeCount(pid)) +
                      " nodes, walk found " + std::to_string(node_counts[pid]));
    }
    ++report->checks_run;
    if (dict.DocCount(pid) != doc_counts[pid]) {
      report->Add("store.path_doc_count",
                  "path '" + dict.PathString(pid) + "' records " +
                      std::to_string(dict.DocCount(pid)) +
                      " documents, walk found " +
                      std::to_string(doc_counts[pid]));
    }
    // The by-last-tag secondary index must route back to the path.
    std::vector<store::PathId> tagged = dict.PathsWithLastTag(dict.LastTag(pid));
    ++report->checks_run;
    if (std::find(tagged.begin(), tagged.end(), pid) == tagged.end()) {
      report->Add("store.last_tag_index",
                  "path '" + dict.PathString(pid) +
                      "' missing from its last-tag bucket '" +
                      dict.LastTag(pid) + "'");
    }
  }
}

void SnapshotAuditor::AuditIndex(AuditReport* report) const {
  const store::PathDictionary& dict = store_->paths();

  uint64_t elem_attr_nodes = 0;
  store_->ForEachNode([&](const store::NodeId&, xml::Node* node) {
    if (node->kind() != xml::NodeKind::kText) ++elem_attr_nodes;
  });
  ++report->checks_run;
  if (index_->IndexedNodeCount() != elem_attr_nodes) {
    report->Add("index.indexed_nodes",
                "index reports " + std::to_string(index_->IndexedNodeCount()) +
                    " nodes, store holds " + std::to_string(elem_attr_nodes) +
                    " element/attribute nodes");
  }

  for (const std::string& term : index_->AllTerms()) {
    const std::vector<text::NodePosting>& postings = index_->Postings(term);
    std::unordered_set<store::DocId> posting_docs;
    uint32_t max_tf = 0;
    for (size_t i = 0; i < postings.size(); ++i) {
      const text::NodePosting& p = postings[i];
      ++report->checks_run;
      if (i > 0 && !(postings[i - 1].node < p.node)) {
        report->Add("index.posting_order",
                    "term '" + term + "' postings not strictly ascending at " +
                        NodeRef(p.node));
      }
      xml::Node* node = store_->GetNode(p.node);
      ++report->checks_run;
      if (node == nullptr) {
        report->Add("index.posting_bounds", "term '" + term + "' posting " +
                                                NodeRef(p.node) +
                                                " does not resolve");
        continue;
      }
      auto pid = store_->GetPathId(p.node);
      ++report->checks_run;
      if (!pid.ok() || *pid != p.path) {
        report->Add("index.posting_path",
                    "term '" + term + "' posting " + NodeRef(p.node) +
                        " carries path " + std::to_string(p.path) +
                        ", store says " +
                        (pid.ok() ? std::to_string(*pid) : "<unresolved>"));
      }
      for (size_t j = 1; j < p.positions.size(); ++j) {
        ++report->checks_run;
        if (p.positions[j] <= p.positions[j - 1]) {
          report->Add("index.positions_sorted",
                      "term '" + term + "' posting " + NodeRef(p.node) +
                          " positions not strictly ascending");
          break;
        }
      }
      posting_docs.insert(p.node.doc);
      max_tf = std::max(max_tf, static_cast<uint32_t>(p.positions.size()));
    }

    ++report->checks_run;
    if (index_->DocumentFrequency(term) != posting_docs.size()) {
      report->Add("index.doc_frequency",
                  "term '" + term + "' records document frequency " +
                      std::to_string(index_->DocumentFrequency(term)) +
                      ", postings span " + std::to_string(posting_docs.size()) +
                      " documents");
    }
    ++report->checks_run;
    if (index_->MaxTermFrequency(term) != max_tf) {
      report->Add("index.max_tf",
                  "term '" + term + "' records max tf " +
                      std::to_string(index_->MaxTermFrequency(term)) +
                      ", postings max out at " + std::to_string(max_tf));
    }

    const std::vector<store::PathId>& paths = index_->TermPaths(term);
    for (size_t i = 0; i < paths.size(); ++i) {
      ++report->checks_run;
      if (paths[i] >= dict.size()) {
        report->Add("index.term_path_bounds",
                    "term '" + term + "' path entry " +
                        std::to_string(paths[i]) + " out of bounds");
        continue;
      }
      ++report->checks_run;
      if (i > 0 && paths[i] <= paths[i - 1]) {
        report->Add("index.term_paths_sorted",
                    "term '" + term + "' path postings not strictly "
                    "ascending at entry " + std::to_string(i));
      }
      ++report->checks_run;
      if (index_->TermPathCount(term, paths[i]) == 0) {
        report->Add("index.path_count_positive",
                    "term '" + term + "' lists path '" +
                        dict.PathString(paths[i]) + "' with occurrence count 0");
      }
    }
  }

  // The path -> nodes table must mirror the dictionary's node counts and
  // hold document-ordered nodes that actually carry the path.
  for (store::PathId pid = 0; pid < dict.size(); ++pid) {
    const std::vector<store::NodeId>& nodes = index_->NodesWithPath(pid);
    ++report->checks_run;
    if (nodes.size() != dict.NodeCount(pid)) {
      report->Add("index.nodes_by_path_count",
                  "path '" + dict.PathString(pid) + "' node table holds " +
                      std::to_string(nodes.size()) + " entries, dictionary "
                      "records " + std::to_string(dict.NodeCount(pid)));
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
      ++report->checks_run;
      if (i > 0 && !(nodes[i - 1] < nodes[i])) {
        report->Add("index.nodes_by_path_order",
                    "path '" + dict.PathString(pid) +
                        "' node table not strictly ascending at " +
                        NodeRef(nodes[i]));
      }
      auto node_pid = store_->GetPathId(nodes[i]);
      ++report->checks_run;
      if (!node_pid.ok() || *node_pid != pid) {
        report->Add("index.nodes_by_path_path",
                    "path '" + dict.PathString(pid) + "' node table entry " +
                        NodeRef(nodes[i]) + " does not carry the path");
      }
    }
  }
}

void SnapshotAuditor::AuditGraph(AuditReport* report) const {
  const std::vector<graph::Edge>& edges = graph_->edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    ++report->checks_run;
    if (store_->GetNode(edges[e].from) == nullptr ||
        store_->GetNode(edges[e].to) == nullptr) {
      report->Add("graph.edge_endpoints",
                  "edge " + std::to_string(e) + " (" + NodeRef(edges[e].from) +
                      " -> " + NodeRef(edges[e].to) + ") has an unresolvable "
                      "endpoint");
    }
  }

  // Every logged edge must appear exactly once in the forward lists under
  // its source and exactly once in the backward lists under its target.
  std::vector<uint32_t> out_seen(edges.size(), 0);
  std::vector<uint32_t> in_seen(edges.size(), 0);
  graph_->ForEachAdjacency(
      [&](const store::NodeId& node, bool is_out, uint32_t e) {
        ++report->checks_run;
        if (e >= edges.size()) {
          report->Add("graph.adjacency_bounds",
                      std::string(is_out ? "out" : "in") + " list of " +
                          NodeRef(node) + " holds edge index " +
                          std::to_string(e) + " beyond the log");
          return;
        }
        const store::NodeId& expected = is_out ? edges[e].from : edges[e].to;
        ++report->checks_run;
        if (!(expected == node)) {
          report->Add("graph.adjacency_direction",
                      std::string(is_out ? "out" : "in") + " list of " +
                          NodeRef(node) + " holds edge " + std::to_string(e) +
                          " whose " + (is_out ? "source" : "target") + " is " +
                          NodeRef(expected));
        }
        ++(is_out ? out_seen : in_seen)[e];
      });
  for (size_t e = 0; e < edges.size(); ++e) {
    ++report->checks_run;
    if (out_seen[e] != 1 || in_seen[e] != 1) {
      report->Add("graph.adjacency_symmetry",
                  "edge " + std::to_string(e) + " appears " +
                      std::to_string(out_seen[e]) + "x forward / " +
                      std::to_string(in_seen[e]) + "x backward (want 1/1)");
    }
  }

  // CSR kernel layer (graph/csr.h), when built: the arrays must agree
  // entry-for-entry with the store and the hash-map adjacency they mirror —
  // a stale Csr (edges added after BuildCsr) or a tampered image section
  // would silently change distance answers otherwise.
  const graph::Csr* csr = graph_->csr();
  if (csr == nullptr) return;

  // graph.csr_offsets: vertex numbering covers exactly the non-text nodes,
  // each legacy-order row replays the ForEachNeighbor walk, and the O(1)
  // degrees match the hash-map counts.
  uint64_t non_text = 0;
  store_->ForEachNode([&](const store::NodeId&, xml::Node* node) {
    if (node->kind() != xml::NodeKind::kText) ++non_text;
  });
  ++report->checks_run;
  if (csr->num_vertices() != non_text) {
    report->Add("graph.csr_offsets",
                "csr numbers " + std::to_string(csr->num_vertices()) +
                    " vertices, store holds " + std::to_string(non_text) +
                    " non-text nodes");
  }
  ++report->checks_run;
  if (csr->edge_count() != edges.size()) {
    report->Add("graph.csr_offsets",
                "csr built over " + std::to_string(csr->edge_count()) +
                    " edges, log holds " + std::to_string(edges.size()));
  }
  const uint32_t v_count = csr->num_vertices();
  for (uint32_t v = 0; v < v_count; ++v) {
    const store::NodeId id = csr->NodeIdOf(v);
    const uint32_t* it = csr->RowBegin(v);
    const uint32_t* end = csr->RowEnd(v);
    bool row_ok = true;
    graph_->ForEachNeighbor(id, [&](const store::NodeId& next) {
      auto u = csr->VertexOf(next);
      if (it == end || !u.has_value() || *it != *u) {
        row_ok = false;
        return false;
      }
      ++it;
      return true;
    });
    if (it != end) row_ok = false;
    ++report->checks_run;
    if (!row_ok) {
      report->Add("graph.csr_offsets",
                  "csr row of " + NodeRef(id) +
                      " disagrees with the ForEachNeighbor walk");
    }
    ++report->checks_run;
    if (csr->NonTreeDegreeOf(v) != graph_->Degree(id)) {
      report->Add("graph.csr_offsets",
                  "csr non-tree degree of " + NodeRef(id) + " is " +
                      std::to_string(csr->NonTreeDegreeOf(v)) +
                      ", adjacency maps hold " +
                      std::to_string(graph_->Degree(id)));
    }
  }

  // graph.csr_symmetry: sorted rows strictly ascend and are symmetric
  // (u in sorted(v) <=> v in sorted(u)) — what the intersection kernels
  // assume; and each hub sketch equals an exact 2-hop recomputation.
  for (uint32_t v = 0; v < v_count; ++v) {
    const uint32_t* begin = csr->SortedRowBegin(v);
    const uint32_t* end = csr->SortedRowEnd(v);
    for (const uint32_t* it = begin; it != end; ++it) {
      ++report->checks_run;
      if (it != begin && *(it - 1) >= *it) {
        report->Add("graph.csr_symmetry",
                    "sorted row of vertex " + std::to_string(v) +
                        " is not strictly ascending");
        break;
      }
      if (!std::binary_search(csr->SortedRowBegin(*it), csr->SortedRowEnd(*it),
                              v)) {
        report->Add("graph.csr_symmetry",
                    "vertex " + std::to_string(v) + " lists neighbor " +
                        std::to_string(*it) + " which does not list it back");
      }
    }
  }
  std::vector<uint32_t> frontier;
  std::vector<uint32_t> next_frontier;
  std::vector<bool> within_two(v_count, false);
  for (size_t i = 0; i < csr->SketchCount(); ++i) {
    const uint32_t hub = csr->SketchHub(i);
    std::fill(within_two.begin(), within_two.end(), false);
    within_two[hub] = true;
    frontier.assign(1, hub);
    for (int depth = 0; depth < 2; ++depth) {
      next_frontier.clear();
      for (uint32_t v : frontier) {
        for (const uint32_t* it = csr->RowBegin(v); it != csr->RowEnd(v);
             ++it) {
          if (!within_two[*it]) {
            within_two[*it] = true;
            next_frontier.push_back(*it);
          }
        }
      }
      frontier.swap(next_frontier);
    }
    for (uint32_t v = 0; v < v_count; ++v) {
      ++report->checks_run;
      if (csr->SketchCovers(static_cast<int>(i), v) != within_two[v]) {
        report->Add("graph.csr_symmetry",
                    "sketch of hub vertex " + std::to_string(hub) +
                        " disagrees with a 2-hop BFS at vertex " +
                        std::to_string(v));
      }
    }
  }
}

void SnapshotAuditor::AuditDataguides(AuditReport* report) const {
  const store::PathDictionary& dict = store_->paths();
  const std::vector<dataguide::Dataguide>& guides = guides_->guides();

  // How many guides list each document as a member; every stored document
  // must end up with exactly one.
  std::unordered_map<store::DocId, size_t> member_of;

  for (size_t g = 0; g < guides.size(); ++g) {
    const std::vector<store::PathId>& paths = guides[g].paths();
    for (size_t i = 0; i < paths.size(); ++i) {
      ++report->checks_run;
      if (paths[i] >= dict.size()) {
        report->Add("dataguide.path_bounds",
                    "guide " + std::to_string(g) + " path entry " +
                        std::to_string(paths[i]) + " out of bounds");
      }
      ++report->checks_run;
      if (i > 0 && paths[i] <= paths[i - 1]) {
        report->Add("dataguide.paths_sorted",
                    "guide " + std::to_string(g) +
                        " paths not strictly ascending at entry " +
                        std::to_string(i));
      }
    }

    for (store::DocId doc : guides[g].members()) {
      ++member_of[doc];
      ++report->checks_run;
      if (doc >= store_->DocumentCount()) {
        report->Add("dataguide.member_bounds",
                    "guide " + std::to_string(g) + " lists document " +
                        std::to_string(doc) + " beyond the store");
        continue;
      }
      auto mapped = guides_->FindGuideOfDoc(doc);
      ++report->checks_run;
      if (!mapped.has_value() || *mapped != g) {
        report->Add("dataguide.member_mapping",
                    "document " + std::to_string(doc) + " is a member of "
                    "guide " + std::to_string(g) + " but maps to " +
                        (mapped ? std::to_string(*mapped) : "<none>"));
      }
      // A guide summarizes its members: every member path is a guide path.
      ++report->checks_run;
      if (!guides[g].Contains(store_->DocumentPathSet(doc))) {
        report->Add("dataguide.member_paths",
                    "guide " + std::to_string(g) + " does not cover the "
                    "path set of member document " + std::to_string(doc));
      }
    }
  }

  for (store::DocId d = 0; d < store_->DocumentCount(); ++d) {
    ++report->checks_run;
    auto it = member_of.find(d);
    if (it == member_of.end() || it->second != 1) {
      report->Add("dataguide.member_coverage",
                  "document " + std::to_string(d) + " is a member of " +
                      std::to_string(it == member_of.end() ? 0 : it->second) +
                      " guides (want exactly 1)");
    }
  }
}

void SnapshotAuditor::AuditColumns(AuditReport* report) const {
  if (columns_ == nullptr) return;

  const size_t doc_count = store_->DocumentCount();
  ++report->checks_run;
  if (columns_->doc_count() != doc_count) {
    report->Add("column.coverage",
                "column store covers " + std::to_string(columns_->doc_count()) +
                    " documents, store holds " + std::to_string(doc_count));
    return;  // Row-range indexing below would read out of bounds.
  }

  // column.values / column.coverage: every document's column rows must match
  // an independent tree-walk recompute node for node — same Dewey IDs, same
  // decoded content, exactly-once coverage, presence bit agreement.
  for (store::DocId d = 0; d < doc_count; ++d) {
    std::unordered_map<const column::Column*, std::vector<const xml::Node*>>
        hits;
    std::string path;
    if (const xml::Node* root = store_->document(d).root(); root != nullptr) {
      WalkForColumns(*columns_, root, d, &path, &hits, report);
    }
    for (const column::Column& col : columns_->columns()) {
      auto it = hits.find(&col);
      const std::vector<const xml::Node*>* nodes =
          it == hits.end() ? nullptr : &it->second;
      const size_t expected = nodes == nullptr ? 0 : nodes->size();
      const uint32_t begin = col.DocRowBegin(d);
      const uint32_t end = col.DocRowEnd(d);
      ++report->checks_run;
      if (end - begin != expected) {
        report->Add("column.coverage",
                    "column " + col.path() + " holds " +
                        std::to_string(end - begin) + " rows for document " +
                        std::to_string(d) + ", tree walk finds " +
                        std::to_string(expected));
        continue;
      }
      ++report->checks_run;
      if (col.DocPresent(d) != (expected > 0)) {
        report->Add("column.coverage",
                    "column " + col.path() + " presence bit disagrees with " +
                        std::to_string(expected) + " occurrences in document " +
                        std::to_string(d));
      }
      for (size_t i = 0; i < expected; ++i) {
        const xml::Node* node = (*nodes)[i];
        const uint32_t row = begin + static_cast<uint32_t>(i);
        const std::vector<uint32_t>& want = node->dewey().components();
        ++report->checks_run;
        if (want.size() != col.depth() ||
            !std::equal(want.begin(), want.end(), col.RowDewey(row))) {
          report->Add("column.coverage",
                      "column " + col.path() + " row " + std::to_string(row) +
                          " does not cover node " + node->dewey().ToString() +
                          " of document " + std::to_string(d));
          continue;
        }
        ++report->checks_run;
        if (col.RowValue(row) != node->ContentString()) {
          report->Add("column.values",
                      "column " + col.path() + " row " + std::to_string(row) +
                          " decodes '" + std::string(col.RowValue(row)) +
                          "', node " + node->dewey().ToString() +
                          " of document " + std::to_string(d) + " holds '" +
                          node->ContentString() + "'");
        }
      }
    }
  }

  // Per-column structure: declared support vs bitmap popcount, and a sorted,
  // duplicate-free dictionary (what makes code comparisons value comparisons).
  for (const column::Column& col : columns_->columns()) {
    uint64_t present_docs = 0;
    for (size_t d = 0; d < doc_count; ++d) {
      if (col.DocPresent(static_cast<store::DocId>(d))) ++present_docs;
    }
    ++report->checks_run;
    if (present_docs != col.docs_present()) {
      report->Add("column.coverage",
                  "column " + col.path() + " declares " +
                      std::to_string(col.docs_present()) +
                      " supporting documents, bitmap holds " +
                      std::to_string(present_docs));
    }
    for (uint32_t c = 1; c < col.dict_size(); ++c) {
      ++report->checks_run;
      if (col.DictValue(c - 1) >= col.DictValue(c)) {
        report->Add("column.values",
                    "column " + col.path() +
                        " dictionary is not strictly increasing at code " +
                        std::to_string(c));
        break;
      }
    }
  }
}

void SnapshotAuditor::AuditImage(const persist::MappedImage& image,
                                 uint64_t expected_epoch,
                                 AuditReport* report) const {
  using persist::SectionId;

  ++report->checks_run;
  if (image.epoch() != expected_epoch) {
    report->Add("image.epoch",
                "image carries epoch " + std::to_string(image.epoch()) +
                    ", snapshot is epoch " + std::to_string(expected_epoch));
  }

  std::unordered_set<uint32_t> seen_ids;
  for (const persist::SectionEntry& entry : image.sections()) {
    const char* name = persist::SectionName(static_cast<SectionId>(entry.id));
    ++report->checks_run;
    if (entry.id < static_cast<uint32_t>(SectionId::kOptions) ||
        entry.id > static_cast<uint32_t>(SectionId::kColumns)) {
      report->Add("image.section_id",
                  "unknown section id " + std::to_string(entry.id));
    }
    ++report->checks_run;
    if (!seen_ids.insert(entry.id).second) {
      report->Add("image.section_duplicate",
                  std::string("section '") + name + "' appears twice");
    }
    ++report->checks_run;
    if (entry.offset % persist::kSectionAlignment != 0) {
      report->Add("image.section_alignment",
                  std::string("section '") + name + "' starts at offset " +
                      std::to_string(entry.offset));
    }
    ++report->checks_run;
    if (entry.offset > image.file_size() ||
        entry.size > image.file_size() - entry.offset) {
      report->Add("image.section_bounds",
                  std::string("section '") + name + "' runs past the file");
    }
  }

  // Leading counts of each section must agree with the decoded structures.
  auto check_count = [&](SectionId id, const char* invariant, uint64_t actual,
                         uint64_t declared, bool decode_ok) {
    ++report->checks_run;
    if (!decode_ok) {
      report->Add(invariant, std::string("section '") +
                                 persist::SectionName(id) +
                                 "' header does not decode");
      return;
    }
    if (declared != actual) {
      report->Add(invariant,
                  std::string("section '") + persist::SectionName(id) +
                      "' declares " + std::to_string(declared) +
                      " entries, decoded structure holds " +
                      std::to_string(actual));
    }
  };

  if (auto cursor = persist::OpenSection(image, SectionId::kStorePaths);
      cursor.ok()) {
    uint64_t declared = cursor->GetU64();
    check_count(SectionId::kStorePaths, "image.store_paths_count",
                store_->paths().size(), declared, !cursor->failed());
  }
  if (auto cursor = persist::OpenSection(image, SectionId::kStoreDocs);
      cursor.ok()) {
    uint64_t declared_nodes = cursor->GetU64();
    uint64_t declared_docs = cursor->GetU64();
    check_count(SectionId::kStoreDocs, "image.store_total_nodes",
                store_->TotalNodeCount(), declared_nodes, !cursor->failed());
    check_count(SectionId::kStoreDocs, "image.store_doc_count",
                store_->DocumentCount(), declared_docs, !cursor->failed());
  }
  if (auto cursor = persist::OpenSection(image, SectionId::kGraphEdges);
      cursor.ok()) {
    uint32_t label_count = cursor->GetU32();
    for (uint32_t i = 0; i < label_count && !cursor->failed(); ++i) {
      cursor->GetString();
    }
    uint64_t declared_edges = cursor->GetU64();
    check_count(SectionId::kGraphEdges, "image.graph_edge_count",
                graph_->EdgeCount(), declared_edges, !cursor->failed());
  }
  if (auto cursor = persist::OpenSection(image, SectionId::kGraphCsr);
      cursor.ok() && graph_->csr() != nullptr) {
    uint32_t declared_vertices = cursor->GetU32();
    uint32_t declared_edges = cursor->GetU32();
    check_count(SectionId::kGraphCsr, "image.csr_vertex_count",
                graph_->csr()->num_vertices(), declared_vertices,
                !cursor->failed());
    check_count(SectionId::kGraphCsr, "image.csr_edge_count",
                graph_->EdgeCount(), declared_edges, !cursor->failed());
  }
  if (auto cursor = persist::OpenSection(image, SectionId::kDataguides);
      cursor.ok()) {
    uint64_t declared = cursor->GetU64();
    check_count(SectionId::kDataguides, "image.dataguide_count",
                guides_->size(), declared, !cursor->failed());
  }
  if (auto cursor = persist::OpenSection(image, SectionId::kColumns);
      cursor.ok() && columns_ != nullptr) {
    uint64_t declared_docs = cursor->GetU64();
    uint64_t declared_columns = cursor->GetU64();
    check_count(SectionId::kColumns, "image.column_doc_count",
                columns_->doc_count(), declared_docs, !cursor->failed());
    check_count(SectionId::kColumns, "image.column_count", columns_->size(),
                declared_columns, !cursor->failed());
  }
}

}  // namespace seda::audit
