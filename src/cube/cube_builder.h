#ifndef SEDA_CUBE_CUBE_BUILDER_H_
#define SEDA_CUBE_CUBE_BUILDER_H_

#include <string>
#include <vector>

#include "column/column_store.h"
#include "common/status.h"
#include "cube/catalog.h"
#include "obs/trace.h"
#include "twig/twig.h"

namespace seda::cube {

/// A relational table materialized from the XML result (fact or dimension).
struct Table {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  /// Indices of the key columns (for fact tables: the dimension columns).
  std::vector<size_t> key_columns;

  /// Renders an aligned, human-readable grid.
  std::string ToString() const;
};

/// Outcome of Step 1 (matching) for one result column.
struct ColumnMatch {
  size_t column = 0;
  std::vector<std::string> paths;        ///< distinct paths in the column
  std::string matched_name;              ///< fact/dimension name, empty if none
  bool is_fact = false;
  bool ignored = false;                  ///< no match and user defined nothing
  std::vector<std::string> partial_matches;  ///< names intersecting only partially
};

/// The derived star schema: one fact table per fact (merged when keys
/// coincide) plus one dimension table per dimension (paper Fig. 3c).
struct StarSchema {
  std::vector<Table> fact_tables;
  std::vector<Table> dimension_tables;
  std::vector<ColumnMatch> matches;
  std::vector<std::string> warnings;

  /// Columnar-scan observability (not part of ToString(), so response bytes
  /// stay identical with columns on or off): column row lookups performed,
  /// and result tuples whose extraction touched the tree walk.
  uint64_t column_rows_scanned = 0;
  uint64_t column_fallback_docs = 0;

  std::string ToString() const;
};

/// Builds fact and dimension tables from a complete query result via the
/// paper's three steps (§7): (1) match result columns against the catalog,
/// (2) augment with missing key columns (auto-adding dimensions such as
/// /country/year), and (3) extract values from the document store, pairing
/// key components through relative-key evaluation.
class CubeBuilder {
 public:
  /// `columns` (optional) enables the vectorized extraction path: key
  /// components and values resolve against the epoch's schema-inferred
  /// columns (src/column/) where one covers the path, falling back to the
  /// per-node tree walk elsewhere — byte-identical output either way.
  CubeBuilder(const store::DocumentStore* store, const Catalog* catalog,
              const column::ColumnStore* columns = nullptr)
      : store_(store), catalog_(catalog), columns_(columns) {}

  struct Options {
    /// Step 2 manual augmentation: extra facts/dimensions by name, and
    /// removals.
    std::vector<std::string> add_facts;
    std::vector<std::string> remove_facts;
    std::vector<std::string> add_dimensions;
    std::vector<std::string> remove_dimensions;
    /// Merge fact tables whose keys resolve to identical targets.
    bool merge_fact_tables = true;
    /// Per-request trace span (obs/trace.h): when non-null, Build opens
    /// child spans (cube_match / cube_augment / cube_extract) under it.
    /// Single-threaded, per-request, never persisted — see
    /// topk::TopKOptions::trace for the contract.
    obs::TraceSpan* trace = nullptr;
    /// Scan the columnar projections where possible (no effect on output
    /// bytes; false forces the tree walk everywhere — the bench baseline).
    bool use_columns = true;
  };

  Result<StarSchema> Build(const twig::CompleteResult& result,
                           const Options& options) const;
  Result<StarSchema> Build(const twig::CompleteResult& result) const {
    return Build(result, Options{});
  }

 private:
  const store::DocumentStore* store_;
  const Catalog* catalog_;
  const column::ColumnStore* columns_;
};

}  // namespace seda::cube

#endif  // SEDA_CUBE_CUBE_BUILDER_H_
