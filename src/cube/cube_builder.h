#ifndef SEDA_CUBE_CUBE_BUILDER_H_
#define SEDA_CUBE_CUBE_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cube/catalog.h"
#include "obs/trace.h"
#include "twig/twig.h"

namespace seda::cube {

/// A relational table materialized from the XML result (fact or dimension).
struct Table {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  /// Indices of the key columns (for fact tables: the dimension columns).
  std::vector<size_t> key_columns;

  /// Renders an aligned, human-readable grid.
  std::string ToString() const;
};

/// Outcome of Step 1 (matching) for one result column.
struct ColumnMatch {
  size_t column = 0;
  std::vector<std::string> paths;        ///< distinct paths in the column
  std::string matched_name;              ///< fact/dimension name, empty if none
  bool is_fact = false;
  bool ignored = false;                  ///< no match and user defined nothing
  std::vector<std::string> partial_matches;  ///< names intersecting only partially
};

/// The derived star schema: one fact table per fact (merged when keys
/// coincide) plus one dimension table per dimension (paper Fig. 3c).
struct StarSchema {
  std::vector<Table> fact_tables;
  std::vector<Table> dimension_tables;
  std::vector<ColumnMatch> matches;
  std::vector<std::string> warnings;

  std::string ToString() const;
};

/// Builds fact and dimension tables from a complete query result via the
/// paper's three steps (§7): (1) match result columns against the catalog,
/// (2) augment with missing key columns (auto-adding dimensions such as
/// /country/year), and (3) extract values from the document store, pairing
/// key components through relative-key evaluation.
class CubeBuilder {
 public:
  CubeBuilder(const store::DocumentStore* store, const Catalog* catalog)
      : store_(store), catalog_(catalog) {}

  struct Options {
    /// Step 2 manual augmentation: extra facts/dimensions by name, and
    /// removals.
    std::vector<std::string> add_facts;
    std::vector<std::string> remove_facts;
    std::vector<std::string> add_dimensions;
    std::vector<std::string> remove_dimensions;
    /// Merge fact tables whose keys resolve to identical targets.
    bool merge_fact_tables = true;
    /// Per-request trace span (obs/trace.h): when non-null, Build opens
    /// child spans (cube_match / cube_augment / cube_extract) under it.
    /// Single-threaded, per-request, never persisted — see
    /// topk::TopKOptions::trace for the contract.
    obs::TraceSpan* trace = nullptr;
  };

  Result<StarSchema> Build(const twig::CompleteResult& result,
                           const Options& options) const;
  Result<StarSchema> Build(const twig::CompleteResult& result) const {
    return Build(result, Options{});
  }

 private:
  const store::DocumentStore* store_;
  const Catalog* catalog_;
};

}  // namespace seda::cube

#endif  // SEDA_CUBE_CUBE_BUILDER_H_
