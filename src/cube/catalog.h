#ifndef SEDA_CUBE_CATALOG_H_
#define SEDA_CUBE_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/relative_key.h"

namespace seda::cube {

/// One (context, key) row of a fact's or dimension's ContextList. The
/// ContextList is a relation because the underlying collection is
/// heterogeneous: the paper's GDP fact is defined by both
/// /country/economy/GDP and /country/economy/GDP_ppp (schema evolution).
struct ContextBinding {
  std::string context;  ///< root-to-leaf path of the fact/dimension node
  RelativeKey key;
};

/// A fact or dimension known to the system: <name, ContextList>.
struct CatalogEntry {
  std::string name;
  bool is_fact = false;
  std::vector<ContextBinding> context_list;

  /// True iff every path in `paths` appears in this entry's context list —
  /// the paper's matching rule pi_cp(R) subseteq pi_context(ContextList).
  bool CoversAll(const std::vector<std::string>& paths) const;
  /// True iff at least one path appears (the partial-match warning case).
  bool CoversAny(const std::vector<std::string>& paths) const;
  /// The binding whose context equals `path`, if any.
  const ContextBinding* BindingFor(const std::string& path) const;
};

/// The sets F (facts) and D (dimensions) known to SEDA (§7). Initially
/// provided by an administrator; extended by users during query processing.
/// Entries contain only path metadata, never instance values.
class Catalog {
 public:
  /// Defines a fact; fails on duplicate names.
  Status DefineFact(const std::string& name,
                    std::vector<ContextBinding> context_list);
  /// Defines a dimension; fails on duplicate names.
  Status DefineDimension(const std::string& name,
                         std::vector<ContextBinding> context_list);

  /// User-facing definition path: verifies the key's uniqueness over the
  /// stored collection before accepting (paper §7 Step 1: "The system
  /// automatically verifies the keys ... checking their uniqueness").
  Status DefineFactChecked(const std::string& name,
                           std::vector<ContextBinding> context_list,
                           const store::DocumentStore& store);
  Status DefineDimensionChecked(const std::string& name,
                                std::vector<ContextBinding> context_list,
                                const store::DocumentStore& store);

  const std::vector<CatalogEntry>& facts() const { return facts_; }
  const std::vector<CatalogEntry>& dimensions() const { return dimensions_; }

  const CatalogEntry* FindFact(const std::string& name) const;
  const CatalogEntry* FindDimension(const std::string& name) const;

  /// Facts fully covering the path set (Step 1 complete matches).
  std::vector<const CatalogEntry*> MatchFacts(
      const std::vector<std::string>& paths) const;
  std::vector<const CatalogEntry*> MatchDimensions(
      const std::vector<std::string>& paths) const;

  /// Facts/dimensions intersecting but not covering (warning case).
  std::vector<const CatalogEntry*> PartialFacts(
      const std::vector<std::string>& paths) const;
  std::vector<const CatalogEntry*> PartialDimensions(
      const std::vector<std::string>& paths) const;

 private:
  Status Define(std::vector<CatalogEntry>* entries, const std::string& name,
                bool is_fact, std::vector<ContextBinding> context_list);

  std::vector<CatalogEntry> facts_;
  std::vector<CatalogEntry> dimensions_;
};

}  // namespace seda::cube

#endif  // SEDA_CUBE_CATALOG_H_
