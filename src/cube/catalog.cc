#include "cube/catalog.h"

#include <algorithm>

namespace seda::cube {

bool CatalogEntry::CoversAll(const std::vector<std::string>& paths) const {
  if (paths.empty()) return false;
  for (const std::string& path : paths) {
    if (BindingFor(path) == nullptr) return false;
  }
  return true;
}

bool CatalogEntry::CoversAny(const std::vector<std::string>& paths) const {
  for (const std::string& path : paths) {
    if (BindingFor(path) != nullptr) return true;
  }
  return false;
}

const ContextBinding* CatalogEntry::BindingFor(const std::string& path) const {
  for (const ContextBinding& binding : context_list) {
    if (binding.context == path) return &binding;
  }
  return nullptr;
}

Status Catalog::Define(std::vector<CatalogEntry>* entries, const std::string& name,
                       bool is_fact, std::vector<ContextBinding> context_list) {
  if (name.empty()) return Status::InvalidArgument("catalog entry needs a name");
  if (context_list.empty()) {
    return Status::InvalidArgument("catalog entry '" + name +
                                   "' needs at least one context");
  }
  if (FindFact(name) != nullptr || FindDimension(name) != nullptr) {
    return Status::AlreadyExists("catalog entry '" + name + "' already defined");
  }
  CatalogEntry entry;
  entry.name = name;
  entry.is_fact = is_fact;
  entry.context_list = std::move(context_list);
  entries->push_back(std::move(entry));
  return Status::OK();
}

Status Catalog::DefineFact(const std::string& name,
                           std::vector<ContextBinding> context_list) {
  return Define(&facts_, name, true, std::move(context_list));
}

Status Catalog::DefineDimension(const std::string& name,
                                std::vector<ContextBinding> context_list) {
  return Define(&dimensions_, name, false, std::move(context_list));
}

Status Catalog::DefineFactChecked(const std::string& name,
                                  std::vector<ContextBinding> context_list,
                                  const store::DocumentStore& store) {
  for (const ContextBinding& binding : context_list) {
    SEDA_RETURN_IF_ERROR(VerifyKeyUniqueness(store, binding.context, binding.key));
  }
  return DefineFact(name, std::move(context_list));
}

Status Catalog::DefineDimensionChecked(const std::string& name,
                                       std::vector<ContextBinding> context_list,
                                       const store::DocumentStore& store) {
  for (const ContextBinding& binding : context_list) {
    SEDA_RETURN_IF_ERROR(VerifyKeyUniqueness(store, binding.context, binding.key));
  }
  return DefineDimension(name, std::move(context_list));
}

const CatalogEntry* Catalog::FindFact(const std::string& name) const {
  for (const CatalogEntry& entry : facts_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const CatalogEntry* Catalog::FindDimension(const std::string& name) const {
  for (const CatalogEntry& entry : dimensions_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

namespace {
std::vector<const CatalogEntry*> Filter(const std::vector<CatalogEntry>& entries,
                                        const std::vector<std::string>& paths,
                                        bool full) {
  std::vector<const CatalogEntry*> out;
  for (const CatalogEntry& entry : entries) {
    if (full ? entry.CoversAll(paths)
             : (entry.CoversAny(paths) && !entry.CoversAll(paths))) {
      out.push_back(&entry);
    }
  }
  return out;
}
}  // namespace

std::vector<const CatalogEntry*> Catalog::MatchFacts(
    const std::vector<std::string>& paths) const {
  return Filter(facts_, paths, true);
}

std::vector<const CatalogEntry*> Catalog::MatchDimensions(
    const std::vector<std::string>& paths) const {
  return Filter(dimensions_, paths, true);
}

std::vector<const CatalogEntry*> Catalog::PartialFacts(
    const std::vector<std::string>& paths) const {
  return Filter(facts_, paths, false);
}

std::vector<const CatalogEntry*> Catalog::PartialDimensions(
    const std::vector<std::string>& paths) const {
  return Filter(dimensions_, paths, false);
}

}  // namespace seda::cube
