#include "cube/relative_key.h"

#include <map>
#include <set>

#include "common/strings.h"

namespace seda::cube {

KeyPath KeyPath::Of(const std::string& text) {
  KeyPath kp;
  kp.absolute = !text.empty() && text[0] == '/';
  kp.text = text;
  return kp;
}

RelativeKey RelativeKey::Parse(const std::vector<std::string>& paths) {
  std::vector<KeyPath> parsed;
  parsed.reserve(paths.size());
  for (const std::string& p : paths) parsed.push_back(KeyPath::Of(p));
  return RelativeKey(std::move(parsed));
}

namespace {

/// Evaluates an absolute path inside the document of `node`: the document
/// must contain exactly one node with that context path.
Result<std::string> EvaluateAbsolute(const store::DocumentStore& store,
                                     store::DocId doc, const std::string& path) {
  const xml::Document& document = store.document(doc);
  xml::Node* found = nullptr;
  bool duplicate = false;
  document.ForEachNode([&](xml::Node* n) {
    if (n->kind() == xml::NodeKind::kText || duplicate) return;
    if (n->ContextPath() == path) {
      if (found != nullptr) {
        duplicate = true;
      } else {
        found = n;
      }
    }
  });
  if (duplicate) {
    return Status::FailedPrecondition("key component " + path +
                                      " is not single-valued in document " +
                                      document.name());
  }
  if (found == nullptr) {
    return Status::NotFound("key component " + path + " missing in document " +
                            document.name());
  }
  return found->ContentString();
}

/// Evaluates a relative path starting at `node`: ".." steps to the parent,
/// "." stays, a name steps to the unique child with that name.
Result<std::string> EvaluateRelative(const store::DocumentStore& store,
                                     const store::NodeId& node,
                                     const std::string& path) {
  xml::Node* current = store.GetNode(node);
  if (current == nullptr) return Status::NotFound("context node not found");
  for (const std::string& step : SplitSkipEmpty(path, '/')) {
    if (step == ".") continue;
    if (step == "..") {
      current = current->parent();
      if (current == nullptr) {
        return Status::NotFound("relative key step '..' walked past the root");
      }
      continue;
    }
    xml::Node* next = nullptr;
    bool duplicate = false;
    for (const auto& child : current->children()) {
      if (child->kind() == xml::NodeKind::kText) continue;
      if (child->name() == step) {
        if (next != nullptr) {
          duplicate = true;
          break;
        }
        next = child.get();
      }
    }
    if (duplicate) {
      return Status::FailedPrecondition("relative key step '" + step +
                                        "' is not single-valued");
    }
    if (next == nullptr) {
      return Status::NotFound("relative key step '" + step + "' has no match");
    }
    current = next;
  }
  return current->ContentString();
}

}  // namespace

Result<std::string> EvaluateKeyComponent(const store::DocumentStore& store,
                                         const store::NodeId& node,
                                         const KeyPath& component) {
  return component.absolute ? EvaluateAbsolute(store, node.doc, component.text)
                            : EvaluateRelative(store, node, component.text);
}

Result<std::vector<std::string>> RelativeKey::Evaluate(
    const store::DocumentStore& store, const store::NodeId& node) const {
  std::vector<std::string> values;
  values.reserve(paths_.size());
  for (const KeyPath& kp : paths_) {
    Result<std::string> value = EvaluateKeyComponent(store, node, kp);
    if (!value.ok()) return value.status();
    values.push_back(std::move(value).value());
  }
  return values;
}

std::vector<std::string> RelativeKey::ResolveTargetPaths(
    const std::string& context_path) const {
  std::vector<std::string> out;
  out.reserve(paths_.size());
  for (const KeyPath& kp : paths_) {
    if (kp.absolute) {
      out.push_back(kp.text);
      continue;
    }
    // Apply ".."/"."/name steps to the context path symbolically.
    std::vector<std::string> labels = SplitSkipEmpty(context_path, '/');
    for (const std::string& step : SplitSkipEmpty(kp.text, '/')) {
      if (step == ".") continue;
      if (step == "..") {
        if (!labels.empty()) labels.pop_back();
        continue;
      }
      labels.push_back(step);
    }
    std::string resolved;
    for (const std::string& label : labels) resolved += "/" + label;
    out.push_back(std::move(resolved));
  }
  return out;
}

bool RelativeKey::SameTargets(const std::string& my_context, const RelativeKey& other,
                              const std::string& other_context) const {
  return ResolveTargetPaths(my_context) == other.ResolveTargetPaths(other_context);
}

std::string RelativeKey::ToString() const {
  std::vector<std::string> parts;
  for (const KeyPath& kp : paths_) parts.push_back(kp.text);
  return "(" + Join(parts, ", ") + ")";
}

Status VerifyKeyUniqueness(const store::DocumentStore& store,
                           const std::string& context_path, const RelativeKey& key) {
  std::set<std::vector<std::string>> seen;
  Status failure = Status::OK();
  store.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (!failure.ok() || node->kind() == xml::NodeKind::kText) return;
    if (node->ContextPath() != context_path) return;
    auto values = key.Evaluate(store, id);
    if (!values.ok()) {
      failure = values.status();
      return;
    }
    if (!seen.insert(values.value()).second) {
      failure = Status::FailedPrecondition(
          "key " + key.ToString() + " is not unique for context " + context_path +
          " (duplicate at " + id.ToString() + ")");
    }
  });
  return failure;
}

}  // namespace seda::cube
