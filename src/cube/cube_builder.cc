#include "cube/cube_builder.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace seda::cube {

namespace {

std::string LastLabel(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// How one key component evaluates under the columnar scan. The planner only
/// assigns a column kind when the column probe provably reproduces the tree
/// walk — same value, same single-valued/missing trichotomy, same error
/// string — so extraction stays byte-identical with columns on or off.
struct ComponentPlan {
  enum class Kind {
    kTree,      ///< no covering column; per-node tree walk
    kAbsolute,  ///< absolute path with a column: whole-document singleton
    kSelf,      ///< pure "." at a columnized context: the context row itself
    kStep,      ///< "..^k name" at a columnized context: Dewey-prefix probe
  };
  Kind kind = Kind::kTree;
  const column::Column* col = nullptr;  ///< target column (kAbsolute/kStep)
  size_t prefix_len = 0;                ///< kStep: context components kept
  const KeyPath* kp = nullptr;
  std::string step_name;                ///< kStep: final name (error strings)
};

struct KeyPlan {
  /// Column over the binding's context path; a per-tuple row hit here both
  /// proves the context node exists (so the relative probes are sound) and
  /// supplies the measure value. Null => relative components walk the tree.
  const column::Column* ctx_col = nullptr;
  std::vector<ComponentPlan> components;
};

/// Compiles one (context, key) binding against the column set. Guards that
/// force kTree, in declaration order: no columns at all; no column over the
/// component's target path; a relative form other than "..^k name" (inner
/// name steps carry their own uniqueness checks); ".." underflow past the
/// root; a step name starting with '@' (the tree walk
/// matches children by element/attribute *name*, which never carries '@');
/// and an attribute-shadow path (parent + "/@" + name exists somewhere in
/// the collection — such attribute children are counted by the tree walk's
/// duplicate check but are not rows of the element column).
KeyPlan PlanKey(const column::ColumnStore* columns,
                const store::PathDictionary& dict,
                const ContextBinding& binding) {
  KeyPlan plan;
  const column::Column* ctx_col =
      columns != nullptr ? columns->Find(binding.context) : nullptr;
  plan.ctx_col = ctx_col;
  const std::vector<std::string> ctx_labels =
      SplitSkipEmpty(binding.context, '/');
  plan.components.reserve(binding.key.paths().size());
  for (const KeyPath& kp : binding.key.paths()) {
    ComponentPlan cp;
    cp.kp = &kp;
    plan.components.push_back(cp);
    ComponentPlan& out = plan.components.back();
    if (columns == nullptr) continue;
    if (kp.absolute) {
      const column::Column* col = columns->Find(kp.text);
      if (col != nullptr) {
        out.kind = ComponentPlan::Kind::kAbsolute;
        out.col = col;
      }
      continue;
    }
    if (ctx_col == nullptr) continue;
    size_t ups = 0;
    std::string name;
    bool plain = true;
    for (const std::string& step : SplitSkipEmpty(kp.text, '/')) {
      if (step == ".") continue;
      if (!name.empty()) {  // anything after the name step
        plain = false;
        break;
      }
      if (step == "..") {
        ++ups;
      } else {
        name = step;
      }
    }
    if (!plain || ups >= ctx_labels.size()) continue;
    if (name.empty()) {
      // "..^k" alone: k == 0 is the context node itself; k > 0 targets an
      // ancestor, whose concatenated content no leaf column carries.
      if (ups == 0) out.kind = ComponentPlan::Kind::kSelf;
      continue;
    }
    if (name[0] == '@') continue;
    std::string parent_path;
    for (size_t i = 0; i + ups < ctx_labels.size(); ++i) {
      parent_path += "/" + ctx_labels[i];
    }
    if (dict.Find(parent_path + "/@" + name) != store::kInvalidPathId) {
      continue;
    }
    const column::Column* col = columns->Find(parent_path + "/" + name);
    if (col == nullptr) continue;
    out.kind = ComponentPlan::Kind::kStep;
    out.col = col;
    out.prefix_len = ctx_labels.size() - ups;
    out.step_name = name;
  }
  return plan;
}

}  // namespace

std::string Table::ToString() const {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };
  std::string out = name + ":\n";
  for (size_t c = 0; c < columns.size(); ++c) {
    out += (c ? " | " : "  ") + pad(columns[c], widths[c]);
  }
  out += "\n";
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += (c ? " | " : "  ") + pad(row[c], widths[c]);
    }
    out += "\n";
  }
  return out;
}

std::string StarSchema::ToString() const {
  std::string out;
  for (const Table& t : fact_tables) out += t.ToString() + "\n";
  for (const Table& t : dimension_tables) out += t.ToString() + "\n";
  for (const std::string& w : warnings) out += "warning: " + w + "\n";
  return out;
}

Result<StarSchema> CubeBuilder::Build(const twig::CompleteResult& result,
                                      const Options& options) const {
  StarSchema schema;
  if (result.tuples.empty()) {
    return Status::FailedPrecondition("empty result set; nothing to cube");
  }
  const store::PathDictionary& dict = store_->paths();
  const size_t m = result.tuples.front().nodes.size();

  // ---- Step 1: matching ----
  obs::ScopedSpan match_span(options.trace, "cube_match");
  std::vector<std::vector<std::string>> column_paths(m);
  for (size_t c = 0; c < m; ++c) {
    std::set<std::string> distinct;
    for (const twig::ResultTuple& tuple : result.tuples) {
      if (tuple.paths[c] != store::kInvalidPathId) {
        distinct.insert(dict.PathString(tuple.paths[c]));
      }
    }
    column_paths[c].assign(distinct.begin(), distinct.end());
  }

  struct FactColumn {
    size_t column;
    const CatalogEntry* fact;
  };
  std::vector<FactColumn> fact_columns;
  std::map<std::string, size_t> dim_source_column;  // dimension name -> column

  for (size_t c = 0; c < m; ++c) {
    ColumnMatch match;
    match.column = c;
    match.paths = column_paths[c];

    auto facts = catalog_->MatchFacts(column_paths[c]);
    auto dims = catalog_->MatchDimensions(column_paths[c]);
    if (!facts.empty()) {
      match.matched_name = facts.front()->name;
      match.is_fact = true;
      fact_columns.push_back({c, facts.front()});
      if (facts.size() > 1) {
        schema.warnings.push_back("column " + std::to_string(c) +
                                  " matches multiple facts; using '" +
                                  facts.front()->name + "'");
      }
    } else if (!dims.empty()) {
      match.matched_name = dims.front()->name;
      dim_source_column.emplace(dims.front()->name, c);
      if (dims.size() > 1) {
        schema.warnings.push_back("column " + std::to_string(c) +
                                  " matches multiple dimensions; using '" +
                                  dims.front()->name + "'");
      }
    } else {
      match.ignored = true;
      for (const CatalogEntry* partial : catalog_->PartialFacts(column_paths[c])) {
        match.partial_matches.push_back(partial->name);
      }
      for (const CatalogEntry* partial :
           catalog_->PartialDimensions(column_paths[c])) {
        match.partial_matches.push_back(partial->name);
      }
      if (!match.partial_matches.empty()) {
        // The paper issues a warning so the user can check the context list.
        schema.warnings.push_back(
            "column " + std::to_string(c) +
            " only partially matches: " + Join(match.partial_matches, ", ") +
            "; verify the chosen contexts or define a new fact/dimension");
      } else {
        schema.warnings.push_back("column " + std::to_string(c) +
                                  " matches no fact or dimension; ignored");
      }
    }
    schema.matches.push_back(std::move(match));
  }

  match_span.End();

  // ---- Step 2: augmentation (manual adds/removes) ---- (the spans close
  // via RAII on the early-return error paths.)
  obs::ScopedSpan augment_span(options.trace, "cube_augment");
  for (const std::string& name : options.add_facts) {
    const CatalogEntry* fact = catalog_->FindFact(name);
    if (fact == nullptr) return Status::NotFound("unknown fact '" + name + "'");
    // Added facts must still be anchored to a column; require one whose paths
    // the fact covers.
    bool anchored = false;
    for (size_t c = 0; c < m && !anchored; ++c) {
      if (fact->CoversAll(column_paths[c])) {
        fact_columns.push_back({c, fact});
        anchored = true;
      }
    }
    if (!anchored) {
      return Status::FailedPrecondition("fact '" + name +
                                        "' matches no result column");
    }
  }
  std::erase_if(fact_columns, [&](const FactColumn& fc) {
    return std::find(options.remove_facts.begin(), options.remove_facts.end(),
                     fc.fact->name) != options.remove_facts.end();
  });
  if (fact_columns.empty()) {
    return Status::FailedPrecondition(
        "no fact identified in the result; define one from a result column");
  }

  augment_span.End();

  // ---- Step 3: extraction ----
  obs::ScopedSpan extract_span(options.trace, "cube_extract");
  const column::ColumnStore* cols =
      options.use_columns ? columns_ : nullptr;
  std::map<const ContextBinding*, KeyPlan> plans;
  auto plan_for = [&](const ContextBinding* binding) -> const KeyPlan& {
    auto it = plans.find(binding);
    if (it == plans.end()) {
      it = plans.emplace(binding, PlanKey(cols, dict, *binding)).first;
    }
    return it->second;
  };
  struct BuiltFact {
    const CatalogEntry* fact;
    Table table;
    std::vector<std::string> key_names;  // resolved dimension/column names
  };
  std::vector<BuiltFact> built;
  std::set<std::string> final_dimensions;
  for (const auto& [name, column] : dim_source_column) final_dimensions.insert(name);
  for (const std::string& name : options.add_dimensions) {
    if (catalog_->FindDimension(name) == nullptr) {
      return Status::NotFound("unknown dimension '" + name + "'");
    }
    final_dimensions.insert(name);
  }

  for (const FactColumn& fc : fact_columns) {
    BuiltFact bf;
    bf.fact = fc.fact;

    // Key arity must agree across this fact's context bindings.
    size_t arity = fc.fact->context_list.front().key.size();
    for (const ContextBinding& binding : fc.fact->context_list) {
      if (binding.key.size() != arity) {
        return Status::FailedPrecondition("fact '" + fc.fact->name +
                                          "' has bindings with differing key arity");
      }
    }

    // Column names for key components: prefer the dimension whose context
    // list contains the resolved target path (this is how the paper's year
    // dimension joins the output automatically).
    const ContextBinding& first_binding = fc.fact->context_list.front();
    std::vector<std::string> targets =
        first_binding.key.ResolveTargetPaths(first_binding.context);
    for (const std::string& target : targets) {
      std::string column_name = LastLabel(target);
      for (const CatalogEntry& dim : catalog_->dimensions()) {
        if (dim.BindingFor(target) != nullptr) {
          column_name = dim.name;
          final_dimensions.insert(dim.name);  // auto-added dimension
          break;
        }
      }
      bf.key_names.push_back(column_name);
    }

    bf.table.name = "fact_" + fc.fact->name;
    bf.table.columns = bf.key_names;
    for (size_t kc = 0; kc < bf.key_names.size(); ++kc) {
      bf.table.key_columns.push_back(kc);
    }
    bf.table.columns.push_back(fc.fact->name);

    std::set<std::vector<std::string>> key_seen;
    bool duplicate_warned = false;
    std::set<std::vector<std::string>> row_dedup;
    for (const twig::ResultTuple& tuple : result.tuples) {
      const store::NodeId& node = tuple.nodes[fc.column];
      std::string path = tuple.paths[fc.column] == store::kInvalidPathId
                             ? std::string()
                             : dict.PathString(tuple.paths[fc.column]);
      const ContextBinding* binding = fc.fact->BindingFor(path);
      if (binding == nullptr) continue;  // ignored heterogeneous leftover
      const KeyPlan& plan = plan_for(binding);

      // Per-tuple context-row verification, shared by every relative probe
      // and the measure: a hit in the context column proves the tuple's node
      // exists with this Dewey ID and yields its content; a miss (stale or
      // foreign NodeId) routes the whole tuple through the tree walk, whose
      // error handling is authoritative.
      bool ctx_checked = false;
      bool ctx_ok = false;
      uint32_t ctx_row = 0;
      const std::vector<uint32_t>& dewey = node.dewey.components();
      auto ensure_ctx = [&]() {
        if (!ctx_checked) {
          ctx_checked = true;
          if (plan.ctx_col != nullptr) {
            ++schema.column_rows_scanned;
            ctx_ok = plan.ctx_col->FindRow(node.doc, dewey.data(),
                                           dewey.size(), &ctx_row);
          }
        }
        return ctx_ok;
      };

      bool used_tree = false;
      Status row_error = Status::OK();
      std::vector<std::string> row;
      row.reserve(plan.components.size() + 1);
      for (const ComponentPlan& cp : plan.components) {
        Result<std::string> value = std::string();
        switch (cp.kind) {
          case ComponentPlan::Kind::kAbsolute: {
            uint32_t r = 0;
            ++schema.column_rows_scanned;
            switch (cp.col->DocSingleton(node.doc, &r)) {
              case column::Column::Presence::kDuplicate:
                value = Status::FailedPrecondition(
                    "key component " + cp.kp->text +
                    " is not single-valued in document " +
                    store_->document(node.doc).name());
                break;
              case column::Column::Presence::kMissing:
                value = Status::NotFound("key component " + cp.kp->text +
                                         " missing in document " +
                                         store_->document(node.doc).name());
                break;
              case column::Column::Presence::kValue:
                value = std::string(cp.col->RowValue(r));
                break;
            }
            break;
          }
          case ComponentPlan::Kind::kSelf:
            if (ensure_ctx()) {
              value = std::string(plan.ctx_col->RowValue(ctx_row));
            } else {
              used_tree = true;
              value = EvaluateKeyComponent(*store_, node, *cp.kp);
            }
            break;
          case ComponentPlan::Kind::kStep:
            if (ensure_ctx()) {
              uint32_t r = 0;
              ++schema.column_rows_scanned;
              switch (cp.col->PrefixSingleton(node.doc, dewey.data(),
                                              cp.prefix_len, &r)) {
                case column::Column::Presence::kDuplicate:
                  value = Status::FailedPrecondition(
                      "relative key step '" + cp.step_name +
                      "' is not single-valued");
                  break;
                case column::Column::Presence::kMissing:
                  value = Status::NotFound("relative key step '" +
                                           cp.step_name + "' has no match");
                  break;
                case column::Column::Presence::kValue:
                  value = std::string(cp.col->RowValue(r));
                  break;
              }
            } else {
              used_tree = true;
              value = EvaluateKeyComponent(*store_, node, *cp.kp);
            }
            break;
          case ComponentPlan::Kind::kTree:
            used_tree = true;
            value = EvaluateKeyComponent(*store_, node, *cp.kp);
            break;
        }
        if (!value.ok()) {
          row_error = value.status();
          break;
        }
        row.push_back(std::move(value).value());
      }
      if (used_tree) ++schema.column_fallback_docs;
      if (!row_error.ok()) {
        schema.warnings.push_back("row skipped for fact '" + fc.fact->name +
                                  "': " + row_error.ToString());
        continue;
      }
      if (ensure_ctx()) {
        row.push_back(std::string(plan.ctx_col->RowValue(ctx_row)));
      } else {
        if (!used_tree) ++schema.column_fallback_docs;
        row.push_back(store_->GetContent(node));
      }
      // The same (fact node) may appear in many result tuples when other
      // columns fan out; fact rows are deduplicated on all values.
      if (!row_dedup.insert(row).second) continue;
      std::vector<std::string> key_only(row.begin(), row.end() - 1);
      if (!key_seen.insert(key_only).second && !duplicate_warned) {
        schema.warnings.push_back("fact '" + fc.fact->name +
                                  "' key is not unique over the result; "
                                  "aggregates may be ambiguous");
        duplicate_warned = true;
      }
      bf.table.rows.push_back(std::move(row));
    }
    built.push_back(std::move(bf));
  }

  // Merge fact tables with identical key column lists (§7 optimization).
  if (options.merge_fact_tables) {
    std::vector<BuiltFact> merged;
    for (BuiltFact& bf : built) {
      BuiltFact* target = nullptr;
      for (BuiltFact& existing : merged) {
        if (existing.key_names == bf.key_names) {
          target = &existing;
          break;
        }
      }
      if (target == nullptr) {
        merged.push_back(std::move(bf));
        continue;
      }
      // Align rows on key values.
      size_t old_measures = target->table.columns.size() - target->key_names.size();
      target->table.name += "+" + bf.fact->name;
      target->table.columns.push_back(bf.fact->name);
      std::map<std::vector<std::string>, size_t> by_key;
      for (size_t r = 0; r < target->table.rows.size(); ++r) {
        std::vector<std::string> key(target->table.rows[r].begin(),
                                     target->table.rows[r].begin() +
                                         target->key_names.size());
        by_key.emplace(std::move(key), r);
        target->table.rows[r].push_back("");
      }
      for (const auto& row : bf.table.rows) {
        std::vector<std::string> key(row.begin(), row.begin() + bf.key_names.size());
        auto it = by_key.find(key);
        if (it != by_key.end()) {
          target->table.rows[it->second].back() = row.back();
        } else {
          std::vector<std::string> new_row = key;
          for (size_t i = 0; i < old_measures; ++i) new_row.push_back("");
          new_row.push_back(row.back());
          target->table.rows.push_back(std::move(new_row));
        }
      }
    }
    built = std::move(merged);
  }

  for (BuiltFact& bf : built) schema.fact_tables.push_back(std::move(bf.table));

  // Dimension tables: distinct values per dimension, drawn from the fact
  // tables' key columns (and from the source result column when present).
  for (const std::string& dim_name : final_dimensions) {
    if (std::find(options.remove_dimensions.begin(), options.remove_dimensions.end(),
                  dim_name) != options.remove_dimensions.end()) {
      continue;
    }
    Table table;
    table.name = "dim_" + dim_name;
    table.columns = {dim_name};
    table.key_columns = {0};
    std::set<std::string> values;
    for (const Table& fact_table : schema.fact_tables) {
      for (size_t c = 0; c < fact_table.columns.size(); ++c) {
        if (fact_table.columns[c] != dim_name) continue;
        for (const auto& row : fact_table.rows) values.insert(row[c]);
      }
    }
    auto source = dim_source_column.find(dim_name);
    if (source != dim_source_column.end()) {
      for (const twig::ResultTuple& tuple : result.tuples) {
        const store::NodeId& node = tuple.nodes[source->second];
        const store::PathId pid = tuple.paths[source->second];
        const column::Column* col =
            cols != nullptr && pid != store::kInvalidPathId
                ? cols->FindByPathId(pid)
                : nullptr;
        uint32_t row = 0;
        if (col != nullptr) {
          ++schema.column_rows_scanned;
          const std::vector<uint32_t>& dewey = node.dewey.components();
          if (col->FindRow(node.doc, dewey.data(), dewey.size(), &row)) {
            values.insert(std::string(col->RowValue(row)));
            continue;
          }
        }
        values.insert(store_->GetContent(node));
      }
    }
    for (const std::string& value : values) table.rows.push_back({value});
    schema.dimension_tables.push_back(std::move(table));
  }

  extract_span.AddCounter("column_rows_scanned", schema.column_rows_scanned);
  extract_span.AddCounter("column_fallback_docs", schema.column_fallback_docs);
  return schema;
}

}  // namespace seda::cube
