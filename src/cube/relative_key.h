#ifndef SEDA_CUBE_RELATIVE_KEY_H_
#define SEDA_CUBE_RELATIVE_KEY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "store/document_store.h"

namespace seda::cube {

/// One component of a relative XML key (Buneman et al. [5], used by the paper
/// in §7): either an absolute path expression starting at the document root
/// ("/country/year") or a relative path expression starting at the context
/// node (".", "..", "../trade_country").
struct KeyPath {
  bool absolute = false;
  std::string text;

  /// Classifies by leading character: '/' => absolute, otherwise relative.
  static KeyPath Of(const std::string& text);
};

/// A relative key: an ordered list of KeyPath components. Example from the
/// paper: the import-trade-percentage fact has key
///   (/country, /country/year, ../trade_country)
/// where the first two components are absolute and the last is relative to
/// the percentage node ("for every percentage the key contains its
/// trade_country sibling").
class RelativeKey {
 public:
  RelativeKey() = default;
  explicit RelativeKey(std::vector<KeyPath> paths) : paths_(std::move(paths)) {}

  /// Builds from path strings, e.g. {"/country", "/country/year", "../trade_country"}.
  static RelativeKey Parse(const std::vector<std::string>& paths);

  const std::vector<KeyPath>& paths() const { return paths_; }
  bool empty() const { return paths_.empty(); }
  size_t size() const { return paths_.size(); }

  /// Evaluates every component for context node `node`, returning one string
  /// value per component. Errors when a component resolves to no node or to
  /// more than one node (keys must be single-valued, as the paper assumes
  /// "exactly one such sibling").
  Result<std::vector<std::string>> Evaluate(const store::DocumentStore& store,
                                            const store::NodeId& node) const;

  /// Resolves each component to the absolute context path it denotes when
  /// evaluated at a node whose context is `context_path` (e.g. relative
  /// "../trade_country" at ".../item/percentage" resolves to
  /// ".../item/trade_country"). Used to auto-match key components to known
  /// dimensions during augmentation.
  std::vector<std::string> ResolveTargetPaths(const std::string& context_path) const;

  /// True iff both keys resolve to the same component target paths at the
  /// given contexts — the merge criterion for fact tables (§7, "we merge
  /// fact tables if they have the same keys").
  bool SameTargets(const std::string& my_context, const RelativeKey& other,
                   const std::string& other_context) const;

  std::string ToString() const;

 private:
  std::vector<KeyPath> paths_;
};

/// Evaluates a single key component at `node` — the per-component primitive
/// RelativeKey::Evaluate() iterates. Exposed so the columnar cube scan
/// (cube_builder.cc) can resolve some components from columns and fall back
/// to this tree walk per component, with identical values and error strings.
Result<std::string> EvaluateKeyComponent(const store::DocumentStore& store,
                                         const store::NodeId& node,
                                         const KeyPath& component);

/// Verifies that `key` uniquely identifies every node whose context is
/// `context_path` (the system-side key check the paper performs when a user
/// defines a new fact or dimension). Returns OK when unique; a
/// FailedPrecondition status naming the first duplicate otherwise.
Status VerifyKeyUniqueness(const store::DocumentStore& store,
                           const std::string& context_path, const RelativeKey& key);

}  // namespace seda::cube

#endif  // SEDA_CUBE_RELATIVE_KEY_H_
