#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace seda::obs {

namespace {

/// HELP text escaping: backslash and newline (no quotes in HELP).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `le` bound formatting: trimmed shortest form ("0.25", "5", "10000").
/// %.6g is deterministic for the magnitudes histogram bounds use.
std::string FormatBound(double bound) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", bound);
  return buffer;
}

std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Label text with one extra label appended (histogram `le`), reusing the
/// precomputed label_text.
std::string LabelsWith(const std::string& label_text, const std::string& key,
                       const std::string& value) {
  std::string out;
  if (label_text.empty()) {
    out = "{" + key + "=\"" + value + "\"}";
  } else {
    out = label_text.substr(0, label_text.size() - 1) + "," + key + "=\"" +
          value + "\"}";
  }
  return out;
}

const char* TypeName(int type) {
  switch (type) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string FormatMetricValue(double value) {
  char buffer[64];
  if (std::floor(value) == value && std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  }
  return buffer;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  bins_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) bins_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bin = 0;
  while (bin < bounds_.size() && value > bounds_[bin]) ++bin;
  bins_[bin].fetch_add(1, std::memory_order_relaxed);
  const double scaled = value <= 0 ? 0.0 : value * 1000.0;
  sum_thousandths_.fetch_add(static_cast<uint64_t>(std::llround(scaled)),
                             std::memory_order_relaxed);
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += bins_[i].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry::Family* MetricsRegistry::FamilyFor(const std::string& name,
                                                    Type type,
                                                    const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  }
  return &it->second;
}

MetricsRegistry::Series* MetricsRegistry::SeriesFor(Family* family,
                                                    LabelSet labels) {
  const std::string label_text = RenderLabels(labels);
  for (const std::unique_ptr<Series>& series : family->series) {
    if (series->label_text == label_text) return series.get();
  }
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->label_text = label_text;
  family->series.push_back(std::move(series));
  return family->series.back().get();
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help,
                                     LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      SeriesFor(FamilyFor(name, Type::kCounter, help), std::move(labels));
  if (series->counter == nullptr) series->counter = std::make_unique<Counter>();
  return series->counter.get();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      SeriesFor(FamilyFor(name, Type::kHistogram, help), std::move(labels));
  if (series->histogram == nullptr) {
    series->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series->histogram.get();
}

void MetricsRegistry::AddCallbackCounter(const std::string& name,
                                         const std::string& help,
                                         LabelSet labels,
                                         std::function<uint64_t()> value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      SeriesFor(FamilyFor(name, Type::kCounter, help), std::move(labels));
  series->callback_u64 = std::move(value);
}

void MetricsRegistry::AddGauge(const std::string& name, const std::string& help,
                               LabelSet labels,
                               std::function<double()> value) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      SeriesFor(FamilyFor(name, Type::kGauge, help), std::move(labels));
  series->callback_double = std::move(value);
}

void MetricsRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  families_.erase(name);
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + EscapeHelp(family.help) + "\n";
    out += "# TYPE " + name + " ";
    out += TypeName(static_cast<int>(family.type));
    out += "\n";
    // Series sorted by rendered label text; registration order is
    // deterministic in this codebase but sorting makes rendering
    // independent of it.
    std::vector<const Series*> ordered;
    ordered.reserve(family.series.size());
    for (const std::unique_ptr<Series>& series : family.series) {
      ordered.push_back(series.get());
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Series* a, const Series* b) {
                return a->label_text < b->label_text;
              });
    for (const Series* series : ordered) {
      if (family.type == Type::kHistogram && series->histogram != nullptr) {
        const Histogram& histogram = *series->histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < histogram.bounds().size(); ++i) {
          cumulative += histogram.BinCount(i);
          out += name + "_bucket" +
                 LabelsWith(series->label_text, "le",
                            FormatBound(histogram.bounds()[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += histogram.BinCount(histogram.bounds().size());
        out += name + "_bucket" +
               LabelsWith(series->label_text, "le", "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum" + series->label_text + " " +
               FormatMetricValue(histogram.Sum()) + "\n";
        out += name + "_count" + series->label_text + " " +
               std::to_string(cumulative) + "\n";
        continue;
      }
      double value = 0;
      if (series->counter != nullptr) {
        value = static_cast<double>(series->counter->Value());
      } else if (series->callback_u64) {
        value = static_cast<double>(series->callback_u64());
      } else if (series->callback_double) {
        value = series->callback_double();
      }
      out += name + series->label_text + " " + FormatMetricValue(value) + "\n";
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, family] : families_) {
    for (const std::unique_ptr<Series>& series : family.series) {
      if (family.type == Type::kHistogram && series->histogram != nullptr) {
        out.emplace_back(name + "_sum" + series->label_text,
                         series->histogram->Sum());
        out.emplace_back(
            name + "_count" + series->label_text,
            static_cast<double>(series->histogram->TotalCount()));
        continue;
      }
      double value = 0;
      if (series->counter != nullptr) {
        value = static_cast<double>(series->counter->Value());
      } else if (series->callback_u64) {
        value = static_cast<double>(series->callback_u64());
      } else if (series->callback_double) {
        value = series->callback_double();
      }
      out.emplace_back(name + series->label_text, value);
    }
  }
  return out;
}

}  // namespace seda::obs
