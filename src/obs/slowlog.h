#ifndef SEDA_OBS_SLOWLOG_H_
#define SEDA_OBS_SLOWLOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace seda::obs {

/// Slow-query log policy. A request lands in the log when its latency meets
/// the method's threshold (the slow path) or when the sampling knob picked
/// it regardless of latency (the every-Nth-request path — compiled in,
/// disabled by default; see api::ServiceOptions::trace_sample_every_n).
struct SlowLogOptions {
  /// Ring capacity: the newest `capacity` entries are retained.
  size_t capacity = 128;
  /// Latency threshold in ms for methods without an override. 0 = the
  /// threshold path is off for those methods (sampling still works).
  uint64_t default_threshold_ms = 1000;
  /// Per-method overrides ("search", "cube", ...); 0 disables that method.
  std::vector<std::pair<std::string, uint64_t>> method_threshold_ms;

  uint64_t ThresholdFor(const std::string& method) const;
};

/// One logged request: summary + the detached span tree (empty when the
/// service runs with tracing disabled).
struct SlowLogEntry {
  uint64_t seq = 0;      ///< monotonic id, stamped by Add()
  uint64_t unix_ms = 0;  ///< wall clock at completion
  std::string method;
  std::string session_id;
  std::string detail;  ///< query text / request summary
  double elapsed_ms = 0;
  uint64_t threshold_ms = 0;  ///< threshold in force when logged
  std::string status_code;
  bool deadline_exceeded = false;
  bool sampled = false;  ///< captured by the sampling knob, not the threshold
  SpanNode trace;
};

/// Bounded in-memory ring of slow/sampled requests. Add() is O(1) amortized
/// under a mutex taken only for logged requests — the common (fast, not
/// sampled) request never touches it.
class SlowLog {
 public:
  explicit SlowLog(SlowLogOptions options) : options_(std::move(options)) {}

  /// Stamps `seq` and appends, evicting the oldest entry past capacity.
  void Add(SlowLogEntry entry);

  /// Entries newest-first; `limit` caps the result (0 = all retained).
  std::vector<SlowLogEntry> Entries(size_t limit = 0) const;

  /// Total entries ever logged (including evicted ones).
  uint64_t TotalLogged() const;

  const SlowLogOptions& options() const { return options_; }

 private:
  SlowLogOptions options_;
  mutable std::mutex mu_;
  std::deque<SlowLogEntry> ring_;
  uint64_t next_seq_ = 1;
  uint64_t total_ = 0;
};

}  // namespace seda::obs

#endif  // SEDA_OBS_SLOWLOG_H_
