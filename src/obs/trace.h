#ifndef SEDA_OBS_TRACE_H_
#define SEDA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace seda::obs {

/// Detached span tree: the plain-data result of Trace::Detach(), safe to
/// serialize, retain in the slow-query log, or ship on a wire response long
/// after the request (and its Trace arena) is gone. All times are steady
/// clock microseconds; `start_us` is the offset from the root span's start,
/// so a renderer can draw a flame view without absolute timestamps.
struct SpanNode {
  std::string name;
  uint64_t start_us = 0;    ///< offset from the root span's start
  uint64_t elapsed_us = 0;  ///< wall time between open and close
  /// Wall-clock anchor (unix epoch ms) of the span's open; only the root
  /// carries one — children are positioned by start_us.
  uint64_t unix_ms = 0;
  /// Counters attached at close (engine stats, work sizes), insertion order.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<SpanNode> children;

  /// Time spent in this span but not in any child (clamped at 0: children
  /// share the parent's clock, so the sum never exceeds elapsed_us in a
  /// single-threaded trace, but partial trees can violate it).
  uint64_t SelfUs() const;
};

class Trace;

/// One open interval in a request's trace. Spans are created through
/// Trace/TraceSpan::StartChild and owned by the Trace arena — never
/// constructed directly, never outliving the Trace. The cheap path is two
/// steady_clock reads (open + close); counters cost one vector push each.
///
/// Threading contract: a trace is single-threaded. Spans must only be
/// opened, annotated and closed on the request's coordinating thread —
/// fan-out work (RunParallel shard scans, scoring batches) must NOT touch
/// the trace; it reports back through counters attached by the coordinator.
class TraceSpan {
 public:
  /// Opens a child span. `name` must be a string literal (stored as a
  /// pointer, not copied — the always-on path allocates nothing for names).
  TraceSpan* StartChild(const char* name);

  /// Attaches a counter visible in the detached tree. Call at (or before)
  /// close; literal-name contract as StartChild.
  void AddCounter(const char* name, uint64_t value);

  /// Closes the span (idempotent; the second close is a no-op). Children
  /// still open at Detach() time are closed then.
  void End();

  bool ended() const { return ended_; }

 private:
  friend class Trace;
  TraceSpan(Trace* trace, const char* name,
            std::chrono::steady_clock::time_point start)
      : trace_(trace), name_(name), start_(start) {}

  Trace* trace_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point end_{};
  bool ended_ = false;
  std::vector<std::pair<const char*, uint64_t>> counters_;
  std::vector<TraceSpan*> children_;
};

/// Arena + root of one request's span tree. A default-constructed Trace is
/// *disabled*: root() is nullptr and every null-tolerant helper (ScopedSpan,
/// TraceSpan checks at call sites) degrades to zero work — that is the
/// compiled-in-but-off path the <3% bench gate measures against.
class Trace {
 public:
  /// Disabled trace (no spans, Detach() returns an empty node).
  Trace() = default;
  /// Enabled trace with an open root span.
  explicit Trace(const char* root_name);

  Trace(Trace&&) = default;
  Trace& operator=(Trace&&) = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  bool enabled() const { return !spans_.empty(); }
  /// The root span, or nullptr when disabled.
  TraceSpan* root() { return spans_.empty() ? nullptr : &spans_.front(); }

  /// Ends every still-open span and converts the arena into a detached
  /// SpanNode tree. An empty (disabled) trace detaches to a default node.
  SpanNode Detach();

 private:
  friend class TraceSpan;
  TraceSpan* NewSpan(const char* name);

  /// Deque: stable addresses while growing (spans hold TraceSpan*).
  std::deque<TraceSpan> spans_;
  uint64_t wall_unix_ms_ = 0;
};

/// Null-safe RAII child span: no-op when `parent` is nullptr, so engine code
/// can open spans unconditionally whether or not the request is traced.
class ScopedSpan {
 public:
  ScopedSpan(TraceSpan* parent, const char* name)
      : span_(parent != nullptr ? parent->StartChild(name) : nullptr) {}
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The underlying span (nullptr when untraced) — pass down as a parent.
  TraceSpan* get() const { return span_; }
  void AddCounter(const char* name, uint64_t value) {
    if (span_ != nullptr) span_->AddCounter(name, value);
  }
  /// Early close (before scope exit); idempotent.
  void End() {
    if (span_ != nullptr) {
      span_->End();
      span_ = nullptr;
    }
  }

 private:
  TraceSpan* span_;
};

}  // namespace seda::obs

#endif  // SEDA_OBS_TRACE_H_
