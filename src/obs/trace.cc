#include "obs/trace.h"

namespace seda::obs {

namespace {

uint64_t DiffUs(std::chrono::steady_clock::time_point from,
                std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

uint64_t SpanNode::SelfUs() const {
  uint64_t child_total = 0;
  for (const SpanNode& child : children) child_total += child.elapsed_us;
  return child_total >= elapsed_us ? 0 : elapsed_us - child_total;
}

Trace::Trace(const char* root_name) {
  wall_unix_ms_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  NewSpan(root_name);
}

TraceSpan* Trace::NewSpan(const char* name) {
  spans_.emplace_back(TraceSpan(this, name, std::chrono::steady_clock::now()));
  return &spans_.back();
}

TraceSpan* TraceSpan::StartChild(const char* name) {
  TraceSpan* child = trace_->NewSpan(name);
  children_.push_back(child);
  return child;
}

void TraceSpan::AddCounter(const char* name, uint64_t value) {
  counters_.emplace_back(name, value);
}

void TraceSpan::End() {
  if (ended_) return;
  ended_ = true;
  end_ = std::chrono::steady_clock::now();
}

SpanNode Trace::Detach() {
  SpanNode root;
  if (spans_.empty()) return root;
  // Close leftovers (normally just the root): a span forgotten open would
  // otherwise report a zero end time and wreck the tree's arithmetic.
  for (TraceSpan& span : spans_) span.End();

  const std::chrono::steady_clock::time_point origin = spans_.front().start_;
  // Recursive conversion without recursion: an explicit stack of
  // (source span, destination node) pairs keeps deep trees safe.
  struct Frame {
    const TraceSpan* span;
    SpanNode* node;
  };
  std::vector<Frame> stack;
  root.unix_ms = wall_unix_ms_;
  stack.push_back({&spans_.front(), &root});
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const TraceSpan& span = *frame.span;
    SpanNode& node = *frame.node;
    node.name = span.name_;
    node.start_us = DiffUs(origin, span.start_);
    node.elapsed_us = DiffUs(span.start_, span.end_);
    node.counters.reserve(span.counters_.size());
    for (const auto& [name, value] : span.counters_) {
      node.counters.emplace_back(name, value);
    }
    node.children.resize(span.children_.size());
    for (size_t i = 0; i < span.children_.size(); ++i) {
      stack.push_back({span.children_[i], &node.children[i]});
    }
  }
  spans_.clear();
  wall_unix_ms_ = 0;
  return root;
}

}  // namespace seda::obs
