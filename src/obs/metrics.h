#ifndef SEDA_OBS_METRICS_H_
#define SEDA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace seda::obs {

/// Label set of one time series, in render order. Values are escaped at
/// render time — callers pass raw strings.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Inc() is a single relaxed fetch_add — safe from any
/// thread, no lock, no false ordering against the work being counted.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative samples. Buckets are defined by
/// strictly increasing upper bounds plus an implicit overflow (+Inf) bucket;
/// each Observe() increments exactly one per-bin count (rendering converts
/// to Prometheus cumulative form). The sum is kept in integer thousandths of
/// the observed unit (for latency-in-ms that is microseconds) so it stays a
/// plain atomic — no atomic<double> CAS loop on the hot path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Number of bins including the overflow bucket.
  size_t BucketCount() const { return bounds_.size() + 1; }
  /// Per-bin (non-cumulative) count of bin `i`.
  uint64_t BinCount(size_t i) const {
    return bins_[i].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const;
  /// Sum of observed values (thousandth-resolution, see class comment).
  double Sum() const {
    return static_cast<double>(
               sum_thousandths_.load(std::memory_order_relaxed)) /
           1000.0;
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> bins_;
  std::atomic<uint64_t> sum_thousandths_{0};
};

/// A process-wide registry of named metric families with byte-stable
/// Prometheus text-exposition rendering (format 0.0.4):
///
///   - families render sorted by name, series within a family sorted by
///     their rendered label string, label values escaped (\\, \", \n) — the
///     same registry state always renders the same bytes;
///   - counters and histograms hand out stable pointers whose updates are
///     lock-free relaxed atomics (the registration-time mutex is never taken
///     on the update path);
///   - gauges and callback counters sample a thread-safe callback at render
///     time, for values owned elsewhere (session registry size, queue
///     depth, transport counters).
///
/// Registering an existing (name, labels) series returns the existing
/// handle (counters/histograms) or replaces the callback — so a restarted
/// net::Server re-registering its transport series is idempotent.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The returned pointers stay valid for the registry's lifetime.
  Counter* AddCounter(const std::string& name, const std::string& help,
                      LabelSet labels = {});
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, LabelSet labels = {});
  /// Monotonic counter whose value lives elsewhere; `value` must be
  /// thread-safe and non-blocking (it runs inside every render).
  void AddCallbackCounter(const std::string& name, const std::string& help,
                          LabelSet labels, std::function<uint64_t()> value);
  /// Instantaneous gauge, same callback contract.
  void AddGauge(const std::string& name, const std::string& help,
                LabelSet labels, std::function<double()> value);

  /// Drops a whole family (every series under `name`); no-op when absent.
  /// Lets a transport unregister its callbacks before it is destroyed.
  void Unregister(const std::string& name);

  /// Prometheus text exposition of every family. Byte-stable: two calls
  /// with the same underlying values return identical bytes.
  std::string RenderText() const;

  /// Flattened `name{labels}` -> value snapshot of every non-histogram
  /// series plus histogram `_sum`/`_count`, for tests and round-trip checks.
  std::vector<std::pair<std::string, double>> Snapshot() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    LabelSet labels;
    std::string label_text;  ///< rendered `{a="b",...}` or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> callback_u64;
    std::function<double()> callback_double;
  };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    /// unique_ptr: handle addresses survive vector growth.
    std::vector<std::unique_ptr<Series>> series;
  };

  Family* FamilyFor(const std::string& name, Type type,
                    const std::string& help);
  Series* SeriesFor(Family* family, LabelSet labels);

  mutable std::mutex mu_;
  /// std::map: deterministic name order for free.
  std::map<std::string, Family> families_;
};

/// Escapes a label value per the exposition format: backslash, double quote
/// and newline. Exposed for tests.
std::string EscapeLabelValue(const std::string& value);

/// Formats a sample value deterministically: integers (the common case for
/// counters) render without a decimal point, everything else with three
/// decimals — enough for millisecond sums kept at microsecond resolution.
std::string FormatMetricValue(double value);

}  // namespace seda::obs

#endif  // SEDA_OBS_METRICS_H_
