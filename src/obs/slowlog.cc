#include "obs/slowlog.h"

#include <algorithm>

namespace seda::obs {

uint64_t SlowLogOptions::ThresholdFor(const std::string& method) const {
  for (const auto& [name, threshold] : method_threshold_ms) {
    if (name == method) return threshold;
  }
  return default_threshold_ms;
}

void SlowLog::Add(SlowLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  ++total_;
  ring_.push_back(std::move(entry));
  while (options_.capacity > 0 && ring_.size() > options_.capacity) {
    ring_.pop_front();
  }
}

std::vector<SlowLogEntry> SlowLog::Entries(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowLogEntry> out;
  const size_t count =
      limit == 0 ? ring_.size() : std::min(limit, ring_.size());
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[ring_.size() - 1 - i]);  // newest first
  }
  return out;
}

uint64_t SlowLog::TotalLogged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace seda::obs
