#ifndef SEDA_COMMON_STATUS_H_
#define SEDA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

// The library requires C++20 (std::erase_if, designated initializers). CMake
// enforces cxx_std_20; this guard makes hand-rolled builds fail loudly too.
// MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus is passed, so its
// accurate _MSVC_LANG is consulted first.
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "SEDA requires C++20; compile with /std:c++20 or newer");
#else
static_assert(__cplusplus >= 202002L,
              "SEDA requires C++20; compile with -std=c++20 or newer");
#endif

namespace seda {

/// Error categories used across the SEDA library. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  /// Transient serving-side refusal (admission control / load shedding /
  /// shutdown drain): the request was well-formed but the server chose not
  /// to execute it right now. Retryable, unlike the codes above.
  kUnavailable,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight status object carrying a code and an error message.
///
/// Follows the RocksDB/Arrow idiom: success is cheap (no allocation), and
/// every fallible public API returns Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define SEDA_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::seda::Status _seda_status = (expr);       \
    if (!_seda_status.ok()) return _seda_status; \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define SEDA_ASSIGN_OR_RETURN(lhs, expr)        \
  auto SEDA_CONCAT_(_seda_result_, __LINE__) = (expr);                  \
  if (!SEDA_CONCAT_(_seda_result_, __LINE__).ok())                      \
    return SEDA_CONCAT_(_seda_result_, __LINE__).status();              \
  lhs = std::move(SEDA_CONCAT_(_seda_result_, __LINE__)).value()

#define SEDA_CONCAT_INNER_(a, b) a##b
#define SEDA_CONCAT_(a, b) SEDA_CONCAT_INNER_(a, b)

}  // namespace seda

#endif  // SEDA_COMMON_STATUS_H_
