#ifndef SEDA_COMMON_THREAD_POOL_H_
#define SEDA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace seda {

/// Fixed-size worker pool used by the ingestion pipeline (Seda::Finalize) to
/// fan per-document work out across cores. Determinism is the caller's
/// responsibility: parallel stages produce per-item results that are merged
/// in a fixed (document) order, never in completion order.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for any worker to run. A task that throws does not kill
  /// the worker: the first exception is captured and rethrown from the next
  /// Wait() call.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished, then rethrows the first
  /// exception any of them raised (if one did).
  void Wait();

  /// Runs fn(i) for every i in [0, n), distributing iterations dynamically
  /// across the workers; the calling thread participates. Returns once all n
  /// iterations completed. fn must not recursively call ParallelFor/Wait on
  /// this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// hardware_concurrency() with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;  // workers: a task (or stop) is available
  std::condition_variable idle_cv_;  // Wait(): queue drained and workers idle
  size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // first throw from a Submit()ed task
};

/// Runs fn(i) for i in [0, n): on `pool` when one is given (the caller
/// participates alongside the workers), inline otherwise. The single entry
/// point pipeline stages use, so that the single-threaded path executes
/// exactly the same per-item code.
inline void RunParallel(ThreadPool* pool, size_t n,
                        const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->size() >= 1 && n > 1) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace seda

#endif  // SEDA_COMMON_THREAD_POOL_H_
