#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace seda {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(s, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  // Iterative glob matcher with backtracking over the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : s) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace seda
