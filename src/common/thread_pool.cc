#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

namespace seda {

size_t ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(fn));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Dynamic scheduling: workers and the caller pull the next index from a
  // shared counter, so uneven per-item cost (one huge document) balances out.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::mutex m;
    std::condition_variable cv;
    size_t running = 0;
    std::exception_ptr error;  // first exception thrown by any participant
  };
  auto state = std::make_shared<SharedState>();
  // Exception safety: a throw (e.g. bad_alloc) stops further iterations,
  // is captured once, and rethrown on the calling thread only after every
  // helper finished — helpers reference fn, which lives in the caller's
  // frame, so ParallelFor must never unwind while they run.
  auto drain = [state, n, &fn] {
    try {
      for (size_t i = state->next.fetch_add(1); i < n;
           i = state->next.fetch_add(1)) {
        fn(i);
      }
    } catch (...) {
      state->next.store(n);  // abort remaining iterations everywhere
      std::lock_guard<std::mutex> lock(state->m);
      if (!state->error) state->error = std::current_exception();
    }
  };

  size_t helpers = std::min(workers_.size(), n - 1);
  state->running = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, drain] {
      drain();
      std::lock_guard<std::mutex> lock(state->m);
      if (--state->running == 0) state->cv.notify_all();
    });
  }
  drain();  // the calling thread participates
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] { return state->running == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace seda
