#ifndef SEDA_COMMON_CHECK_H_
#define SEDA_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

/// Debug assertion kit (SEDA_DCHECK / SEDA_DCHECK_EQ / ...). The policy line
/// between this and Status (see README "Correctness tooling"):
///
///   * Untrusted input — wire bytes, image bytes, query text, request fields —
///     must NEVER trip a DCHECK. Hostile input is handled with Status errors
///     that stay on in release builds.
///   * DCHECKs state *programmer* invariants: conditions that are unreachable
///     unless the code itself is wrong (a cursor seeking backwards, a heap
///     exceeding its bound, adjacency indices out of range). They document the
///     hot-path contracts and turn memory-distant corruption into a loud,
///     located failure under the sanitizer matrix.
///
/// Enabled when NDEBUG is unset (Debug builds) or when SEDA_FORCE_DCHECKS is
/// defined (the CMake option SEDA_DCHECKS=ON, used by the sanitizer CI jobs to
/// keep the checks live in optimized builds). Compiled out otherwise: the
/// condition is parsed but not evaluated, so disabled checks cost nothing and
/// still fail to build when they reference renamed symbols.
///
/// Failure output is one stderr line — "DCHECK failed at file:line: cond msg"
/// — followed by abort(), so a sanitizer or core dump points at the check.
///
/// Usage:
///   SEDA_DCHECK(cursor != nullptr) << "term=" << term;
///   SEDA_DCHECK_LE(doc, max_doc);
/// Arguments must be side-effect free: disabled builds do not evaluate them,
/// and the _EQ/_LE/... forms re-evaluate on the failure path for the message.

#if !defined(SEDA_DCHECKS_ENABLED)
#if defined(NDEBUG) && !defined(SEDA_FORCE_DCHECKS)
#define SEDA_DCHECKS_ENABLED 0
#else
#define SEDA_DCHECKS_ENABLED 1
#endif
#endif

namespace seda::check_internal {

/// Streams a value if the type is ostream-printable, a placeholder otherwise,
/// so SEDA_DCHECK_EQ works on ids and enums without demanding operator<<.
template <typename T>
void StreamValue(std::ostream& os, const T& value) {
  if constexpr (requires(std::ostream& s, const T& v) { s << v; }) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

/// Accumulates the failure message; the destructor prints and aborts. One
/// failing check = one object, so the pattern is safe under concurrency up to
/// interleaved stderr lines.
class FailureStream {
 public:
  FailureStream(const char* file, int line, const char* condition) {
    stream_ << "DCHECK failed at " << file << ":" << line << ": " << condition;
  }
  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;
  [[noreturn]] ~FailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FailureStream& operator<<(const T& value) {
    stream_ << ' ';
    StreamValue(stream_, value);
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace seda::check_internal

// The switch/case wrapper makes the macro a single statement that binds
// correctly under an unbraced if/else; `true || (cond)` in the disabled form
// keeps the condition type-checked (and its symbols "used") without
// evaluating it, and the dead else-branch lets `<< msg` still compile.
#if SEDA_DCHECKS_ENABLED
#define SEDA_DCHECK(cond)                                   \
  switch (0)                                                \
  case 0:                                                   \
  default:                                                  \
    if (cond) {                                             \
    } else                                                  \
      ::seda::check_internal::FailureStream(__FILE__, __LINE__, #cond)
#define SEDA_DCHECK_OP_(op, a, b)                                          \
  switch (0)                                                               \
  case 0:                                                                  \
  default:                                                                 \
    if ((a)op(b)) {                                                        \
    } else                                                                 \
      ::seda::check_internal::FailureStream(__FILE__, __LINE__,            \
                                            #a " " #op " " #b)             \
          << "(" << (a) << " vs " << (b) << ")"
#else
#define SEDA_DCHECK(cond)                                   \
  switch (0)                                                \
  case 0:                                                   \
  default:                                                  \
    if (true || (cond)) {                                   \
    } else                                                  \
      ::seda::check_internal::FailureStream(__FILE__, __LINE__, #cond)
#define SEDA_DCHECK_OP_(op, a, b) SEDA_DCHECK((a)op(b))
#endif

#define SEDA_DCHECK_EQ(a, b) SEDA_DCHECK_OP_(==, a, b)
#define SEDA_DCHECK_NE(a, b) SEDA_DCHECK_OP_(!=, a, b)
#define SEDA_DCHECK_LT(a, b) SEDA_DCHECK_OP_(<, a, b)
#define SEDA_DCHECK_LE(a, b) SEDA_DCHECK_OP_(<=, a, b)
#define SEDA_DCHECK_GT(a, b) SEDA_DCHECK_OP_(>, a, b)
#define SEDA_DCHECK_GE(a, b) SEDA_DCHECK_OP_(>=, a, b)

#endif  // SEDA_COMMON_CHECK_H_
