#ifndef SEDA_COMMON_BOUNDED_TOPN_H_
#define SEDA_COMMON_BOUNDED_TOPN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace seda {

/// Bounded top-N buffer: keeps the `cap` best elements under a strict weak
/// ordering `less` (where less(a, b) means "a ranks before b"). The backing
/// heap uses `less` directly as the heap comparator, so the front is always
/// the worst kept element. Displacement is strict — an element that ties the
/// worst under `less` does not replace it — which preserves insertion-order
/// tie-breaking exactly like a stable sort followed by truncation.
///
/// cap == 0 means unbounded: everything is kept and TakeSorted() sorts once.
template <typename T, typename Less>
class BoundedTopN {
 public:
  BoundedTopN(size_t cap, Less less) : cap_(cap), less_(std::move(less)) {}

  bool Full() const { return cap_ > 0 && items_.size() >= cap_; }
  size_t size() const { return items_.size(); }

  /// Worst kept element (the heap front). Requires Full() with cap > 0.
  const T& Worst() const {
    SEDA_DCHECK(cap_ > 0 && !items_.empty())
        << "Worst() on an empty or unbounded top-N buffer";
    return items_.front();
  }

  /// Inserts `item` if it ranks before the current worst (or the buffer has
  /// room). When `evictions` is non-null, counts displacements into it.
  void Insert(T item, uint64_t* evictions = nullptr) {
    if (cap_ == 0) {
      items_.push_back(std::move(item));
      return;
    }
    if (items_.size() < cap_) {
      items_.push_back(std::move(item));
      std::push_heap(items_.begin(), items_.end(), less_);
      return;
    }
    if (less_(item, items_.front())) {
      std::pop_heap(items_.begin(), items_.end(), less_);
      items_.back() = std::move(item);
      std::push_heap(items_.begin(), items_.end(), less_);
      if (evictions != nullptr) ++*evictions;
    }
    SEDA_DCHECK_LE(items_.size(), cap_) << "top-N buffer exceeded its bound";
  }

  /// Returns the kept elements sorted by `less` (best first), emptying the
  /// buffer.
  std::vector<T> TakeSorted() {
    std::sort(items_.begin(), items_.end(), less_);
    return std::move(items_);
  }

 private:
  size_t cap_;
  Less less_;
  std::vector<T> items_;
};

}  // namespace seda

#endif  // SEDA_COMMON_BOUNDED_TOPN_H_
