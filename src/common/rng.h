#ifndef SEDA_COMMON_RNG_H_
#define SEDA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seda {

/// Deterministic 64-bit PRNG (xorshift128+). All synthetic data generators use
/// this so every experiment in the repository is exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eda5eda5eda5edaull) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    uint64_t z = seed;
    for (uint64_t* slot : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      *slot = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). Uniform(0) returns 0 (the empty range has
  /// no other sensible answer, and a modulo-by-zero here is UB).
  uint64_t Uniform(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi. The span is
  /// computed in uint64_t so extreme bounds (e.g. INT64_MIN..INT64_MAX) do not
  /// overflow; a full-width span draws a raw 64-bit value directly.
  int64_t Range(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    if (span == UINT64_MAX) return static_cast<int64_t>(Next());
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + Uniform(span + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Returns true with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights);

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

}  // namespace seda

#endif  // SEDA_COMMON_RNG_H_
