#ifndef SEDA_COMMON_STRINGS_H_
#define SEDA_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace seda {

/// Splits `s` on `sep`, keeping empty pieces (like absl::StrSplit).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns a copy of `s` converted to ASCII lowercase.
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Glob-style match supporting '*' (any run) and '?' (any one char).
/// Used for wildcard tag-name contexts in query terms, e.g. "trade_*".
bool WildcardMatch(std::string_view pattern, std::string_view text);

/// FNV-1a 64-bit hash; stable across platforms (used for dataguide signatures
/// and deterministic hashing in tests).
uint64_t Fnv1a64(std::string_view s);

/// Combines two hash values (boost-style mixing).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// Formats a double with `digits` decimal places (no locale surprises).
std::string FormatDouble(double value, int digits);

}  // namespace seda

#endif  // SEDA_COMMON_STRINGS_H_
