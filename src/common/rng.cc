#include "common/rng.h"

namespace seda {

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0 || weights.empty()) return 0;
  double pick = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (pick < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace seda
