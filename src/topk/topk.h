#ifndef SEDA_TOPK_TOPK_H_
#define SEDA_TOPK_TOPK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/candidates.h"
#include "graph/data_graph.h"
#include "obs/trace.h"
#include "query/query.h"
#include "text/inverted_index.h"

namespace seda {
class ThreadPool;
}

namespace seda::topk {

/// One ranked answer: a tuple of nodes, one per query term, with the combined
/// score (content × structural compactness) described in paper §4.
struct ScoredTuple {
  std::vector<text::NodeMatch> nodes;     ///< one per query term, in term order
  double content_score = 0.0;             ///< sum of per-term content scores
  size_t connection_size = 0;             ///< edges of the minimal connecting graph
  double score = 0.0;                     ///< content × 1/(1 + connection_size)

  std::string ToString(const store::DocumentStore& store) const;
};

/// Execution counters for the ablation benches.
struct SearchStats {
  uint64_t candidates_total = 0;     ///< candidate nodes across all terms
  uint64_t docs_considered = 0;      ///< candidate documents examined
  uint64_t docs_scored = 0;          ///< documents whose tuples were enumerated
  uint64_t tuples_scored = 0;        ///< tuples fully scored (ConnectionSize calls)
  bool early_terminated = false;     ///< TA threshold fired before exhausting docs
  // Cursor-level counters (streaming candidate construction, src/exec/):
  uint64_t postings_advanced = 0;    ///< posting entries / universe nodes stepped
  uint64_t docs_skipped = 0;         ///< doc distance jumped by cursor seeks
  uint64_t heap_evictions = 0;       ///< top-k bounded heap displacements
  // Hub/budget trimming (ROADMAP perf-cliff fix; see TopKOptions):
  uint64_t hub_links_skipped = 0;    ///< cross-doc links dropped at hub nodes
  uint64_t tuples_trimmed = 0;       ///< tuples skipped by the per-query budget
  // Graph-kernel counters (graph/csr.h), summed over connection scoring in
  // tuple-enumeration order so any worker count reports identical stats:
  uint64_t bfs_expansions = 0;       ///< nodes expanded by BFS (legacy or CSR)
  uint64_t intersection_probes = 0;  ///< sorted-row elements examined
  uint64_t sketch_hits = 0;          ///< distance queries answered by a sketch
  // Columnar cube-extraction counters (column/column_store.h; populated by
  // the cube endpoint only — searches leave them 0):
  uint64_t column_rows_scanned = 0;   ///< column row lookups performed
  uint64_t column_fallback_docs = 0;  ///< result tuples that touched the tree
  /// The per-request deadline (TopKOptions::deadline_ms) fired and the scan
  /// stopped with unexamined documents remaining: the returned top-k is the
  /// best of what was scored in time, not the full TA fixpoint. Surfaced in
  /// the api::SedaService stats block so overruns show up in the response
  /// instead of as unbounded latency.
  bool deadline_exceeded = false;
  /// Commit epoch of the snapshot that served the query (1 = the Finalize()
  /// epoch; 0 only when the searcher runs outside a core::Snapshot). Lets a
  /// client correlate results with the data version while commits race.
  uint64_t epoch = 0;
};

/// Options controlling the search.
struct TopKOptions {
  size_t k = 10;
  /// Per-term cap on candidate nodes taken from the index (highest content
  /// scores first). 0 = unlimited.
  size_t max_candidates_per_term = 4096;
  /// Per-document cap on candidates per term during tuple enumeration,
  /// bounding the cross-product.
  size_t max_per_doc_per_term = 16;
  /// BFS bound for connecting tuples through the data graph.
  size_t max_connect_depth = 10;
  /// Follow non-tree edges to join candidates from linked documents.
  bool allow_cross_document = true;
  /// Minimum tuples in one document's scoring batch before the batch fans
  /// out across the searcher's thread pool; smaller batches stay inline to
  /// avoid scheduling overhead. Results are identical either way.
  size_t parallel_batch_min = 4;
  /// Hub-degree cap for cross-document borrowing: a link edge is not
  /// followed when either endpoint has non-tree degree above this, so a
  /// dense value-edge hub (e.g. every country importing from "United
  /// States") no longer welds its whole neighborhood into one giant
  /// per-document cross product. Skips are counted in
  /// SearchStats::hub_links_skipped. 0 = unlimited.
  size_t max_hub_degree = 64;
  /// Per-BFS work budget for cross-document connection scoring: each
  /// ShortestPath expansion inside ConnectionSize may visit at most this
  /// many nodes before the pair counts as "not connected". In a value-edge
  /// mesh the whole collection sits within a few hops of everything, so a
  /// depth bound alone still floods the store once per scored tuple — this
  /// is what turned the ROADMAP hub corpus into seconds-per-query. 0 =
  /// unlimited.
  size_t max_connect_visits = 512;
  /// Hard per-query budget on tuples scored (ConnectionSize calls) across
  /// the whole scan — the backstop when even capped documents are dense.
  /// Documents are consumed in TA upper-bound order, so trimming drops the
  /// least-promising enumerations first; trimmed counts land in
  /// SearchStats::tuples_trimmed. 0 = unlimited.
  size_t max_tuples_per_query = 10000;
  /// Shard-by-DocId scatter-gather (the src/net/ serving mode). With
  /// shard_count > 1 the TA scan scores only candidate documents whose DocId
  /// lands in shard `shard_index` (doc % shard_count == shard_index), while
  /// candidate grouping, cross-document borrowing and upper bounds are still
  /// computed over the full candidate set — so the union of all shards'
  /// enumerations is exactly the unsharded scan's enumeration, and merging
  /// the per-shard top-k lists (MergeShardTopK) reproduces the unsharded
  /// ranking byte for byte. Each shard's TA threshold stop is sound on its
  /// own subsequence of the descending upper-bound order. Caveat: the
  /// max_tuples_per_query budget and deadline_ms apply per shard, so exact
  /// merge equivalence holds whenever neither fires (they trim in scan-order,
  /// which sharding re-interleaves). Serving-mode knobs, like deadline_ms
  /// deliberately NOT persisted in snapshot images. 0 or 1 = unsharded.
  size_t shard_count = 0;
  /// Which shard this scan serves; must be < shard_count when sharded.
  size_t shard_index = 0;
  /// Per-request trace span (obs/trace.h): when non-null, the scan opens
  /// child spans (candidates / group_docs / ta_scan) under it and attaches
  /// its counters at close. Spans are touched only on the coordinating
  /// thread — the RunParallel scoring fan-out reports through counters, and
  /// the sharded serving mode clears this per shard (core::Snapshot::Search
  /// owns the one sharded-scan span). Like deadline_ms this is a per-request
  /// field, deliberately NOT persisted in snapshot images.
  obs::TraceSpan* trace = nullptr;
  /// Per-request wall-clock budget for the scan, in milliseconds (0 = none).
  /// Checked cooperatively once per candidate document: when it fires, the
  /// scan stops, SearchStats::deadline_exceeded is set, and the tuples scored
  /// so far are returned — a well-formed partial answer instead of unbounded
  /// latency. Because documents are consumed in TA upper-bound order, what
  /// survives is the most promising prefix. Unlike the structural budgets
  /// above this is a per-request field (see api::SedaService), not a corpus
  /// property, so it is deliberately NOT persisted in snapshot images.
  uint64_t deadline_ms = 0;
};

/// The engine's ranking order: score descending, ties by document order of
/// the first differing node — a total order over distinct tuples. Exposed so
/// the scatter-gather merger ranks exactly like the TA scan's bounded heap.
bool TupleRankLess(const ScoredTuple& a, const ScoredTuple& b);

/// Scatter-gather merge for the shard-by-DocId serving mode: concatenates
/// the per-shard top-k lists (each already sorted by TupleRankLess) and
/// keeps the k best under the same order. Because every candidate document
/// belongs to exactly one shard, the inputs partition the unsharded scan's
/// heap insertions, and the TA bound guarantees each shard's local top-k
/// contains every global winner scored in that shard — so the merged list is
/// byte-identical to the unsharded ranking (see TopKOptions::shard_count for
/// the budget caveat). k == 0 keeps everything.
std::vector<ScoredTuple> MergeShardTopK(
    std::vector<std::vector<ScoredTuple>> shards, size_t k);

/// Top-k search unit (paper §4), rebuilt as a streaming engine: per-term
/// candidate streams come from cursor trees composed directly over posting
/// lists (src/exec/), the Threshold-Algorithm scan (Fagin et al. [8])
/// consumes candidate documents in upper-bound order, the running top-k is a
/// bounded heap, and each document's tuple enumeration + ConnectionSize
/// scoring fans out across an optional ThreadPool with results merged in
/// enumeration order — so any worker count returns byte-identical rankings.
/// The score of a tuple is its content score discounted by the compactness
/// of the minimal graph connecting its nodes; the TA threshold uses
/// compactness 1 as the monotone upper bound, so the scan stops as soon as
/// the k-th best tuple dominates every unexamined document's bound.
class TopKSearcher {
 public:
  /// `pool` (optional) parallelizes per-document tuple scoring. Concurrent
  /// Search calls may share the pool — ParallelFor state is per call — they
  /// just contend for its workers.
  TopKSearcher(const text::InvertedIndex* index, const graph::DataGraph* graph,
               ThreadPool* pool = nullptr)
      : index_(index), graph_(graph), pool_(pool) {}

  /// Runs the TA search. Results are sorted by descending score; ties break
  /// by document order of the first differing node.
  Result<std::vector<ScoredTuple>> Search(const query::Query& query,
                                          const TopKOptions& options,
                                          SearchStats* stats = nullptr) const;

  /// TA search over a pre-built candidate set (one cursor evaluation shared
  /// across the engine and the summary generators; see Seda::Search).
  Result<std::vector<ScoredTuple>> Search(const query::Query& query,
                                          const TopKOptions& options,
                                          const exec::CandidateSet& candidates,
                                          SearchStats* stats = nullptr) const;

  /// Baseline for the A1 ablation: enumerates and scores every candidate
  /// combination (same candidate streams, no early termination).
  Result<std::vector<ScoredTuple>> NaiveSearch(const query::Query& query,
                                               const TopKOptions& options,
                                               SearchStats* stats = nullptr) const;

  /// Per-term candidate matches (index evaluation restricted to the term's
  /// context), sorted by descending content score. Thin wrapper over
  /// exec::BuildCandidates, kept for callers that want bare streams.
  std::vector<std::vector<text::NodeMatch>> CandidateStreams(
      const query::Query& query, const TopKOptions& options) const;

 private:
  Result<std::vector<ScoredTuple>> SearchImpl(
      const query::Query& query, const TopKOptions& options,
      bool threshold_stop, const exec::CandidateSet* shared_candidates,
      SearchStats* stats) const;

  const text::InvertedIndex* index_;
  const graph::DataGraph* graph_;
  ThreadPool* pool_;
};

}  // namespace seda::topk

#endif  // SEDA_TOPK_TOPK_H_
