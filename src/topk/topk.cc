#include "topk/topk.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <optional>

#include "common/bounded_topn.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace seda::topk {

namespace {

double Compactness(size_t connection_size) {
  return 1.0 / (1.0 + static_cast<double>(connection_size));
}

/// Bounded top-k buffer under the ranking order, replacing the old
/// sort-on-every-insert.
using TupleHeap =
    BoundedTopN<ScoredTuple, bool (*)(const ScoredTuple&, const ScoredTuple&)>;

}  // namespace

bool TupleRankLess(const ScoredTuple& a, const ScoredTuple& b) {
  if (a.score != b.score) return a.score > b.score;
  for (size_t i = 0; i < a.nodes.size() && i < b.nodes.size(); ++i) {
    if (!(a.nodes[i].node == b.nodes[i].node)) {
      return a.nodes[i].node < b.nodes[i].node;
    }
  }
  return false;
}

std::vector<ScoredTuple> MergeShardTopK(
    std::vector<std::vector<ScoredTuple>> shards, size_t k) {
  std::vector<ScoredTuple> merged;
  size_t total = 0;
  for (const std::vector<ScoredTuple>& shard : shards) total += shard.size();
  merged.reserve(total);
  for (std::vector<ScoredTuple>& shard : shards) {
    for (ScoredTuple& tuple : shard) merged.push_back(std::move(tuple));
  }
  // TupleRankLess only ties for byte-identical tuples (a duplicate pair of
  // cross-borrowed enumerations), so an unstable sort cannot change the
  // rendered bytes.
  std::sort(merged.begin(), merged.end(), TupleRankLess);
  if (k > 0 && merged.size() > k) merged.resize(k);
  return merged;
}

std::string ScoredTuple::ToString(const store::DocumentStore& store) const {
  std::string out = "score=" + std::to_string(score) + " [";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += nodes[i].node.ToString();
    out += "='" + store.GetContent(nodes[i].node) + "'";
  }
  out += "]";
  return out;
}

std::vector<std::vector<text::NodeMatch>> TopKSearcher::CandidateStreams(
    const query::Query& query, const TopKOptions& options) const {
  auto set = exec::BuildCandidates(*index_, query, options.max_candidates_per_term);
  std::vector<std::vector<text::NodeMatch>> streams;
  streams.reserve(set.terms.size());
  for (exec::TermCandidates& term : set.terms) {
    streams.push_back(std::move(term.matches));
  }
  return streams;
}

Result<std::vector<ScoredTuple>> TopKSearcher::Search(const query::Query& query,
                                                      const TopKOptions& options,
                                                      SearchStats* stats) const {
  return SearchImpl(query, options, /*threshold_stop=*/true, nullptr, stats);
}

Result<std::vector<ScoredTuple>> TopKSearcher::Search(
    const query::Query& query, const TopKOptions& options,
    const exec::CandidateSet& candidates, SearchStats* stats) const {
  return SearchImpl(query, options, /*threshold_stop=*/true, &candidates, stats);
}

Result<std::vector<ScoredTuple>> TopKSearcher::NaiveSearch(
    const query::Query& query, const TopKOptions& options, SearchStats* stats) const {
  return SearchImpl(query, options, /*threshold_stop=*/false, nullptr, stats);
}

Result<std::vector<ScoredTuple>> TopKSearcher::SearchImpl(
    const query::Query& query, const TopKOptions& options, bool threshold_stop,
    const exec::CandidateSet* shared_candidates, SearchStats* stats) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (options.shard_count > 1 && options.shard_index >= options.shard_count) {
    return Status::InvalidArgument(
        "shard_index " + std::to_string(options.shard_index) +
        " out of range for shard_count " +
        std::to_string(options.shard_count));
  }
  const size_t m = query.terms.size();

  exec::CandidateSet local_candidates;
  const exec::CandidateSet* candidates = shared_candidates;
  if (candidates == nullptr) {
    obs::ScopedSpan span(options.trace, "candidates");
    local_candidates =
        exec::BuildCandidates(*index_, query, options.max_candidates_per_term);
    candidates = &local_candidates;
    span.AddCounter("candidates_total", local_candidates.CandidatesTotal());
  }

  SearchStats local_stats;
  local_stats.candidates_total = candidates->CandidatesTotal();
  local_stats.postings_advanced = candidates->stats.postings_advanced;
  local_stats.docs_skipped = candidates->stats.docs_skipped;

  obs::ScopedSpan group_span(options.trace, "group_docs");
  // Document-at-a-time alignment: the per-term score-sorted streams are
  // regrouped by candidate document, remembering each term's best content
  // score inside the document for the TA upper bound. Per-document buckets
  // keep stream (score) order, so the per-doc cap retains the best
  // candidates.
  struct DocGroup {
    std::vector<std::vector<const text::NodeMatch*>> per_term;
    double upper_bound = 0;  // sum of per-term max scores, compactness <= 1
    explicit DocGroup(size_t terms) : per_term(terms) {}
  };
  std::map<store::DocId, DocGroup> groups;
  for (size_t t = 0; t < m; ++t) {
    for (const text::NodeMatch& match : candidates->terms[t].matches) {
      auto [it, inserted] = groups.try_emplace(match.node.doc, m);
      auto& bucket = it->second.per_term[t];
      if (options.max_per_doc_per_term > 0 &&
          bucket.size() >= options.max_per_doc_per_term) {
        continue;
      }
      bucket.push_back(&match);
    }
  }

  // Cross-document tuples: allow a document to borrow candidates from
  // documents it links to (1 hop over non-tree edges), so e.g. a Mondial
  // country can pair with a Factbook country it references.
  if (options.allow_cross_document && m >= 2) {
    std::vector<std::pair<store::DocId, store::DocId>> doc_links;
    for (auto& [doc, group] : groups) {
      for (size_t t = 0; t < m; ++t) {
        for (const text::NodeMatch* match : group.per_term[t]) {
          // Hub cap (ROADMAP perf cliff): a link mediated by a node of huge
          // non-tree degree — a value-edge hub shared by hundreds of
          // documents — carries almost no connection signal but welds all
          // its documents into one cross product. The candidate's own degree
          // is loop-invariant and, when over the cap, every edge would be
          // skipped — so check it before materializing the hub's edge list.
          if (options.max_hub_degree > 0) {
            size_t degree = graph_->Degree(match->node);
            if (degree > options.max_hub_degree) {
              local_stats.hub_links_skipped += degree;
              continue;
            }
          }
          // Allocation-free edge walk: NonTreeEdges() copied every edge
          // (two Dewey vectors + a label) per candidate, visible in the
          // scan profile on link-dense corpora.
          graph_->ForEachNonTreeEdge(match->node, [&](const graph::Edge& edge) {
            // The hub may also sit on the far side, when the candidate is a
            // low-degree FK leaf pointing at it.
            if (options.max_hub_degree > 0) {
              const store::NodeId& far =
                  edge.from == match->node ? edge.to : edge.from;
              if (graph_->Degree(far) > options.max_hub_degree) {
                ++local_stats.hub_links_skipped;
                return;
              }
            }
            store::DocId other =
                edge.from.doc == doc ? edge.to.doc : edge.from.doc;
            if (other != doc && groups.count(other)) {
              doc_links.emplace_back(doc, other);
            }
          });
        }
      }
    }
    for (auto& [a, b] : doc_links) {
      DocGroup& ga = groups.at(a);
      const DocGroup& gb = groups.at(b);
      for (size_t t = 0; t < m; ++t) {
        for (const text::NodeMatch* match : gb.per_term[t]) {
          if (options.max_per_doc_per_term > 0 &&
              ga.per_term[t].size() >= 2 * options.max_per_doc_per_term) {
            break;
          }
          ga.per_term[t].push_back(match);
        }
      }
    }
  }

  // Compute upper bounds and order documents by them (TA sorted access).
  // Sharded serving mode: grouping and borrowing above ran over the full
  // candidate set (so cross-document tuples are identical in every shard),
  // but this scan only scores the documents this shard owns. Each DocId
  // belongs to exactly one shard, so the shards partition the unsharded
  // scan's enumerations and MergeShardTopK reassembles the exact ranking.
  const bool sharded = options.shard_count > 1;
  std::vector<std::pair<double, store::DocId>> order;
  for (auto& [doc, group] : groups) {
    if (sharded && doc % options.shard_count != options.shard_index) continue;
    bool complete = true;
    double bound = 0;
    for (size_t t = 0; t < m; ++t) {
      if (group.per_term[t].empty()) {
        complete = false;
        break;
      }
      double best = 0;
      for (const text::NodeMatch* match : group.per_term[t]) {
        best = std::max(best, match->score);
      }
      bound += best;
    }
    if (!complete) continue;
    group.upper_bound = bound;
    order.emplace_back(bound, doc);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  local_stats.docs_considered = order.size();
  group_span.AddCounter("docs_considered", order.size());
  group_span.End();

  obs::ScopedSpan scan_span(options.trace, "ta_scan");
  // Wall time spent inside connection scoring (the RunParallel batches),
  // accumulated on the coordinating thread only — span-level attribution of
  // "TA scan vs. connection scoring" without touching the trace from
  // workers. Two extra clock reads per scored document, and only when the
  // request is traced.
  uint64_t scoring_us = 0;

  TupleHeap best(options.k, TupleRankLess);
  // Per-document scratch, reused across the scan: the tuples awaiting
  // ConnectionSize and their resulting sizes.
  std::vector<ScoredTuple> batch;
  std::vector<std::optional<size_t>> sizes;
  std::vector<graph::GraphStats> kernel_stats;

  // Saturating size of a group's per-term cross product, for budget
  // accounting ahead of (or instead of) enumerating it.
  auto group_product = [m](const DocGroup& group) {
    uint64_t product = 1;
    for (size_t t = 0; t < m; ++t) {
      uint64_t n = group.per_term[t].size();
      if (n != 0 && product > UINT64_MAX / n) return UINT64_MAX;
      product *= n;
    }
    return product;
  };

  // Per-request deadline (api::SedaService): the clock starts when the scan
  // does, and is consulted once per candidate document — each document's
  // batch is bounded by the structural budgets above, so the overrun past the
  // deadline is one document's worth of work, not unbounded.
  const auto scan_start = std::chrono::steady_clock::now();
  auto deadline_expired = [&]() {
    if (options.deadline_ms == 0) return false;
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - scan_start);
    return static_cast<uint64_t>(elapsed.count()) >= options.deadline_ms;
  };

  double prev_bound = std::numeric_limits<double>::infinity();
  for (const auto& [bound, doc] : order) {
    // TA correctness rests on descending upper bounds: the threshold stop
    // below is only sound if no later document can beat the current bound.
    SEDA_DCHECK_LE(bound, prev_bound) << "TA scan order not descending";
    prev_bound = bound;
    if (options.k == 0) break;  // nothing to keep; skip the scan entirely
    if (deadline_expired()) {
      local_stats.deadline_exceeded = true;
      break;
    }
    if (threshold_stop && best.Full() &&
        best.Worst().score >= bound * Compactness(0)) {
      local_stats.early_terminated = true;
      break;
    }
    const DocGroup& group = groups.at(doc);

    // Per-query tuple budget (ROADMAP perf cliff backstop): documents come
    // in TA upper-bound order, so once the budget is spent the remaining —
    // least promising — enumerations are dropped and only counted.
    uint64_t budget_left =
        options.max_tuples_per_query == 0
            ? UINT64_MAX
            : options.max_tuples_per_query -
                  std::min<uint64_t>(local_stats.tuples_scored,
                                     options.max_tuples_per_query);
    // group_product saturates, so the trimmed counter must too — one
    // saturated group must read as "a lot", not wrap into garbage.
    auto add_trimmed = [&local_stats](uint64_t trimmed) {
      local_stats.tuples_trimmed =
          trimmed > UINT64_MAX - local_stats.tuples_trimmed
              ? UINT64_MAX
              : local_stats.tuples_trimmed + trimmed;
    };
    if (budget_left == 0) {
      add_trimmed(group_product(group));
      continue;  // keep counting what the budget trims, it is cheap
    }
    ++local_stats.docs_scored;

    // Enumerate the per-term cross product within this document group into a
    // batch of distinct tuples (at most budget_left of them).
    batch.clear();
    std::vector<size_t> idx(m, 0);
    uint64_t product = group_product(group);
    uint64_t enumerated = 0;
    while (true) {
      if (static_cast<uint64_t>(batch.size()) >= budget_left) {
        add_trimmed(product - enumerated);
        break;
      }
      ScoredTuple tuple;
      tuple.nodes.reserve(m);
      double content = 0;
      bool distinct = true;
      for (size_t t = 0; t < m; ++t) {
        SEDA_DCHECK_LT(idx[t], group.per_term[t].size())
            << "cross-product odometer ran past a term stream";
        const text::NodeMatch* match = group.per_term[t][idx[t]];
        // A tuple binds m distinct nodes; a node may not play two roles.
        for (const text::NodeMatch& prev : tuple.nodes) {
          if (prev.node == match->node) {
            distinct = false;
            break;
          }
        }
        tuple.nodes.push_back(*match);
        content += match->score;
      }
      ++enumerated;
      if (distinct) {
        tuple.content_score = content;
        batch.push_back(std::move(tuple));
      }
      // Advance the odometer.
      size_t t = 0;
      for (; t < m; ++t) {
        if (++idx[t] < group.per_term[t].size()) break;
        idx[t] = 0;
      }
      if (t == m) break;
    }

    // Score the batch: ConnectionSize per tuple is independent read-only
    // graph work, so it fans out across the pool; merging back in
    // enumeration order keeps results identical at any worker count.
    local_stats.tuples_scored += batch.size();
    sizes.assign(batch.size(), std::nullopt);
    // Per-tuple kernel counters, merged sequentially below in enumeration
    // order: the totals are identical at any worker count.
    kernel_stats.assign(batch.size(), graph::GraphStats{});
    // Sharded scans are already fanned out one-per-worker by the caller
    // (core::Snapshot::Search), and ThreadPool::ParallelFor must not nest —
    // so a shard scores its batches inline.
    ThreadPool* pool =
        !sharded && batch.size() >= options.parallel_batch_min ? pool_
                                                               : nullptr;
    const auto score_start = options.trace != nullptr
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    RunParallel(pool, batch.size(), [&](size_t i) {
      std::vector<store::NodeId> node_ids;
      node_ids.reserve(m);
      for (const auto& nm : batch[i].nodes) node_ids.push_back(nm.node);
      sizes[i] = graph_->ConnectionSize(node_ids, options.max_connect_depth,
                                        options.max_connect_visits,
                                        &kernel_stats[i]);
    });
    if (options.trace != nullptr) {
      scoring_us += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - score_start)
              .count());
    }
    for (const graph::GraphStats& ks : kernel_stats) {
      local_stats.bfs_expansions += ks.bfs_expansions;
      local_stats.intersection_probes += ks.intersection_probes;
      local_stats.sketch_hits += ks.sketch_hits;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!sizes[i].has_value()) continue;
      ScoredTuple& tuple = batch[i];
      tuple.connection_size = *sizes[i];
      tuple.score = tuple.content_score * Compactness(*sizes[i]);
      best.Insert(std::move(tuple), &local_stats.heap_evictions);
    }
  }

  scan_span.AddCounter("docs_scored", local_stats.docs_scored);
  scan_span.AddCounter("tuples_scored", local_stats.tuples_scored);
  scan_span.AddCounter("connection_scoring_us", scoring_us);
  scan_span.End();

  if (stats != nullptr) *stats = local_stats;
  return best.TakeSorted();
}

}  // namespace seda::topk
