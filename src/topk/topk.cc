#include "topk/topk.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace seda::topk {

namespace {

constexpr double kAllTermScore = 0.01;  // structure-only terms carry tiny weight

double Compactness(size_t connection_size) {
  return 1.0 / (1.0 + static_cast<double>(connection_size));
}

bool TupleLess(const ScoredTuple& a, const ScoredTuple& b) {
  if (a.score != b.score) return a.score > b.score;
  for (size_t i = 0; i < a.nodes.size() && i < b.nodes.size(); ++i) {
    if (!(a.nodes[i].node == b.nodes[i].node)) {
      return a.nodes[i].node < b.nodes[i].node;
    }
  }
  return false;
}

}  // namespace

std::string ScoredTuple::ToString(const store::DocumentStore& store) const {
  std::string out = "score=" + std::to_string(score) + " [";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += nodes[i].node.ToString();
    out += "='" + store.GetContent(nodes[i].node) + "'";
  }
  out += "]";
  return out;
}

std::vector<std::vector<text::NodeMatch>> TopKSearcher::CandidateStreams(
    const query::Query& query, const TopKOptions& options) const {
  std::vector<std::vector<text::NodeMatch>> streams;
  streams.reserve(query.terms.size());
  const auto& dict = index_->store().paths();

  for (const query::QueryTerm& term : query.terms) {
    std::vector<text::NodeMatch> matches;
    bool all_content = !term.search || term.search->kind == text::TextExpr::Kind::kAll;
    if (all_content) {
      // Structure-only term: candidates come from the context's paths.
      std::vector<store::PathId> paths = term.context.ResolvePathIds(dict);
      for (store::PathId path : paths) {
        for (const store::NodeId& node : index_->NodesWithPath(path)) {
          matches.push_back({node, path, kAllTermScore});
        }
      }
    } else {
      matches = index_->EvaluateNodes(*term.search);
      if (!term.context.unrestricted()) {
        std::vector<store::PathId> paths = term.context.ResolvePathIds(dict);
        std::unordered_set<store::PathId> allowed(paths.begin(), paths.end());
        std::erase_if(matches, [&](const text::NodeMatch& m) {
          return !allowed.count(m.path);
        });
      }
    }
    // Sort by descending content score (sorted access order for TA).
    std::stable_sort(matches.begin(), matches.end(),
                     [](const text::NodeMatch& a, const text::NodeMatch& b) {
                       return a.score > b.score;
                     });
    if (options.max_candidates_per_term > 0 &&
        matches.size() > options.max_candidates_per_term) {
      matches.resize(options.max_candidates_per_term);
    }
    streams.push_back(std::move(matches));
  }
  return streams;
}

Result<std::vector<ScoredTuple>> TopKSearcher::Search(const query::Query& query,
                                                      const TopKOptions& options,
                                                      SearchStats* stats) const {
  return SearchImpl(query, options, /*threshold_stop=*/true, stats);
}

Result<std::vector<ScoredTuple>> TopKSearcher::NaiveSearch(
    const query::Query& query, const TopKOptions& options, SearchStats* stats) const {
  return SearchImpl(query, options, /*threshold_stop=*/false, stats);
}

Result<std::vector<ScoredTuple>> TopKSearcher::SearchImpl(
    const query::Query& query, const TopKOptions& options, bool threshold_stop,
    SearchStats* stats) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("empty query");
  }
  const size_t m = query.terms.size();
  auto streams = CandidateStreams(query, options);

  SearchStats local_stats;
  for (const auto& s : streams) local_stats.candidates_total += s.size();

  // Group candidates per document per term, remembering each term's best
  // (maximum) content score inside the document for the TA upper bound.
  struct DocGroup {
    std::vector<std::vector<const text::NodeMatch*>> per_term;
    double upper_bound = 0;  // sum of per-term max scores, compactness <= 1
    explicit DocGroup(size_t terms) : per_term(terms) {}
  };
  std::map<store::DocId, DocGroup> groups;
  for (size_t t = 0; t < m; ++t) {
    for (const text::NodeMatch& match : streams[t]) {
      auto [it, inserted] = groups.try_emplace(match.node.doc, m);
      auto& bucket = it->second.per_term[t];
      if (options.max_per_doc_per_term > 0 &&
          bucket.size() >= options.max_per_doc_per_term) {
        continue;
      }
      bucket.push_back(&match);
    }
  }

  // Cross-document tuples: allow a document to borrow candidates from
  // documents it links to (1 hop over non-tree edges), so e.g. a Mondial
  // country can pair with a Factbook country it references.
  if (options.allow_cross_document && m >= 2) {
    std::vector<std::pair<store::DocId, store::DocId>> doc_links;
    for (auto& [doc, group] : groups) {
      for (size_t t = 0; t < m; ++t) {
        for (const text::NodeMatch* match : group.per_term[t]) {
          for (const graph::Edge& edge : graph_->NonTreeEdges(match->node)) {
            store::DocId other =
                edge.from.doc == doc ? edge.to.doc : edge.from.doc;
            if (other != doc && groups.count(other)) {
              doc_links.emplace_back(doc, other);
            }
          }
        }
      }
    }
    for (auto& [a, b] : doc_links) {
      DocGroup& ga = groups.at(a);
      const DocGroup& gb = groups.at(b);
      for (size_t t = 0; t < m; ++t) {
        for (const text::NodeMatch* match : gb.per_term[t]) {
          if (options.max_per_doc_per_term > 0 &&
              ga.per_term[t].size() >= 2 * options.max_per_doc_per_term) {
            break;
          }
          ga.per_term[t].push_back(match);
        }
      }
    }
  }

  // Compute upper bounds and order documents by them (TA sorted access).
  std::vector<std::pair<double, store::DocId>> order;
  for (auto& [doc, group] : groups) {
    bool complete = true;
    double bound = 0;
    for (size_t t = 0; t < m; ++t) {
      if (group.per_term[t].empty()) {
        complete = false;
        break;
      }
      double best = 0;
      for (const text::NodeMatch* match : group.per_term[t]) {
        best = std::max(best, match->score);
      }
      bound += best;
    }
    if (!complete) continue;
    group.upper_bound = bound;
    order.emplace_back(bound, doc);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  local_stats.docs_considered = order.size();

  std::vector<ScoredTuple> best;
  auto maybe_keep = [&](ScoredTuple tuple) {
    best.push_back(std::move(tuple));
    std::sort(best.begin(), best.end(), TupleLess);
    if (best.size() > options.k) best.resize(options.k);
  };

  for (const auto& [bound, doc] : order) {
    if (threshold_stop && best.size() >= options.k &&
        best.back().score >= bound * Compactness(0)) {
      local_stats.early_terminated = true;
      break;
    }
    const DocGroup& group = groups.at(doc);
    ++local_stats.docs_scored;

    // Enumerate the per-term cross product within this document group.
    std::vector<size_t> idx(m, 0);
    while (true) {
      ScoredTuple tuple;
      tuple.nodes.reserve(m);
      double content = 0;
      bool distinct = true;
      for (size_t t = 0; t < m; ++t) {
        const text::NodeMatch* match = group.per_term[t][idx[t]];
        // A tuple binds m distinct nodes; a node may not play two roles.
        for (const text::NodeMatch& prev : tuple.nodes) {
          if (prev.node == match->node) {
            distinct = false;
            break;
          }
        }
        tuple.nodes.push_back(*match);
        content += match->score;
      }
      if (distinct) {
        std::vector<store::NodeId> node_ids;
        node_ids.reserve(m);
        for (const auto& nm : tuple.nodes) node_ids.push_back(nm.node);
        auto size = graph_->ConnectionSize(node_ids, options.max_connect_depth);
        ++local_stats.tuples_scored;
        if (size.has_value()) {
          tuple.content_score = content;
          tuple.connection_size = *size;
          tuple.score = content * Compactness(*size);
          maybe_keep(std::move(tuple));
        }
      }
      // Advance the odometer.
      size_t t = 0;
      for (; t < m; ++t) {
        if (++idx[t] < group.per_term[t].size()) break;
        idx[t] = 0;
      }
      if (t == m) break;
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return best;
}

}  // namespace seda::topk
