#ifndef SEDA_NET_EVENT_LOOP_H_
#define SEDA_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace seda::net {

/// One epoll reactor, run on exactly one thread. Connections register their
/// fds with edge-level callbacks; other threads hand work to the loop thread
/// through Post() (an eventfd wakes the epoll_wait). This is the
/// thread-per-core serving core: the Server owns N loops, each connection is
/// pinned to one, so per-connection state needs no locking — it is only ever
/// touched from its loop's thread.
class EventLoop {
 public:
  /// Callback for fd readiness. `events` is the raw epoll bitmask (EPOLLIN /
  /// EPOLLOUT / EPOLLHUP / EPOLLERR).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// True when construction acquired its epoll + eventfd descriptors.
  Status status() const { return status_; }

  /// Registers `fd` for the epoll events in `events`; the callback fires on
  /// the loop thread. The callback object must stay valid until Remove().
  Status Add(int fd, uint32_t events, FdCallback callback);
  /// Changes the event mask of a registered fd (EPOLLOUT backpressure).
  Status Modify(int fd, uint32_t events);
  /// Unregisters `fd`. Safe on the loop thread only. Does not close the fd.
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread and wakes the epoll. Safe
  /// from any thread — this is how worker threads return responses to a
  /// connection they do not own.
  void Post(std::function<void()> task);

  /// Runs the reactor until Stop(). `tick` (may be null) fires between epoll
  /// waits, at least every tick_interval_ms — connection idle sweeps hang
  /// off it.
  void Run(const std::function<void()>& tick, int tick_interval_ms);

  /// Signals Run() to return after the current iteration; any thread.
  void Stop();

  /// True on the thread currently inside Run().
  bool InLoopThread() const;

 private:
  void DrainPosted();

  Status status_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: Post()/Stop() wakeups
  /// Registered callbacks, keyed by fd. epoll events carry the fd (not a
  /// pointer), so a callback Remove()d mid-dispatch-batch is simply not
  /// found for the stale event — no dangling pointer.
  std::unordered_map<int, FdCallback> callbacks_;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  bool stop_ = false;  ///< guarded by posted_mu_

  /// Hashed thread id of the Run() caller; 0 when not running.
  std::atomic<uint64_t> loop_thread_{0};
};

}  // namespace seda::net

#endif  // SEDA_NET_EVENT_LOOP_H_
