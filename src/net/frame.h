#ifndef SEDA_NET_FRAME_H_
#define SEDA_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace seda::net {

/// The wire framing under the JSON envelope protocol: every message —
/// request or response — is one frame
///
///   +------+----------------+-------------------+
///   | "SEDA" (4 bytes magic) | u32 LE payload len | payload (JSON bytes) |
///   +------+----------------+-------------------+
///
/// The magic makes accidental cross-protocol connects (HTTP, TLS hellos)
/// fail fast with a typed error instead of a 4 GiB length allocation; the
/// length cap bounds per-connection memory. The payload is exactly the JSON
/// the in-process SedaService::Handle() speaks — framing adds transport
/// boundaries, nothing else.

inline constexpr char kFrameMagic[4] = {'S', 'E', 'D', 'A'};
inline constexpr size_t kFrameHeaderBytes = 8;  ///< magic + u32 length
/// Default payload cap. Responses carrying full R(q) completions are the
/// largest legitimate frames; 16 MiB leaves an order of magnitude of slack.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 16u << 20;

/// Wraps `payload` into one frame (header + bytes appended to a fresh
/// string). Encoding never fails: lengths above 4 GiB cannot reach here
/// because Json::Write produces in-memory strings.
std::string EncodeFrame(const std::string& payload);

/// Incremental frame parser for one connection's byte stream. Feed() raw
/// bytes as they arrive, then Next() until it reports kNeedMore. This is an
/// UNTRUSTED-INPUT surface (the fourth one, after wire/image/query): every
/// state transition is bounds-checked, malformed input yields a sticky
/// kError (the transport must close — resynchronizing inside a corrupt
/// stream would misparse payload bytes as headers), and buffered bytes are
/// bounded by max_payload + header.
class FrameDecoder {
 public:
  enum class Event {
    kNeedMore,  ///< no complete frame buffered; Feed() more bytes
    kFrame,     ///< one payload extracted
    kError,     ///< protocol violation; sticky, connection must close
  };

  struct Result {
    Event event = Event::kNeedMore;
    std::string payload;  ///< set when event == kFrame
    std::string error;    ///< set when event == kError
  };

  explicit FrameDecoder(uint32_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Appends raw bytes from the socket. Safe to call with any chunking,
  /// including zero-length and mid-header splits.
  void Feed(const char* data, size_t size);

  /// Extracts the next complete frame, or reports kNeedMore/kError. After
  /// kError every future Next() returns the same error.
  Result Next();

  /// Bytes currently buffered (tests + memory accounting).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_payload_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  bool failed_ = false;
  std::string error_;
};

}  // namespace seda::net

#endif  // SEDA_NET_FRAME_H_
