#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>
#include <thread>
#include <utility>

#include "common/check.h"

namespace seda::net {

namespace {

uint64_t ThisThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    status_ = Errno("epoll_create1");
    return;
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    status_ = Errno("eventfd");
    return;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    status_ = Errno("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  SEDA_RETURN_IF_ERROR(status_);
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Errno("epoll_ctl(add)");
  }
  callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  SEDA_RETURN_IF_ERROR(status_);
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run(const std::function<void()>& tick, int tick_interval_ms) {
  SEDA_DCHECK(status_.ok()) << "running a failed EventLoop";
  loop_thread_.store(ThisThreadId(), std::memory_order_relaxed);
  epoll_event events[64];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(posted_mu_);
      if (stop_) break;
    }
    const int n = epoll_wait(epoll_fd_, events,
                             static_cast<int>(std::size(events)),
                             tick_interval_ms > 0 ? tick_interval_ms : -1);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) it->second(events[i].events);
    }
    DrainPosted();
    if (tick) tick();
  }
  DrainPosted();  // run anything posted between Stop() and exit
  loop_thread_.store(0, std::memory_order_relaxed);
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    stop_ = true;
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::InLoopThread() const {
  return loop_thread_.load(std::memory_order_relaxed) == ThisThreadId();
}

}  // namespace seda::net
