#ifndef SEDA_NET_CLIENT_H_
#define SEDA_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace seda::net {

/// Minimal blocking client for the SEDA frame protocol — what explore_cli
/// --connect, the loopback tests and the frontend benchmark speak. One
/// socket, synchronous Call() (send one request frame, read one response
/// frame) plus split Send()/ReadFrame() for pipelining tests. Not
/// thread-safe; one client per thread.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }

  /// Connects to host:port (IPv4 dotted or "localhost").
  /// `recv_timeout_ms` > 0 sets SO_RCVTIMEO so a hung server surfaces as
  /// IoError instead of blocking the caller forever.
  Status Connect(const std::string& host, uint16_t port,
                 uint64_t recv_timeout_ms = 0);

  /// One round trip: frame `request_json`, send, read one response frame.
  Result<std::string> Call(const std::string& request_json);

  /// Sends one framed request without waiting (pipelining).
  Status Send(const std::string& request_json);
  /// Sends raw bytes verbatim — malformed-input tests.
  Status SendRaw(const std::string& bytes);
  /// Reads the next complete response frame.
  Result<std::string> ReadFrame();

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace seda::net

#endif  // SEDA_NET_CLIENT_H_
