#include "net/admission.h"

namespace seda::net {

const char* AdmissionVerdictName(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmit: return "admit";
    case AdmissionVerdict::kTooManyConnections:
      return "connection limit reached";
    case AdmissionVerdict::kInflightLimit:
      return "per-connection in-flight limit reached";
    case AdmissionVerdict::kConnectionRate:
      return "per-connection request rate exceeded";
    case AdmissionVerdict::kSessionRate:
      return "per-session request rate exceeded";
    case AdmissionVerdict::kQueueFull: return "server work queue full";
    case AdmissionVerdict::kDraining: return "server shutting down";
  }
  return "overloaded";
}

AdmissionVerdict AdmissionController::OnRequest(
    size_t inflight, TokenBucket& connection_bucket,
    const std::string& session_id,
    std::chrono::steady_clock::time_point now) {
  if (options_.max_inflight_per_connection > 0 &&
      inflight >= options_.max_inflight_per_connection) {
    return AdmissionVerdict::kInflightLimit;
  }
  if (!connection_bucket.TryAcquire(now)) {
    return AdmissionVerdict::kConnectionRate;
  }
  if (options_.per_session_rps > 0 && !session_id.empty()) {
    std::lock_guard<std::mutex> lock(session_mu_);
    auto it = session_buckets_.find(session_id);
    if (it == session_buckets_.end()) {
      it = session_buckets_
               .emplace(session_id,
                        TokenBucket(options_.per_session_rps,
                                    options_.per_session_rps * 2))
               .first;
    }
    if (!it->second.TryAcquire(now)) return AdmissionVerdict::kSessionRate;
  }
  return AdmissionVerdict::kAdmit;
}

}  // namespace seda::net
