#ifndef SEDA_NET_SERVER_H_
#define SEDA_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "common/status.h"
#include "net/admission.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/http.h"

namespace seda::net {

/// Server tuning. Defaults are production-shaped; tests shrink the queue
/// and limits to force the shedding paths deterministically.
struct ServerOptions {
  /// Bind address. Tests and the CI smoke stay on loopback.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the kernel picks; read back via port()).
  uint16_t port = 0;
  /// epoll reactor threads; connections are pinned round-robin.
  size_t io_threads = 1;
  /// Threads executing SedaService::Handle. 0 = hardware_concurrency.
  size_t worker_threads = 0;
  /// Bounded work queue between IO and workers; a full queue sheds with an
  /// `overloaded` frame instead of building unbounded backlog.
  size_t queue_capacity = 256;
  /// Frame payload cap for reads (responses are never capped).
  uint32_t max_frame_bytes = kDefaultMaxPayloadBytes;
  /// Close connections idle (no traffic, nothing in flight) this long.
  /// 0 = never. This is the transport read timeout.
  uint64_t idle_timeout_ms = 0;
  /// Transport-level request budget: injected into each request envelope's
  /// deadline_ms (capping any client value), so a slow engine scan returns
  /// a well-formed partial response instead of holding the socket. 0 = off.
  uint64_t request_timeout_ms = 0;
  /// How long Stop() waits for in-flight requests, then for final flushes.
  uint64_t drain_timeout_ms = 5000;
  /// Admission control (connection caps, in-flight caps, rate limits).
  AdmissionOptions admission;
  /// Prometheus scrape port (`GET /metrics`, net/http.h) on the same host:
  /// -1 = no HTTP listener (default), 0 = ephemeral (read back via
  /// metrics_port()), >0 = fixed. Kept off the frame port so the exposition
  /// needs no frame-speaking client — `curl` and a Prometheus scraper work
  /// as-is (seda_server --metrics-port lands here).
  int metrics_port = -1;
};

/// Transport counters, all monotonic. Exposed raw for tests and exported
/// through SedaService::Statz as the "transport" section.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_refused{0};  ///< at accept (conn cap)
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> requests_shed{0};    ///< overloaded error frames
  std::atomic<uint64_t> protocol_errors{0};  ///< decoder failures
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
};

/// The network front door: an epoll thread-per-core TCP server speaking
/// SEDA frames (net/frame.h) whose payloads are exactly the JSON envelopes
/// of SedaService::Handle(). Architecture:
///
///   accept (loop 0) -> Connection pinned to loop i -> FrameDecoder
///     -> admission verdict (IO thread; sheds answer inline)
///     -> bounded work queue -> worker thread -> service->Handle()
///     -> Post back to the owning loop -> framed response write
///
/// Every refusal — connection cap, in-flight cap, rate limits, full queue,
/// draining — is answered with a well-formed `overloaded` error frame
/// (status code "Unavailable"); the server never sheds by resetting or
/// silently dropping, so a loaded client can always tell backpressure from
/// breakage. Requests may complete out of order across worker threads; a
/// client that pipelines puts an "id" field in the envelope and the server
/// echoes it on the matching response.
///
/// Stop() drains: stop accepting, shed new frames, wait for in-flight work
/// (up to drain_timeout_ms), join workers, flush remaining writes, close.
class Server {
 public:
  Server(api::SedaService* service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns IO + worker threads. Registers this server's
  /// stats with the service's statz (set_transport_statz).
  Status Start();

  /// Graceful shutdown; idempotent, safe from any thread (not a loop
  /// thread). Returns after all threads joined and sockets closed.
  void Stop();

  /// The bound port (after Start); useful with port = 0.
  uint16_t port() const { return port_; }
  /// The bound HTTP metrics port, or 0 when no listener was configured.
  uint16_t metrics_port() const {
    return metrics_listener_ != nullptr ? metrics_listener_->port() : 0;
  }

  const ServerStats& stats() const { return stats_; }
  const ServerOptions& options() const { return options_; }
  size_t connection_count() const { return admission_.connection_count(); }

  /// Statz "transport" section snapshot.
  std::vector<std::pair<std::string, uint64_t>> TransportStatz() const;

  // --- Loop-thread entry points (called by Connection) -------------------

  /// One decoded frame from `conn`: admission check, deadline injection,
  /// enqueue — or an inline `overloaded` answer.
  void OnFrame(const std::shared_ptr<Connection>& conn, std::string payload);
  void OnConnectionClosed(Connection* conn);
  ServerStats& mutable_stats() { return stats_; }

 private:
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    std::string payload;
    api::Json id;  ///< envelope "id" echoed onto the response (null = none)
    bool has_id = false;
  };

  /// Bounded MPMC queue, IO threads -> workers.
  class WorkQueue {
   public:
    explicit WorkQueue(size_t capacity) : capacity_(capacity) {}
    bool TryPush(WorkItem item);
    /// Blocks for the next item; false when closed and empty.
    bool Pop(WorkItem& item);
    void Close();
    size_t size() const;

   private:
    size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable ready_;
    std::deque<WorkItem> items_;
    bool closed_ = false;
  };

  void AcceptReady();
  void WorkerMain();
  /// Registers the transport's metric families (seda_net_*) with the
  /// service's registry; Stop() unregisters them so the render-time
  /// callbacks never outlive this server.
  void RegisterMetrics();
  void UnregisterMetrics();
  /// Builds the `overloaded` (or protocol-error) envelope for a refusal.
  static std::string RefusalPayload(AdmissionVerdict verdict,
                                    const api::Json* id);
  void Shed(const std::shared_ptr<Connection>& conn, AdmissionVerdict verdict,
            const api::Json* id);
  /// Per-loop periodic tick: idle sweep over that loop's connections.
  void LoopTick(size_t loop_index);

  api::SedaService* service_;
  ServerOptions options_;
  AdmissionController admission_;
  ServerStats stats_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> io_threads_;
  /// Loop-thread-owned connection registries, one per loop.
  std::vector<std::vector<std::shared_ptr<Connection>>> loop_connections_;
  std::atomic<size_t> next_loop_{0};

  WorkQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> inflight_total_{0};

  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;

  /// HTTP scrape responder (only when options_.metrics_port >= 0).
  std::unique_ptr<HttpMetricsListener> metrics_listener_;
  /// Family names registered with the service registry, for teardown.
  std::vector<std::string> registered_metrics_;
};

}  // namespace seda::net

#endif  // SEDA_NET_SERVER_H_
