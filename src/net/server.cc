#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "obs/metrics.h"

namespace seda::net {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

// --- WorkQueue ----------------------------------------------------------

bool Server::WorkQueue::TryPush(WorkItem item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
  }
  ready_.notify_one();
  return true;
}

bool Server::WorkQueue::Pop(WorkItem& item) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;
  item = std::move(items_.front());
  items_.pop_front();
  return true;
}

void Server::WorkQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

size_t Server::WorkQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

// --- Server -------------------------------------------------------------

Server::Server(api::SedaService* service, ServerOptions options)
    : service_(service),
      options_(options),
      admission_(options.admission),
      queue_(options.queue_capacity > 0 ? options.queue_capacity : 1) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  SEDA_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" + options_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, 1024) != 0) return Errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  const size_t io_threads = std::max<size_t>(1, options_.io_threads);
  loops_.reserve(io_threads);
  loop_connections_.resize(io_threads);
  for (size_t i = 0; i < io_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    SEDA_RETURN_IF_ERROR(loops_.back()->status());
  }
  // The accept socket lives on loop 0; new connections go round-robin.
  SEDA_RETURN_IF_ERROR(
      loops_[0]->Add(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); }));

  service_->set_transport_statz([this] { return TransportStatz(); });
  RegisterMetrics();
  if (options_.metrics_port >= 0) {
    metrics_listener_ = std::make_unique<HttpMetricsListener>(
        options_.host, static_cast<uint16_t>(options_.metrics_port),
        [service = service_] { return service->RenderMetrics(); });
    const Status listener_status = metrics_listener_->Start();
    if (!listener_status.ok()) {
      metrics_listener_.reset();
      UnregisterMetrics();
      return listener_status;
    }
  }

  size_t worker_threads = options_.worker_threads;
  if (worker_threads == 0) {
    worker_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_threads);
  for (size_t i = 0; i < worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  io_threads_.reserve(io_threads);
  for (size_t i = 0; i < io_threads; ++i) {
    EventLoop* loop = loops_[i].get();
    io_threads_.emplace_back(
        [this, loop, i] { loop->Run([this, i] { LoopTick(i); }, 100); });
  }
  started_ = true;
  return Status::OK();
}

void Server::AcceptReady() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: wait for the next event
    }
    const int enable = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    if (draining_.load(std::memory_order_relaxed) ||
        admission_.OnConnectionOpen() != AdmissionVerdict::kAdmit) {
      // Refused at the door — still a well-formed answer, never a reset.
      const std::string payload = RefusalPayload(
          draining_.load(std::memory_order_relaxed)
              ? AdmissionVerdict::kDraining
              : AdmissionVerdict::kTooManyConnections,
          nullptr);
      const std::string frame = EncodeFrame(payload);
      [[maybe_unused]] ssize_t n =
          send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      close(fd);
      stats_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    const size_t index =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    EventLoop* loop = loops_[index].get();
    auto conn = std::make_shared<Connection>(this, loop, fd);
    loop->Post([this, index, conn] {
      loop_connections_[index].push_back(conn);
      conn->Register();
    });
  }
}

std::string Server::RefusalPayload(AdmissionVerdict verdict,
                                   const api::Json* id) {
  api::Json envelope = api::Json::Object();
  envelope.Set("status", api::ToJson(api::WireStatus::FromStatus(
                             Status::Unavailable(std::string("overloaded: ") +
                                                 AdmissionVerdictName(verdict)))));
  if (id != nullptr) envelope.Set("id", *id);
  return envelope.Write();
}

void Server::Shed(const std::shared_ptr<Connection>& conn,
                  AdmissionVerdict verdict, const api::Json* id) {
  stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
  conn->SendPayload(RefusalPayload(verdict, id));
}

void Server::OnFrame(const std::shared_ptr<Connection>& conn,
                     std::string payload) {
  stats_.frames_received.fetch_add(1, std::memory_order_relaxed);

  // Parse the envelope once here: the admission check needs session_id, the
  // transport deadline rewrites deadline_ms, and the "id" must be echoed
  // even on refusals. A payload that fails to parse is forwarded untouched
  // — the service's own envelope handling produces the error response.
  api::Json id;
  bool has_id = false;
  std::string session_id;
  auto parsed = api::Json::Parse(payload);
  const bool is_object =
      parsed.ok() && parsed.value().kind() == api::Json::Kind::kObject;
  if (is_object) {
    const api::Json* id_field = parsed.value().Find("id");
    if (id_field != nullptr) {
      id = *id_field;
      has_id = true;
    }
    const api::Json* session = parsed.value().Find("session_id");
    if (session != nullptr) session_id = session->AsString();
  }

  if (draining_.load(std::memory_order_relaxed)) {
    Shed(conn, AdmissionVerdict::kDraining, has_id ? &id : nullptr);
    return;
  }
  const AdmissionVerdict verdict = admission_.OnRequest(
      conn->inflight(), conn->rate_bucket(), session_id, Clock::now());
  if (verdict != AdmissionVerdict::kAdmit) {
    Shed(conn, verdict, has_id ? &id : nullptr);
    return;
  }

  if (is_object && options_.request_timeout_ms > 0) {
    // Transport deadline: cap (or supply) the envelope's deadline_ms so the
    // engine's cooperative deadline check bounds socket occupancy. The
    // response comes back well-formed with stats.deadline_exceeded set —
    // load never turns into a hung connection.
    const api::Json* deadline = parsed.value().Find("deadline_ms");
    const uint64_t requested = deadline != nullptr ? deadline->AsUint() : 0;
    const uint64_t capped =
        requested == 0 ? options_.request_timeout_ms
                       : std::min(requested, options_.request_timeout_ms);
    parsed.value().Set("deadline_ms", api::Json::Uint(capped));
    payload = parsed.value().Write();
  }

  WorkItem item;
  item.conn = conn;
  item.payload = std::move(payload);
  item.id = id;
  item.has_id = has_id;
  inflight_total_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.TryPush(std::move(item))) {
    inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    Shed(conn, AdmissionVerdict::kQueueFull, has_id ? &id : nullptr);
    return;
  }
  // Count in-flight only after a successful push; the counter lives on the
  // loop thread, and the worker's completion is Post()ed back to it.
  conn->OnRequestQueued();
}

void Server::WorkerMain() {
  WorkItem item;
  while (queue_.Pop(item)) {
    std::string response = service_->Handle(item.payload);
    if (item.has_id) {
      // Echo the client's correlation id: pipelined requests complete out
      // of order across workers, the id is how responses are matched up.
      auto parsed = api::Json::Parse(response);
      if (parsed.ok() && parsed.value().kind() == api::Json::Kind::kObject) {
        parsed.value().Set("id", item.id);
        response = parsed.value().Write();
      }
    }
    std::shared_ptr<Connection> conn = std::move(item.conn);
    EventLoop* loop = conn->loop();
    loop->Post([this, conn, response = std::move(response)] {
      conn->CompleteRequest(response);
      inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    });
    item = WorkItem{};
  }
}

void Server::LoopTick(size_t loop_index) {
  std::vector<std::shared_ptr<Connection>>& connections =
      loop_connections_[loop_index];
  // Compact closed connections (dropping the registry reference) and sweep
  // idle ones.
  const Clock::time_point now = Clock::now();
  const std::chrono::milliseconds idle_timeout(options_.idle_timeout_ms);
  for (auto& conn : connections) {
    if (conn->closed()) continue;
    if (options_.idle_timeout_ms > 0 && conn->IdleExpired(now, idle_timeout)) {
      stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
      conn->Close();
    }
  }
  connections.erase(
      std::remove_if(connections.begin(), connections.end(),
                     [](const std::shared_ptr<Connection>& conn) {
                       return conn->closed();
                     }),
      connections.end());
}

void Server::OnConnectionClosed(Connection*) {
  admission_.OnConnectionClosed();
  // The registry entry is compacted by the owning loop's next tick.
}

void Server::RegisterMetrics() {
  obs::MetricsRegistry& registry = service_->metrics();
  // Monotonic transport counters: the values live in stats_ (updated on the
  // IO threads' hot paths with plain relaxed atomics), so the registry holds
  // render-time callbacks instead of duplicating the accounting.
  struct CounterSpec {
    const char* name;
    const char* help;
    const std::atomic<uint64_t>* value;
  };
  const CounterSpec counters[] = {
      {"seda_net_connections_accepted_total", "Connections accepted.",
       &stats_.connections_accepted},
      {"seda_net_connections_refused_total",
       "Connections refused at accept (connection cap or draining).",
       &stats_.connections_refused},
      {"seda_net_frames_received_total", "Request frames decoded.",
       &stats_.frames_received},
      {"seda_net_responses_sent_total", "Response frames fully written.",
       &stats_.responses_sent},
      {"seda_net_requests_shed_total",
       "Requests answered with an overloaded error frame.",
       &stats_.requests_shed},
      {"seda_net_protocol_errors_total", "Frame decoder failures.",
       &stats_.protocol_errors},
      {"seda_net_idle_closed_total", "Connections closed by the idle sweep.",
       &stats_.idle_closed},
      {"seda_net_bytes_read_total", "Bytes read off accepted sockets.",
       &stats_.bytes_read},
      {"seda_net_bytes_written_total", "Bytes written to accepted sockets.",
       &stats_.bytes_written},
  };
  registered_metrics_.clear();
  for (const CounterSpec& spec : counters) {
    registry.AddCallbackCounter(spec.name, spec.help, {},
                                [value = spec.value] {
                                  return value->load(std::memory_order_relaxed);
                                });
    registered_metrics_.emplace_back(spec.name);
  }
  registry.AddGauge("seda_net_connections_active", "Open connections.", {},
                    [this] {
                      return static_cast<double>(admission_.connection_count());
                    });
  registered_metrics_.emplace_back("seda_net_connections_active");
  registry.AddGauge("seda_net_queue_depth",
                    "Requests waiting in the IO->worker queue.", {},
                    [this] { return static_cast<double>(queue_.size()); });
  registered_metrics_.emplace_back("seda_net_queue_depth");
  registry.AddGauge(
      "seda_net_inflight", "Requests queued or executing.", {}, [this] {
        return static_cast<double>(
            inflight_total_.load(std::memory_order_relaxed));
      });
  registered_metrics_.emplace_back("seda_net_inflight");
}

void Server::UnregisterMetrics() {
  obs::MetricsRegistry& registry = service_->metrics();
  for (const std::string& name : registered_metrics_) {
    registry.Unregister(name);
  }
  registered_metrics_.clear();
}

std::vector<std::pair<std::string, uint64_t>> Server::TransportStatz() const {
  return {
      {"connections_active", admission_.connection_count()},
      {"connections_accepted",
       stats_.connections_accepted.load(std::memory_order_relaxed)},
      {"connections_refused",
       stats_.connections_refused.load(std::memory_order_relaxed)},
      {"frames_received",
       stats_.frames_received.load(std::memory_order_relaxed)},
      {"responses_sent", stats_.responses_sent.load(std::memory_order_relaxed)},
      {"requests_shed", stats_.requests_shed.load(std::memory_order_relaxed)},
      {"protocol_errors",
       stats_.protocol_errors.load(std::memory_order_relaxed)},
      {"idle_closed", stats_.idle_closed.load(std::memory_order_relaxed)},
      {"queue_depth", queue_.size()},
      {"inflight", inflight_total_.load(std::memory_order_relaxed)},
      {"bytes_read", stats_.bytes_read.load(std::memory_order_relaxed)},
      {"bytes_written", stats_.bytes_written.load(std::memory_order_relaxed)},
  };
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;

  // 0. Retire the scrape listener and the registry callbacks that read this
  // server's state, so no render can observe a half-torn-down transport.
  if (metrics_listener_ != nullptr) metrics_listener_->Stop();
  UnregisterMetrics();

  // 1. Stop accepting; new frames on live connections shed with "draining".
  draining_.store(true, std::memory_order_relaxed);
  loops_[0]->Post([this] {
    loops_[0]->Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  });

  // 2. Drain: wait for queued + executing requests to finish (their
  // responses land in connection write buffers), bounded by drain_timeout.
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  while (inflight_total_.load(std::memory_order_relaxed) > 0 &&
         Clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // 3. Retire the workers.
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();

  // 4. Flush remaining writes and close every connection, then stop loops.
  for (size_t i = 0; i < loops_.size(); ++i) {
    EventLoop* loop = loops_[i].get();
    loop->Post([this, i, drain_deadline] {
      for (auto& conn : loop_connections_[i]) {
        if (!conn->closed()) conn->FlushAndClose(drain_deadline);
      }
      loop_connections_[i].clear();
    });
    loop->Stop();
  }
  for (std::thread& io_thread : io_threads_) io_thread.join();
  workers_.clear();
  io_threads_.clear();
}

}  // namespace seda::net
