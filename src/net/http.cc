#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace seda::net {

namespace {

bool IsTokenChar(char c) {
  // RFC 9110 token characters (method and header names).
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string HttpRequest::Path() const {
  const size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

HttpParse ParseHttpRequest(std::string_view data, HttpRequest* out) {
  *out = HttpRequest{};
  size_t pos = 0;
  bool saw_request_line = false;
  while (true) {
    const size_t line_end = data.find('\n', pos);
    if (line_end == std::string_view::npos) {
      // No terminator yet: incomplete unless the head is already oversized
      // (then it can never become valid within the cap).
      return data.size() - pos > kMaxHttpHeadBytes || pos > kMaxHttpHeadBytes
                 ? HttpParse::kBad
                 : HttpParse::kIncomplete;
    }
    if (line_end > kMaxHttpHeadBytes) return HttpParse::kBad;
    std::string_view line = data.substr(pos, line_end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = line_end + 1;

    if (!saw_request_line) {
      // Request line: METHOD SP target SP HTTP/x.y — single spaces, no tabs.
      const size_t sp1 = line.find(' ');
      if (sp1 == std::string_view::npos) return HttpParse::kBad;
      const size_t sp2 = line.find(' ', sp1 + 1);
      if (sp2 == std::string_view::npos) return HttpParse::kBad;
      std::string_view method = line.substr(0, sp1);
      std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      std::string_view version = line.substr(sp2 + 1);
      if (!IsToken(method)) return HttpParse::kBad;
      if (target.empty() || target.find(' ') != std::string_view::npos) {
        return HttpParse::kBad;
      }
      if (target[0] != '/' && target != "*") return HttpParse::kBad;
      if (version.substr(0, 5) != "HTTP/" || version.size() < 8) {
        return HttpParse::kBad;
      }
      out->method = std::string(method);
      out->target = std::string(target);
      out->version = std::string(version);
      saw_request_line = true;
      continue;
    }

    if (line.empty()) {  // blank line: end of head
      out->head_bytes = pos;
      return HttpParse::kOk;
    }
    // Header field: name ":" OWS value OWS. Leading whitespace would be
    // obsolete line folding — reject it rather than mis-join.
    if (line.front() == ' ' || line.front() == '\t') return HttpParse::kBad;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return HttpParse::kBad;
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) return HttpParse::kBad;
    if (out->headers.size() >= kMaxHttpHeaders) return HttpParse::kBad;
    out->headers.emplace_back(std::string(name),
                              std::string(TrimSpace(line.substr(colon + 1))));
  }
}

std::string HttpResponseText(int status_code, std::string_view reason,
                             std::string_view content_type,
                             std::string_view body, bool head_only) {
  std::string out = "HTTP/1.0 " + std::to_string(status_code) + " ";
  out.append(reason);
  out += "\r\nContent-Type: ";
  out.append(content_type);
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out.append(body);
  return out;
}

// --- HttpMetricsListener ------------------------------------------------

HttpMetricsListener::HttpMetricsListener(std::string host, uint16_t port,
                                         Renderer render)
    : host_(std::move(host)), requested_port_(port), render_(std::move(render)) {}

HttpMetricsListener::~HttpMetricsListener() { Stop(); }

Status HttpMetricsListener::Start() {
  if (started_) {
    return Status::FailedPrecondition("metrics listener already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(requested_port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad metrics bind address '" + host_ + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 16) != 0) {
    const Status status =
        Status::IoError(std::string("metrics bind/listen: ") +
                        std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
      0) {
    const Status status =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { ThreadMain(); });
  started_ = true;
  return Status::OK();
}

void HttpMetricsListener::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void HttpMetricsListener::ThreadMain() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (recheck stop) or transient error
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    HandleConnection(fd);
  }
}

void HttpMetricsListener::HandleConnection(int fd) {
  // A scrape is one small request; bound both directions so a stuck client
  // cannot wedge the listener thread for more than a couple of seconds.
  timeval timeout{};
  timeout.tv_sec = 2;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int enable = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

  std::string buffer;
  HttpRequest request;
  HttpParse parse = HttpParse::kIncomplete;
  char chunk[1024];
  while (parse == HttpParse::kIncomplete &&
         buffer.size() <= kMaxHttpHeadBytes) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF, timeout or error: parse what we have
    buffer.append(chunk, static_cast<size_t>(n));
    parse = ParseHttpRequest(buffer, &request);
  }

  std::string response;
  if (parse != HttpParse::kOk) {
    response = HttpResponseText(400, "Bad Request", "text/plain",
                                "bad request\n");
  } else if (request.method != "GET" && request.method != "HEAD") {
    response = HttpResponseText(405, "Method Not Allowed", "text/plain",
                                "only GET and HEAD are supported\n");
  } else {
    const bool head_only = request.method == "HEAD";
    const std::string path = request.Path();
    if (path == "/metrics") {
      response = HttpResponseText(
          200, "OK", "text/plain; version=0.0.4; charset=utf-8",
          render_ ? render_() : std::string(), head_only);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    } else if (path == "/healthz") {
      response = HttpResponseText(200, "OK", "text/plain", "ok\n", head_only);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    } else {
      response = HttpResponseText(404, "Not Found", "text/plain",
                                  "not found; try /metrics\n", head_only);
    }
  }
  // Best-effort blocking send (SO_SNDTIMEO bounds it); a scraper that went
  // away mid-response just loses the response.
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = send(fd, response.data() + sent, response.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  close(fd);
}

}  // namespace seda::net
