#ifndef SEDA_NET_HTTP_H_
#define SEDA_NET_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace seda::net {

/// A parsed HTTP/1.x request head. The metrics listener only ever needs the
/// request line and (for completeness) the headers — bodies are ignored; a
/// scrape is a bare GET.
struct HttpRequest {
  std::string method;   ///< "GET", "HEAD", ...
  std::string target;   ///< request target as sent ("/metrics", "/metrics?x")
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  /// Bytes consumed through the blank line ending the head.
  size_t head_bytes = 0;

  /// `target` without any query string.
  std::string Path() const;
};

enum class HttpParse {
  kOk,          ///< a complete, well-formed head was parsed
  kIncomplete,  ///< need more bytes (head not terminated yet)
  kBad,         ///< malformed — answer 400 and close
};

/// Head-size cap: a scrape request head has no business being larger. Past
/// it an unterminated head parses as kBad instead of kIncomplete, so a
/// trickling client cannot hold buffer memory forever.
inline constexpr size_t kMaxHttpHeadBytes = 8192;
/// Header-count cap, same rationale.
inline constexpr size_t kMaxHttpHeaders = 64;

/// Incremental parser over the head of `data` (a prefix of a connection's
/// byte stream). Tolerates both CRLF and bare-LF line endings (curl sends
/// CRLF; test clients often do not). Never reads past the terminating blank
/// line; on kOk, `out->head_bytes` says where a body (ignored) would start.
/// This is the surface fuzz/http_fuzzer.cc drives.
HttpParse ParseHttpRequest(std::string_view data, HttpRequest* out);

/// Serializes a minimal HTTP/1.0 response (Connection: close, explicit
/// Content-Length). `head_only` elides the body (HEAD requests) while
/// keeping the Content-Length of the would-be body, per RFC 9110 §9.3.2.
std::string HttpResponseText(int status_code, std::string_view reason,
                             std::string_view content_type,
                             std::string_view body, bool head_only = false);

/// A deliberately minimal HTTP/1.0 responder for Prometheus scrapes, on its
/// own listener port so the frame protocol stays the only thing on the main
/// one. One thread, one connection at a time, connection closed after each
/// response — exactly the traffic shape of a scraper hitting /metrics every
/// few seconds. Not a general web server, on purpose.
///
/// Routes: GET/HEAD /metrics (render callback), GET/HEAD /healthz ("ok"),
/// anything else 404; non-GET/HEAD methods 405; malformed heads 400.
class HttpMetricsListener {
 public:
  using Renderer = std::function<std::string()>;

  /// `render` produces the exposition text per scrape; it must be
  /// thread-safe (it runs on the listener thread).
  HttpMetricsListener(std::string host, uint16_t port, Renderer render);
  ~HttpMetricsListener();
  HttpMetricsListener(const HttpMetricsListener&) = delete;
  HttpMetricsListener& operator=(const HttpMetricsListener&) = delete;

  /// Binds, listens and spawns the listener thread.
  Status Start();
  /// Stops the thread and closes the socket; idempotent.
  void Stop();

  /// The bound port (after Start); useful with port = 0.
  uint16_t port() const { return port_; }

  /// Scrapes served (any 2xx response), for tests and statz.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void ThreadMain();
  /// Reads one request head off `fd`, writes one response, closes `fd`.
  void HandleConnection(int fd);

  std::string host_;
  uint16_t requested_port_;
  Renderer render_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_served_{0};
  bool started_ = false;
};

}  // namespace seda::net

#endif  // SEDA_NET_HTTP_H_
