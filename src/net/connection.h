#ifndef SEDA_NET_CONNECTION_H_
#define SEDA_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "net/admission.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace seda::net {

class Server;

/// One accepted TCP connection, pinned to one EventLoop for its whole life.
/// Every member is touched only from that loop's thread — worker threads
/// deliver responses by Post()ing CompleteRequest back to the loop — so
/// there is no per-connection lock. Lifetime is shared_ptr-managed: the
/// loop's registry holds one reference, every queued request holds another,
/// so a connection that closes mid-request stays valid until its last
/// response is dropped on the floor (Complete on a closed connection is a
/// no-op).
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(Server* server, EventLoop* loop, int fd);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers with the loop (EPOLLIN). Loop thread only.
  void Register();

  /// Frames `payload` and queues it for write, flushing as far as the
  /// socket allows; leftovers drain via EPOLLOUT.
  void SendPayload(const std::string& payload);

  /// Marks one frame as queued/executing; paired with CompleteRequest or
  /// AbortRequest. Loop thread only (the counter is unsynchronized).
  void OnRequestQueued() { ++inflight_; }

  /// Worker-response entry point (always via loop->Post): sends the
  /// response and retires one in-flight slot.
  void CompleteRequest(const std::string& payload);

  /// Retires an in-flight slot without a send (response suppressed because
  /// the connection failed its protocol in the meantime).
  void AbortRequest();

  /// Protocol violation: best-effort error frame, stop reading, close once
  /// the write buffer drains. The decoder error is sticky so no further
  /// frames can be misparsed from the corrupt stream.
  void FailProtocol(const std::string& payload);

  /// Stops reading new frames but finishes in-flight work and flushes
  /// responses before closing (graceful drain).
  void StartDrain();

  /// Immediately unregisters and closes. Loop thread only; idempotent.
  void Close();

  /// Final shutdown flush: blocks (poll) up to `deadline` trying to empty
  /// the write buffer, then closes.
  void FlushAndClose(std::chrono::steady_clock::time_point deadline);

  bool closed() const { return closed_; }
  size_t inflight() const { return inflight_; }
  TokenBucket& rate_bucket() { return rate_bucket_; }
  int fd() const { return fd_; }
  EventLoop* loop() const { return loop_; }

  /// True when idle (no traffic, nothing in flight) for `idle_timeout`.
  bool IdleExpired(std::chrono::steady_clock::time_point now,
                   std::chrono::milliseconds idle_timeout) const {
    return inflight_ == 0 && pending_bytes() == 0 &&
           now - last_activity_ >= idle_timeout;
  }

 private:
  void OnEvents(uint32_t events);
  void ReadSome();
  void FlushWrites();
  /// Re-derives the epoll interest mask from (reading?, pending writes?)
  /// and closes when neither remains and a close is pending.
  void UpdateInterest();
  size_t pending_bytes() const { return out_.size() - out_offset_; }

  Server* server_;
  EventLoop* loop_;
  int fd_;
  FrameDecoder decoder_;
  TokenBucket rate_bucket_;

  std::string out_;        ///< pending write bytes
  size_t out_offset_ = 0;  ///< prefix of out_ already written
  uint32_t interest_ = 0;  ///< current epoll mask
  size_t inflight_ = 0;    ///< frames queued or executing for this connection

  bool reading_ = true;            ///< false after EOF/protocol error/drain
  bool close_after_flush_ = false;
  bool closed_ = false;

  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace seda::net

#endif  // SEDA_NET_CONNECTION_H_
