#include "net/connection.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/check.h"
#include "net/server.h"

namespace seda::net {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

Connection::Connection(Server* server, EventLoop* loop, int fd)
    : server_(server),
      loop_(loop),
      fd_(fd),
      decoder_(server->options().max_frame_bytes),
      rate_bucket_(server->options().admission.per_connection_rps,
                   server->options().admission.per_connection_rps * 2),
      last_activity_(Clock::now()) {}

Connection::~Connection() {
  if (fd_ >= 0) close(fd_);
}

void Connection::Register() {
  interest_ = EPOLLIN;
  std::shared_ptr<Connection> self = shared_from_this();
  Status status = loop_->Add(
      fd_, interest_, [self](uint32_t events) { self->OnEvents(events); });
  if (!status.ok()) Close();
}

void Connection::OnEvents(uint32_t events) {
  if (closed_) return;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    Close();
    return;
  }
  if ((events & EPOLLIN) != 0 && reading_) ReadSome();
  if (closed_) return;
  if ((events & EPOLLOUT) != 0) FlushWrites();
}

void Connection::ReadSome() {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      last_activity_ = Clock::now();
      server_->mutable_stats().bytes_read.fetch_add(
          static_cast<uint64_t>(n), std::memory_order_relaxed);
      decoder_.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Client half-closed. Finish in-flight work and flush responses, then
      // close; with nothing pending this closes immediately.
      reading_ = false;
      close_after_flush_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close();
    return;
  }
  if (closed_) return;
  for (;;) {
    FrameDecoder::Result result = decoder_.Next();
    if (result.event == FrameDecoder::Event::kFrame) {
      server_->OnFrame(shared_from_this(), std::move(result.payload));
      if (closed_) return;
      continue;
    }
    if (result.event == FrameDecoder::Event::kError) {
      server_->mutable_stats().protocol_errors.fetch_add(
          1, std::memory_order_relaxed);
      Status error = Status::InvalidArgument(result.error);
      api::Json envelope = api::Json::Object();
      envelope.Set("status",
                   api::ToJson(api::WireStatus::FromStatus(error)));
      FailProtocol(envelope.Write());
    }
    break;
  }
  UpdateInterest();
}

void Connection::SendPayload(const std::string& payload) {
  if (closed_) return;
  out_.append(EncodeFrame(payload));
  server_->mutable_stats().responses_sent.fetch_add(1,
                                                    std::memory_order_relaxed);
  FlushWrites();
}

void Connection::CompleteRequest(const std::string& payload) {
  if (closed_) return;
  SEDA_DCHECK_GT(inflight_, 0u);
  --inflight_;
  SendPayload(payload);
}

void Connection::AbortRequest() {
  if (closed_) return;
  SEDA_DCHECK_GT(inflight_, 0u);
  --inflight_;
  UpdateInterest();
}

void Connection::FailProtocol(const std::string& payload) {
  if (closed_) return;
  // The stream past the violation is garbage; never read again. In-flight
  // requests still complete (their frames were well-formed), then the
  // flushed connection closes.
  reading_ = false;
  close_after_flush_ = true;
  SendPayload(payload);
  UpdateInterest();
}

void Connection::StartDrain() {
  if (closed_) return;
  reading_ = false;
  close_after_flush_ = true;
  UpdateInterest();
}

void Connection::FlushWrites() {
  if (closed_) return;
  while (pending_bytes() > 0) {
    const ssize_t n = send(fd_, out_.data() + out_offset_, pending_bytes(),
                           MSG_NOSIGNAL);
    if (n > 0) {
      last_activity_ = Clock::now();
      server_->mutable_stats().bytes_written.fetch_add(
          static_cast<uint64_t>(n), std::memory_order_relaxed);
      out_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    Close();
    return;
  }
  if (pending_bytes() == 0) {
    out_.clear();
    out_offset_ = 0;
  }
  UpdateInterest();
}

void Connection::UpdateInterest() {
  if (closed_) return;
  if (!reading_ && pending_bytes() == 0 && inflight_ == 0 &&
      close_after_flush_) {
    Close();
    return;
  }
  const uint32_t wanted = (reading_ ? EPOLLIN : 0u) |
                          (pending_bytes() > 0 ? EPOLLOUT : 0u);
  if (wanted == interest_) return;
  interest_ = wanted;
  if (!loop_->Modify(fd_, wanted).ok()) Close();
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  loop_->Remove(fd_);
  close(fd_);
  fd_ = -1;
  server_->OnConnectionClosed(this);
}

void Connection::FlushAndClose(Clock::time_point deadline) {
  if (closed_) return;
  while (pending_bytes() > 0) {
    const ssize_t n = send(fd_, out_.data() + out_offset_, pending_bytes(),
                           MSG_NOSIGNAL);
    if (n > 0) {
      server_->mutable_stats().bytes_written.fetch_add(
          static_cast<uint64_t>(n), std::memory_order_relaxed);
      out_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const Clock::time_point now = Clock::now();
      if (now >= deadline) break;
      pollfd pfd{fd_, POLLOUT, 0};
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      if (poll(&pfd, 1, wait_ms > 0 ? wait_ms : 1) <= 0) break;
      continue;
    }
    break;
  }
  Close();
}

}  // namespace seda::net
