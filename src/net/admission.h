#ifndef SEDA_NET_ADMISSION_H_
#define SEDA_NET_ADMISSION_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace seda::net {

/// Classic token bucket: capacity `burst`, refilled at `rate_per_sec`.
/// Cheap enough to sit on every frame; time is injected so tests do not
/// sleep.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Takes one token if available. `now` must be monotone per bucket.
  bool TryAcquire(std::chrono::steady_clock::time_point now) {
    if (rate_per_sec_ <= 0) return true;  // limiter disabled
    if (last_refill_.time_since_epoch().count() != 0) {
      const double elapsed =
          std::chrono::duration<double>(now - last_refill_).count();
      tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
    }
    last_refill_ = now;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  double rate_per_sec_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_{};
};

/// Admission policy knobs; zero always means "unlimited" so a default
/// constructed controller admits everything.
struct AdmissionOptions {
  size_t max_connections = 0;
  /// Frames a single connection may have queued or executing at once;
  /// excess requests are shed with `overloaded` (a pipelining client must
  /// cap its window).
  size_t max_inflight_per_connection = 0;
  /// Per-connection request rate limit (token bucket, burst = 2x rate).
  double per_connection_rps = 0;
  /// Per-session_id request rate limit across connections — a session id is
  /// the closest thing the protocol has to a tenant.
  double per_session_rps = 0;
};

/// Why a request/connection was refused. Every refusal maps to a
/// well-formed `overloaded` error frame — admission control NEVER silently
/// drops or resets; the client always learns what happened.
enum class AdmissionVerdict {
  kAdmit,
  kTooManyConnections,
  kInflightLimit,
  kConnectionRate,
  kSessionRate,
  kQueueFull,  ///< produced by the Server's work queue, not the controller
  kDraining,   ///< produced during graceful shutdown
};

/// Human-readable refusal detail for the error frame message.
const char* AdmissionVerdictName(AdmissionVerdict verdict);

/// Tracks connection counts and rate buckets. Connection count is atomic
/// (touched from every accept); session buckets share one mutex — refusals
/// are supposed to be rare, and the map only grows on new session ids.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  const AdmissionOptions& options() const { return options_; }

  /// Accept-time check; pairs with OnConnectionClosed().
  AdmissionVerdict OnConnectionOpen() {
    if (options_.max_connections > 0) {
      size_t count = connections_.load(std::memory_order_relaxed);
      do {
        if (count >= options_.max_connections) {
          return AdmissionVerdict::kTooManyConnections;
        }
      } while (!connections_.compare_exchange_weak(
          count, count + 1, std::memory_order_relaxed));
    } else {
      connections_.fetch_add(1, std::memory_order_relaxed);
    }
    return AdmissionVerdict::kAdmit;
  }

  void OnConnectionClosed() {
    connections_.fetch_sub(1, std::memory_order_relaxed);
  }

  size_t connection_count() const {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Frame-time check. `inflight` is the connection's current in-flight
  /// count (tracked loop-thread-locally by the connection itself);
  /// `connection_bucket` is the connection's own rate bucket; `session_id`
  /// may be empty (one-shot requests skip the per-session limiter).
  AdmissionVerdict OnRequest(size_t inflight, TokenBucket& connection_bucket,
                             const std::string& session_id,
                             std::chrono::steady_clock::time_point now);

  /// Session buckets currently tracked (statz).
  size_t session_bucket_count() const {
    std::lock_guard<std::mutex> lock(session_mu_);
    return session_buckets_.size();
  }

 private:
  AdmissionOptions options_;
  std::atomic<size_t> connections_{0};
  mutable std::mutex session_mu_;
  std::unordered_map<std::string, TokenBucket> session_buckets_;
};

}  // namespace seda::net

#endif  // SEDA_NET_ADMISSION_H_
