#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace seda::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Status BlockingClient::Connect(const std::string& host, uint16_t port,
                               uint64_t recv_timeout_ms) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect");
    Close();
    return status;
  }
  const int enable = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  if (recv_timeout_ms > 0) {
    timeval timeout{};
    timeout.tv_sec = static_cast<time_t>(recv_timeout_ms / 1000);
    timeout.tv_usec = static_cast<suseconds_t>((recv_timeout_ms % 1000) * 1000);
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  decoder_ = FrameDecoder();
  return Status::OK();
}

Result<std::string> BlockingClient::Call(const std::string& request_json) {
  SEDA_RETURN_IF_ERROR(Send(request_json));
  return ReadFrame();
}

Status BlockingClient::Send(const std::string& request_json) {
  return SendRaw(EncodeFrame(request_json));
}

Status BlockingClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> BlockingClient::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  for (;;) {
    FrameDecoder::Result result = decoder_.Next();
    if (result.event == FrameDecoder::Event::kFrame) {
      return std::move(result.payload);
    }
    if (result.event == FrameDecoder::Event::kError) {
      return Status::ParseError("response stream corrupt: " + result.error);
    }
    char buf[64 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IoError("receive timeout waiting for response frame");
    }
    return Errno("recv");
  }
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace seda::net
