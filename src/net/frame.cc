#include "net/frame.h"

#include <cstring>

namespace seda::net {

std::string EncodeFrame(const std::string& payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  char header[4];
  header[0] = static_cast<char>(length & 0xff);
  header[1] = static_cast<char>((length >> 8) & 0xff);
  header[2] = static_cast<char>((length >> 16) & 0xff);
  header[3] = static_cast<char>((length >> 24) & 0xff);
  frame.append(header, sizeof(header));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Feed(const char* data, size_t size) {
  if (failed_ || size == 0) return;
  // Drop the consumed prefix before growing: buffered_bytes() stays bounded
  // by one max-size frame regardless of how many frames already passed.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameDecoder::Result FrameDecoder::Next() {
  Result result;
  if (failed_) {
    result.event = Event::kError;
    result.error = error_;
    return result;
  }
  const size_t available = buffer_.size() - consumed_;
  const char* head = buffer_.data() + consumed_;
  // Reject a bad magic as soon as the mismatching byte arrives — a client
  // speaking the wrong protocol should not have to fill 8 bytes first.
  const size_t magic_have =
      available < sizeof(kFrameMagic) ? available : sizeof(kFrameMagic);
  if (std::memcmp(head, kFrameMagic, magic_have) != 0) {
    failed_ = true;
    error_ = "bad frame magic (expected \"SEDA\")";
    result.event = Event::kError;
    result.error = error_;
    return result;
  }
  if (available < kFrameHeaderBytes) return result;  // kNeedMore
  const unsigned char* len_bytes =
      reinterpret_cast<const unsigned char*>(head + sizeof(kFrameMagic));
  const uint32_t length = static_cast<uint32_t>(len_bytes[0]) |
                          static_cast<uint32_t>(len_bytes[1]) << 8 |
                          static_cast<uint32_t>(len_bytes[2]) << 16 |
                          static_cast<uint32_t>(len_bytes[3]) << 24;
  if (length > max_payload_bytes_) {
    failed_ = true;
    error_ = "frame payload of " + std::to_string(length) +
             " bytes exceeds the limit of " +
             std::to_string(max_payload_bytes_);
    result.event = Event::kError;
    result.error = error_;
    return result;
  }
  if (available < kFrameHeaderBytes + length) return result;  // kNeedMore
  result.event = Event::kFrame;
  result.payload.assign(head + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  return result;
}

}  // namespace seda::net
