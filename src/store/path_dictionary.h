#ifndef SEDA_STORE_PATH_DICTIONARY_H_
#define SEDA_STORE_PATH_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace seda::persist {
class ImageWriter;
class SectionCursor;
}  // namespace seda::persist

namespace seda::store {

/// Integer id of a distinct root-to-leaf label path in the collection.
using PathId = uint32_t;
inline constexpr PathId kInvalidPathId = 0xFFFFFFFFu;

/// Dictionary of distinct root-to-node label paths ("contexts" in the paper,
/// §3). Each distinct path gets a dense PathId; the dictionary also tracks
/// per-path statistics used by the context summary (§5): the number of node
/// occurrences and the number of documents the path appears in.
///
/// The paper stores occurrence counts "in the document store" rather than in
/// the posting lists (Fig. 8 discussion); this dictionary is that store-side
/// counter table.
class PathDictionary {
 public:
  /// Interns `path`, returning its id. `doc_first_occurrence` must be true
  /// exactly once per (path, document) pair so document frequencies stay
  /// correct; the caller (DocumentStore) tracks per-document de-duplication.
  PathId Intern(const std::string& path, bool doc_first_occurrence);

  /// Returns the id of `path` or kInvalidPathId when absent.
  PathId Find(const std::string& path) const;

  /// Path string for an id. Requires a valid id.
  const std::string& PathString(PathId id) const { return paths_[id].text; }

  /// Last label of the path, e.g. "GDP" for "/country/economy/GDP".
  const std::string& LastTag(PathId id) const { return paths_[id].last_tag; }

  /// Number of node occurrences of this path across the collection.
  uint64_t NodeCount(PathId id) const { return paths_[id].node_count; }

  /// Number of documents containing at least one node with this path.
  uint64_t DocCount(PathId id) const { return paths_[id].doc_count; }

  /// Total number of distinct paths (the paper reports 1984 for Factbook).
  size_t size() const { return paths_.size(); }

  /// All path ids whose last tag equals `tag`.
  std::vector<PathId> PathsWithLastTag(const std::string& tag) const;

  /// All path ids whose last tag matches wildcard `pattern` ('*'/'?').
  std::vector<PathId> PathsMatchingTagPattern(const std::string& pattern) const;

  /// Persistence hooks (src/persist/): appends this dictionary's entries to
  /// the current section / reconstructs them (entries in id order, hash
  /// indexes rebuilt) from one. The loaded dictionary is indistinguishable
  /// from the one Intern() built.
  void SaveTo(persist::ImageWriter* writer) const;
  Status LoadFrom(persist::SectionCursor* cursor);

 private:
  struct Entry {
    std::string text;
    std::string last_tag;
    uint64_t node_count = 0;
    uint64_t doc_count = 0;
  };

  std::vector<Entry> paths_;
  std::unordered_map<std::string, PathId> index_;
  std::unordered_map<std::string, std::vector<PathId>> by_last_tag_;
};

}  // namespace seda::store

#endif  // SEDA_STORE_PATH_DICTIONARY_H_
