#include "store/path_dictionary.h"

#include "common/strings.h"
#include "persist/reader.h"
#include "persist/writer.h"

namespace seda::store {

namespace {
std::string ExtractLastTag(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string tag = slash == std::string::npos ? path : path.substr(slash + 1);
  if (!tag.empty() && tag[0] == '@') tag = tag.substr(1);
  return tag;
}
}  // namespace

PathId PathDictionary::Intern(const std::string& path, bool doc_first_occurrence) {
  auto it = index_.find(path);
  PathId id;
  if (it == index_.end()) {
    id = static_cast<PathId>(paths_.size());
    Entry entry;
    entry.text = path;
    entry.last_tag = ExtractLastTag(path);
    paths_.push_back(std::move(entry));
    index_.emplace(path, id);
    by_last_tag_[paths_[id].last_tag].push_back(id);
  } else {
    id = it->second;
  }
  paths_[id].node_count += 1;
  if (doc_first_occurrence) paths_[id].doc_count += 1;
  return id;
}

void PathDictionary::SaveTo(persist::ImageWriter* writer) const {
  writer->PutU64(paths_.size());
  for (const Entry& entry : paths_) {
    writer->PutString(entry.text);
    writer->PutU64(entry.node_count);
    writer->PutU64(entry.doc_count);
  }
}

Status PathDictionary::LoadFrom(persist::SectionCursor* cursor) {
  paths_.clear();
  index_.clear();
  by_last_tag_.clear();
  uint64_t count = cursor->GetU64();
  paths_.reserve(cursor->BoundedCount(count, 20));
  for (uint64_t i = 0; i < count && !cursor->failed(); ++i) {
    Entry entry;
    entry.text = cursor->GetString();
    entry.last_tag = ExtractLastTag(entry.text);
    entry.node_count = cursor->GetU64();
    entry.doc_count = cursor->GetU64();
    PathId id = static_cast<PathId>(paths_.size());
    paths_.push_back(std::move(entry));
    index_.emplace(paths_[id].text, id);
    // Ids enter each last-tag bucket in increasing order, exactly as the
    // original Intern() sequence produced them.
    by_last_tag_[paths_[id].last_tag].push_back(id);
  }
  return cursor->status();
}

PathId PathDictionary::Find(const std::string& path) const {
  auto it = index_.find(path);
  return it == index_.end() ? kInvalidPathId : it->second;
}

std::vector<PathId> PathDictionary::PathsWithLastTag(const std::string& tag) const {
  auto it = by_last_tag_.find(tag);
  if (it == by_last_tag_.end()) return {};
  return it->second;
}

std::vector<PathId> PathDictionary::PathsMatchingTagPattern(
    const std::string& pattern) const {
  if (pattern.find('*') == std::string::npos &&
      pattern.find('?') == std::string::npos) {
    return PathsWithLastTag(pattern);
  }
  std::vector<PathId> out;
  for (const auto& [tag, ids] : by_last_tag_) {
    if (WildcardMatch(pattern, tag)) {
      out.insert(out.end(), ids.begin(), ids.end());
    }
  }
  return out;
}

}  // namespace seda::store
