#ifndef SEDA_STORE_DOCUMENT_STORE_H_
#define SEDA_STORE_DOCUMENT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/path_dictionary.h"
#include "xml/document.h"

namespace seda {
class ThreadPool;
}

namespace seda::persist {
class ImageWriter;
class MappedImage;
}  // namespace seda::persist

namespace seda::store {

/// Dense id of a document within the store.
using DocId = uint32_t;

/// Global node reference: (document, Dewey ID). The paper's full query result
/// R(q) carries exactly these references plus the node's path (Fig. 3).
struct NodeId {
  DocId doc = 0;
  xml::DeweyId dewey;

  bool operator==(const NodeId& other) const {
    return doc == other.doc && dewey == other.dewey;
  }
  bool operator<(const NodeId& other) const {
    if (doc != other.doc) return doc < other.doc;
    return dewey < other.dewey;
  }
  /// Renders as "n<doc>@<dewey>", e.g. "n3@1.2.2.1".
  std::string ToString() const;
  uint64_t Hash() const;
};

struct NodeIdHasher {
  size_t operator()(const NodeId& id) const { return static_cast<size_t>(id.Hash()); }
};

/// The storage substrate (DB2 pureXML substitute): owns parsed documents,
/// interns every node's root-to-leaf path into a PathDictionary, and serves
/// node lookups / content retrieval for the execution engine.
class DocumentStore {
 public:
  DocumentStore() = default;
  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;
  DocumentStore(DocumentStore&&) = default;
  DocumentStore& operator=(DocumentStore&&) = default;

  /// Adds a document; assigns a DocId, interns all node paths and records
  /// per-document path sets (used by the dataguide builder).
  DocId AddDocument(std::unique_ptr<xml::Document> doc);

  /// Snapshot support: a new store sharing ownership of every parsed document
  /// (documents are immutable once stored, so sharing is safe) with copies of
  /// the path dictionary and per-document path sets. Mutating the original
  /// afterwards — appending more documents — never disturbs the clone, which
  /// is what lets an immutable query snapshot coexist with a writer that
  /// keeps ingesting. DocIds, PathIds and node pointers are identical in both
  /// stores.
  std::unique_ptr<DocumentStore> Clone() const;

  /// Parses `xml_text` and adds the resulting document.
  Result<DocId> AddXml(const std::string& xml_text, const std::string& doc_name);

  size_t DocumentCount() const { return docs_.size(); }
  const xml::Document& document(DocId id) const { return *docs_[id]; }

  /// Total number of nodes stored (elements + attributes + text).
  uint64_t TotalNodeCount() const { return total_nodes_; }

  /// Resolves a NodeId to its node, or nullptr when out of range.
  xml::Node* GetNode(const NodeId& id) const;

  /// Content (concatenated descendant text) of a node; empty when absent.
  std::string GetContent(const NodeId& id) const;

  /// Root-to-leaf path id of a node. Requires the node to exist.
  Result<PathId> GetPathId(const NodeId& id) const;

  const PathDictionary& paths() const { return path_dict_; }

  /// Distinct path ids appearing in a document (its dataguide path set).
  const std::vector<PathId>& DocumentPathSet(DocId id) const {
    return *doc_path_sets_[id];
  }

  /// Persistence hooks (src/persist/): writes the store-paths and store-docs
  /// sections (dictionary, preorder document trees as skippable blobs,
  /// per-document path sets) / reconstructs a store from a validated image.
  /// Dewey ids are recomputed from tree shape (they are purely structural),
  /// and document blobs materialize in parallel over `pool` when given. The
  /// loaded store is indistinguishable from the one ingestion built.
  Status SaveTo(persist::ImageWriter* writer) const;
  static Result<std::unique_ptr<DocumentStore>> LoadFrom(
      const persist::MappedImage& image, ThreadPool* pool = nullptr);

  /// Visits every (NodeId, Node*) in document order across the collection.
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    for (DocId d = 0; d < docs_.size(); ++d) {
      docs_[d]->ForEachNode([&](xml::Node* node) {
        fn(NodeId{d, node->dewey()}, node);
      });
    }
  }

 private:
  std::vector<std::shared_ptr<xml::Document>> docs_;
  /// Per-document path sets are immutable once the document is added, so —
  /// like the documents themselves — epoch clones share them by pointer.
  std::vector<std::shared_ptr<const std::vector<PathId>>> doc_path_sets_;
  PathDictionary path_dict_;
  uint64_t total_nodes_ = 0;
};

}  // namespace seda::store

#endif  // SEDA_STORE_DOCUMENT_STORE_H_
