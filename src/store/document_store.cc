#include "store/document_store.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "persist/reader.h"
#include "persist/writer.h"
#include "xml/parser.h"

namespace seda::store {

std::string NodeId::ToString() const {
  return "n" + std::to_string(doc) + "@" + dewey.ToString();
}

uint64_t NodeId::Hash() const {
  return HashCombine(static_cast<uint64_t>(doc) + 1, dewey.Hash());
}

DocId DocumentStore::AddDocument(std::unique_ptr<xml::Document> doc) {
  DocId id = static_cast<DocId>(docs_.size());
  docs_.push_back(std::move(doc));

  std::vector<PathId> path_set;
  std::unordered_set<PathId> seen_in_doc;
  docs_[id]->ForEachNode([&](xml::Node* node) {
    ++total_nodes_;
    if (node->kind() == xml::NodeKind::kText) return;  // text shares parent path
    std::string path = node->ContextPath();
    // First intern pass with a tentative "not first" flag requires knowing the
    // id; Intern handles count bookkeeping, so probe first.
    PathId existing = path_dict_.Find(path);
    bool first_in_doc =
        existing == kInvalidPathId || !seen_in_doc.count(existing);
    PathId pid = path_dict_.Intern(path, first_in_doc);
    if (seen_in_doc.insert(pid).second) {
      path_set.push_back(pid);
    }
  });
  std::sort(path_set.begin(), path_set.end());
  doc_path_sets_.push_back(
      std::make_shared<const std::vector<PathId>>(std::move(path_set)));
  return id;
}

std::unique_ptr<DocumentStore> DocumentStore::Clone() const {
  auto clone = std::make_unique<DocumentStore>();
  // Documents and per-document path sets are immutable once added, so both
  // are shared by pointer: a clone costs two pointer-vector copies plus the
  // path dictionary, independent of document sizes.
  clone->docs_ = docs_;
  clone->doc_path_sets_ = doc_path_sets_;
  clone->path_dict_ = path_dict_;
  clone->total_nodes_ = total_nodes_;
  return clone;
}

Result<DocId> DocumentStore::AddXml(const std::string& xml_text,
                                    const std::string& doc_name) {
  auto parsed = xml::Parser::Parse(xml_text, doc_name);
  if (!parsed.ok()) return parsed.status();
  return AddDocument(std::move(parsed).value());
}

namespace {

/// Preorder tree encoding: kind, name, text, child count, then children.
/// Dewey ids are not stored — they are a pure function of tree shape and are
/// reassigned by Document::SetRoot on load.
void EncodeNode(persist::ImageWriter* writer, const xml::Node& node) {
  writer->PutU8(static_cast<uint8_t>(node.kind()));
  writer->PutString(node.name());
  writer->PutString(node.text());
  writer->PutU32(static_cast<uint32_t>(node.children().size()));
  for (const auto& child : node.children()) EncodeNode(writer, *child);
}

/// Decodes one node header into a fresh Node (children not yet attached).
std::unique_ptr<xml::Node> DecodeNodeHeader(persist::SectionCursor* cursor,
                                            uint32_t* child_count) {
  uint8_t kind = cursor->GetU8();
  if (kind > static_cast<uint8_t>(xml::NodeKind::kText)) {
    // An out-of-range kind would smuggle past every downstream enum switch.
    return nullptr;
  }
  std::string name = cursor->GetString();
  auto node = std::make_unique<xml::Node>(static_cast<xml::NodeKind>(kind),
                                          std::move(name));
  node->set_text(cursor->GetString());
  *child_count = cursor->GetU32();
  return node;
}

/// Attaches `parent`'s subtree top-down: each AddChild numbers the new —
/// still childless — node in O(1), so the whole tree gets its Dewey ids in
/// one build pass and AdoptRoot can skip the renumbering sweep.
bool DecodeChildren(persist::SectionCursor* cursor, xml::Node* parent,
                    uint32_t child_count, uint32_t depth) {
  // Same bound the parser enforces: no storable document can hit it, and a
  // crafted image cannot ride the recursion into a stack overflow.
  if (depth > xml::kMaxDocumentDepth) return false;
  parent->ReserveChildren(cursor->BoundedCount(child_count, 13));
  for (uint32_t i = 0; i < child_count && !cursor->failed(); ++i) {
    uint32_t grandchildren = 0;
    auto child = DecodeNodeHeader(cursor, &grandchildren);
    if (child == nullptr) return false;
    xml::Node* attached = parent->AddChild(std::move(child));
    if (!DecodeChildren(cursor, attached, grandchildren, depth + 1)) {
      return false;
    }
  }
  return !cursor->failed();
}

std::unique_ptr<xml::Node> DecodeNode(persist::SectionCursor* cursor) {
  uint32_t child_count = 0;
  auto root = DecodeNodeHeader(cursor, &child_count);
  if (root == nullptr) return nullptr;
  root->AssignDewey(xml::DeweyId({1}));  // childless: O(1)
  if (!DecodeChildren(cursor, root.get(), child_count, 1)) return nullptr;
  return root;
}

}  // namespace

Status DocumentStore::SaveTo(persist::ImageWriter* writer) const {
  writer->BeginSection(persist::SectionId::kStorePaths);
  path_dict_.SaveTo(writer);
  SEDA_RETURN_IF_ERROR(writer->EndSection());

  writer->BeginSection(persist::SectionId::kStoreDocs);
  writer->PutU64(total_nodes_);
  writer->PutU64(docs_.size());
  for (size_t d = 0; d < docs_.size(); ++d) {
    // One skippable blob per document, so Load can fan materialization out.
    writer->BeginBlob();
    writer->PutString(docs_[d]->name());
    writer->PutU8(docs_[d]->root() != nullptr ? 1 : 0);
    if (docs_[d]->root() != nullptr) EncodeNode(writer, *docs_[d]->root());
    const std::vector<PathId>& path_set = *doc_path_sets_[d];
    writer->PutU32Array(path_set);
    writer->EndBlob();
  }
  return writer->EndSection();
}

Result<std::unique_ptr<DocumentStore>> DocumentStore::LoadFrom(
    const persist::MappedImage& image, ThreadPool* pool) {
  auto store = std::make_unique<DocumentStore>();

  SEDA_ASSIGN_OR_RETURN(persist::SectionCursor paths_cursor,
                        persist::OpenSection(image, persist::SectionId::kStorePaths));
  SEDA_RETURN_IF_ERROR(store->path_dict_.LoadFrom(&paths_cursor));

  SEDA_ASSIGN_OR_RETURN(persist::SectionCursor docs_cursor,
                        persist::OpenSection(image, persist::SectionId::kStoreDocs));
  store->total_nodes_ = docs_cursor.GetU64();
  uint64_t doc_count = docs_cursor.GetU64();
  std::vector<persist::SectionCursor> blobs;
  blobs.reserve(docs_cursor.BoundedCount(doc_count, 8));
  for (uint64_t d = 0; d < doc_count && !docs_cursor.failed(); ++d) {
    blobs.push_back(docs_cursor.GetBlob());
  }
  SEDA_RETURN_IF_ERROR(docs_cursor.status());

  // Materialize documents in parallel: each blob is self-contained, and the
  // results are committed in DocId order below.
  std::vector<std::shared_ptr<xml::Document>> docs(blobs.size());
  std::vector<std::shared_ptr<const std::vector<PathId>>> path_sets(blobs.size());
  std::vector<Status> statuses(blobs.size());
  RunParallel(pool, blobs.size(), [&](size_t d) {
    persist::SectionCursor& blob = blobs[d];
    auto doc = std::make_shared<xml::Document>(blob.GetString());
    bool has_root = blob.GetU8() != 0;
    if (has_root) {
      auto root = DecodeNode(&blob);
      if (root == nullptr) {
        Status bad = blob.status();
        statuses[d] = bad.ok() ? Status::ParseError(
                                     "image document tree decode failed")
                               : bad;
        return;
      }
      doc->AdoptRoot(std::move(root));  // Dewey ids assigned during decode
    }
    std::vector<uint32_t> path_set = blob.GetU32Array();
    if (blob.failed()) {
      statuses[d] = blob.status();
      return;
    }
    docs[d] = std::move(doc);
    path_sets[d] = std::make_shared<const std::vector<PathId>>(
        std::move(path_set));
  });
  for (const Status& status : statuses) {
    SEDA_RETURN_IF_ERROR(status);
  }
  store->docs_ = std::move(docs);
  store->doc_path_sets_ = std::move(path_sets);
  return store;
}

xml::Node* DocumentStore::GetNode(const NodeId& id) const {
  if (id.doc >= docs_.size()) return nullptr;
  return docs_[id.doc]->FindByDewey(id.dewey);
}

std::string DocumentStore::GetContent(const NodeId& id) const {
  xml::Node* node = GetNode(id);
  return node != nullptr ? node->ContentString() : std::string();
}

Result<PathId> DocumentStore::GetPathId(const NodeId& id) const {
  xml::Node* node = GetNode(id);
  if (node == nullptr) return Status::NotFound("node " + id.ToString());
  PathId pid = path_dict_.Find(node->ContextPath());
  if (pid == kInvalidPathId) {
    return Status::Internal("path not interned for " + id.ToString());
  }
  return pid;
}

}  // namespace seda::store
