#include "store/document_store.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "xml/parser.h"

namespace seda::store {

std::string NodeId::ToString() const {
  return "n" + std::to_string(doc) + "@" + dewey.ToString();
}

uint64_t NodeId::Hash() const {
  return HashCombine(static_cast<uint64_t>(doc) + 1, dewey.Hash());
}

DocId DocumentStore::AddDocument(std::unique_ptr<xml::Document> doc) {
  DocId id = static_cast<DocId>(docs_.size());
  docs_.push_back(std::move(doc));

  std::vector<PathId> path_set;
  std::unordered_set<PathId> seen_in_doc;
  docs_[id]->ForEachNode([&](xml::Node* node) {
    ++total_nodes_;
    if (node->kind() == xml::NodeKind::kText) return;  // text shares parent path
    std::string path = node->ContextPath();
    // First intern pass with a tentative "not first" flag requires knowing the
    // id; Intern handles count bookkeeping, so probe first.
    PathId existing = path_dict_.Find(path);
    bool first_in_doc =
        existing == kInvalidPathId || !seen_in_doc.count(existing);
    PathId pid = path_dict_.Intern(path, first_in_doc);
    if (seen_in_doc.insert(pid).second) {
      path_set.push_back(pid);
    }
  });
  std::sort(path_set.begin(), path_set.end());
  doc_path_sets_.push_back(
      std::make_shared<const std::vector<PathId>>(std::move(path_set)));
  return id;
}

std::unique_ptr<DocumentStore> DocumentStore::Clone() const {
  auto clone = std::make_unique<DocumentStore>();
  // Documents and per-document path sets are immutable once added, so both
  // are shared by pointer: a clone costs two pointer-vector copies plus the
  // path dictionary, independent of document sizes.
  clone->docs_ = docs_;
  clone->doc_path_sets_ = doc_path_sets_;
  clone->path_dict_ = path_dict_;
  clone->total_nodes_ = total_nodes_;
  return clone;
}

Result<DocId> DocumentStore::AddXml(const std::string& xml_text,
                                    const std::string& doc_name) {
  auto parsed = xml::Parser::Parse(xml_text, doc_name);
  if (!parsed.ok()) return parsed.status();
  return AddDocument(std::move(parsed).value());
}

xml::Node* DocumentStore::GetNode(const NodeId& id) const {
  if (id.doc >= docs_.size()) return nullptr;
  return docs_[id.doc]->FindByDewey(id.dewey);
}

std::string DocumentStore::GetContent(const NodeId& id) const {
  xml::Node* node = GetNode(id);
  return node != nullptr ? node->ContentString() : std::string();
}

Result<PathId> DocumentStore::GetPathId(const NodeId& id) const {
  xml::Node* node = GetNode(id);
  if (node == nullptr) return Status::NotFound("node " + id.ToString());
  PathId pid = path_dict_.Find(node->ContextPath());
  if (pid == kInvalidPathId) {
    return Status::Internal("path not interned for " + id.ToString());
  }
  return pid;
}

}  // namespace seda::store
