#ifndef SEDA_COLUMN_COLUMN_STORE_H_
#define SEDA_COLUMN_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/document_store.h"

namespace seda::persist {
class ImageWriter;
class MappedImage;
}  // namespace seda::persist

namespace seda::column {

/// Schema-inferred columnar projections (ROADMAP "schema inference + columnar
/// hybrid projections" item, following the X-WACoDa hybrid-warehouse idea):
/// heterogeneous XML hides high-support regular fragments. At Commit() we mine
/// the path statistics for label paths that are (a) leaf-pure — every node
/// with that path has only text children, so its content is a scalar — and
/// (b) well-supported across the corpus, and flatten each one into a typed
/// column: a dictionary of distinct values, per-row dictionary codes, a
/// DocId -> row-range index, the rows' Dewey IDs (fixed stride = path depth)
/// and a document-presence bitmap. Irregular subtrees stay as trees; the cube
/// layer scans columns where they exist and falls back to the tree walk
/// per cell elsewhere, byte-identical either way.
///
/// Leaf purity is the keystone: because *every* occurrence of the path is a
/// scalar leaf, "how many matches does this document / this parent have" is
/// answered exactly by row counting, which is what lets the cube's
/// single-valued key checks run off the column without consulting the tree.
///
/// Columns persist as SectionId::kColumns — flat u32/byte arrays mapped
/// zero-copy on Open() (the ColumnStore pins the image), fully
/// structure-validated on load, and rebuilt from the document trees when the
/// section is absent, so pre-column images keep loading unchanged.

/// Inferred scalar type of a column. Dictionary strings stay authoritative
/// for all engine output (so byte-identity with the tree walk is exact);
/// the typed arrays are decoded acceleration/display metadata. A column is
/// kInt64/kDouble only when every distinct value round-trips through the
/// numeric parse, so the typed view never loses information.
enum class ValueType : uint8_t {
  kString = 0,
  kInt64 = 1,
  kDouble = 2,
};

const char* ValueTypeName(ValueType type);

/// Commit-time inference thresholds. Carried in SedaOptions (persisted in the
/// image's options section), so a reopened image infers the same columns an
/// in-memory commit did.
struct InferenceOptions {
  /// Master switch: when false, no columns are built or saved and every cube
  /// falls back to the tree walk.
  bool enabled = true;
  /// Minimum fraction of documents that must contain the path.
  double min_doc_support = 0.05;
  /// Absolute floor on supporting documents (guards tiny corpora where one
  /// document clears any fractional threshold).
  uint64_t min_docs = 1;
  /// Occupancy guard: reject paths averaging more than this many occurrences
  /// per supporting document (unbounded repetition columnarizes badly).
  double max_avg_occurrences = 64.0;
  /// Hard cap on materialized columns; the best-supported paths win.
  uint64_t max_columns = 1024;
};

/// Flat u32 array that is either owned (built at Commit, or decoded for a
/// pre-column image) or a zero-copy view into a mapped snapshot image whose
/// lifetime the owning ColumnStore pins. Mirrors graph::U32View; duplicated
/// because the column layer sits below the graph layer.
class U32View {
 public:
  U32View() = default;
  void Own(std::vector<uint32_t> values) {
    owned_ = std::move(values);
    data_ = owned_.data();
    size_ = owned_.size();
  }
  void Borrow(const uint32_t* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = data;
    size_ = size;
  }
  const uint32_t* data() const { return data_; }
  size_t size() const { return size_; }
  uint32_t operator[](size_t i) const { return data_[i]; }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
  std::vector<uint32_t> owned_;
};

/// One inferred column. Rows are the path's leaf occurrences across the whole
/// corpus in (DocId, Dewey) order; every row's Dewey ID has exactly depth()
/// components (one per label step), which makes the per-document row ranges
/// binary-searchable with a fixed stride.
class Column {
 public:
  /// Outcome of a singleton probe, mirroring the tree walk's trichotomy for
  /// key evaluation: exactly one match yields a value, zero is "missing",
  /// more than one is "not single-valued".
  enum class Presence { kMissing, kValue, kDuplicate };

  const std::string& path() const { return path_; }
  store::PathId path_id() const { return path_id_; }
  ValueType type() const { return type_; }
  /// Dewey components per row (== label steps in path()).
  uint32_t depth() const { return depth_; }
  size_t rows() const { return codes_.size(); }
  size_t doc_count() const {
    return doc_offsets_.size() == 0 ? 0 : doc_offsets_.size() - 1;
  }
  size_t dict_size() const {
    return dict_offsets_.size() == 0 ? 0 : dict_offsets_.size() - 1;
  }
  /// Documents with at least one row (bitmap popcount).
  uint64_t docs_present() const { return docs_present_; }

  std::string_view DictValue(uint32_t code) const {
    return std::string_view(pool_ + dict_offsets_[code],
                            dict_offsets_[code + 1] - dict_offsets_[code]);
  }
  std::string_view RowValue(uint32_t row) const {
    return DictValue(codes_[row]);
  }
  const uint32_t* RowDewey(uint32_t row) const {
    return deweys_.data() + size_t{row} * depth_;
  }
  uint32_t DocRowBegin(store::DocId doc) const { return doc_offsets_[doc]; }
  uint32_t DocRowEnd(store::DocId doc) const { return doc_offsets_[doc + 1]; }
  bool DocPresent(store::DocId doc) const {
    return (present_[doc / 32] >> (doc % 32)) & 1u;
  }

  /// Exactly-one-occurrence probe over a whole document (absolute key
  /// component / dimension source).
  Presence DocSingleton(store::DocId doc, uint32_t* row_out) const;

  /// Exact row lookup by full Dewey ID; false when the node is not a row of
  /// this column. `len` must equal depth().
  bool FindRow(store::DocId doc, const uint32_t* dewey, size_t len,
               uint32_t* row_out) const;

  /// Exactly-one probe among rows whose Dewey ID starts with `prefix`
  /// (`len` < depth()): the column form of "exactly one matching child under
  /// this ancestor". Leaf purity makes the row count the exact match count.
  Presence PrefixSingleton(store::DocId doc, const uint32_t* prefix,
                           size_t len, uint32_t* row_out) const;

  /// Typed views, populated iff type() matches (indexed by dictionary code).
  const std::vector<int64_t>& int64_values() const { return ints_; }
  const std::vector<double>& double_values() const { return doubles_; }

  /// Raw array accessors for the auditor / pretty-printers.
  const U32View& doc_offsets() const { return doc_offsets_; }
  const U32View& codes() const { return codes_; }
  const U32View& deweys() const { return deweys_; }
  const U32View& present_words() const { return present_; }
  const U32View& dict_offsets() const { return dict_offsets_; }

 private:
  friend class ColumnStore;

  /// Rows in `doc` whose Dewey ID starts with prefix[0..len): contiguous
  /// because rows are Dewey-sorted per document.
  std::pair<uint32_t, uint32_t> PrefixRange(store::DocId doc,
                                            const uint32_t* prefix,
                                            size_t len) const;

  std::string path_;
  store::PathId path_id_ = store::kInvalidPathId;
  ValueType type_ = ValueType::kString;
  uint32_t depth_ = 0;
  uint64_t docs_present_ = 0;
  U32View doc_offsets_;   ///< doc_count + 1: per-doc row ranges
  U32View codes_;         ///< rows: dictionary code per row
  U32View deweys_;        ///< rows * depth: flat fixed-stride Dewey IDs
  U32View present_;       ///< ceil(doc_count / 32) presence bitmap words
  U32View dict_offsets_;  ///< dict_size + 1: offsets into the value pool
  const char* pool_ = nullptr;  ///< concatenated sorted distinct values
  size_t pool_size_ = 0;
  std::string owned_pool_;       ///< backs pool_ when not image-mapped
  std::vector<int64_t> ints_;    ///< decoded typed view (kInt64)
  std::vector<double> doubles_;  ///< decoded typed view (kDouble)
};

/// The per-epoch column set: inference over a DocumentStore, persistence to /
/// from the kColumns image section, and path lookup for the cube planner.
class ColumnStore {
 public:
  /// Mines the store and materializes every qualifying path as a column.
  /// Deterministic: same store + options => identical columns (and identical
  /// section bytes), which is what keeps incremental commits bit-identical
  /// to cold rebuilds.
  static std::unique_ptr<ColumnStore> Build(const store::DocumentStore& store,
                                            const InferenceOptions& options);

  /// Writes the kColumns section (caller brackets with Begin/EndSection).
  Status SaveTo(persist::ImageWriter* writer) const;

  /// Decodes and structure-validates the kColumns section, borrowing all
  /// bulk arrays zero-copy from `image` (whose mapping it pins). Any
  /// malformed structure — misordered paths, out-of-range codes, ragged
  /// offsets, typed values disagreeing with the dictionary — returns
  /// ParseError, never undefined behaviour.
  static Result<std::unique_ptr<ColumnStore>> LoadFrom(
      std::shared_ptr<const persist::MappedImage> image,
      const store::DocumentStore& store);

  size_t size() const { return columns_.size(); }
  const std::vector<Column>& columns() const { return columns_; }
  size_t doc_count() const { return doc_count_; }

  /// Column for an exact label path, or nullptr. O(log n).
  const Column* Find(std::string_view path) const;
  /// Column by interned path id, or nullptr. O(1).
  const Column* FindByPathId(store::PathId id) const;

 private:
  ColumnStore() = default;

  std::vector<Column> columns_;  ///< sorted by path, strictly increasing
  std::unordered_map<store::PathId, size_t> by_path_id_;
  size_t doc_count_ = 0;
  /// Keeps the mapped image (and thus every borrowed span) alive.
  std::shared_ptr<const persist::MappedImage> image_;
};

}  // namespace seda::column

#endif  // SEDA_COLUMN_COLUMN_STORE_H_
