#include "column/column_store.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

#include "common/check.h"
#include "persist/format.h"
#include "persist/reader.h"
#include "persist/writer.h"
#include "xml/document.h"

namespace seda::column {
namespace {

/// A value is int64-typed only when the text is exactly the canonical decimal
/// rendering (full consume + to_string round trip), so the typed array and
/// the authoritative dictionary string carry the same information.
bool ParseCanonicalInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  int64_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return false;
  if (std::to_string(value) != text) return false;
  *out = value;
  return true;
}

/// Double typing requires a full-consume finite parse. No round-trip demand:
/// the dictionary string stays the output representation; the double is a
/// computational view (aggregations, range scans).
bool ParseFiniteDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  if (errno == ERANGE || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Strings are u32-length-prefixed (4 + len bytes); the pad keeps every
/// subsequent read 4-byte aligned so the u32 spans stay zero-copy mappable.
size_t StringPadding(size_t len) { return (4 - len % 4) % 4; }

void PutPaddedString(persist::ImageWriter* writer, const std::string& s) {
  writer->PutString(s);
  for (size_t pad = StringPadding(s.size()); pad > 0; --pad) writer->PutU8(0);
}

std::string GetPaddedString(persist::SectionCursor* cursor) {
  std::string s = cursor->GetString();
  for (size_t pad = StringPadding(s.size()); pad > 0; --pad) cursor->GetU8();
  return s;
}

/// Per-path aggregation for one inference pass.
struct PathAgg {
  bool leaf_pure = true;
  uint64_t docs = 0;
  store::DocId last_doc = 0;
  bool seen = false;
  /// Leaf occurrences in (doc, preorder) order == (doc, Dewey) order.
  std::vector<std::pair<store::DocId, const xml::Node*>> occurrences;
};

void WalkNode(const xml::Node* node, store::DocId doc, std::string* path,
              std::map<std::string, PathAgg>* aggs) {
  const size_t base = path->size();
  path->push_back('/');
  if (node->kind() == xml::NodeKind::kAttribute) path->push_back('@');
  path->append(node->name());

  PathAgg& agg = (*aggs)[*path];
  if (!agg.seen || agg.last_doc != doc) {
    agg.seen = true;
    agg.last_doc = doc;
    ++agg.docs;
  }
  bool leaf = true;
  for (const auto& child : node->children()) {
    if (child->kind() != xml::NodeKind::kText) {
      leaf = false;
      break;
    }
  }
  if (leaf) {
    agg.occurrences.emplace_back(doc, node);
  } else {
    agg.leaf_pure = false;
    for (const auto& child : node->children()) {
      if (child->kind() != xml::NodeKind::kText) {
        WalkNode(child.get(), doc, path, aggs);
      }
    }
  }
  path->resize(base);
}

uint32_t PathDepth(const std::string& path) {
  uint32_t depth = 0;
  for (char c : path) {
    if (c == '/') ++depth;
  }
  return depth;
}

ValueType InferType(const std::vector<std::string_view>& dict,
                    std::vector<int64_t>* ints, std::vector<double>* doubles) {
  if (dict.empty()) return ValueType::kString;
  ints->reserve(dict.size());
  bool all_int = true;
  for (std::string_view value : dict) {
    int64_t parsed = 0;
    if (!ParseCanonicalInt64(value, &parsed)) {
      all_int = false;
      break;
    }
    ints->push_back(parsed);
  }
  if (all_int) return ValueType::kInt64;
  ints->clear();
  doubles->reserve(dict.size());
  for (std::string_view value : dict) {
    double parsed = 0;
    if (!ParseFiniteDouble(value, &parsed)) {
      doubles->clear();
      return ValueType::kString;
    }
    doubles->push_back(parsed);
  }
  return ValueType::kDouble;
}

Status SectionError(const std::string& message) {
  return Status::ParseError("image section 'columns' " + message);
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kString:
      return "string";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
  }
  return "unknown";
}

Column::Presence Column::DocSingleton(store::DocId doc,
                                      uint32_t* row_out) const {
  if (size_t{doc} + 1 >= doc_offsets_.size()) return Presence::kMissing;
  const uint32_t lo = doc_offsets_[doc];
  const uint32_t hi = doc_offsets_[doc + 1];
  if (lo == hi) return Presence::kMissing;
  if (hi - lo > 1) return Presence::kDuplicate;
  *row_out = lo;
  return Presence::kValue;
}

std::pair<uint32_t, uint32_t> Column::PrefixRange(store::DocId doc,
                                                  const uint32_t* prefix,
                                                  size_t len) const {
  uint32_t lo = doc_offsets_[doc];
  uint32_t hi = doc_offsets_[doc + 1];
  auto less_than_prefix = [&](uint32_t row) {
    const uint32_t* d = RowDewey(row);
    return std::lexicographical_compare(d, d + len, prefix, prefix + len);
  };
  auto greater_than_prefix = [&](uint32_t row) {
    const uint32_t* d = RowDewey(row);
    return std::lexicographical_compare(prefix, prefix + len, d, d + len);
  };
  // First row whose leading `len` components are >= prefix.
  uint32_t first = lo;
  for (uint32_t count = hi - lo; count > 0;) {
    uint32_t step = count / 2;
    uint32_t mid = first + step;
    if (less_than_prefix(mid)) {
      first = mid + 1;
      count -= step + 1;
    } else {
      count = step;
    }
  }
  // First row whose leading `len` components are > prefix.
  uint32_t last = first;
  for (uint32_t count = hi - last; count > 0;) {
    uint32_t step = count / 2;
    uint32_t mid = last + step;
    if (!greater_than_prefix(mid)) {
      last = mid + 1;
      count -= step + 1;
    } else {
      count = step;
    }
  }
  return {first, last};
}

bool Column::FindRow(store::DocId doc, const uint32_t* dewey, size_t len,
                     uint32_t* row_out) const {
  if (size_t{doc} + 1 >= doc_offsets_.size()) return false;
  if (len != depth_) return false;
  auto [lo, hi] = PrefixRange(doc, dewey, len);
  if (hi - lo != 1) return false;  // 0: absent; >1 impossible (Deweys unique)
  *row_out = lo;
  return true;
}

Column::Presence Column::PrefixSingleton(store::DocId doc,
                                         const uint32_t* prefix, size_t len,
                                         uint32_t* row_out) const {
  if (size_t{doc} + 1 >= doc_offsets_.size()) return Presence::kMissing;
  SEDA_DCHECK(len < depth_) << "prefix probe with a full-length Dewey";
  auto [lo, hi] = PrefixRange(doc, prefix, len);
  if (lo == hi) return Presence::kMissing;
  if (hi - lo > 1) return Presence::kDuplicate;
  *row_out = lo;
  return Presence::kValue;
}

std::unique_ptr<ColumnStore> ColumnStore::Build(
    const store::DocumentStore& store, const InferenceOptions& options) {
  auto result = std::unique_ptr<ColumnStore>(new ColumnStore());
  const size_t doc_count = store.DocumentCount();
  result->doc_count_ = doc_count;
  if (!options.enabled || doc_count == 0) return result;

  // std::map keys iterate in path order, giving the sorted column order (and
  // thus byte-stable images) for free.
  std::map<std::string, PathAgg> aggs;
  std::string path;
  for (store::DocId doc = 0; doc < doc_count; ++doc) {
    const xml::Node* root = store.document(doc).root();
    if (root != nullptr) WalkNode(root, doc, &path, &aggs);
  }

  const uint64_t support_floor = std::max<uint64_t>(
      options.min_docs,
      static_cast<uint64_t>(
          std::ceil(options.min_doc_support * static_cast<double>(doc_count))));
  std::vector<const std::pair<const std::string, PathAgg>*> qualified;
  for (const auto& entry : aggs) {
    const PathAgg& agg = entry.second;
    if (!agg.leaf_pure || agg.occurrences.empty()) continue;
    if (agg.docs < std::max<uint64_t>(support_floor, 1)) continue;
    if (static_cast<double>(agg.occurrences.size()) >
        options.max_avg_occurrences * static_cast<double>(agg.docs)) {
      continue;
    }
    qualified.push_back(&entry);
  }
  if (qualified.size() > options.max_columns) {
    std::stable_sort(qualified.begin(), qualified.end(),
                     [](const auto* a, const auto* b) {
                       if (a->second.docs != b->second.docs) {
                         return a->second.docs > b->second.docs;
                       }
                       return a->first < b->first;
                     });
    qualified.resize(options.max_columns);
    std::sort(qualified.begin(), qualified.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
  }

  result->columns_.reserve(qualified.size());
  for (const auto* entry : qualified) {
    const std::string& col_path = entry->first;
    const PathAgg& agg = entry->second;
    Column col;
    col.path_ = col_path;
    col.path_id_ = store.paths().Find(col_path);
    SEDA_DCHECK(col.path_id_ != store::kInvalidPathId)
        << "walked path missing from the dictionary";
    col.depth_ = PathDepth(col_path);
    col.docs_present_ = agg.docs;

    const size_t rows = agg.occurrences.size();
    std::vector<std::string> values;
    values.reserve(rows);
    for (const auto& occ : agg.occurrences) {
      values.push_back(occ.second->ContentString());
    }
    std::vector<std::string_view> dict(values.begin(), values.end());
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

    std::vector<uint32_t> codes(rows);
    for (size_t i = 0; i < rows; ++i) {
      codes[i] = static_cast<uint32_t>(
          std::lower_bound(dict.begin(), dict.end(), values[i]) -
          dict.begin());
    }
    std::vector<uint32_t> doc_offsets(doc_count + 1, 0);
    for (const auto& occ : agg.occurrences) ++doc_offsets[occ.first + 1];
    for (size_t d = 0; d < doc_count; ++d) doc_offsets[d + 1] += doc_offsets[d];
    std::vector<uint32_t> deweys;
    deweys.reserve(rows * col.depth_);
    for (const auto& occ : agg.occurrences) {
      const auto& components = occ.second->dewey().components();
      SEDA_DCHECK_EQ(components.size(), size_t{col.depth_})
          << "Dewey depth diverges from label depth for " << col_path;
      deweys.insert(deweys.end(), components.begin(), components.end());
    }
    std::vector<uint32_t> present((doc_count + 31) / 32, 0);
    for (size_t d = 0; d < doc_count; ++d) {
      if (doc_offsets[d + 1] > doc_offsets[d]) {
        present[d / 32] |= 1u << (d % 32);
      }
    }
    std::vector<uint32_t> dict_offsets;
    dict_offsets.reserve(dict.size() + 1);
    dict_offsets.push_back(0);
    std::string pool;
    for (std::string_view value : dict) {
      pool.append(value);
      dict_offsets.push_back(static_cast<uint32_t>(pool.size()));
    }
    col.type_ = InferType(dict, &col.ints_, &col.doubles_);

    col.doc_offsets_.Own(std::move(doc_offsets));
    col.codes_.Own(std::move(codes));
    col.deweys_.Own(std::move(deweys));
    col.present_.Own(std::move(present));
    col.dict_offsets_.Own(std::move(dict_offsets));
    col.owned_pool_ = std::move(pool);
    col.pool_size_ = col.owned_pool_.size();
    result->columns_.push_back(std::move(col));
    // Point at the pool only after the move above: a short std::string keeps
    // its bytes inline (SSO), so a pointer taken before the move would dangle.
    result->columns_.back().pool_ = result->columns_.back().owned_pool_.data();
  }
  for (size_t i = 0; i < result->columns_.size(); ++i) {
    result->by_path_id_.emplace(result->columns_[i].path_id(), i);
  }
  return result;
}

Status ColumnStore::SaveTo(persist::ImageWriter* writer) const {
  writer->PutU64(doc_count_);
  writer->PutU64(columns_.size());
  for (const Column& col : columns_) {
    PutPaddedString(writer, col.path_);
    writer->PutU8(static_cast<uint8_t>(col.type_));
    writer->PutU8(0);
    writer->PutU8(0);
    writer->PutU8(0);
    writer->PutU32(col.depth_);
    writer->PutU32Span(col.doc_offsets_.data(), col.doc_offsets_.size());
    writer->PutU32Span(col.codes_.data(), col.codes_.size());
    writer->PutU32Span(col.deweys_.data(), col.deweys_.size());
    writer->PutU32Span(col.present_.data(), col.present_.size());
    writer->PutU32Span(col.dict_offsets_.data(), col.dict_offsets_.size());
    // Value pool as a skippable blob, padded so later reads stay 4-aligned.
    writer->BeginBlob();
    PutPaddedString(writer, std::string(col.pool_, col.pool_size_));
    writer->EndBlob();
    for (int64_t v : col.ints_) {
      uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      writer->PutU64(bits);
    }
    for (double v : col.doubles_) writer->PutDouble(v);
  }
  return Status::OK();
}

Result<std::unique_ptr<ColumnStore>> ColumnStore::LoadFrom(
    std::shared_ptr<const persist::MappedImage> image,
    const store::DocumentStore& store) {
  SEDA_ASSIGN_OR_RETURN(
      persist::SectionCursor cursor,
      persist::OpenSection(*image, persist::SectionId::kColumns));
  auto result = std::unique_ptr<ColumnStore>(new ColumnStore());
  result->image_ = image;

  const uint64_t doc_count = cursor.GetU64();
  if (doc_count != store.DocumentCount()) {
    return SectionError("document count disagrees with the store");
  }
  result->doc_count_ = static_cast<size_t>(doc_count);
  const uint64_t column_count = cursor.GetU64();
  result->columns_.reserve(cursor.BoundedCount(column_count, 32));

  for (uint64_t i = 0; i < column_count && !cursor.failed(); ++i) {
    Column col;
    col.path_ = GetPaddedString(&cursor);
    if (!result->columns_.empty() &&
        result->columns_.back().path_ >= col.path_) {
      return SectionError("column paths out of order");
    }
    col.path_id_ = store.paths().Find(col.path_);
    if (col.path_id_ == store::kInvalidPathId) {
      if (cursor.failed()) break;  // truncated read, not a real path miss
      return SectionError("column path '" + col.path_ +
                          "' unknown to the path dictionary");
    }
    const uint8_t type = cursor.GetU8();
    cursor.GetU8();
    cursor.GetU8();
    cursor.GetU8();
    if (type > static_cast<uint8_t>(ValueType::kDouble)) {
      return SectionError("column value type out of range");
    }
    col.type_ = static_cast<ValueType>(type);
    col.depth_ = cursor.GetU32();
    if (col.depth_ != PathDepth(col.path_)) {
      return SectionError("column depth disagrees with its path");
    }

    auto [doc_offsets, doc_offsets_count] = cursor.GetU32Span();
    auto [codes, codes_count] = cursor.GetU32Span();
    auto [deweys, deweys_count] = cursor.GetU32Span();
    auto [present, present_count] = cursor.GetU32Span();
    auto [dict_offsets, dict_offsets_count] = cursor.GetU32Span();
    persist::SectionCursor pool_cursor = cursor.GetBlob();
    const uint32_t pool_size = pool_cursor.GetU32();
    if (pool_size > pool_cursor.remaining()) {
      return SectionError("value pool overruns its blob");
    }
    if (cursor.failed() || pool_cursor.failed()) break;

    if (doc_offsets_count != doc_count + 1 || doc_offsets[0] != 0) {
      return SectionError("row index has a ragged document range");
    }
    for (uint64_t d = 0; d < doc_count; ++d) {
      if (doc_offsets[d] > doc_offsets[d + 1]) {
        return SectionError("row index has a ragged document range");
      }
    }
    const uint32_t rows = doc_offsets[doc_count];
    if (codes_count != rows) {
      return SectionError("code array disagrees with the row index");
    }
    if (col.depth_ == 0 ||
        deweys_count != uint64_t{rows} * col.depth_) {
      return SectionError("Dewey array disagrees with the row index");
    }
    if (present_count != (doc_count + 31) / 32) {
      return SectionError("presence bitmap has the wrong size");
    }
    uint64_t docs_present = 0;
    for (uint64_t d = 0; d < doc_count; ++d) {
      const bool has_rows = doc_offsets[d + 1] > doc_offsets[d];
      const bool bit = (present[d / 32] >> (d % 32)) & 1u;
      if (bit != has_rows) {
        return SectionError("presence bitmap disagrees with the row index");
      }
      docs_present += has_rows ? 1 : 0;
    }
    for (uint64_t w = doc_count; w < uint64_t{present_count} * 32; ++w) {
      if ((present[w / 32] >> (w % 32)) & 1u) {
        return SectionError("presence bitmap has bits past the last document");
      }
    }
    col.docs_present_ = docs_present;
    if (dict_offsets_count == 0 || dict_offsets[0] != 0) {
      return SectionError("dictionary offsets malformed");
    }
    const uint32_t dict_size = dict_offsets_count - 1;
    for (uint32_t e = 0; e < dict_size; ++e) {
      if (dict_offsets[e] > dict_offsets[e + 1]) {
        return SectionError("dictionary offsets malformed");
      }
    }
    if (dict_offsets[dict_size] != pool_size) {
      return SectionError("dictionary offsets disagree with the value pool");
    }
    const char* pool = reinterpret_cast<const char*>(pool_cursor.data());
    for (uint32_t e = 0; e + 1 < dict_size; ++e) {
      std::string_view a(pool + dict_offsets[e],
                         dict_offsets[e + 1] - dict_offsets[e]);
      std::string_view b(pool + dict_offsets[e + 1],
                         dict_offsets[e + 2] - dict_offsets[e + 1]);
      if (a >= b) {
        return SectionError("dictionary values out of order");
      }
    }
    for (uint32_t r = 0; r < rows; ++r) {
      if (codes[r] >= dict_size) {
        return SectionError("row code out of dictionary range");
      }
    }
    // Per-document Dewey rows must be strictly increasing (binary-search
    // soundness) — also proves row Deweys are unique within a document.
    for (uint64_t d = 0; d < doc_count; ++d) {
      for (uint32_t r = doc_offsets[d]; r + 1 < doc_offsets[d + 1]; ++r) {
        const uint32_t* a = deweys + size_t{r} * col.depth_;
        const uint32_t* b = a + col.depth_;
        if (!std::lexicographical_compare(a, b, b, b + col.depth_)) {
          return SectionError("row Dewey IDs out of order");
        }
      }
    }

    if (col.type_ == ValueType::kInt64) {
      col.ints_.resize(dict_size);
      for (uint32_t e = 0; e < dict_size; ++e) {
        const uint64_t bits = cursor.GetU64();
        std::memcpy(&col.ints_[e], &bits, sizeof(bits));
      }
    } else if (col.type_ == ValueType::kDouble) {
      col.doubles_.resize(dict_size);
      for (uint32_t e = 0; e < dict_size; ++e) {
        col.doubles_[e] = cursor.GetDouble();
      }
    }
    if (cursor.failed()) break;
    // The typed view must agree with the authoritative dictionary strings.
    for (uint32_t e = 0; e < dict_size; ++e) {
      std::string_view value(pool + dict_offsets[e],
                             dict_offsets[e + 1] - dict_offsets[e]);
      if (col.type_ == ValueType::kInt64) {
        int64_t parsed = 0;
        if (!ParseCanonicalInt64(value, &parsed) || parsed != col.ints_[e]) {
          return SectionError("int64 view disagrees with the dictionary");
        }
      } else if (col.type_ == ValueType::kDouble) {
        double parsed = 0;
        uint64_t want = 0;
        uint64_t got = 0;
        std::memcpy(&got, &col.doubles_[e], sizeof(got));
        if (!ParseFiniteDouble(value, &parsed)) {
          return SectionError("double view disagrees with the dictionary");
        }
        std::memcpy(&want, &parsed, sizeof(want));
        if (want != got) {
          return SectionError("double view disagrees with the dictionary");
        }
      }
    }

    col.doc_offsets_.Borrow(doc_offsets, doc_offsets_count);
    col.codes_.Borrow(codes, codes_count);
    col.deweys_.Borrow(deweys, deweys_count);
    col.present_.Borrow(present, present_count);
    col.dict_offsets_.Borrow(dict_offsets, dict_offsets_count);
    col.pool_ = pool;
    col.pool_size_ = pool_size;
    result->columns_.push_back(std::move(col));
  }
  SEDA_RETURN_IF_ERROR(cursor.status());
  if (result->columns_.size() != column_count) {
    return SectionError("truncated column list");
  }
  if (cursor.remaining() != 0) {
    return SectionError("has trailing bytes");
  }
  for (size_t i = 0; i < result->columns_.size(); ++i) {
    result->by_path_id_.emplace(result->columns_[i].path_id(), i);
  }
  return result;
}

const Column* ColumnStore::Find(std::string_view path) const {
  auto it = std::lower_bound(
      columns_.begin(), columns_.end(), path,
      [](const Column& col, std::string_view p) { return col.path() < p; });
  if (it == columns_.end() || it->path() != path) return nullptr;
  return &*it;
}

const Column* ColumnStore::FindByPathId(store::PathId id) const {
  auto it = by_path_id_.find(id);
  if (it == by_path_id_.end()) return nullptr;
  return &columns_[it->second];
}

}  // namespace seda::column
