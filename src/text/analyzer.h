#ifndef SEDA_TEXT_ANALYZER_H_
#define SEDA_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace seda::text {

/// Tokenizes text for indexing and querying: splits on non-alphanumeric
/// characters and lowercases. Numbers (incl. decimal values like "12.31")
/// are kept whole so fact values remain searchable.
std::vector<std::string> Tokenize(std::string_view input);

/// Normalizes a single keyword the same way Tokenize normalizes tokens.
/// Returns an empty string when the keyword contains no indexable character.
std::string NormalizeToken(std::string_view token);

}  // namespace seda::text

#endif  // SEDA_TEXT_ANALYZER_H_
