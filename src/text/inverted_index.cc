#include "text/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.h"
#include "persist/reader.h"
#include "persist/writer.h"
#include "text/analyzer.h"

namespace seda::text {

const std::vector<NodePosting> InvertedIndex::kEmptyPostings;
const std::vector<store::PathId> InvertedIndex::kEmptyPaths;
const std::vector<store::NodeId> InvertedIndex::kEmptyNodes;

namespace {

/// Merge-intersects two document-order match lists, combining scores.
std::vector<NodeMatch> IntersectMatches(const std::vector<NodeMatch>& a,
                                        const std::vector<NodeMatch>& b) {
  std::vector<NodeMatch> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].node < b[j].node) {
      ++i;
    } else if (b[j].node < a[i].node) {
      ++j;
    } else {
      out.push_back({a[i].node, a[i].path, a[i].score + b[j].score});
      ++i;
      ++j;
    }
  }
  return out;
}

std::vector<NodeMatch> UnionMatches(const std::vector<NodeMatch>& a,
                                    const std::vector<NodeMatch>& b) {
  std::vector<NodeMatch> out;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].node < b[j].node)) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j].node < a[i].node) {
      out.push_back(b[j++]);
    } else {
      out.push_back({a[i].node, a[i].path, a[i].score + b[j].score});
      ++i;
      ++j;
    }
  }
  return out;
}

std::vector<NodeMatch> SubtractMatches(const std::vector<NodeMatch>& a,
                                       const std::vector<NodeMatch>& b) {
  std::vector<NodeMatch> out;
  size_t i = 0, j = 0;
  while (i < a.size()) {
    while (j < b.size() && b[j].node < a[i].node) ++j;
    if (j >= b.size() || !(b[j].node == a[i].node)) {
      out.push_back(a[i]);
    }
    ++i;
  }
  return out;
}

/// Complement against the node universe in one streaming pass: every
/// element/attribute node not present in `excluded` (which must be in
/// document order) is emitted with score 0. Unlike materializing kAll and
/// then subtracting, this allocates only the output.
std::vector<NodeMatch> ComplementMatches(const store::DocumentStore& store,
                                         const std::vector<NodeMatch>& excluded) {
  std::vector<NodeMatch> out;
  size_t j = 0;
  store.ForEachNode([&](const store::NodeId& id, xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    while (j < excluded.size() && excluded[j].node < id) ++j;
    if (j < excluded.size() && excluded[j].node == id) return;
    out.push_back({id, store.paths().Find(node->ContextPath()), 0.0});
  });
  return out;
}

std::vector<store::PathId> IntersectSorted(const std::vector<store::PathId>& a,
                                           const std::vector<store::PathId>& b) {
  std::vector<store::PathId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<store::PathId> UnionSorted(const std::vector<store::PathId>& a,
                                       const std::vector<store::PathId>& b) {
  std::vector<store::PathId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<store::PathId> SubtractSorted(const std::vector<store::PathId>& a,
                                          const std::vector<store::PathId>& b) {
  std::vector<store::PathId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

struct InvertedIndex::DocShard {
  std::unordered_map<std::string, std::vector<NodePosting>> node_postings;
  std::unordered_map<std::string, std::vector<store::PathId>> path_postings;
  std::unordered_map<std::string, std::unordered_map<store::PathId, uint64_t>>
      path_counts;
  /// Distinct content tokens of the document (document frequency units).
  std::unordered_set<std::string> doc_terms;
  /// (path, node) pairs in node visit order.
  std::vector<std::pair<store::PathId, store::NodeId>> path_nodes;
  uint64_t indexed_nodes = 0;
};

InvertedIndex::InvertedIndex(const store::DocumentStore* store, ThreadPool* pool)
    : store_(store) {
  IndexRange(0, pool);
}

InvertedIndex::InvertedIndex(const InvertedIndex& base,
                             const store::DocumentStore* store,
                             store::DocId first_new_doc, ThreadPool* pool)
    : store_(store),
      path_postings_(base.path_postings_),
      doc_freq_(base.doc_freq_),
      max_tf_(base.max_tf_),
      nodes_by_path_(base.nodes_by_path_),
      indexed_nodes_(base.indexed_nodes_) {
  // A base opened from an image may still hold lazy posting spans; the
  // incremental merge appends to full lists, so decode them all once. The
  // new epoch is fully in-memory (it does not co-own the image).
  base.MaterializeAllPostings();
  base.MaterializePathCounts();
  node_postings_ = base.node_postings_;
  path_counts_ = base.path_counts_;
  IndexRange(first_new_doc, pool);
}

size_t InvertedIndex::TermCount() const {
  if (image_ == nullptr) return node_postings_.size();
  std::shared_lock<std::shared_mutex> lock(lazy_mu_);
  return node_postings_.size() + lazy_postings_.size();
}

std::vector<std::string> InvertedIndex::AllTerms() const {
  std::unordered_set<std::string> seen;
  {
    std::shared_lock<std::shared_mutex> lock(lazy_mu_);
    for (const auto& [term, postings] : node_postings_) seen.insert(term);
    for (const auto& [term, span] : lazy_postings_) seen.insert(term);
  }
  for (const auto& [term, paths] : path_postings_) seen.insert(term);
  std::vector<std::string> terms(seen.begin(), seen.end());
  std::sort(terms.begin(), terms.end());
  return terms;
}

void InvertedIndex::IndexRange(store::DocId first_doc, ThreadPool* pool) {
  nodes_by_path_.resize(store_->paths().size());

  // Stage 1 (parallel): one partial index per document. Documents are
  // independent, and every shard container appends in node visit order.
  size_t doc_count = store_->DocumentCount();
  size_t new_count = doc_count > first_doc ? doc_count - first_doc : 0;
  std::vector<DocShard> shards(new_count);
  RunParallel(pool, new_count, [&](size_t d) {
    shards[d] = BuildDocShard(static_cast<store::DocId>(first_doc + d));
  });

  // Stage 2 (sequential, deterministic): merge in DocId order, which
  // reproduces exactly the append order of a single-threaded pass. Terms
  // whose path postings this range touches are tracked so the normalize
  // pass below is O(delta vocabulary), not O(total vocabulary) — the point
  // of an incremental commit.
  std::unordered_set<std::string> touched_path_terms;
  for (DocShard& shard : shards) {
    for (const auto& [term, paths] : shard.path_postings) {
      touched_path_terms.insert(term);
    }
    MergeShard(std::move(shard));
  }

  // Finalize touched path postings: sort + dedupe. On the incremental path
  // the base lists are already sorted-distinct; re-normalizing the
  // concatenation yields the same set a from-scratch build sorts out of its
  // raw appends, and untouched terms are already normalized.
  for (const std::string& term : touched_path_terms) {
    std::vector<store::PathId>& paths = path_postings_[term];
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  }
}

InvertedIndex::DocShard InvertedIndex::BuildDocShard(store::DocId doc) const {
  DocShard shard;
  store_->document(doc).ForEachNode([&](xml::Node* node) {
    if (node->kind() == xml::NodeKind::kText) return;
    store::NodeId id{doc, node->dewey()};
    std::string path_text = node->ContextPath();
    store::PathId path = store_->paths().Find(path_text);
    if (path == store::kInvalidPathId) return;
    shard.path_nodes.emplace_back(path, id);
    ++shard.indexed_nodes;

    std::vector<std::string> tokens = Tokenize(node->ContentString());
    // Path postings (Fig. 8) index only the text a node *directly* contains,
    // so "United States" maps to trade_country/name leaf paths rather than to
    // every ancestor context; node postings keep the full content(n)
    // semantics of Definition 3.
    std::string direct_text;
    if (node->kind() == xml::NodeKind::kAttribute) {
      direct_text = node->text();
    } else {
      for (const auto& child : node->children()) {
        if (child->kind() == xml::NodeKind::kText) {
          direct_text += child->text() + " ";
        }
      }
    }
    IndexNode(&shard, id, path, tokens, Tokenize(direct_text));

    // Tag names are indexed as keywords too (paper §5), pointing at the
    // node's own path.
    std::string tag = NormalizeToken(node->name());
    if (!tag.empty()) {
      shard.path_postings[tag].push_back(path);
      shard.path_counts[tag][path] += 1;
    }

    // Document frequency per content token: a term counts once per document,
    // no matter how many nodes repeat it (ancestors repeat descendant text).
    shard.doc_terms.insert(tokens.begin(), tokens.end());
  });
  return shard;
}

void InvertedIndex::MergeShard(DocShard&& shard) {
  for (auto& [term, postings] : shard.node_postings) {
    uint32_t& max_tf = max_tf_[term];
    for (const NodePosting& p : postings) {
      max_tf = std::max(max_tf, static_cast<uint32_t>(p.positions.size()));
    }
    auto& dst = node_postings_[term];
    dst.insert(dst.end(), std::make_move_iterator(postings.begin()),
               std::make_move_iterator(postings.end()));
  }
  for (auto& [term, paths] : shard.path_postings) {
    auto& dst = path_postings_[term];
    dst.insert(dst.end(), paths.begin(), paths.end());
  }
  for (auto& [term, counts] : shard.path_counts) {
    auto& dst = path_counts_[term];
    for (const auto& [path, count] : counts) dst[path] += count;
  }
  for (const std::string& term : shard.doc_terms) doc_freq_[term] += 1;
  for (const auto& [path, node] : shard.path_nodes) {
    if (path >= nodes_by_path_.size()) nodes_by_path_.resize(path + 1);
    nodes_by_path_[path].push_back(node);
  }
  indexed_nodes_ += shard.indexed_nodes;
}

void InvertedIndex::IndexNode(DocShard* shard, const store::NodeId& id,
                              store::PathId path,
                              const std::vector<std::string>& tokens,
                              const std::vector<std::string>& direct_tokens) {
  // Gather positions per distinct token in this node.
  std::unordered_map<std::string, std::vector<uint32_t>> positions;
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    positions[tokens[pos]].push_back(pos);
  }
  for (auto& [term, pos_list] : positions) {
    NodePosting posting;
    posting.node = id;
    posting.path = path;
    posting.positions = std::move(pos_list);
    shard->node_postings[term].push_back(std::move(posting));
  }
  for (const std::string& term : direct_tokens) {
    shard->path_postings[term].push_back(path);
    shard->path_counts[term][path] += 1;
  }
}

namespace {

/// Keys of a string-keyed map, sorted — fixes an iteration order so images
/// are byte-stable across runs and identical builds hash to identical files.
template <typename Map>
std::vector<const std::string*> SortedKeys(const Map& map) {
  std::vector<const std::string*> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  return keys;
}

void PutNodeId(persist::ImageWriter* writer, const store::NodeId& node) {
  writer->PutU32(node.doc);
  writer->PutU32Array(node.dewey.components());
}

store::NodeId GetNodeId(persist::SectionCursor* cursor) {
  uint32_t doc = cursor->GetU32();
  return store::NodeId{doc, xml::DeweyId(cursor->GetU32Array())};
}

}  // namespace

Status InvertedIndex::SaveTo(persist::ImageWriter* writer) const {
  // An index that was itself opened from an image may still hold lazy spans
  // (into a mapping this writer might even be replacing) — decode them all.
  MaterializeAllPostings();
  MaterializePathCounts();

  writer->BeginSection(persist::SectionId::kIndexTerms);
  writer->PutU64(node_postings_.size());
  for (const std::string* term : SortedKeys(node_postings_)) {
    writer->PutString(*term);
    // Each posting list is a skippable blob, so Load can keep it as an
    // offset-addressed lazy segment of the mapping.
    writer->BeginBlob();
    const std::vector<NodePosting>& postings = node_postings_.at(*term);
    writer->PutU64(postings.size());
    for (const NodePosting& posting : postings) {
      PutNodeId(writer, posting.node);
      writer->PutU32(posting.path);
      writer->PutU32Array(posting.positions);
    }
    writer->EndBlob();
  }
  writer->PutU64(doc_freq_.size());
  for (const std::string* term : SortedKeys(doc_freq_)) {
    writer->PutString(*term);
    writer->PutU64(doc_freq_.at(*term));
  }
  writer->PutU64(max_tf_.size());
  for (const std::string* term : SortedKeys(max_tf_)) {
    writer->PutString(*term);
    writer->PutU32(max_tf_.at(*term));
  }
  SEDA_RETURN_IF_ERROR(writer->EndSection());

  writer->BeginSection(persist::SectionId::kIndexPaths);
  writer->PutU64(path_postings_.size());
  for (const std::string* term : SortedKeys(path_postings_)) {
    writer->PutString(*term);
    writer->PutU32Array(path_postings_.at(*term));
  }
  // The whole count table is one skippable blob: reopen keeps it as a lazy
  // segment until the first TermPathCount() call (ablation-only data).
  writer->BeginBlob();
  writer->PutU64(path_counts_.size());
  for (const std::string* term : SortedKeys(path_counts_)) {
    writer->PutString(*term);
    const auto& counts = path_counts_.at(*term);
    std::vector<std::pair<store::PathId, uint64_t>> sorted(counts.begin(),
                                                           counts.end());
    std::sort(sorted.begin(), sorted.end());
    writer->PutU32(static_cast<uint32_t>(sorted.size()));
    for (const auto& [path, count] : sorted) {
      writer->PutU32(path);
      writer->PutU64(count);
    }
  }
  writer->EndBlob();
  writer->PutU64(nodes_by_path_.size());
  for (const std::vector<store::NodeId>& nodes : nodes_by_path_) {
    writer->PutU64(nodes.size());
    for (const store::NodeId& node : nodes) PutNodeId(writer, node);
  }
  writer->PutU64(indexed_nodes_);
  return writer->EndSection();
}

/// Decodes one term's posting-list blob (the format SaveTo frames).
static std::vector<NodePosting> DecodePostings(persist::SectionCursor* blob) {
  std::vector<NodePosting> postings;
  uint64_t posting_count = blob->GetU64();
  postings.reserve(blob->BoundedCount(posting_count, 16));
  for (uint64_t p = 0; p < posting_count && !blob->failed(); ++p) {
    NodePosting posting;
    posting.node = GetNodeId(blob);
    posting.path = blob->GetU32();
    posting.positions = blob->GetU32Array();
    postings.push_back(std::move(posting));
  }
  if (blob->failed()) postings.clear();  // unreachable behind the CRC pass
  return postings;
}

Result<std::unique_ptr<InvertedIndex>> InvertedIndex::LoadFrom(
    std::shared_ptr<const persist::MappedImage> image,
    const store::DocumentStore* store) {
  std::unique_ptr<InvertedIndex> index(new InvertedIndex(store, LoadTag{}));

  SEDA_ASSIGN_OR_RETURN(persist::SectionCursor terms,
                        persist::OpenSection(*image, persist::SectionId::kIndexTerms));
  uint64_t term_count = terms.GetU64();
  index->lazy_postings_.reserve(terms.BoundedCount(term_count, 12));
  for (uint64_t t = 0; t < term_count && !terms.failed(); ++t) {
    std::string term = terms.GetString();
    // The posting list itself stays an offset-addressed segment of the
    // mapping; only this term-table head is materialized now.
    persist::SectionCursor blob = terms.GetBlob();
    index->lazy_postings_.emplace(
        std::move(term), LazySpan{blob.data(), blob.remaining()});
  }
  uint64_t df_count = terms.GetU64();
  index->doc_freq_.reserve(terms.BoundedCount(df_count, 12));
  for (uint64_t t = 0; t < df_count && !terms.failed(); ++t) {
    std::string term = terms.GetString();
    index->doc_freq_[std::move(term)] = terms.GetU64();
  }
  uint64_t tf_count = terms.GetU64();
  index->max_tf_.reserve(terms.BoundedCount(tf_count, 8));
  for (uint64_t t = 0; t < tf_count && !terms.failed(); ++t) {
    std::string term = terms.GetString();
    index->max_tf_[std::move(term)] = terms.GetU32();
  }
  SEDA_RETURN_IF_ERROR(terms.status());

  SEDA_ASSIGN_OR_RETURN(persist::SectionCursor paths,
                        persist::OpenSection(*image, persist::SectionId::kIndexPaths));
  uint64_t path_term_count = paths.GetU64();
  index->path_postings_.reserve(paths.BoundedCount(path_term_count, 8));
  for (uint64_t t = 0; t < path_term_count && !paths.failed(); ++t) {
    std::string term = paths.GetString();
    index->path_postings_[std::move(term)] = paths.GetU32Array();
  }
  {
    persist::SectionCursor counts_blob = paths.GetBlob();
    index->lazy_path_counts_ =
        LazySpan{counts_blob.data(), counts_blob.remaining()};
  }
  // The loop bound must be the clamped size: with a garbage count the
  // cursor fails a few reads in, and indexing past the resize would write
  // out of bounds before that surfaces.
  uint64_t by_path_count = paths.BoundedCount(paths.GetU64(), 8);
  index->nodes_by_path_.resize(by_path_count);
  for (uint64_t p = 0; p < by_path_count && !paths.failed(); ++p) {
    uint64_t node_count = paths.GetU64();
    std::vector<store::NodeId>& nodes = index->nodes_by_path_[p];
    nodes.reserve(paths.BoundedCount(node_count, 8));
    for (uint64_t n = 0; n < node_count && !paths.failed(); ++n) {
      nodes.push_back(GetNodeId(&paths));
    }
  }
  index->indexed_nodes_ = paths.GetU64();
  SEDA_RETURN_IF_ERROR(paths.status());
  // Co-own the mapping: every LazySpan above points into it.
  index->image_ = std::move(image);
  return index;
}

void InvertedIndex::MaterializeAllPostings() const {
  if (image_ == nullptr) return;
  std::unique_lock<std::shared_mutex> lock(lazy_mu_);
  for (const auto& [term, span] : lazy_postings_) {
    persist::SectionCursor blob(span.data, span.size,
                                persist::SectionId::kIndexTerms);
    node_postings_[term] = DecodePostings(&blob);
  }
  lazy_postings_.clear();
}

void InvertedIndex::MaterializePathCounts() const {
  if (image_ == nullptr) return;
  {
    // Fast path once decoded: don't serialize every TermPathCount call (or
    // block concurrent Postings readers) behind the exclusive lock.
    std::shared_lock<std::shared_mutex> lock(lazy_mu_);
    if (lazy_path_counts_.data == nullptr) return;
  }
  std::unique_lock<std::shared_mutex> lock(lazy_mu_);
  if (lazy_path_counts_.data == nullptr) return;  // raced another decoder
  persist::SectionCursor counts(lazy_path_counts_.data, lazy_path_counts_.size,
                                persist::SectionId::kIndexPaths);
  uint64_t count_term_count = counts.GetU64();
  path_counts_.reserve(counts.BoundedCount(count_term_count, 8));
  for (uint64_t t = 0; t < count_term_count && !counts.failed(); ++t) {
    std::string term = counts.GetString();
    uint32_t pair_count = counts.GetU32();
    auto& table = path_counts_[std::move(term)];
    table.reserve(counts.BoundedCount(pair_count, 12));
    for (uint32_t p = 0; p < pair_count && !counts.failed(); ++p) {
      uint32_t path = counts.GetU32();
      table[path] = counts.GetU64();
    }
  }
  lazy_path_counts_ = LazySpan{};
}

const std::vector<NodePosting>& InvertedIndex::Postings(const std::string& term) const {
  if (image_ == nullptr) {  // built in memory: single-writer, no locking
    auto it = node_postings_.find(term);
    return it == node_postings_.end() ? kEmptyPostings : it->second;
  }
  {
    std::shared_lock<std::shared_mutex> lock(lazy_mu_);
    auto it = node_postings_.find(term);
    // References into node_postings_ stay valid across later inserts
    // (unordered_map guarantees reference stability), so returning after
    // unlock is safe.
    if (it != node_postings_.end()) return it->second;
    if (lazy_postings_.find(term) == lazy_postings_.end()) {
      return kEmptyPostings;
    }
  }
  // First touch of this term: decode its segment of the mapping.
  std::unique_lock<std::shared_mutex> lock(lazy_mu_);
  auto it = node_postings_.find(term);
  if (it != node_postings_.end()) return it->second;  // raced another reader
  auto lazy = lazy_postings_.find(term);
  if (lazy == lazy_postings_.end()) return kEmptyPostings;
  persist::SectionCursor blob(lazy->second.data, lazy->second.size,
                              persist::SectionId::kIndexTerms);
  std::vector<NodePosting>& postings = node_postings_[term];
  postings = DecodePostings(&blob);
  lazy_postings_.erase(lazy);
  return postings;
}

const std::vector<store::PathId>& InvertedIndex::TermPaths(
    const std::string& term) const {
  auto it = path_postings_.find(term);
  return it == path_postings_.end() ? kEmptyPaths : it->second;
}

uint64_t InvertedIndex::TermPathCount(const std::string& term,
                                      store::PathId path) const {
  MaterializePathCounts();
  auto it = path_counts_.find(term);
  if (it == path_counts_.end()) return 0;
  auto jt = it->second.find(path);
  return jt == it->second.end() ? 0 : jt->second;
}

uint64_t InvertedIndex::DocumentFrequency(const std::string& term) const {
  auto it = doc_freq_.find(term);
  return it == doc_freq_.end() ? 0 : it->second;
}

uint32_t InvertedIndex::MaxTermFrequency(const std::string& term) const {
  auto it = max_tf_.find(term);
  return it == max_tf_.end() ? 0 : it->second;
}

double InvertedIndex::Idf(const std::string& term) const {
  double n = static_cast<double>(store_->DocumentCount());
  double df = static_cast<double>(DocumentFrequency(term));
  return std::log(1.0 + (n + 1.0) / (df + 1.0));
}

std::vector<NodeMatch> InvertedIndex::EvaluateNodes(const TextExpr& expr) const {
  switch (expr.kind) {
    case TextExpr::Kind::kAll: {
      std::vector<NodeMatch> out;
      store_->ForEachNode([&](const store::NodeId& id, xml::Node* node) {
        if (node->kind() == xml::NodeKind::kText) return;
        store::PathId path = store_->paths().Find(node->ContextPath());
        out.push_back({id, path, 0.0});
      });
      return out;
    }
    case TextExpr::Kind::kTerm: {
      std::vector<NodeMatch> out;
      double idf = Idf(expr.term);
      for (const NodePosting& p : Postings(expr.term)) {
        out.push_back({p.node, p.path, TermContentScore(idf, p.positions.size())});
      }
      return out;
    }
    case TextExpr::Kind::kPhrase: {
      // Intersect postings of all phrase tokens per node, then verify
      // consecutive positions.
      if (expr.phrase.empty()) return {};
      std::vector<const std::vector<NodePosting>*> lists;
      for (const auto& token : expr.phrase) {
        lists.push_back(&Postings(token));
        if (lists.back()->empty()) return {};
      }
      double score = 0;
      for (const auto& token : expr.phrase) score += Idf(token);
      std::vector<NodeMatch> out;
      std::vector<size_t> cursor(lists.size(), 0);
      // Advance over the first token's postings; align the rest.
      for (const NodePosting& first : *lists[0]) {
        bool aligned = true;
        std::vector<const NodePosting*> row(lists.size());
        row[0] = &first;
        for (size_t t = 1; t < lists.size(); ++t) {
          auto& list = *lists[t];
          size_t& c = cursor[t];
          while (c < list.size() && list[c].node < first.node) ++c;
          if (c >= list.size() || !(list[c].node == first.node)) {
            aligned = false;
            break;
          }
          row[t] = &list[c];
        }
        if (!aligned) continue;
        // Check for p with p+t present in each token's positions.
        bool phrase_found = false;
        for (uint32_t p0 : first.positions) {
          bool all = true;
          for (size_t t = 1; t < row.size(); ++t) {
            const auto& positions = row[t]->positions;
            if (!std::binary_search(positions.begin(), positions.end(),
                                    p0 + static_cast<uint32_t>(t))) {
              all = false;
              break;
            }
          }
          if (all) {
            phrase_found = true;
            break;
          }
        }
        if (phrase_found) out.push_back({first.node, first.path, score});
      }
      return out;
    }
    case TextExpr::Kind::kAnd: {
      std::vector<NodeMatch> positive;
      bool have_positive = false;
      std::vector<const TextExpr*> negatives;
      for (const auto& child : expr.children) {
        if (child->kind == TextExpr::Kind::kNot) {
          negatives.push_back(child->children.front().get());
          continue;
        }
        auto matches = EvaluateNodes(*child);
        if (!have_positive) {
          positive = std::move(matches);
          have_positive = true;
        } else {
          positive = IntersectMatches(positive, matches);
        }
      }
      if (!have_positive) {
        // Pure negation: complement the union of the negatives against the
        // universe in one pass (identical to materializing kAll and
        // subtracting each negative, minus the universe-sized temporaries).
        std::vector<NodeMatch> excluded;
        for (const TextExpr* neg : negatives) {
          excluded = UnionMatches(excluded, EvaluateNodes(*neg));
        }
        return ComplementMatches(*store_, excluded);
      }
      for (const TextExpr* neg : negatives) {
        positive = SubtractMatches(positive, EvaluateNodes(*neg));
      }
      return positive;
    }
    case TextExpr::Kind::kOr: {
      std::vector<NodeMatch> out;
      for (const auto& child : expr.children) {
        out = UnionMatches(out, EvaluateNodes(*child));
      }
      return out;
    }
    case TextExpr::Kind::kNot: {
      // Anti-join against the universe without materializing it twice: the
      // old universe-then-subtract allocated two universe-sized vectors.
      return ComplementMatches(*store_, EvaluateNodes(*expr.children.front()));
    }
  }
  return {};
}

std::vector<store::PathId> InvertedIndex::EvaluatePaths(const TextExpr& expr) const {
  switch (expr.kind) {
    case TextExpr::Kind::kAll: {
      std::vector<store::PathId> out(store_->paths().size());
      for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<store::PathId>(i);
      return out;
    }
    case TextExpr::Kind::kTerm:
      return TermPaths(expr.term);
    case TextExpr::Kind::kPhrase: {
      std::vector<store::PathId> out;
      bool first = true;
      for (const auto& token : expr.phrase) {
        if (first) {
          out = TermPaths(token);
          first = false;
        } else {
          out = IntersectSorted(out, TermPaths(token));
        }
      }
      return out;
    }
    case TextExpr::Kind::kAnd: {
      std::vector<store::PathId> out;
      bool have_positive = false;
      std::vector<const TextExpr*> negatives;
      for (const auto& child : expr.children) {
        if (child->kind == TextExpr::Kind::kNot) {
          negatives.push_back(child->children.front().get());
          continue;
        }
        auto paths = EvaluatePaths(*child);
        if (!have_positive) {
          out = std::move(paths);
          have_positive = true;
        } else {
          out = IntersectSorted(out, paths);
        }
      }
      if (!have_positive) out = EvaluatePaths(*TextExpr::All());
      for (const TextExpr* neg : negatives) {
        out = SubtractSorted(out, EvaluatePaths(*neg));
      }
      return out;
    }
    case TextExpr::Kind::kOr: {
      std::vector<store::PathId> out;
      for (const auto& child : expr.children) {
        out = UnionSorted(out, EvaluatePaths(*child));
      }
      return out;
    }
    case TextExpr::Kind::kNot: {
      return SubtractSorted(EvaluatePaths(*TextExpr::All()),
                            EvaluatePaths(*expr.children.front()));
    }
  }
  return {};
}

const std::vector<store::NodeId>& InvertedIndex::NodesWithPath(
    store::PathId path) const {
  if (path == store::kInvalidPathId || path >= nodes_by_path_.size()) {
    return kEmptyNodes;
  }
  return nodes_by_path_[path];
}

}  // namespace seda::text
