#ifndef SEDA_TEXT_TEXT_EXPR_H_
#define SEDA_TEXT_TEXT_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace seda::text {

/// Full-text search expression per the paper's Definition 3: "a simple bag of
/// keywords, a phrase query or a boolean combination of those". `kAll` is the
/// wildcard search ("*") used by structure-only query terms such as
/// (trade_country, *).
class TextExpr {
 public:
  enum class Kind {
    kAll,     ///< matches any content, including empty
    kTerm,    ///< single keyword
    kPhrase,  ///< consecutive keywords
    kAnd,
    kOr,
    kNot,     ///< single child; only meaningful inside a conjunction
  };

  Kind kind = Kind::kAll;
  std::string term;                               ///< kTerm
  std::vector<std::string> phrase;                ///< kPhrase (normalized tokens)
  std::vector<std::unique_ptr<TextExpr>> children;  ///< kAnd / kOr / kNot

  static std::unique_ptr<TextExpr> All();
  static std::unique_ptr<TextExpr> Term(std::string t);
  static std::unique_ptr<TextExpr> Phrase(std::vector<std::string> tokens);
  static std::unique_ptr<TextExpr> And(std::vector<std::unique_ptr<TextExpr>> cs);
  static std::unique_ptr<TextExpr> Or(std::vector<std::unique_ptr<TextExpr>> cs);
  static std::unique_ptr<TextExpr> Not(std::unique_ptr<TextExpr> child);

  /// Deep copy.
  std::unique_ptr<TextExpr> Clone() const;

  /// Evaluates against a token sequence (reference semantics for tests and
  /// for index-free verification). Phrases require consecutive positions.
  bool Matches(const std::vector<std::string>& tokens) const;

  /// All positive keywords mentioned (terms + phrase tokens), used for
  /// scoring and for sorted-access streams in the top-k algorithm.
  std::vector<std::string> PositiveTerms() const;

  /// Renders a canonical text form, e.g. ("a" AND NOT "b").
  std::string ToString() const;
};

/// Parses the SEDA full-text query syntax:
///   expr    := or
///   or      := and ( OR and )*
///   and     := unary ( [AND] unary )*        (juxtaposition = AND, bag of words)
///   unary   := NOT unary | '(' expr ')' | '"' words '"' | word | '*'
/// Keywords AND/OR/NOT are case-insensitive.
Result<std::unique_ptr<TextExpr>> ParseTextExpr(std::string_view input);

}  // namespace seda::text

#endif  // SEDA_TEXT_TEXT_EXPR_H_
