#include "text/text_expr.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "text/analyzer.h"

namespace seda::text {

std::unique_ptr<TextExpr> TextExpr::All() {
  auto e = std::make_unique<TextExpr>();
  e->kind = Kind::kAll;
  return e;
}

std::unique_ptr<TextExpr> TextExpr::Term(std::string t) {
  auto e = std::make_unique<TextExpr>();
  e->kind = Kind::kTerm;
  e->term = NormalizeToken(t);
  return e;
}

std::unique_ptr<TextExpr> TextExpr::Phrase(std::vector<std::string> tokens) {
  auto e = std::make_unique<TextExpr>();
  e->kind = Kind::kPhrase;
  for (auto& t : tokens) {
    std::string norm = NormalizeToken(t);
    if (!norm.empty()) e->phrase.push_back(std::move(norm));
  }
  if (e->phrase.size() == 1) {
    return Term(e->phrase.front());
  }
  return e;
}

std::unique_ptr<TextExpr> TextExpr::And(std::vector<std::unique_ptr<TextExpr>> cs) {
  if (cs.size() == 1) return std::move(cs.front());
  auto e = std::make_unique<TextExpr>();
  e->kind = Kind::kAnd;
  e->children = std::move(cs);
  return e;
}

std::unique_ptr<TextExpr> TextExpr::Or(std::vector<std::unique_ptr<TextExpr>> cs) {
  if (cs.size() == 1) return std::move(cs.front());
  auto e = std::make_unique<TextExpr>();
  e->kind = Kind::kOr;
  e->children = std::move(cs);
  return e;
}

std::unique_ptr<TextExpr> TextExpr::Not(std::unique_ptr<TextExpr> child) {
  auto e = std::make_unique<TextExpr>();
  e->kind = Kind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

std::unique_ptr<TextExpr> TextExpr::Clone() const {
  auto e = std::make_unique<TextExpr>();
  e->kind = kind;
  e->term = term;
  e->phrase = phrase;
  for (const auto& child : children) e->children.push_back(child->Clone());
  return e;
}

bool TextExpr::Matches(const std::vector<std::string>& tokens) const {
  switch (kind) {
    case Kind::kAll:
      return true;
    case Kind::kTerm:
      return std::find(tokens.begin(), tokens.end(), term) != tokens.end();
    case Kind::kPhrase: {
      if (phrase.empty()) return true;
      if (tokens.size() < phrase.size()) return false;
      for (size_t i = 0; i + phrase.size() <= tokens.size(); ++i) {
        bool match = true;
        for (size_t j = 0; j < phrase.size(); ++j) {
          if (tokens[i + j] != phrase[j]) {
            match = false;
            break;
          }
        }
        if (match) return true;
      }
      return false;
    }
    case Kind::kAnd:
      for (const auto& child : children) {
        if (!child->Matches(tokens)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& child : children) {
        if (child->Matches(tokens)) return true;
      }
      return false;
    case Kind::kNot:
      return !children.front()->Matches(tokens);
  }
  return false;
}

std::vector<std::string> TextExpr::PositiveTerms() const {
  std::vector<std::string> out;
  switch (kind) {
    case Kind::kAll:
      break;
    case Kind::kTerm:
      out.push_back(term);
      break;
    case Kind::kPhrase:
      out = phrase;
      break;
    case Kind::kAnd:
    case Kind::kOr:
      for (const auto& child : children) {
        for (auto& t : child->PositiveTerms()) out.push_back(std::move(t));
      }
      break;
    case Kind::kNot:
      break;  // negated terms contribute no positive evidence
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string TextExpr::ToString() const {
  switch (kind) {
    case Kind::kAll:
      return "*";
    case Kind::kTerm:
      return "\"" + term + "\"";
    case Kind::kPhrase:
      return "\"" + Join(phrase, " ") + "\"";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "NOT " + children.front()->ToString();
  }
  return "?";
}

namespace {

/// Recursive-descent parser for the full-text query grammar.
class ExprParser {
 public:
  explicit ExprParser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<TextExpr>> Parse() {
    auto expr = ParseOr();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("unexpected trailing input in search query at offset " +
                                std::to_string(pos_));
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= input_.size();
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < input_.size() && input_[pos_] == c;
  }

  /// Reads a bare word (no quotes); empty when next char is punctuation.
  std::string PeekWord() {
    SkipSpace();
    size_t p = pos_;
    std::string word;
    while (p < input_.size() && !std::isspace(static_cast<unsigned char>(input_[p])) &&
           input_[p] != '(' && input_[p] != ')' && input_[p] != '"') {
      word.push_back(input_[p++]);
    }
    return word;
  }

  void ConsumeWord(const std::string& word) { pos_ += word.size(); }

  Result<std::unique_ptr<TextExpr>> ParseOr() {
    std::vector<std::unique_ptr<TextExpr>> parts;
    auto first = ParseAnd();
    if (!first.ok()) return first;
    parts.push_back(std::move(first).value());
    while (true) {
      std::string word = PeekWord();
      if (ToLower(word) != "or") break;
      ConsumeWord(word);
      auto next = ParseAnd();
      if (!next.ok()) return next;
      parts.push_back(std::move(next).value());
    }
    return TextExpr::Or(std::move(parts));
  }

  Result<std::unique_ptr<TextExpr>> ParseAnd() {
    std::vector<std::unique_ptr<TextExpr>> parts;
    auto first = ParseUnary();
    if (!first.ok()) return first;
    parts.push_back(std::move(first).value());
    while (!AtEnd() && !PeekChar(')')) {
      std::string word = PeekWord();
      std::string lower = ToLower(word);
      if (lower == "or") break;
      if (lower == "and") {
        ConsumeWord(word);
      }
      auto next = ParseUnary();
      if (!next.ok()) return next;
      parts.push_back(std::move(next).value());
    }
    return TextExpr::And(std::move(parts));
  }

  Result<std::unique_ptr<TextExpr>> ParseUnary() {
    SkipSpace();
    if (pos_ >= input_.size()) {
      return Status::ParseError("unexpected end of search query");
    }
    std::string word = PeekWord();
    if (ToLower(word) == "not") {
      ConsumeWord(word);
      auto child = ParseUnary();
      if (!child.ok()) return child;
      return TextExpr::Not(std::move(child).value());
    }
    if (PeekChar('(')) {
      ++pos_;
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (!PeekChar(')')) return Status::ParseError("expected ')' in search query");
      ++pos_;
      return inner;
    }
    if (PeekChar('"')) {
      ++pos_;
      size_t close = input_.find('"', pos_);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated phrase in search query");
      }
      std::string phrase(input_.substr(pos_, close - pos_));
      pos_ = close + 1;
      auto tokens = Tokenize(phrase);
      if (tokens.empty()) return TextExpr::All();
      return TextExpr::Phrase(std::move(tokens));
    }
    if (word.empty()) {
      return Status::ParseError("expected term in search query at offset " +
                                std::to_string(pos_));
    }
    ConsumeWord(word);
    if (word == "*") return TextExpr::All();
    std::string norm = NormalizeToken(word);
    if (norm.empty()) return TextExpr::All();
    return TextExpr::Term(norm);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<TextExpr>> ParseTextExpr(std::string_view input) {
  std::string_view stripped = StripWhitespace(input);
  if (stripped.empty() || stripped == "*") {
    return TextExpr::All();
  }
  return ExprParser(stripped).Parse();
}

}  // namespace seda::text
