#ifndef SEDA_TEXT_INVERTED_INDEX_H_
#define SEDA_TEXT_INVERTED_INDEX_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/document_store.h"
#include "text/text_expr.h"

namespace seda {
class ThreadPool;
}

namespace seda::persist {
class ImageWriter;
class MappedImage;
}  // namespace seda::persist

namespace seda::text {

/// One node entry in a term's posting list. Postings are kept in document
/// order (DocId, then Dewey), the order the holistic twig join consumes.
struct NodePosting {
  store::NodeId node;
  store::PathId path = store::kInvalidPathId;
  /// Positions of the term within the node's token stream (for phrases).
  std::vector<uint32_t> positions;
};

/// A scored node match produced by evaluating a full-text expression.
struct NodeMatch {
  store::NodeId node;
  store::PathId path = store::kInvalidPathId;
  double score = 0.0;
};

/// Per-node content score of one term occurrence: idf * (1 + log(1 + tf)).
/// The single definition shared by EvaluateNodes and the exec cursor layer,
/// so both assign bit-identical scores. Phrase matches score the sum of
/// their tokens' Idf() values (tf-independent) in both evaluators.
inline double TermContentScore(double idf, size_t tf) {
  return idf * (1.0 + std::log(1.0 + static_cast<double>(tf)));
}

/// From-scratch full-text index (the paper's Lucene substitute) with the two
/// posting families SEDA relies on:
///
///  1. keyword -> nodes (with in-node positions): element and attribute nodes
///     are indexed by their full content (concatenated descendant text,
///     Definition 3's content(n)), so "United States" matches both the
///     trade_country leaf and its enclosing country document element.
///  2. keyword -> distinct paths ("virtual path documents", paper Figure 8):
///     drives context-bucket computation in §5 without touching node
///     postings. Tag names are indexed as keywords too, as the paper states.
///
/// Per-path occurrence counts can be read either from the PathDictionary (the
/// paper's chosen design: counts in the document store) or from the
/// per-term path postings (the rejected design); both are exposed so the
/// ablation bench can compare them.
class InvertedIndex {
 public:
  /// Builds the index over every document currently in `store`.
  explicit InvertedIndex(const store::DocumentStore* store)
      : InvertedIndex(store, nullptr) {}

  /// Builds the index with per-document posting construction fanned out over
  /// `pool` (nullptr or a 1-worker pool builds inline). Document shards are
  /// merged in DocId order, so the result is identical to a single-threaded
  /// build regardless of scheduling.
  InvertedIndex(const store::DocumentStore* store, ThreadPool* pool);

  /// Incremental-commit constructor: copies `base` (built over the first
  /// `first_new_doc` documents of a store whose document prefix is identical
  /// to `store`) and indexes only documents [first_new_doc, DocumentCount).
  /// Because new DocIds sort after every base DocId, appending the new
  /// shards in DocId order reproduces exactly the postings a from-scratch
  /// build over `store` would produce — same lists, same max-tf, same
  /// document frequencies — without re-tokenizing a single old document.
  InvertedIndex(const InvertedIndex& base, const store::DocumentStore* store,
                store::DocId first_new_doc, ThreadPool* pool);

  const store::DocumentStore& store() const { return *store_; }

  /// Number of distinct terms indexed (materialized + still-lazy).
  size_t TermCount() const;

  /// Sorted union of every indexed term across both posting families —
  /// content/phrase terms with node postings (materialized or still-lazy)
  /// and tag/direct-text terms that only appear in the path index. The
  /// audit layer's term walk; not a query-path API.
  std::vector<std::string> AllTerms() const;

  /// Document-order node postings for a term; empty when absent.
  const std::vector<NodePosting>& Postings(const std::string& term) const;

  /// Distinct paths containing `term` in content or as the last tag
  /// (sorted). The Figure 8 path index.
  const std::vector<store::PathId>& TermPaths(const std::string& term) const;

  /// Per-(term, path) occurrence count kept inside the path postings — the
  /// alternative layout discussed in §5. Returns 0 when absent.
  uint64_t TermPathCount(const std::string& term, store::PathId path) const;

  /// Number of documents whose content contains `term`.
  uint64_t DocumentFrequency(const std::string& term) const;

  /// Maximum within-node term frequency of `term` across its postings
  /// (0 when absent). Precomputed at build time; the cursor layer derives
  /// per-term score upper bounds from it without scanning posting lists.
  uint32_t MaxTermFrequency(const std::string& term) const;

  /// Inverse document frequency with add-one smoothing.
  double Idf(const std::string& term) const;

  /// Evaluates a full-text expression to scored node matches in document
  /// order. kAll yields every element/attribute node (score 0), so callers
  /// should constrain kAll terms by context instead when possible.
  ///
  /// Compatibility shim: the query engine streams expressions through the
  /// cursor layer (src/exec/) instead of materializing them here;
  /// exec::EvaluateWithCursor produces exactly this output. This entry point
  /// remains for tests and one-shot callers, with NOT/pure-negation rewritten
  /// as a single-pass anti-join so the node universe is never materialized as
  /// an intermediate.
  std::vector<NodeMatch> EvaluateNodes(const TextExpr& expr) const;

  /// Evaluates to the distinct set of paths satisfying the expression, using
  /// only the path index (paper §5): terms/phrases intersect or union path
  /// sets; NOT subtracts. Phrase queries approximate by intersection, which
  /// the paper's design shares (a path survives iff all phrase tokens occur
  /// in it).
  std::vector<store::PathId> EvaluatePaths(const TextExpr& expr) const;

  /// All element/attribute nodes whose path id is `path`, document order.
  const std::vector<store::NodeId>& NodesWithPath(store::PathId path) const;

  /// Total indexed element/attribute node count.
  uint64_t IndexedNodeCount() const { return indexed_nodes_; }

  /// Persistence hooks (src/persist/): writes the term and path posting
  /// sections (terms sorted, posting lists as skippable blobs) /
  /// reconstructs an index over `store` without re-tokenizing a single
  /// document. Load materializes only the pointer-bearing heads (term
  /// table, frequencies, path postings); each term's node posting list stays
  /// an offset-addressed segment of the mmap'd image — which the index
  /// co-owns — until the first Postings() call decodes it, under a shared
  /// mutex, into the same in-memory form a built index carries. The loaded
  /// index serves byte-identical postings, frequencies and scores; it also
  /// works as the `base` of the incremental constructor (which first forces
  /// full materialization), so commits can extend a loaded epoch.
  Status SaveTo(persist::ImageWriter* writer) const;
  static Result<std::unique_ptr<InvertedIndex>> LoadFrom(
      std::shared_ptr<const persist::MappedImage> image,
      const store::DocumentStore* store);

 private:
  /// Uninitialized shell for LoadFrom.
  struct LoadTag {};
  InvertedIndex(const store::DocumentStore* store, LoadTag) : store_(store) {}

  /// A not-yet-decoded posting list: an offset-addressed span of the image.
  struct LazySpan {
    const uint8_t* data = nullptr;
    size_t size = 0;
  };

  /// Decodes every still-lazy posting list (serialization and the
  /// incremental constructor need the full map).
  void MaterializeAllPostings() const;

  /// Decodes the per-(term, path) count table on first TermPathCount() use —
  /// it backs only the §5 ablation comparison, so reopen never pays for it.
  void MaterializePathCounts() const;
  /// Per-document partial index: every container appends in node visit order,
  /// so concatenating shards in DocId order reproduces the sequential build.
  struct DocShard;

  /// Shards, merges and finalizes documents [first_doc, DocumentCount): the
  /// shared tail of both the from-scratch and the incremental constructor.
  void IndexRange(store::DocId first_doc, ThreadPool* pool);
  DocShard BuildDocShard(store::DocId doc) const;
  void MergeShard(DocShard&& shard);
  static void IndexNode(DocShard* shard, const store::NodeId& id,
                        store::PathId path,
                        const std::vector<std::string>& tokens,
                        const std::vector<std::string>& direct_tokens);

  const store::DocumentStore* store_;
  /// Keeps the mapped image (and with it every LazySpan) alive for an index
  /// opened from disk; null for a built index.
  std::shared_ptr<const persist::MappedImage> image_;
  /// Terms whose posting list has not been decoded yet. Guarded by lazy_mu_
  /// together with node_postings_ whenever image_ is set; a built index
  /// never takes the lock.
  mutable std::unordered_map<std::string, LazySpan> lazy_postings_;
  /// Not-yet-decoded per-(term, path) count table (empty span = decoded or
  /// built in memory). Guarded by lazy_mu_ like the posting spans.
  mutable LazySpan lazy_path_counts_;
  mutable std::shared_mutex lazy_mu_;
  mutable std::unordered_map<std::string, std::vector<NodePosting>> node_postings_;
  std::unordered_map<std::string, std::vector<store::PathId>> path_postings_;
  mutable std::unordered_map<std::string,
                             std::unordered_map<store::PathId, uint64_t>>
      path_counts_;
  std::unordered_map<std::string, uint64_t> doc_freq_;
  std::unordered_map<std::string, uint32_t> max_tf_;
  std::vector<std::vector<store::NodeId>> nodes_by_path_;
  uint64_t indexed_nodes_ = 0;

  static const std::vector<NodePosting> kEmptyPostings;
  static const std::vector<store::PathId> kEmptyPaths;
  static const std::vector<store::NodeId> kEmptyNodes;
};

}  // namespace seda::text

#endif  // SEDA_TEXT_INVERTED_INDEX_H_
