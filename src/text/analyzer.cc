#include "text/analyzer.h"

#include <cctype>

namespace seda::text {

namespace {
bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }
}  // namespace

std::vector<std::string> Tokenize(std::string_view input) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (IsTokenChar(c)) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      continue;
    }
    // Keep '.' inside numbers ("12.31") and '%' glued to nothing.
    if (c == '.' && !current.empty() && IsDigit(current.back()) &&
        i + 1 < input.size() && IsDigit(input[i + 1])) {
      current.push_back('.');
      continue;
    }
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::string NormalizeToken(std::string_view token) {
  auto tokens = Tokenize(token);
  return tokens.empty() ? std::string() : tokens.front();
}

}  // namespace seda::text
